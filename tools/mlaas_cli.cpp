// mlaas_cli — command-line front end for the library.
//
//   mlaas_cli list
//       Platforms, their control surfaces, classifiers and feature steps.
//   mlaas_cli train --csv data.csv --platform Microsoft
//              [--clf boosted_trees] [--feat filter_fisher]
//              [--params "n_estimators=80,learning_rate=0.1"]
//              [--test-fraction 0.3] [--seed 42] [--label-column -1]
//       Load a CSV (last column = label by default), 70/30 split, train the
//       configured pipeline, print test metrics.
//   mlaas_cli probe --platform Google [--seed 42]
//       Decision-boundary probe on the CIRCLE and LINEAR datasets (§6.1).
//   mlaas_cli corpus --out DIR [--seed 42] [--n 119]
//       Write the synthetic study corpus as CSV files.
#include <filesystem>
#include <iostream>

#include "data/corpus.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/split.h"
#include "eval/boundary.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mlaas;

int cmd_list() {
  TextTable t({"Platform", "FEAT steps", "Classifiers", "Tunable params"});
  for (const auto& name : platform_names()) {
    const ControlSurface s = make_platform(name)->controls();
    std::string classifiers;
    std::size_t n_params = 0;
    for (const auto& spec : s.classifiers) {
      if (!classifiers.empty()) classifiers += ", ";
      classifiers += classifier_abbrev(spec.classifier);
      n_params += spec.params.size();
    }
    t.add_row({name, std::to_string(s.feature_steps.size()),
               classifiers.empty() ? "(automated)" : classifiers,
               std::to_string(n_params)});
  }
  std::cout << t.str();
  std::cout << "\nClassifier registry: ";
  for (const auto& name : classifier_names()) std::cout << name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_train(const CliFlags& flags) {
  const auto csv_path = flags.get("csv");
  if (!csv_path) {
    std::cerr << "train: --csv FILE is required\n";
    return 2;
  }
  CsvOptions csv_options;
  csv_options.label_column = static_cast<int>(flags.int_or("label-column", -1));
  const Dataset dataset = load_csv_file(*csv_path, csv_options);

  const std::string platform_name = flags.get_or("platform", "Local");
  const auto platform = make_platform(platform_name);
  PipelineConfig config;
  config.feature_step = flags.get_or("feat", "");
  config.classifier = flags.get_or("clf", "");
  config.params = parse_params(flags.get_or("params", ""));

  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  const double test_fraction = flags.double_or("test-fraction", 0.3);
  const auto split = train_test_split(dataset, test_fraction, seed);

  const auto model = platform->train(split.train, config, seed);
  const Metrics m = compute_metrics(split.test.y(), model->predict(split.test.x()));

  std::cout << "dataset:   " << *csv_path << " (" << dataset.n_samples() << " x "
            << dataset.n_features() << ")\n"
            << "platform:  " << platform_name << "\n"
            << "config:    " << config.key() << "\n"
            << "train/test: " << split.train.n_samples() << "/" << split.test.n_samples()
            << "\n\n";
  TextTable t({"Metric", "Value"});
  t.add_row({"F-score", fmt(m.f_score)});
  t.add_row({"Accuracy", fmt(m.accuracy)});
  t.add_row({"Precision", fmt(m.precision)});
  t.add_row({"Recall", fmt(m.recall)});
  std::cout << t.str();
  return 0;
}

int cmd_probe(const CliFlags& flags) {
  const std::string platform_name = flags.get_or("platform", "Google");
  const auto platform = make_platform(platform_name);
  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  for (const bool is_circle : {true, false}) {
    const Dataset probe =
        is_circle ? make_circle_probe(seed) : make_linear_probe(seed);
    const BoundaryMap map = probe_decision_boundary(*platform, probe, seed);
    std::cout << platform_name << " on " << probe.meta().name << ":\n"
              << render_boundary(map, 44) << "linear-fit accuracy "
              << fmt(map.linear_fit_accuracy) << " -> "
              << (boundary_is_linear(map) ? "LINEAR" : "NON-LINEAR") << "\n\n";
  }
  return 0;
}

int cmd_corpus(const CliFlags& flags) {
  const std::string out_dir = flags.get_or("out", "corpus_csv");
  CorpusOptions options;
  options.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  options.n_datasets = static_cast<std::size_t>(flags.int_or("n", 119));
  std::filesystem::create_directories(out_dir);
  const auto corpus = build_corpus(options);
  for (const auto& ds : corpus) {
    save_csv_file(ds, out_dir + "/" + ds.meta().id + ".csv");
  }
  std::cout << "wrote " << corpus.size() << " datasets to " << out_dir << "/\n";
  return 0;
}

int usage() {
  std::cerr << "usage: mlaas_cli <list|train|probe|corpus> [flags]\n"
               "  see the header comment of tools/mlaas_cli.cpp for details\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "train") return cmd_train(flags);
    if (command == "probe") return cmd_probe(flags);
    if (command == "corpus") return cmd_corpus(flags);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mlaas_cli: " << e.what() << "\n";
    return 1;
  }
}
