// mlaas_cli — command-line front end for the library.
//
//   mlaas_cli list
//       Platforms, their control surfaces, classifiers and feature steps.
//   mlaas_cli train --csv data.csv --platform Microsoft
//              [--clf boosted_trees] [--feat filter_fisher]
//              [--params "n_estimators=80,learning_rate=0.1"]
//              [--test-fraction 0.3] [--seed 42] [--label-column -1]
//       Load a CSV (last column = label by default), 70/30 split, train the
//       configured pipeline, print test metrics.
//   mlaas_cli probe --platform Google [--seed 42]
//       Decision-boundary probe on the CIRCLE and LINEAR datasets (§6.1).
//   mlaas_cli corpus --out DIR [--seed 42] [--n 119]
//       Write the synthetic study corpus as CSV files.
//   mlaas_cli campaign [--quick] [--seed 42] [--scale 1] [--threads N]
//              [--schedule static|dynamic]
//              [--fault-rate 0.1] [--quota-profile strict] [--retry-budget 6]
//              [--chaos-profile storm] [--breakers] [--breaker-threshold 3]
//              [--breaker-cooldown 300] [--breaker-probes 2] [--jitter]
//              [--journal PATH] [--resume|--fresh]
//              [--out report.tsv] [--json report.json]
//       Run the measurement campaign through the simulated service layer
//       and print/write the per-platform telemetry report.  Finished cells
//       are journaled to PATH (write-ahead, fsync'd); an interrupted
//       campaign resumes from the journal on the next run unless --fresh.
#include <filesystem>
#include <iostream>
#include <stdexcept>

#include "core/study.h"
#include "data/corpus.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/split.h"
#include "eval/boundary.h"
#include "eval/journal.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mlaas;

int cmd_list() {
  TextTable t({"Platform", "FEAT steps", "Classifiers", "Tunable params"});
  for (const auto& name : platform_names()) {
    const ControlSurface s = make_platform(name)->controls();
    std::string classifiers;
    std::size_t n_params = 0;
    for (const auto& spec : s.classifiers) {
      if (!classifiers.empty()) classifiers += ", ";
      classifiers += classifier_abbrev(spec.classifier);
      n_params += spec.params.size();
    }
    t.add_row({name, std::to_string(s.feature_steps.size()),
               classifiers.empty() ? "(automated)" : classifiers,
               std::to_string(n_params)});
  }
  std::cout << t.str();
  std::cout << "\nClassifier registry: ";
  for (const auto& name : classifier_names()) std::cout << name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_train(const CliFlags& flags) {
  const auto csv_path = flags.get("csv");
  if (!csv_path) {
    std::cerr << "train: --csv FILE is required\n";
    return 2;
  }
  CsvOptions csv_options;
  csv_options.label_column = static_cast<int>(flags.int_or("label-column", -1));
  const Dataset dataset = load_csv_file(*csv_path, csv_options);

  const std::string platform_name = flags.get_or("platform", "Local");
  const auto platform = make_platform(platform_name);
  PipelineConfig config;
  config.feature_step = flags.get_or("feat", "");
  config.classifier = flags.get_or("clf", "");
  config.params = parse_params(flags.get_or("params", ""));

  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  const double test_fraction = flags.double_or("test-fraction", 0.3);
  const auto split = train_test_split(dataset, test_fraction, seed);

  const auto model = platform->train(split.train, config, seed);
  const Metrics m = compute_metrics(split.test.y(), model->predict(split.test.x()));

  std::cout << "dataset:   " << *csv_path << " (" << dataset.n_samples() << " x "
            << dataset.n_features() << ")\n"
            << "platform:  " << platform_name << "\n"
            << "config:    " << config.key() << "\n"
            << "train/test: " << split.train.n_samples() << "/" << split.test.n_samples()
            << "\n\n";
  TextTable t({"Metric", "Value"});
  t.add_row({"F-score", fmt(m.f_score)});
  t.add_row({"Accuracy", fmt(m.accuracy)});
  t.add_row({"Precision", fmt(m.precision)});
  t.add_row({"Recall", fmt(m.recall)});
  std::cout << t.str();
  return 0;
}

int cmd_probe(const CliFlags& flags) {
  const std::string platform_name = flags.get_or("platform", "Google");
  const auto platform = make_platform(platform_name);
  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  for (const bool is_circle : {true, false}) {
    const Dataset probe =
        is_circle ? make_circle_probe(seed) : make_linear_probe(seed);
    const BoundaryMap map = probe_decision_boundary(*platform, probe, seed);
    std::cout << platform_name << " on " << probe.meta().name << ":\n"
              << render_boundary(map, 44) << "linear-fit accuracy "
              << fmt(map.linear_fit_accuracy) << " -> "
              << (boundary_is_linear(map) ? "LINEAR" : "NON-LINEAR") << "\n\n";
  }
  return 0;
}

int cmd_corpus(const CliFlags& flags) {
  const std::string out_dir = flags.get_or("out", "corpus_csv");
  CorpusOptions options;
  options.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  options.n_datasets = static_cast<std::size_t>(flags.int_or("n", 119));
  std::filesystem::create_directories(out_dir);
  const auto corpus = build_corpus(options);
  for (const auto& ds : corpus) {
    save_csv_file(ds, out_dir + "/" + ds.meta().id + ".csv");
  }
  std::cout << "wrote " << corpus.size() << " datasets to " << out_dir << "/\n";
  return 0;
}

int cmd_campaign(const CliFlags& flags) {
  StudyOptions opt;
  opt.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  opt.scale = flags.double_or("scale", 1.0);
  opt.quick = flags.bool_or("quick", false);
  opt.threads = static_cast<int>(flags.int_or("threads", 0));
  if (opt.threads < 0) {
    throw std::invalid_argument("--threads must be >= 0 (0 = hardware concurrency), got " +
                                std::to_string(opt.threads));
  }
  opt.schedule = flags.get_or("schedule", "dynamic");
  if (opt.schedule != "static" && opt.schedule != "dynamic") {
    throw std::invalid_argument("--schedule must be 'static' or 'dynamic', got '" +
                                opt.schedule + "'");
  }
  opt.verbose = flags.bool_or("verbose", false);
  opt.fault_rate = flags.double_or("fault-rate", 0.0);
  opt.quota_profile = flags.get_or("quota-profile", "default");
  opt.retry_budget = static_cast<int>(flags.int_or("retry-budget", 6));
  opt.chaos_profile = flags.get_or("chaos-profile", "none");
  opt.breakers = flags.bool_or("breakers", false);
  opt.breaker_threshold = static_cast<int>(flags.int_or("breaker-threshold", 3));
  opt.breaker_cooldown = flags.double_or("breaker-cooldown", 300.0);
  opt.breaker_probes = static_cast<int>(flags.int_or("breaker-probes", 2));
  opt.jitter = flags.bool_or("jitter", false);
  opt.resume = flags.bool_or("resume", true);
  if (flags.bool_or("fresh", false)) opt.resume = false;

  Study study(opt);
  MeasurementOptions moptions = opt.measurement_options();
  moptions.campaign.journal_path =
      flags.get_or("journal", "mlaas_campaign_seed" + std::to_string(opt.seed) + ".journal");

  // One-line resume summary before the run: how much of the campaign a
  // prior crashed invocation already banked.
  {
    const std::string fingerprint =
        measurement_fingerprint(study.corpus(), study.platforms(), moptions);
    const auto restored =
        moptions.campaign.resume ? CellJournal::load(moptions.campaign.journal_path, fingerprint)
                                 : std::nullopt;
    if (restored && (restored->cells > 0 || restored->discarded > 0)) {
      std::cout << "resuming from " << moptions.campaign.journal_path << ": "
                << restored->cells << " cells restored from " << restored->sessions.size()
                << " completed sessions, " << restored->discarded
                << " partial cells re-run\n";
    } else {
      std::cout << "fresh campaign (journal: " << moptions.campaign.journal_path << ")\n";
    }
  }

  const CampaignResult result = run_campaign(study.corpus(), study.platforms(), moptions);
  CellJournal::remove(moptions.campaign.journal_path);

  TextTable t({"Platform", "Cells ok", "Failed", "Rejected", "Deferred", "Restored",
               "Requests", "Retries", "Rate-limited", "Faults", "Outages", "Trips",
               "Simulated (h)"});
  for (const auto& p : result.report.platforms) {
    t.add_row({p.platform, std::to_string(p.cells_ok), std::to_string(p.cells_failed),
               std::to_string(p.cells_rejected), std::to_string(p.cells_deferred),
               std::to_string(p.cells_restored), std::to_string(p.service.requests),
               std::to_string(p.retries), std::to_string(p.service.rate_limited),
               std::to_string(p.service.transient_errors),
               std::to_string(p.service.unavailable), std::to_string(p.breaker_trips),
               fmt(p.simulated_seconds / 3600.0, 2)});
  }
  const PlatformCampaignStats total = result.report.totals();
  std::cout << t.str() << "\ncoverage: " << fmt(100.0 * result.report.coverage(), 1)
            << "%  (" << total.cells_ok << " ok, " << total.cells_failed << " failed, "
            << total.cells_deferred << " deferred, " << total.cells_rejected
            << " rejected)\n";
  const SchedulerStats& sched = result.report.scheduler;
  std::cout << "scheduler: " << sched.schedule << ", " << sched.workers << " workers, "
            << sched.sessions << " sessions (" << sched.sessions_stolen << " stolen), "
            << "makespan " << fmt(sched.makespan_seconds, 2) << " s, imbalance "
            << fmt(sched.imbalance(), 2) << "x\n";
  if (auto out = flags.get("out")) {
    result.report.save_tsv(*out);
    std::cout << "wrote " << *out << "\n";
  }
  if (auto json = flags.get("json")) {
    result.report.save_json(*json);
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: mlaas_cli <list|train|probe|corpus|campaign> [flags]\n"
               "  see the header comment of tools/mlaas_cli.cpp for details\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "train") return cmd_train(flags);
    if (command == "probe") return cmd_probe(flags);
    if (command == "corpus") return cmd_corpus(flags);
    if (command == "campaign") return cmd_campaign(flags);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mlaas_cli: " << e.what() << "\n";
    return 1;
  }
}
