// mlaas_cli — command-line front end for the library.
//
//   mlaas_cli list
//       Platforms, their control surfaces, classifiers and feature steps.
//   mlaas_cli train --csv data.csv --platform Microsoft
//              [--clf boosted_trees] [--feat filter_fisher]
//              [--params "n_estimators=80,learning_rate=0.1"]
//              [--test-fraction 0.3] [--seed 42] [--label-column -1]
//       Load a CSV (last column = label by default), 70/30 split, train the
//       configured pipeline, print test metrics.
//   mlaas_cli probe --platform Google [--seed 42]
//       Decision-boundary probe on the CIRCLE and LINEAR datasets (§6.1).
//   mlaas_cli corpus --out DIR [--seed 42] [--n 119]
//       Write the synthetic study corpus as CSV files.
//   mlaas_cli campaign [--quick] [--seed 42] [--scale 1] [--threads N]
//              [--schedule static|dynamic]
//              [--fault-rate 0.1] [--quota-profile strict] [--retry-budget 6]
//              [--chaos-profile storm] [--breakers] [--breaker-threshold 3]
//              [--breaker-cooldown 300] [--breaker-probes 2] [--jitter]
//              [--journal PATH] [--resume|--fresh]
//              [--out report.tsv] [--json report.json] [--trace-out trace.json]
//       Run the measurement campaign through the simulated service layer
//       and print/write the per-platform telemetry report.  Finished cells
//       are journaled to PATH (write-ahead, fsync'd); an interrupted
//       campaign resumes from the journal on the next run unless --fresh.
//   mlaas_cli serve-bench [--tenants 6] [--platforms Local,Google,...]
//              [--requests 2000] [--rate 50] [--closed-loop] [--clients 8]
//              [--batch 64] [--linger 0.05] [--cache-capacity 8]
//              [--max-pending 0] [--quota-profile default] [--seed 42]
//              [--fault-rate 0.1] [--chaos-profile storm] [--deadline-ms 500]
//              [--fallback Local] [--last-known-good] [--breakers]
//              [--breaker-threshold 3] [--breaker-cooldown 300]
//              [--breaker-probes 2]
//              [--out report.tsv] [--json report.json] [--trace-out trace.json]
//       Drive the batched query-serving layer (QueryRouter) with a seeded
//       multi-tenant workload — Zipf-skewed tenant mix, open-loop Poisson
//       arrivals at --rate (or --closed-loop with --clients callers) — and
//       print per-tenant latency percentiles plus router telemetry.  The
//       fault-tolerance knobs inject seeded chaos (--fault-rate /
//       --chaos-profile), bound each request by a deadline budget
//       (--deadline-ms) and arm the degradation ladder (--fallback,
//       --last-known-good, --breakers); when any of them is on the summary
//       gains a one-line resilience report (goodput, deadline misses,
//       failovers, breaker trips).
//
//   Both campaign and serve-bench accept --trace-out PATH: record a
//   deterministic end-to-end trace (service spans, retry waits, breaker
//   transitions, batch flushes) and write it as Chrome trace_event JSON —
//   load it in chrome://tracing or Perfetto.  Tracing changes no report
//   byte and no cache fingerprint.
#include <cmath>
#include <filesystem>
#include <iostream>
#include <stdexcept>

#include "util/trace.h"

#include "core/study.h"
#include "data/corpus.h"
#include "data/csv.h"
#include "data/generators.h"
#include "data/split.h"
#include "eval/boundary.h"
#include "eval/journal.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"
#include "platform/serving.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace mlaas;

int cmd_list() {
  TextTable t({"Platform", "FEAT steps", "Classifiers", "Tunable params"});
  for (const auto& name : platform_names()) {
    const ControlSurface s = make_platform(name)->controls();
    std::string classifiers;
    std::size_t n_params = 0;
    for (const auto& spec : s.classifiers) {
      if (!classifiers.empty()) classifiers += ", ";
      classifiers += classifier_abbrev(spec.classifier);
      n_params += spec.params.size();
    }
    t.add_row({name, std::to_string(s.feature_steps.size()),
               classifiers.empty() ? "(automated)" : classifiers,
               std::to_string(n_params)});
  }
  std::cout << t.str();
  std::cout << "\nClassifier registry: ";
  for (const auto& name : classifier_names()) std::cout << name << " ";
  std::cout << "\n";
  return 0;
}

int cmd_train(const CliFlags& flags) {
  const auto csv_path = flags.get("csv");
  if (!csv_path) {
    std::cerr << "train: --csv FILE is required\n";
    return 2;
  }
  CsvOptions csv_options;
  csv_options.label_column = static_cast<int>(flags.int_or("label-column", -1));
  const Dataset dataset = load_csv_file(*csv_path, csv_options);

  const std::string platform_name = flags.get_or("platform", "Local");
  const auto platform = make_platform(platform_name);
  PipelineConfig config;
  config.feature_step = flags.get_or("feat", "");
  config.classifier = flags.get_or("clf", "");
  config.params = parse_params(flags.get_or("params", ""));

  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  const double test_fraction = flags.double_or("test-fraction", 0.3);
  const auto split = train_test_split(dataset, test_fraction, seed);

  const auto model = platform->train(split.train, config, seed);
  const Metrics m = compute_metrics(split.test.y(), model->predict(split.test.x()));

  std::cout << "dataset:   " << *csv_path << " (" << dataset.n_samples() << " x "
            << dataset.n_features() << ")\n"
            << "platform:  " << platform_name << "\n"
            << "config:    " << config.key() << "\n"
            << "train/test: " << split.train.n_samples() << "/" << split.test.n_samples()
            << "\n\n";
  TextTable t({"Metric", "Value"});
  t.add_row({"F-score", fmt(m.f_score)});
  t.add_row({"Accuracy", fmt(m.accuracy)});
  t.add_row({"Precision", fmt(m.precision)});
  t.add_row({"Recall", fmt(m.recall)});
  std::cout << t.str();
  return 0;
}

int cmd_probe(const CliFlags& flags) {
  const std::string platform_name = flags.get_or("platform", "Google");
  const auto platform = make_platform(platform_name);
  const auto seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  for (const bool is_circle : {true, false}) {
    const Dataset probe =
        is_circle ? make_circle_probe(seed) : make_linear_probe(seed);
    const BoundaryMap map = probe_decision_boundary(*platform, probe, seed);
    std::cout << platform_name << " on " << probe.meta().name << ":\n"
              << render_boundary(map, 44) << "linear-fit accuracy "
              << fmt(map.linear_fit_accuracy) << " -> "
              << (boundary_is_linear(map) ? "LINEAR" : "NON-LINEAR") << "\n\n";
  }
  return 0;
}

int cmd_corpus(const CliFlags& flags) {
  const std::string out_dir = flags.get_or("out", "corpus_csv");
  CorpusOptions options;
  options.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  options.n_datasets = static_cast<std::size_t>(flags.int_or("n", 119));
  std::filesystem::create_directories(out_dir);
  const auto corpus = build_corpus(options);
  for (const auto& ds : corpus) {
    save_csv_file(ds, out_dir + "/" + ds.meta().id + ".csv");
  }
  std::cout << "wrote " << corpus.size() << " datasets to " << out_dir << "/\n";
  return 0;
}

int cmd_campaign(const CliFlags& flags) {
  StudyOptions opt;
  opt.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  opt.scale = flags.double_or("scale", 1.0);
  opt.quick = flags.bool_or("quick", false);
  opt.threads = static_cast<int>(flags.int_or("threads", 0));
  if (opt.threads < 0) {
    throw std::invalid_argument("--threads must be >= 0 (0 = hardware concurrency), got " +
                                std::to_string(opt.threads));
  }
  opt.schedule = flags.get_or("schedule", "dynamic");
  if (opt.schedule != "static" && opt.schedule != "dynamic") {
    throw std::invalid_argument("--schedule must be 'static' or 'dynamic', got '" +
                                opt.schedule + "'");
  }
  opt.verbose = flags.bool_or("verbose", false);
  // Parse-time validation, mirroring the --threads fix above: every knob
  // below used to flow unchecked into the campaign, where nonsense values
  // (fault rate above 1, zero retry budget) ran a silently degenerate
  // campaign instead of failing the invocation.
  if (!(opt.scale > 0.0) || !std::isfinite(opt.scale)) {
    throw std::invalid_argument("--scale must be a finite value > 0");
  }
  opt.fault_rate = flags.double_or("fault-rate", 0.0);
  if (!(opt.fault_rate >= 0.0 && opt.fault_rate <= 1.0)) {
    throw std::invalid_argument("--fault-rate must be in [0, 1]");
  }
  opt.quota_profile = flags.get_or("quota-profile", "default");
  opt.retry_budget = static_cast<int>(flags.int_or("retry-budget", 6));
  if (opt.retry_budget < 1) {
    throw std::invalid_argument("--retry-budget must be >= 1, got " +
                                std::to_string(opt.retry_budget));
  }
  opt.chaos_profile = flags.get_or("chaos-profile", "none");
  opt.breakers = flags.bool_or("breakers", false);
  opt.breaker_threshold = static_cast<int>(flags.int_or("breaker-threshold", 3));
  if (opt.breaker_threshold < 1) {
    throw std::invalid_argument("--breaker-threshold must be >= 1, got " +
                                std::to_string(opt.breaker_threshold));
  }
  opt.breaker_cooldown = flags.double_or("breaker-cooldown", 300.0);
  if (!(opt.breaker_cooldown >= 0.0) || !std::isfinite(opt.breaker_cooldown)) {
    throw std::invalid_argument("--breaker-cooldown must be a finite value >= 0");
  }
  opt.breaker_probes = static_cast<int>(flags.int_or("breaker-probes", 2));
  if (opt.breaker_probes < 0) {
    throw std::invalid_argument("--breaker-probes must be >= 0, got " +
                                std::to_string(opt.breaker_probes));
  }
  opt.jitter = flags.bool_or("jitter", false);
  opt.resume = flags.bool_or("resume", true);
  if (flags.bool_or("fresh", false)) opt.resume = false;
  const auto trace_out = flags.get("trace-out");
  opt.trace = trace_out.has_value();

  Study study(opt);
  MeasurementOptions moptions = opt.measurement_options();
  moptions.campaign.journal_path =
      flags.get_or("journal", "mlaas_campaign_seed" + std::to_string(opt.seed) + ".journal");

  // One-line resume summary before the run: how much of the campaign a
  // prior crashed invocation already banked.
  {
    const std::string fingerprint =
        measurement_fingerprint(study.corpus(), study.platforms(), moptions);
    const auto restored =
        moptions.campaign.resume ? CellJournal::load(moptions.campaign.journal_path, fingerprint)
                                 : std::nullopt;
    if (restored && (restored->cells > 0 || restored->discarded > 0)) {
      std::cout << "resuming from " << moptions.campaign.journal_path << ": "
                << restored->cells << " cells restored from " << restored->sessions.size()
                << " completed sessions, " << restored->discarded
                << " partial cells re-run\n";
    } else {
      std::cout << "fresh campaign (journal: " << moptions.campaign.journal_path << ")\n";
    }
  }

  const CampaignResult result = run_campaign(study.corpus(), study.platforms(), moptions);
  CellJournal::remove(moptions.campaign.journal_path);

  TextTable t({"Platform", "Cells ok", "Failed", "Rejected", "Deferred", "Restored",
               "Requests", "Retries", "Rate-limited", "Faults", "Outages", "Trips",
               "Simulated (h)"});
  for (const auto& p : result.report.platforms) {
    t.add_row({p.platform, std::to_string(p.cells_ok), std::to_string(p.cells_failed),
               std::to_string(p.cells_rejected), std::to_string(p.cells_deferred),
               std::to_string(p.cells_restored), std::to_string(p.service.requests),
               std::to_string(p.retries), std::to_string(p.service.rate_limited),
               std::to_string(p.service.transient_errors),
               std::to_string(p.service.unavailable), std::to_string(p.breaker_trips),
               fmt(p.simulated_seconds / 3600.0, 2)});
  }
  const PlatformCampaignStats total = result.report.totals();
  std::cout << t.str() << "\ncoverage: " << fmt(100.0 * result.report.coverage(), 1)
            << "%  (" << total.cells_ok << " ok, " << total.cells_failed << " failed, "
            << total.cells_deferred << " deferred, " << total.cells_rejected
            << " rejected)\n";
  const SchedulerStats& sched = result.report.scheduler;
  std::cout << "scheduler: " << sched.schedule << ", " << sched.workers << " workers, "
            << sched.sessions << " sessions (" << sched.sessions_stolen << " stolen), "
            << "makespan " << fmt(sched.makespan_seconds, 2) << " s, imbalance "
            << fmt(sched.imbalance(), 2) << "x\n";
  if (auto out = flags.get("out")) {
    result.report.save_tsv(*out);
    std::cout << "wrote " << *out << "\n";
  }
  if (auto json = flags.get("json")) {
    result.report.save_json(*json);
    std::cout << "wrote " << *json << "\n";
  }
  if (trace_out && result.trace != nullptr) {
    result.trace->save_json(*trace_out);
    std::cout << "wrote " << *trace_out << " (" << result.trace->event_count()
              << " events on " << result.trace->track_count() << " tracks)\n";
  }
  return 0;
}

int cmd_serve_bench(const CliFlags& flags) {
  std::vector<std::string> roster;
  {
    const std::string csv = flags.get_or("platforms", "");
    std::size_t start = 0;
    while (start < csv.size()) {
      const std::size_t comma = csv.find(',', start);
      const std::size_t end = comma == std::string::npos ? csv.size() : comma;
      if (end > start) roster.push_back(csv.substr(start, end - start));
      start = end + 1;
    }
    if (roster.empty()) roster = platform_names();
  }

  ServingWorkloadOptions options;
  options.seed = static_cast<std::uint64_t>(flags.int_or("seed", 42));
  // Validate raw integer flags before the size_t casts, mirroring the
  // --threads fix: "--batch -1" used to become a ~2^64-row batch cap.
  const long long requests = flags.int_or("requests", 2000);
  if (requests < 0) {
    throw std::invalid_argument("--requests must be >= 0, got " +
                                std::to_string(requests));
  }
  options.requests = static_cast<std::size_t>(requests);
  options.arrival_rate = flags.double_or("rate", 50.0);
  if (!(options.arrival_rate > 0.0) || !std::isfinite(options.arrival_rate)) {
    throw std::invalid_argument("--rate must be a finite value > 0");
  }
  options.closed_loop = flags.bool_or("closed-loop", false);
  const long long clients = flags.int_or("clients", 8);
  if (clients < 1) {
    throw std::invalid_argument("--clients must be >= 1, got " + std::to_string(clients));
  }
  options.clients = static_cast<std::size_t>(clients);
  options.quota_profile = flags.get_or("quota-profile", "default");
  const long long batch = flags.int_or("batch", 64);
  if (batch < 1) {
    throw std::invalid_argument("--batch must be >= 1, got " + std::to_string(batch));
  }
  options.serving.max_batch_rows = static_cast<std::size_t>(batch);
  options.serving.linger_seconds = flags.double_or("linger", 0.05);
  if (!(options.serving.linger_seconds >= 0.0) ||
      !std::isfinite(options.serving.linger_seconds)) {
    throw std::invalid_argument("--linger must be a finite value >= 0");
  }
  const long long cache_capacity = flags.int_or("cache-capacity", 8);
  if (cache_capacity < 1) {
    throw std::invalid_argument("--cache-capacity must be >= 1, got " +
                                std::to_string(cache_capacity));
  }
  options.serving.model_cache_capacity = static_cast<std::size_t>(cache_capacity);
  const long long max_pending = flags.int_or("max-pending", 0);
  if (max_pending < 0) {
    throw std::invalid_argument("--max-pending must be >= 0 (0 = unbounded), got " +
                                std::to_string(max_pending));
  }
  options.serving.max_pending_rows = static_cast<std::size_t>(max_pending);
  options.serving.fault_rate = flags.double_or("fault-rate", 0.0);
  if (!(options.serving.fault_rate >= 0.0 && options.serving.fault_rate <= 1.0)) {
    throw std::invalid_argument("--fault-rate must be in [0, 1]");
  }
  options.serving.chaos_profile = flags.get_or("chaos-profile", "none");
  const double deadline_ms = flags.double_or("deadline-ms", 0.0);
  if (!(deadline_ms >= 0.0) || !std::isfinite(deadline_ms)) {
    throw std::invalid_argument("--deadline-ms must be a finite value >= 0");
  }
  options.serving.deadline_seconds = deadline_ms / 1000.0;
  options.serving.fallback_platform = flags.get_or("fallback", "");
  options.serving.serve_last_known_good = flags.bool_or("last-known-good", false);
  options.serving.breaker.enabled = flags.bool_or("breakers", false);
  options.serving.breaker.failure_threshold =
      static_cast<int>(flags.int_or("breaker-threshold", 3));
  options.serving.breaker.cooldown_seconds = flags.double_or("breaker-cooldown", 300.0);
  options.serving.breaker.max_probes = static_cast<int>(flags.int_or("breaker-probes", 2));
  const auto trace_out = flags.get("trace-out");
  options.serving.trace = trace_out.has_value();
  // Cross-field checks shared with embedders of ServingOptions.
  validate_serving_options(options.serving);
  if (!options.serving.fallback_platform.empty()) {
    // The fallback must be part of the roster the router is built over.
    bool present = false;
    for (const auto& name : roster) present = present || name == options.serving.fallback_platform;
    if (!present) roster.push_back(options.serving.fallback_platform);
  }

  const auto n_tenants = static_cast<std::size_t>(flags.int_or("tenants", 6));
  const auto tenants = make_serving_tenants(n_tenants, roster, options.seed);
  const ServingWorkloadResult result = run_serving_workload(tenants, options);
  const ServingStats& totals = result.report.totals;

  TextTable t({"Tenant", "Requests", "Rows", "Ok", "Failed", "Rejected", "p50 (ms)",
               "p95 (ms)", "p99 (ms)"});
  for (const auto& tenant : result.report.tenants) {
    t.add_row({tenant.tenant, std::to_string(tenant.requests), std::to_string(tenant.rows),
               std::to_string(tenant.ok), std::to_string(tenant.failed),
               std::to_string(tenant.rejected), fmt(tenant.latency.quantile(0.50) * 1e3, 2),
               fmt(tenant.latency.quantile(0.95) * 1e3, 2),
               fmt(tenant.latency.quantile(0.99) * 1e3, 2)});
  }
  std::cout << t.str() << "\nserved " << totals.ok << "/" << totals.requests
            << " requests (" << totals.rows << " rows) in " << fmt(totals.simulated_seconds, 2)
            << " simulated s  ->  " << fmt(totals.throughput_rows_per_sec(), 1)
            << " rows/s\n"
            << "batches: " << totals.batches << " (mean " << fmt(totals.mean_batch_rows(), 2)
            << " rows, occupancy "
            << fmt(100.0 * totals.batch_occupancy(result.report.max_batch_rows), 1)
            << "%; full " << totals.flushed_full << ", linger " << totals.flushed_linger
            << ", forced " << totals.flushed_forced << ")\n"
            << "model cache: " << totals.cache_hits << " hits, " << totals.cache_misses
            << " misses, " << totals.cache_evictions << " evictions ("
            << totals.trainings << " trainings)\n"
            << "service: " << totals.retries << " retries, " << totals.rate_limited
            << " rate-limited, " << fmt(totals.backoff_seconds, 2) << " s backoff\n"
            << "latency: p50 " << fmt(totals.latency.quantile(0.50) * 1e3, 2) << " ms, p95 "
            << fmt(totals.latency.quantile(0.95) * 1e3, 2) << " ms, p99 "
            << fmt(totals.latency.quantile(0.99) * 1e3, 2) << " ms, max "
            << fmt(totals.latency.max_seconds() * 1e3, 2) << " ms\n";
  if (result.report.resilience) {
    std::cout << "resilience: goodput " << fmt(100.0 * totals.goodput(), 1) << "%, "
              << totals.deadline_missed << " deadline misses, " << totals.failovers
              << " failovers, " << totals.degraded_answers << " last-known-good, "
              << totals.degraded_rejected << " degraded rejects, "
              << totals.breaker_trips << " breaker trips (" << totals.breaker_gated
              << " gated), " << totals.refused_sleeps << " refused sleeps\n";
  }
  std::cout << "wall time: " << fmt(result.wall_seconds, 3) << " s\n";

  if (auto out = flags.get("out")) {
    result.report.save_tsv(*out);
    std::cout << "wrote " << *out << "\n";
  }
  if (auto json = flags.get("json")) {
    result.report.save_json(*json);
    std::cout << "wrote " << *json << "\n";
  }
  if (trace_out && result.trace != nullptr) {
    result.trace->save_json(*trace_out);
    std::cout << "wrote " << *trace_out << " (" << result.trace->event_count()
              << " events on " << result.trace->track_count() << " tracks)\n";
  }
  return 0;
}

int usage() {
  std::cerr << "usage: mlaas_cli <list|train|probe|corpus|campaign|serve-bench> [flags]\n"
               "  see the header comment of tools/mlaas_cli.cpp for details\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const CliFlags flags(argc - 1, argv + 1);
    if (command == "list") return cmd_list();
    if (command == "train") return cmd_train(flags);
    if (command == "probe") return cmd_probe(flags);
    if (command == "corpus") return cmd_corpus(flags);
    if (command == "campaign") return cmd_campaign(flags);
    if (command == "serve-bench") return cmd_serve_bench(flags);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "mlaas_cli: " << e.what() << "\n";
    return 1;
  }
}
