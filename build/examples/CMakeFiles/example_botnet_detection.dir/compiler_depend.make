# Empty compiler generated dependencies file for example_botnet_detection.
# This may be replaced when dependencies are built.
