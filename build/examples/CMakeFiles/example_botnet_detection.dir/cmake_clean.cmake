file(REMOVE_RECURSE
  "CMakeFiles/example_botnet_detection.dir/botnet_detection.cpp.o"
  "CMakeFiles/example_botnet_detection.dir/botnet_detection.cpp.o.d"
  "example_botnet_detection"
  "example_botnet_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_botnet_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
