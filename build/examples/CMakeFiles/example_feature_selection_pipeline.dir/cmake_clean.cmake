file(REMOVE_RECURSE
  "CMakeFiles/example_feature_selection_pipeline.dir/feature_selection_pipeline.cpp.o"
  "CMakeFiles/example_feature_selection_pipeline.dir/feature_selection_pipeline.cpp.o.d"
  "example_feature_selection_pipeline"
  "example_feature_selection_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_feature_selection_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
