# Empty compiler generated dependencies file for example_feature_selection_pipeline.
# This may be replaced when dependencies are built.
