# Empty dependencies file for example_blackbox_probe.
# This may be replaced when dependencies are built.
