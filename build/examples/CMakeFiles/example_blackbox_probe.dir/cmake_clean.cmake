file(REMOVE_RECURSE
  "CMakeFiles/example_blackbox_probe.dir/blackbox_probe.cpp.o"
  "CMakeFiles/example_blackbox_probe.dir/blackbox_probe.cpp.o.d"
  "example_blackbox_probe"
  "example_blackbox_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_blackbox_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
