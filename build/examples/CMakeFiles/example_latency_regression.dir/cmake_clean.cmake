file(REMOVE_RECURSE
  "CMakeFiles/example_latency_regression.dir/latency_regression.cpp.o"
  "CMakeFiles/example_latency_regression.dir/latency_regression.cpp.o.d"
  "example_latency_regression"
  "example_latency_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_latency_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
