# Empty dependencies file for example_latency_regression.
# This may be replaced when dependencies are built.
