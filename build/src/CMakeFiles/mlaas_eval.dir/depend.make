# Empty dependencies file for mlaas_eval.
# This may be replaced when dependencies are built.
