file(REMOVE_RECURSE
  "libmlaas_eval.a"
)
