
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/aggregate.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/aggregate.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/aggregate.cpp.o.d"
  "/root/repo/src/eval/attribution.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/attribution.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/attribution.cpp.o.d"
  "/root/repo/src/eval/auto_tune.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/auto_tune.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/auto_tune.cpp.o.d"
  "/root/repo/src/eval/boundary.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/boundary.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/boundary.cpp.o.d"
  "/root/repo/src/eval/family.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/family.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/family.cpp.o.d"
  "/root/repo/src/eval/family_predictor.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/family_predictor.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/family_predictor.cpp.o.d"
  "/root/repo/src/eval/friedman.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/friedman.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/friedman.cpp.o.d"
  "/root/repo/src/eval/measurement.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/measurement.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/measurement.cpp.o.d"
  "/root/repo/src/eval/naive_strategy.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/naive_strategy.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/naive_strategy.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/significance.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/significance.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/significance.cpp.o.d"
  "/root/repo/src/eval/subset_analysis.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/subset_analysis.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/subset_analysis.cpp.o.d"
  "/root/repo/src/eval/variation.cpp" "src/CMakeFiles/mlaas_eval.dir/eval/variation.cpp.o" "gcc" "src/CMakeFiles/mlaas_eval.dir/eval/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
