file(REMOVE_RECURSE
  "CMakeFiles/mlaas_eval.dir/eval/aggregate.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/aggregate.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/attribution.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/attribution.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/auto_tune.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/auto_tune.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/boundary.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/boundary.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/family.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/family.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/family_predictor.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/family_predictor.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/friedman.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/friedman.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/measurement.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/measurement.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/naive_strategy.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/naive_strategy.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/report.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/report.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/significance.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/significance.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/subset_analysis.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/subset_analysis.cpp.o.d"
  "CMakeFiles/mlaas_eval.dir/eval/variation.cpp.o"
  "CMakeFiles/mlaas_eval.dir/eval/variation.cpp.o.d"
  "libmlaas_eval.a"
  "libmlaas_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
