
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bayes/naive_bayes.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/bayes/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/bayes/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/classifier.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/classifier.cpp.o.d"
  "/root/repo/src/ml/feature/filters.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/feature/filters.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/feature/filters.cpp.o.d"
  "/root/repo/src/ml/feature/scalers.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/feature/scalers.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/feature/scalers.cpp.o.d"
  "/root/repo/src/ml/kernel/rbf_svm.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/kernel/rbf_svm.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/kernel/rbf_svm.cpp.o.d"
  "/root/repo/src/ml/linear/averaged_perceptron.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/linear/averaged_perceptron.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/linear/averaged_perceptron.cpp.o.d"
  "/root/repo/src/ml/linear/bayes_point_machine.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/linear/bayes_point_machine.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/linear/bayes_point_machine.cpp.o.d"
  "/root/repo/src/ml/linear/lda.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/linear/lda.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/linear/lda.cpp.o.d"
  "/root/repo/src/ml/linear/linear_svm.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/linear/linear_svm.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/linear/linear_svm.cpp.o.d"
  "/root/repo/src/ml/linear/logistic_regression.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/linear/logistic_regression.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/linear/logistic_regression.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/model_selection/cross_validation.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/cross_validation.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/cross_validation.cpp.o.d"
  "/root/repo/src/ml/model_selection/grid_search.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/grid_search.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/grid_search.cpp.o.d"
  "/root/repo/src/ml/model_selection/param_grid.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/param_grid.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/model_selection/param_grid.cpp.o.d"
  "/root/repo/src/ml/neighbors/knn.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/neighbors/knn.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/neighbors/knn.cpp.o.d"
  "/root/repo/src/ml/neural/mlp.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/neural/mlp.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/neural/mlp.cpp.o.d"
  "/root/repo/src/ml/params.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/params.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/params.cpp.o.d"
  "/root/repo/src/ml/ranking_metrics.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/ranking_metrics.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/ranking_metrics.cpp.o.d"
  "/root/repo/src/ml/registry.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/registry.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/registry.cpp.o.d"
  "/root/repo/src/ml/regression/knn_regressor.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/regression/knn_regressor.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/regression/knn_regressor.cpp.o.d"
  "/root/repo/src/ml/regression/linear_regression.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/regression/linear_regression.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/regression/linear_regression.cpp.o.d"
  "/root/repo/src/ml/regression/registry.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/regression/registry.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/regression/registry.cpp.o.d"
  "/root/repo/src/ml/regression/regression_metrics.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/regression/regression_metrics.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/regression/regression_metrics.cpp.o.d"
  "/root/repo/src/ml/regression/tree_regressors.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/regression/tree_regressors.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/regression/tree_regressors.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/serialize.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/serialize.cpp.o.d"
  "/root/repo/src/ml/tree/bagging.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/bagging.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/bagging.cpp.o.d"
  "/root/repo/src/ml/tree/boosted_trees.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/boosted_trees.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/boosted_trees.cpp.o.d"
  "/root/repo/src/ml/tree/decision_jungle.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/decision_jungle.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/decision_jungle.cpp.o.d"
  "/root/repo/src/ml/tree/decision_tree.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/decision_tree.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/decision_tree.cpp.o.d"
  "/root/repo/src/ml/tree/random_forest.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/random_forest.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/random_forest.cpp.o.d"
  "/root/repo/src/ml/tree/tree_model.cpp" "src/CMakeFiles/mlaas_ml.dir/ml/tree/tree_model.cpp.o" "gcc" "src/CMakeFiles/mlaas_ml.dir/ml/tree/tree_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
