file(REMOVE_RECURSE
  "libmlaas_ml.a"
)
