# Empty compiler generated dependencies file for mlaas_ml.
# This may be replaced when dependencies are built.
