file(REMOVE_RECURSE
  "libmlaas_platform.a"
)
