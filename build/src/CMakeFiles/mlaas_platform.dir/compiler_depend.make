# Empty compiler generated dependencies file for mlaas_platform.
# This may be replaced when dependencies are built.
