
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/abm.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/abm.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/abm.cpp.o.d"
  "/root/repo/src/platform/all_platforms.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/all_platforms.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/all_platforms.cpp.o.d"
  "/root/repo/src/platform/amazon_ml.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/amazon_ml.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/amazon_ml.cpp.o.d"
  "/root/repo/src/platform/auto_select.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/auto_select.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/auto_select.cpp.o.d"
  "/root/repo/src/platform/bigml.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/bigml.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/bigml.cpp.o.d"
  "/root/repo/src/platform/google_prediction.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/google_prediction.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/google_prediction.cpp.o.d"
  "/root/repo/src/platform/local_sklearn.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/local_sklearn.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/local_sklearn.cpp.o.d"
  "/root/repo/src/platform/microsoft_azure.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/microsoft_azure.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/microsoft_azure.cpp.o.d"
  "/root/repo/src/platform/platform.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/platform.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/platform.cpp.o.d"
  "/root/repo/src/platform/predictionio.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/predictionio.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/predictionio.cpp.o.d"
  "/root/repo/src/platform/service.cpp" "src/CMakeFiles/mlaas_platform.dir/platform/service.cpp.o" "gcc" "src/CMakeFiles/mlaas_platform.dir/platform/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
