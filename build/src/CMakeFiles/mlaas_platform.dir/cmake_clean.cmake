file(REMOVE_RECURSE
  "CMakeFiles/mlaas_platform.dir/platform/abm.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/abm.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/all_platforms.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/all_platforms.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/amazon_ml.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/amazon_ml.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/auto_select.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/auto_select.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/bigml.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/bigml.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/google_prediction.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/google_prediction.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/local_sklearn.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/local_sklearn.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/microsoft_azure.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/microsoft_azure.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/platform.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/platform.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/predictionio.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/predictionio.cpp.o.d"
  "CMakeFiles/mlaas_platform.dir/platform/service.cpp.o"
  "CMakeFiles/mlaas_platform.dir/platform/service.cpp.o.d"
  "libmlaas_platform.a"
  "libmlaas_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
