# Empty compiler generated dependencies file for mlaas_util.
# This may be replaced when dependencies are built.
