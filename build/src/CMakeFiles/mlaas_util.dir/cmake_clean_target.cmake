file(REMOVE_RECURSE
  "libmlaas_util.a"
)
