file(REMOVE_RECURSE
  "CMakeFiles/mlaas_util.dir/util/cli.cpp.o"
  "CMakeFiles/mlaas_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/mlaas_util.dir/util/rng.cpp.o"
  "CMakeFiles/mlaas_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/mlaas_util.dir/util/table.cpp.o"
  "CMakeFiles/mlaas_util.dir/util/table.cpp.o.d"
  "CMakeFiles/mlaas_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/mlaas_util.dir/util/thread_pool.cpp.o.d"
  "libmlaas_util.a"
  "libmlaas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
