# Empty compiler generated dependencies file for mlaas_linalg.
# This may be replaced when dependencies are built.
