file(REMOVE_RECURSE
  "libmlaas_linalg.a"
)
