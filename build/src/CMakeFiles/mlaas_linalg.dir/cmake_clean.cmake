file(REMOVE_RECURSE
  "CMakeFiles/mlaas_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/mlaas_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/mlaas_linalg.dir/linalg/stats.cpp.o"
  "CMakeFiles/mlaas_linalg.dir/linalg/stats.cpp.o.d"
  "CMakeFiles/mlaas_linalg.dir/linalg/vector_ops.cpp.o"
  "CMakeFiles/mlaas_linalg.dir/linalg/vector_ops.cpp.o.d"
  "libmlaas_linalg.a"
  "libmlaas_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
