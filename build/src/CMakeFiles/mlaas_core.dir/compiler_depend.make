# Empty compiler generated dependencies file for mlaas_core.
# This may be replaced when dependencies are built.
