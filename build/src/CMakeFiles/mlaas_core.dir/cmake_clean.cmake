file(REMOVE_RECURSE
  "CMakeFiles/mlaas_core.dir/core/study.cpp.o"
  "CMakeFiles/mlaas_core.dir/core/study.cpp.o.d"
  "libmlaas_core.a"
  "libmlaas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
