file(REMOVE_RECURSE
  "libmlaas_core.a"
)
