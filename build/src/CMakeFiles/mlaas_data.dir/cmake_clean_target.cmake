file(REMOVE_RECURSE
  "libmlaas_data.a"
)
