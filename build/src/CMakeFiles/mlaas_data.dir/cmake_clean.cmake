file(REMOVE_RECURSE
  "CMakeFiles/mlaas_data.dir/data/complexity.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/complexity.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/corpus.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/corpus.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/csv.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/csv.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/dataset.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/generators.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/generators.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/preprocess.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/preprocess.cpp.o.d"
  "CMakeFiles/mlaas_data.dir/data/split.cpp.o"
  "CMakeFiles/mlaas_data.dir/data/split.cpp.o.d"
  "libmlaas_data.a"
  "libmlaas_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
