
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/complexity.cpp" "src/CMakeFiles/mlaas_data.dir/data/complexity.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/complexity.cpp.o.d"
  "/root/repo/src/data/corpus.cpp" "src/CMakeFiles/mlaas_data.dir/data/corpus.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/corpus.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/mlaas_data.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/mlaas_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/mlaas_data.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/preprocess.cpp" "src/CMakeFiles/mlaas_data.dir/data/preprocess.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/preprocess.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/CMakeFiles/mlaas_data.dir/data/split.cpp.o" "gcc" "src/CMakeFiles/mlaas_data.dir/data/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
