# Empty dependencies file for mlaas_data.
# This may be replaced when dependencies are built.
