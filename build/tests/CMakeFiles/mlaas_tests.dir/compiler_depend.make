# Empty compiler generated dependencies file for mlaas_tests.
# This may be replaced when dependencies are built.
