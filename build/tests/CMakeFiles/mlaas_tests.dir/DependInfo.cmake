
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_study.cpp" "tests/CMakeFiles/mlaas_tests.dir/core/test_study.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/core/test_study.cpp.o.d"
  "/root/repo/tests/data/test_complexity.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_complexity.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_complexity.cpp.o.d"
  "/root/repo/tests/data/test_corpus.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_corpus.cpp.o.d"
  "/root/repo/tests/data/test_csv.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_csv.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_csv.cpp.o.d"
  "/root/repo/tests/data/test_csv_property.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_csv_property.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_csv_property.cpp.o.d"
  "/root/repo/tests/data/test_dataset.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_dataset.cpp.o.d"
  "/root/repo/tests/data/test_generators.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_generators.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_generators.cpp.o.d"
  "/root/repo/tests/data/test_preprocess.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_preprocess.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_preprocess.cpp.o.d"
  "/root/repo/tests/data/test_split.cpp" "tests/CMakeFiles/mlaas_tests.dir/data/test_split.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/data/test_split.cpp.o.d"
  "/root/repo/tests/eval/test_aggregate.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_aggregate.cpp.o.d"
  "/root/repo/tests/eval/test_attribution.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_attribution.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_attribution.cpp.o.d"
  "/root/repo/tests/eval/test_auto_tune.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_auto_tune.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_auto_tune.cpp.o.d"
  "/root/repo/tests/eval/test_boundary.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_boundary.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_boundary.cpp.o.d"
  "/root/repo/tests/eval/test_family.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_family.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_family.cpp.o.d"
  "/root/repo/tests/eval/test_friedman.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_friedman.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_friedman.cpp.o.d"
  "/root/repo/tests/eval/test_measurement.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_measurement.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_measurement.cpp.o.d"
  "/root/repo/tests/eval/test_naive.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_naive.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_naive.cpp.o.d"
  "/root/repo/tests/eval/test_report.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_report.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_report.cpp.o.d"
  "/root/repo/tests/eval/test_significance.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_significance.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_significance.cpp.o.d"
  "/root/repo/tests/eval/test_subset.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_subset.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_subset.cpp.o.d"
  "/root/repo/tests/eval/test_variation.cpp" "tests/CMakeFiles/mlaas_tests.dir/eval/test_variation.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/eval/test_variation.cpp.o.d"
  "/root/repo/tests/linalg/test_matrix.cpp" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_matrix.cpp.o.d"
  "/root/repo/tests/linalg/test_stats.cpp" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_stats.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_stats.cpp.o.d"
  "/root/repo/tests/linalg/test_vector_ops.cpp" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_vector_ops.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/linalg/test_vector_ops.cpp.o.d"
  "/root/repo/tests/ml/test_classifier_properties.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_classifier_properties.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_classifier_properties.cpp.o.d"
  "/root/repo/tests/ml/test_filters.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_filters.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_filters.cpp.o.d"
  "/root/repo/tests/ml/test_linear_classifiers.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_linear_classifiers.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_linear_classifiers.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_model_selection.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_model_selection.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_model_selection.cpp.o.d"
  "/root/repo/tests/ml/test_other_classifiers.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_other_classifiers.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_other_classifiers.cpp.o.d"
  "/root/repo/tests/ml/test_param_grid.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_param_grid.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_param_grid.cpp.o.d"
  "/root/repo/tests/ml/test_params.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_params.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_params.cpp.o.d"
  "/root/repo/tests/ml/test_parse_params.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_parse_params.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_parse_params.cpp.o.d"
  "/root/repo/tests/ml/test_ranking_metrics.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_ranking_metrics.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_ranking_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_regression.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_regression.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_regression.cpp.o.d"
  "/root/repo/tests/ml/test_scaler_properties.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_scaler_properties.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_scaler_properties.cpp.o.d"
  "/root/repo/tests/ml/test_scalers.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_scalers.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_scalers.cpp.o.d"
  "/root/repo/tests/ml/test_serialize.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_serialize.cpp.o.d"
  "/root/repo/tests/ml/test_tree_classifiers.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_classifiers.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_classifiers.cpp.o.d"
  "/root/repo/tests/ml/test_tree_invariants.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_invariants.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_invariants.cpp.o.d"
  "/root/repo/tests/ml/test_tree_model.cpp" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_model.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/ml/test_tree_model.cpp.o.d"
  "/root/repo/tests/platform/test_amazon.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_amazon.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_amazon.cpp.o.d"
  "/root/repo/tests/platform/test_auto_select.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_auto_select.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_auto_select.cpp.o.d"
  "/root/repo/tests/platform/test_blackbox.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_blackbox.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_blackbox.cpp.o.d"
  "/root/repo/tests/platform/test_pipeline_integration.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_pipeline_integration.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_pipeline_integration.cpp.o.d"
  "/root/repo/tests/platform/test_platforms.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_platforms.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_platforms.cpp.o.d"
  "/root/repo/tests/platform/test_service.cpp" "tests/CMakeFiles/mlaas_tests.dir/platform/test_service.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/platform/test_service.cpp.o.d"
  "/root/repo/tests/util/test_cli.cpp" "tests/CMakeFiles/mlaas_tests.dir/util/test_cli.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/util/test_cli.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/mlaas_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/mlaas_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/mlaas_tests.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/mlaas_tests.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
