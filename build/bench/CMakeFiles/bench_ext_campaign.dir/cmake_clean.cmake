file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_campaign.dir/bench_ext_campaign.cpp.o"
  "CMakeFiles/bench_ext_campaign.dir/bench_ext_campaign.cpp.o.d"
  "bench_ext_campaign"
  "bench_ext_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
