# Empty compiler generated dependencies file for bench_fig9_13_boundaries.
# This may be replaced when dependencies are built.
