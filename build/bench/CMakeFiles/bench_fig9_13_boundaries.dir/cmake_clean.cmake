file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_13_boundaries.dir/bench_fig9_13_boundaries.cpp.o"
  "CMakeFiles/bench_fig9_13_boundaries.dir/bench_fig9_13_boundaries.cpp.o.d"
  "bench_fig9_13_boundaries"
  "bench_fig9_13_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_13_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
