file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_complexity.dir/bench_ext_complexity.cpp.o"
  "CMakeFiles/bench_ext_complexity.dir/bench_ext_complexity.cpp.o.d"
  "bench_ext_complexity"
  "bench_ext_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
