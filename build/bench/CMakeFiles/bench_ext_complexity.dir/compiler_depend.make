# Empty compiler generated dependencies file for bench_ext_complexity.
# This may be replaced when dependencies are built.
