file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fig14_naive.dir/bench_table6_fig14_naive.cpp.o"
  "CMakeFiles/bench_table6_fig14_naive.dir/bench_table6_fig14_naive.cpp.o.d"
  "bench_table6_fig14_naive"
  "bench_table6_fig14_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fig14_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
