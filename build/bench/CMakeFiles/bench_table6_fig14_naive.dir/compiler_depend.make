# Empty compiler generated dependencies file for bench_table6_fig14_naive.
# This may be replaced when dependencies are built.
