# Empty compiler generated dependencies file for bench_fig7_variation_controls.
# This may be replaced when dependencies are built.
