file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_variation_controls.dir/bench_fig7_variation_controls.cpp.o"
  "CMakeFiles/bench_fig7_variation_controls.dir/bench_fig7_variation_controls.cpp.o.d"
  "bench_fig7_variation_controls"
  "bench_fig7_variation_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_variation_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
