# Empty dependencies file for bench_ext_label_noise.
# This may be replaced when dependencies are built.
