file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_label_noise.dir/bench_ext_label_noise.cpp.o"
  "CMakeFiles/bench_ext_label_noise.dir/bench_ext_label_noise.cpp.o.d"
  "bench_ext_label_noise"
  "bench_ext_label_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_label_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
