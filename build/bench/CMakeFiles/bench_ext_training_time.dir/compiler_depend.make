# Empty compiler generated dependencies file for bench_ext_training_time.
# This may be replaced when dependencies are built.
