file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_blackbox_choices.dir/bench_sec62_blackbox_choices.cpp.o"
  "CMakeFiles/bench_sec62_blackbox_choices.dir/bench_sec62_blackbox_choices.cpp.o.d"
  "bench_sec62_blackbox_choices"
  "bench_sec62_blackbox_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_blackbox_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
