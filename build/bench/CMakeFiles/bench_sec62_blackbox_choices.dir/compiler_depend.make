# Empty compiler generated dependencies file for bench_sec62_blackbox_choices.
# This may be replaced when dependencies are built.
