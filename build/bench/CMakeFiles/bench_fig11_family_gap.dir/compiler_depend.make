# Empty compiler generated dependencies file for bench_fig11_family_gap.
# This may be replaced when dependencies are built.
