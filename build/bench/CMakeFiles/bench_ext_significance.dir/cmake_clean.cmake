file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_significance.dir/bench_ext_significance.cpp.o"
  "CMakeFiles/bench_ext_significance.dir/bench_ext_significance.cpp.o.d"
  "bench_ext_significance"
  "bench_ext_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
