file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_predictor.dir/bench_fig12_predictor.cpp.o"
  "CMakeFiles/bench_fig12_predictor.dir/bench_fig12_predictor.cpp.o.d"
  "bench_fig12_predictor"
  "bench_fig12_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
