
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig12_predictor.cpp" "bench/CMakeFiles/bench_fig12_predictor.dir/bench_fig12_predictor.cpp.o" "gcc" "bench/CMakeFiles/bench_fig12_predictor.dir/bench_fig12_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mlaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
