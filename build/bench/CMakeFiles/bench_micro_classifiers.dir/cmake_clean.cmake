file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_classifiers.dir/bench_micro_classifiers.cpp.o"
  "CMakeFiles/bench_micro_classifiers.dir/bench_micro_classifiers.cpp.o.d"
  "bench_micro_classifiers"
  "bench_micro_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
