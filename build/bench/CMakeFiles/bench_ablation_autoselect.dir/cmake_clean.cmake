file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_autoselect.dir/bench_ablation_autoselect.cpp.o"
  "CMakeFiles/bench_ablation_autoselect.dir/bench_ablation_autoselect.cpp.o.d"
  "bench_ablation_autoselect"
  "bench_ablation_autoselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_autoselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
