file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_controls.dir/bench_table1_controls.cpp.o"
  "CMakeFiles/bench_table1_controls.dir/bench_table1_controls.cpp.o.d"
  "bench_table1_controls"
  "bench_table1_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
