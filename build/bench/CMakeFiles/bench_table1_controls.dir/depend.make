# Empty dependencies file for bench_table1_controls.
# This may be replaced when dependencies are built.
