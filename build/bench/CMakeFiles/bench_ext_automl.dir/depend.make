# Empty dependencies file for bench_ext_automl.
# This may be replaced when dependencies are built.
