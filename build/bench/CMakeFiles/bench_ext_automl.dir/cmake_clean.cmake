file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_automl.dir/bench_ext_automl.cpp.o"
  "CMakeFiles/bench_ext_automl.dir/bench_ext_automl.cpp.o.d"
  "bench_ext_automl"
  "bench_ext_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
