file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_corpus.dir/bench_fig3_corpus.cpp.o"
  "CMakeFiles/bench_fig3_corpus.dir/bench_fig3_corpus.cpp.o.d"
  "bench_fig3_corpus"
  "bench_fig3_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
