file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_controls.dir/bench_fig5_controls.cpp.o"
  "CMakeFiles/bench_fig5_controls.dir/bench_fig5_controls.cpp.o.d"
  "bench_fig5_controls"
  "bench_fig5_controls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_controls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
