file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_subset.dir/bench_fig8_subset.cpp.o"
  "CMakeFiles/bench_fig8_subset.dir/bench_fig8_subset.cpp.o.d"
  "bench_fig8_subset"
  "bench_fig8_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
