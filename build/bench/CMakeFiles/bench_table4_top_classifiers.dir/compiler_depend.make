# Empty compiler generated dependencies file for bench_table4_top_classifiers.
# This may be replaced when dependencies are built.
