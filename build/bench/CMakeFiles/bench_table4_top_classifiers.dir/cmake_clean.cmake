file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_top_classifiers.dir/bench_table4_top_classifiers.cpp.o"
  "CMakeFiles/bench_table4_top_classifiers.dir/bench_table4_top_classifiers.cpp.o.d"
  "bench_table4_top_classifiers"
  "bench_table4_top_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_top_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
