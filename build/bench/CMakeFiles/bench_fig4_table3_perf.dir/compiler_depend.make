# Empty compiler generated dependencies file for bench_fig4_table3_perf.
# This may be replaced when dependencies are built.
