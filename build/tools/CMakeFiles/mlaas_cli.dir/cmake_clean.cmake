file(REMOVE_RECURSE
  "CMakeFiles/mlaas_cli.dir/mlaas_cli.cpp.o"
  "CMakeFiles/mlaas_cli.dir/mlaas_cli.cpp.o.d"
  "mlaas_cli"
  "mlaas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlaas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
