# Empty dependencies file for mlaas_cli.
# This may be replaced when dependencies are built.
