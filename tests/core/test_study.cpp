// End-to-end integration of the Study API on a tiny quick-mode corpus.
// This exercises the full pipeline: corpus -> platforms -> measurements ->
// every experiment aggregation.
#include "core/study.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace mlaas {
namespace {

StudyOptions tiny_options(const std::string& tag) {
  StudyOptions opt;
  opt.seed = 7;
  opt.quick = true;
  opt.verbose = false;
  opt.threads = 2;
  // The cache is intentionally kept between test processes: the measurement
  // table is deterministic in (seed, options), so the first test computes it
  // and every later ctest invocation loads it.
  opt.cache_path_override = ::testing::TempDir() + "/study_cache_" + tag + ".tsv";
  return opt;
}

class StudyIntegration : public ::testing::Test {
 protected:
  static Study& study() {
    static Study instance(tiny_options("shared"));
    return instance;
  }
};

TEST_F(StudyIntegration, CorpusAndPlatformsBuilt) {
  EXPECT_EQ(study().corpus().size(), 24u);
  EXPECT_EQ(study().platforms().size(), 7u);
  EXPECT_EQ(study().platform_order().size(), 7u);
}

TEST_F(StudyIntegration, MeasurementsCoverEverything) {
  const auto& table = study().measurements();
  EXPECT_EQ(table.platforms().size(), 7u);
  EXPECT_EQ(table.dataset_ids().size(), 24u);
  EXPECT_GT(table.size(), 24u * 7u);
}

TEST_F(StudyIntegration, BaselineAndOptimizedSummaries) {
  const auto base = study().baseline();
  const auto opt = study().optimized();
  EXPECT_EQ(base.size(), 7u);
  EXPECT_EQ(opt.size(), 7u);
  // Optimized >= baseline for every platform.
  for (const auto& o : opt) {
    for (const auto& b : base) {
      if (o.platform == b.platform) {
        EXPECT_GE(o.avg.f_score, b.avg.f_score - 1e-9) << o.platform;
      }
    }
  }
}

TEST_F(StudyIntegration, HighComplexityPlatformsWinOptimized) {
  // The paper's core finding (Fig 4): Microsoft/Local dominate the
  // optimized comparison; black boxes sit at the bottom.
  const auto opt = study().optimized();
  double local_f = 0, microsoft_f = 0, google_f = 0, abm_f = 0;
  for (const auto& s : opt) {
    if (s.platform == "Local") local_f = s.avg.f_score;
    if (s.platform == "Microsoft") microsoft_f = s.avg.f_score;
    if (s.platform == "Google") google_f = s.avg.f_score;
    if (s.platform == "ABM") abm_f = s.avg.f_score;
  }
  EXPECT_GT(local_f, google_f);
  EXPECT_GT(local_f, abm_f);
  EXPECT_GT(microsoft_f, google_f);
}

TEST_F(StudyIntegration, ControlImprovementsNonNegativeAndClfLargest) {
  const auto improvements = study().control_improvements_fig5();
  EXPECT_EQ(improvements.size(), 15u);  // 5 platforms x 3 dimensions
  double clf_total = 0, feat_total = 0, para_total = 0;
  for (const auto& ci : improvements) {
    if (!ci.supported) continue;
    EXPECT_GE(ci.relative_improvement, -1e-9);
    if (ci.dimension == ControlDimension::kClf) clf_total += ci.relative_improvement;
    if (ci.dimension == ControlDimension::kFeat) feat_total += ci.relative_improvement;
    if (ci.dimension == ControlDimension::kPara) para_total += ci.relative_improvement;
  }
  EXPECT_GT(clf_total, para_total);  // §4.2 headline
}

TEST_F(StudyIntegration, VariationSummaries) {
  const auto fig6 = study().variation_fig6();
  EXPECT_EQ(fig6.size(), 7u);
  // Black boxes have a single config -> zero range; Local has the most.
  double google_range = 1, local_range = 0;
  for (const auto& v : fig6) {
    if (v.platform == "Google") google_range = v.range();
    if (v.platform == "Local") local_range = v.range();
  }
  EXPECT_NEAR(google_range, 0.0, 1e-12);
  EXPECT_GT(local_range, 0.02);
}

TEST_F(StudyIntegration, SubsetCurvesMonotone) {
  for (const auto& curve : study().subset_curves()) {
    for (std::size_t i = 1; i < curve.points.size(); ++i) {
      EXPECT_GE(curve.points[i].expected_best_f,
                curve.points[i - 1].expected_best_f - 1e-9)
          << curve.platform;
    }
  }
}

TEST_F(StudyIntegration, Table4SharesSumToOne) {
  for (const bool optimized : {false, true}) {
    const auto shares = study().table4("Local", optimized);
    double total = 0;
    for (const auto& [clf, share] : shares) total += share;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(StudyIntegration, NaiveStrategyRuns) {
  const auto naive = study().naive_strategy();
  EXPECT_EQ(naive.size(), 24u);
  for (const auto& r : naive) {
    EXPECT_GE(r.naive_f, std::max(r.lr_f, r.dt_f) - 1e-12);
  }
}

TEST(StudyOptionsTest, QuickModeShrinksCorpus) {
  StudyOptions opt;
  opt.quick = true;
  EXPECT_EQ(opt.corpus_options().n_datasets, 24u);
  EXPECT_LT(opt.corpus_options().max_samples, 1000u);
  EXPECT_NE(opt.cache_path().find("quick_"), std::string::npos);
}

TEST(StudyOptionsTest, CachePathEncodesSeedAndScale) {
  StudyOptions opt;
  opt.seed = 9;
  opt.scale = 2.0;
  EXPECT_NE(opt.cache_path().find("seed9"), std::string::npos);
  EXPECT_NE(opt.cache_path().find("scale2"), std::string::npos);
}

}  // namespace
}  // namespace mlaas
