// The write-ahead cell journal: round-trips, fingerprint gating, reset
// markers, torn tails, and end-to-end crash-resume equivalence.
#include "eval/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "data/generators.h"
#include "eval/measurement.h"

namespace mlaas {
namespace {

MeasurementOptions fast_options() {
  MeasurementOptions opt;
  opt.seed = 42;
  opt.max_para_configs = 4;
  opt.joint_sample = 5;
  opt.threads = 2;
  return opt;
}

std::vector<Dataset> tiny_corpus() {
  std::vector<Dataset> corpus;
  corpus.push_back(make_blobs(80, 3, 1.0, 5.0, 1));
  corpus.back().meta().id = "blob-0";
  corpus.push_back(make_circles(80, 0.08, 0.5, 2));
  corpus.back().meta().id = "circle-0";
  return corpus;
}

std::vector<PlatformPtr> small_roster() {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  platforms.push_back(make_platform("Amazon"));
  return platforms;
}

Measurement make_row(const std::string& dataset, const std::string& platform,
                     const std::string& clf, double f_score) {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = "none";
  m.classifier = clf;
  m.test.f_score = f_score;
  m.label_signature = "0110";
  return m;
}

// Rows must match field-for-field except train_seconds, which is real
// wall-clock and differs even between two uninterrupted runs.
void expect_rows_equal(const Measurement& a, const Measurement& b) {
  EXPECT_EQ(a.dataset_id, b.dataset_id);
  EXPECT_EQ(a.platform, b.platform);
  EXPECT_EQ(a.feature_step, b.feature_step);
  EXPECT_EQ(a.classifier, b.classifier);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.default_params, b.default_params);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.label_signature, b.label_signature);
  EXPECT_DOUBLE_EQ(a.test.f_score, b.test.f_score);
  EXPECT_DOUBLE_EQ(a.test.accuracy, b.test.accuracy);
  EXPECT_DOUBLE_EQ(a.test.precision, b.test.precision);
  EXPECT_DOUBLE_EQ(a.test.recall, b.test.recall);
}

TEST(CellJournal, RoundTripsCompletedSessions) {
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.journal";
  std::remove(path.c_str());
  {
    CellJournal journal(path, "fp-v1", /*truncate=*/true);
    journal.append_session_reset("d1", "Google");
    journal.append_cell(make_row("d1", "Google", "knn", 0.91));
    journal.append_cell(make_row("d1", "Google", "mlp", 0.87));
    journal.append_session_done("d1", "Google");
    // Second session never finishes: rows must be discarded on load.
    journal.append_session_reset("d2", "Google");
    journal.append_cell(make_row("d2", "Google", "knn", 0.5));
    EXPECT_EQ(journal.cells_journaled(), 3u);
  }
  const auto restored = CellJournal::load(path, "fp-v1");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cells, 2u);
  EXPECT_EQ(restored->discarded, 1u);
  ASSERT_EQ(restored->sessions.size(), 1u);
  const auto& rows = restored->sessions.at(CellJournal::session_key("d1", "Google"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].classifier, "knn");
  EXPECT_DOUBLE_EQ(rows[0].test.f_score, 0.91);
  EXPECT_EQ(rows[1].classifier, "mlp");
  std::remove(path.c_str());
}

TEST(CellJournal, FingerprintMismatchRefusesToLoad) {
  const std::string path = ::testing::TempDir() + "/journal_fp.journal";
  {
    CellJournal journal(path, "fp-old", /*truncate=*/true);
    journal.append_cell(make_row("d1", "Google", "knn", 0.9));
    journal.append_session_done("d1", "Google");
  }
  EXPECT_FALSE(CellJournal::load(path, "fp-new").has_value());
  EXPECT_TRUE(CellJournal::load(path, "fp-old").has_value());
  EXPECT_FALSE(CellJournal::load(path + ".missing", "fp-old").has_value());
  std::remove(path.c_str());
}

TEST(CellJournal, ResetMarkerInvalidatesEarlierRows) {
  const std::string path = ::testing::TempDir() + "/journal_reset.journal";
  {
    CellJournal journal(path, "fp", /*truncate=*/true);
    // A completed session from a crashed run...
    journal.append_cell(make_row("d1", "Google", "knn", 0.9));
    journal.append_session_done("d1", "Google");
    // ...re-run live later (e.g. after --fresh was forced mid-way): the
    // reset marker must drop the stale rows so nothing is double-counted.
    journal.append_session_reset("d1", "Google");
    journal.append_cell(make_row("d1", "Google", "knn", 0.95));
    journal.append_session_done("d1", "Google");
  }
  const auto restored = CellJournal::load(path, "fp");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cells, 1u);
  EXPECT_EQ(restored->discarded, 1u);
  const auto& rows = restored->sessions.at(CellJournal::session_key("d1", "Google"));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].test.f_score, 0.95);
  std::remove(path.c_str());
}

TEST(CellJournal, TornTailIsDiscardedNotFatal) {
  const std::string path = ::testing::TempDir() + "/journal_torn.journal";
  {
    CellJournal journal(path, "fp", /*truncate=*/true);
    journal.append_cell(make_row("d1", "Google", "knn", 0.9));
    journal.append_session_done("d1", "Google");
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "d2\tGoogle\ttrunc";  // the torn tail of a crashed append
  }
  const auto restored = CellJournal::load(path, "fp");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->cells, 1u);
  std::remove(path.c_str());
}

TEST(CellJournal, CrashedCampaignResumesBitIdentically) {
  const auto corpus = tiny_corpus();
  const auto platforms = small_roster();
  const std::string path = ::testing::TempDir() + "/journal_crash.journal";
  std::remove(path.c_str());

  MeasurementOptions options = fast_options();
  options.threads = 1;  // crash after a deterministic number of cells
  options.campaign.fault_rate = 0.3;  // retries + failure rows in the mix
  options.campaign.retry_budget = 2;
  options.campaign.journal_path = path;

  // Reference: the same campaign, uninterrupted, without a journal.
  MeasurementOptions plain = options;
  plain.campaign.journal_path.clear();
  const CampaignResult uninterrupted = run_campaign(corpus, platforms, plain);
  ASSERT_GT(uninterrupted.table.size(), 8u);

  // Crash-injection: abort the campaign once 5 cells hit the journal.
  MeasurementOptions crashing = options;
  crashing.campaign.after_cell_hook = [](std::size_t cells) {
    if (cells >= 5) throw std::runtime_error("injected crash");
  };
  EXPECT_THROW(run_campaign(corpus, platforms, crashing), std::runtime_error);
  {
    std::ifstream probe(path);
    ASSERT_TRUE(probe.good()) << "crash must leave the journal behind";
  }

  // Resume: the final table must match the uninterrupted run row for row,
  // and at least one completed session must come from the journal.
  const CampaignResult resumed = run_campaign(corpus, platforms, options);
  ASSERT_EQ(resumed.table.size(), uninterrupted.table.size());
  for (std::size_t i = 0; i < resumed.table.size(); ++i) {
    expect_rows_equal(uninterrupted.table.rows()[i], resumed.table.rows()[i]);
  }
  std::size_t restored = 0;
  for (const auto& p : resumed.report.platforms) restored += p.cells_restored;
  EXPECT_GT(restored, 0u);
  std::remove(path.c_str());
}

TEST(CellJournal, FreshRunIgnoresExistingJournal) {
  const auto corpus = tiny_corpus();
  const auto platforms = small_roster();
  const std::string path = ::testing::TempDir() + "/journal_fresh.journal";
  std::remove(path.c_str());

  MeasurementOptions options = fast_options();
  options.threads = 1;
  options.campaign.journal_path = path;
  MeasurementOptions crashing = options;
  crashing.campaign.after_cell_hook = [](std::size_t cells) {
    if (cells >= 3) throw std::runtime_error("injected crash");
  };
  EXPECT_THROW(run_campaign(corpus, platforms, crashing), std::runtime_error);

  MeasurementOptions fresh = options;
  fresh.campaign.resume = false;
  const CampaignResult result = run_campaign(corpus, platforms, fresh);
  for (const auto& p : result.report.platforms) EXPECT_EQ(p.cells_restored, 0u);
  EXPECT_GT(result.table.size(), 0u);
  std::remove(path.c_str());
}

TEST(CellJournal, RunOrLoadRemovesJournalAfterCaching) {
  const auto corpus = tiny_corpus();
  const auto platforms = small_roster();
  const std::string cache = ::testing::TempDir() + "/journal_cache.tsv";
  std::remove(cache.c_str());
  MeasurementOptions quiet = fast_options();
  quiet.verbose = false;
  const auto table = run_or_load(corpus, platforms, quiet, cache);
  EXPECT_GT(table.size(), 0u);
  // The campaign completed and was cached: its journal must be gone.
  std::ifstream probe(cache + ".journal");
  EXPECT_FALSE(probe.good());
  std::remove(cache.c_str());
  std::remove((cache + ".campaign.tsv").c_str());
  std::remove((cache + ".campaign.json").c_str());
}

}  // namespace
}  // namespace mlaas
