#include "eval/auto_tune.h"

#include "platform/all_platforms.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "data/split.h"
#include "ml/metrics.h"

namespace mlaas {
namespace {

TEST(SampleConfigs, DrawsValidConfigsFromTheSurface) {
  const auto platform = make_platform("Microsoft");
  const ControlSurface surface = platform->controls();
  const auto configs = sample_configs(*platform, 40, 1);
  ASSERT_EQ(configs.size(), 40u);
  std::set<std::string> classifiers;
  for (const auto& config : configs) {
    EXPECT_NE(surface.find(config.classifier), nullptr);
    classifiers.insert(config.classifier);
    if (!config.feature_step.empty()) {
      EXPECT_NE(std::find(surface.feature_steps.begin(), surface.feature_steps.end(),
                          config.feature_step),
                surface.feature_steps.end());
    }
  }
  EXPECT_GT(classifiers.size(), 2u);  // explores multiple classifiers
}

TEST(SampleConfigs, BlackBoxThrows) {
  const auto google = make_platform("Google");
  EXPECT_THROW(sample_configs(*google, 5, 1), std::invalid_argument);
}

TEST(SampleConfigs, DeterministicForSeed) {
  const auto platform = make_platform("Local");
  const auto a = sample_configs(*platform, 10, 9);
  const auto b = sample_configs(*platform, 10, 9);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].key(), b[i].key());
}

TEST(AutoTune, BeatsTheBaselineOnNonLinearData) {
  // Circles: the LR baseline fails; a budget search must find a non-linear
  // configuration.
  const Dataset ds = make_circles(500, 0.08, 0.5, 21);
  const auto split = train_test_split(ds, 0.3, 21);
  const auto platform = make_platform("Local");

  AutoTuneOptions options;
  options.budget = 32;
  options.seed = 21;
  const AutoTuneResult result = auto_tune(*platform, split.train, options);
  EXPECT_LE(result.evaluations, options.budget + 8);  // small rounding slack
  EXPECT_GT(result.best_validation_f, 0.85);

  const auto baseline_model =
      platform->train(split.train, platform->baseline_config(), 1);
  const auto tuned_model = platform->train(split.train, result.best_config, 1);
  const double baseline_f = f1_score(split.test.y(), baseline_model->predict(split.test.x()));
  const double tuned_f = f1_score(split.test.y(), tuned_model->predict(split.test.x()));
  EXPECT_GT(tuned_f, baseline_f + 0.1);
}

TEST(AutoTune, RespectsBudgetScaling) {
  const Dataset ds = make_moons(300, 0.2, 22);
  const auto platform = make_platform("PredictionIO");
  AutoTuneOptions small;
  small.budget = 8;
  small.seed = 3;
  const auto result = auto_tune(*platform, ds, small);
  EXPECT_LE(result.evaluations, 16);
  EXPECT_GT(result.best_validation_f, 0.0);
}

TEST(AutoTune, TinyBudgetRejected) {
  const Dataset ds = make_moons(100, 0.2, 23);
  const auto platform = make_platform("Local");
  AutoTuneOptions options;
  options.budget = 1;
  EXPECT_THROW(auto_tune(*platform, ds, options), std::invalid_argument);
}

TEST(AutoTune, DeterministicForSeed) {
  const Dataset ds = make_moons(240, 0.25, 24);
  const auto platform = make_platform("BigML");
  AutoTuneOptions options;
  options.budget = 16;
  options.seed = 5;
  const auto a = auto_tune(*platform, ds, options);
  const auto b = auto_tune(*platform, ds, options);
  EXPECT_EQ(a.best_config.key(), b.best_config.key());
  EXPECT_DOUBLE_EQ(a.best_validation_f, b.best_validation_f);
}

}  // namespace
}  // namespace mlaas
