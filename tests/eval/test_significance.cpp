#include "eval/significance.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mlaas {
namespace {

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

TEST(Wilcoxon, IdenticalSamplesNotSignificant) {
  const std::vector<double> a{0.5, 0.6, 0.7};
  const auto result = wilcoxon_signed_rank(a, a);
  EXPECT_EQ(result.n_effective, 0u);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_FALSE(result.significant_at_05());
}

TEST(Wilcoxon, ConsistentLargeDifferenceIsSignificant) {
  Rng rng(1);
  std::vector<double> a(40), b(40);
  for (std::size_t i = 0; i < a.size(); ++i) {
    b[i] = rng.uniform(0.4, 0.6);
    a[i] = b[i] + rng.uniform(0.05, 0.15);  // a always wins
  }
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(result.n_effective, 40u);
  EXPECT_TRUE(result.significant_at_05());
  EXPECT_LT(result.p_value, 1e-4);
}

TEST(Wilcoxon, SymmetricNoiseNotSignificant) {
  Rng rng(2);
  std::vector<double> a(60), b(60);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = a[i] + rng.normal(0.0, 0.1);  // unbiased perturbation
  }
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(Wilcoxon, DropsZeroDifferences) {
  const std::vector<double> a{0.5, 0.6, 0.9};
  const std::vector<double> b{0.5, 0.4, 0.7};
  const auto result = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(result.n_effective, 2u);
}

TEST(Wilcoxon, SizeMismatchThrows) {
  EXPECT_THROW(wilcoxon_signed_rank(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Nemenyi, KnownCriticalDifferences) {
  // Demšar 2006: k=7 over 119 datasets (the paper's setting):
  // CD = 2.949 * sqrt(7*8 / (6*119)) ~ 0.826.
  EXPECT_NEAR(nemenyi_critical_difference(7, 119), 0.826, 0.01);
  // CD shrinks with more datasets.
  EXPECT_LT(nemenyi_critical_difference(7, 1000), nemenyi_critical_difference(7, 100));
}

TEST(Nemenyi, RangeValidation) {
  EXPECT_THROW(nemenyi_critical_difference(1, 10), std::invalid_argument);
  EXPECT_THROW(nemenyi_critical_difference(11, 10), std::invalid_argument);
  EXPECT_THROW(nemenyi_critical_difference(3, 0), std::invalid_argument);
}

TEST(Pairwise, DetectsClearWinnerAndTie) {
  Rng rng(3);
  std::vector<std::vector<double>> scores;
  for (int d = 0; d < 50; ++d) {
    const double base = rng.uniform(0.4, 0.6);
    // A clearly best; B and C statistically tied.
    scores.push_back({base + 0.2, base + rng.normal(0.0, 0.01), base + rng.normal(0.0, 0.01)});
  }
  const auto comparisons = pairwise_comparisons({"A", "B", "C"}, scores);
  ASSERT_EQ(comparisons.size(), 3u);
  for (const auto& cmp : comparisons) {
    if (cmp.a == "A") {
      EXPECT_TRUE(cmp.wilcoxon.significant_at_05()) << cmp.a << " vs " << cmp.b;
      EXPECT_TRUE(cmp.nemenyi_significant);
    } else {
      EXPECT_FALSE(cmp.nemenyi_significant) << cmp.a << " vs " << cmp.b;
    }
  }
}

}  // namespace
}  // namespace mlaas
