#include "eval/friedman.h"

#include <gtest/gtest.h>

#include <limits>

namespace mlaas {
namespace {

TEST(Friedman, ConsistentWinnerGetsRankOne) {
  const std::vector<std::string> entities{"A", "B", "C"};
  const std::vector<std::vector<double>> scores{
      {0.9, 0.5, 0.1}, {0.8, 0.6, 0.2}, {0.95, 0.4, 0.3}};
  const auto result = friedman_ranking(entities, scores);
  EXPECT_DOUBLE_EQ(result.average_rank[0], 1.0);
  EXPECT_DOUBLE_EQ(result.average_rank[1], 2.0);
  EXPECT_DOUBLE_EQ(result.average_rank[2], 3.0);
  EXPECT_EQ(result.n_blocks, 3u);
}

TEST(Friedman, TiesShareFractionalRank) {
  const auto result = friedman_ranking({"A", "B"}, {{0.5, 0.5}});
  EXPECT_DOUBLE_EQ(result.average_rank[0], 1.5);
  EXPECT_DOUBLE_EQ(result.average_rank[1], 1.5);
}

TEST(Friedman, MixedOutcomesAverage) {
  const auto result = friedman_ranking({"A", "B"}, {{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_DOUBLE_EQ(result.average_rank[0], 1.5);
  EXPECT_DOUBLE_EQ(result.average_rank[1], 1.5);
}

TEST(Friedman, SkipsRowsWithNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto result = friedman_ranking({"A", "B"}, {{1.0, 0.0}, {nan, 1.0}});
  EXPECT_EQ(result.n_blocks, 1u);
  EXPECT_DOUBLE_EQ(result.average_rank[0], 1.0);
}

TEST(Friedman, ChiSquaredZeroWhenNoDifference) {
  const auto result = friedman_ranking({"A", "B"}, {{0.5, 0.5}, {0.4, 0.4}});
  EXPECT_NEAR(result.chi_squared, 0.0, 1e-9);
}

TEST(Friedman, ChiSquaredLargeForConsistentOrdering) {
  std::vector<std::vector<double>> scores(30, {0.9, 0.5, 0.1});
  const auto result = friedman_ranking({"A", "B", "C"}, scores);
  EXPECT_GT(result.chi_squared, 30.0);
}

TEST(Friedman, ValidationErrors) {
  EXPECT_THROW(friedman_ranking({}, {}), std::invalid_argument);
  EXPECT_THROW(friedman_ranking({"A", "B"}, {{1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
