// The service-backed measurement campaign: parity with the direct-call
// runner, failure accounting under faults/quotas, determinism, telemetry,
// and cache fingerprinting.
#include "eval/measurement.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generators.h"
#include "data/split.h"
#include "util/rng.h"

namespace mlaas {
namespace {

MeasurementOptions fast_options() {
  MeasurementOptions opt;
  opt.seed = 42;
  opt.max_para_configs = 4;
  opt.joint_sample = 5;
  opt.threads = 2;
  return opt;
}

std::vector<Dataset> tiny_corpus() {
  std::vector<Dataset> corpus;
  corpus.push_back(make_blobs(80, 3, 1.0, 5.0, 1));
  corpus.back().meta().id = "blob-0";
  corpus.push_back(make_circles(80, 0.08, 0.5, 2));
  corpus.back().meta().id = "circle-0";
  return corpus;
}

std::vector<PlatformPtr> small_roster() {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  platforms.push_back(make_platform("Amazon"));
  platforms.push_back(make_platform("PredictionIO"));
  return platforms;
}

TEST(RunCampaign, ZeroFaultRateMatchesDirectRunner) {
  const auto corpus = tiny_corpus();
  const auto platforms = small_roster();
  const MeasurementOptions options = fast_options();

  // The seed's direct-call runner: measure_one per (dataset, platform,
  // config), in the same order the campaign emits rows.
  MeasurementTable direct;
  for (const auto& dataset : corpus) {
    for (const auto& platform : platforms) {
      for (const auto& config : enumerate_configs(*platform, options)) {
        if (auto m = measure_one(dataset, *platform, config, options)) {
          if (m->ok) direct.add(std::move(*m));
        }
      }
    }
  }

  const CampaignResult campaign = run_campaign(corpus, platforms, options);
  ASSERT_EQ(campaign.table.failures().size(), 0u);
  ASSERT_EQ(campaign.table.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const auto& a = direct.rows()[i];
    const auto& b = campaign.table.rows()[i];
    EXPECT_EQ(a.dataset_id, b.dataset_id);
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.feature_step, b.feature_step);
    EXPECT_EQ(a.classifier, b.classifier);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.default_params, b.default_params);
    EXPECT_DOUBLE_EQ(a.test.f_score, b.test.f_score);
    EXPECT_DOUBLE_EQ(a.test.accuracy, b.test.accuracy);
    EXPECT_EQ(a.label_signature, b.label_signature);
  }
}

TEST(RunCampaign, TelemetryCountsRequests) {
  const auto corpus = tiny_corpus();
  const auto platforms = small_roster();
  const MeasurementOptions options = fast_options();
  const CampaignResult result = run_campaign(corpus, platforms, options);
  // `predictions` counts ROWS scored (the admission path's per-sample unit),
  // so each ok cell contributes its dataset's test-split rows.
  const auto split = train_test_split(
      corpus[0], options.test_fraction,
      derive_seed(options.seed, "split-" + corpus[0].meta().id), /*stratified=*/true);
  const std::size_t test_rows = split.test.n_samples();  // both datasets: 80 samples
  ASSERT_EQ(result.report.platforms.size(), 3u);
  for (const auto& p : result.report.platforms) {
    // One upload per dataset, one train + one predict per measured cell.
    EXPECT_EQ(p.service.uploads, corpus.size());
    EXPECT_EQ(p.service.trainings, p.cells_ok);
    EXPECT_EQ(p.service.predictions, p.cells_ok * test_rows);
    EXPECT_GE(p.service.requests, p.service.uploads + 2 * p.cells_ok);
    EXPECT_GT(p.simulated_seconds, 0.0);
    EXPECT_DOUBLE_EQ(p.coverage(), 1.0);
    // Steady state: every handle the campaign created was released again.
    EXPECT_EQ(p.service.models_deleted, p.service.trainings);
    EXPECT_EQ(p.service.datasets_deleted, p.service.uploads);
  }
}

TEST(RunCampaign, FaultyCampaignCompletesAndRecordsFailures) {
  MeasurementOptions options = fast_options();
  options.campaign.fault_rate = 0.6;
  options.campaign.retry_budget = 2;  // tight budget so some cells fail
  const CampaignResult result = run_campaign(tiny_corpus(), small_roster(), options);
  const PlatformCampaignStats total = result.report.totals();
  EXPECT_GT(total.cells_failed, 0u);
  EXPECT_GT(total.retries, 0u);
  EXPECT_LT(result.report.coverage(), 1.0);
  // Failure rows are structured, not dropped: step:status strings.
  const MeasurementTable failed = result.table.failures();
  ASSERT_GT(failed.size(), 0u);
  for (const auto& m : failed.rows()) {
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.failure.find(':'), std::string::npos) << m.failure;
  }
  // And excluded from aggregation helpers.
  for (const auto* best : result.table.best_per_dataset()) EXPECT_TRUE(best->ok);
}

TEST(RunCampaign, FaultyCampaignIsDeterministicAcrossThreadCounts) {
  MeasurementOptions serial = fast_options();
  serial.campaign.fault_rate = 0.3;
  serial.campaign.retry_budget = 3;
  serial.threads = 1;
  MeasurementOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_campaign(tiny_corpus(), small_roster(), serial);
  const auto b = run_campaign(tiny_corpus(), small_roster(), parallel);
  ASSERT_EQ(a.table.size(), b.table.size());
  for (std::size_t i = 0; i < a.table.size(); ++i) {
    const auto& ra = a.table.rows()[i];
    const auto& rb = b.table.rows()[i];
    EXPECT_EQ(ra.params, rb.params);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.failure, rb.failure);
    EXPECT_DOUBLE_EQ(ra.test.f_score, rb.test.f_score);
  }
  const auto ta = a.report.totals();
  const auto tb = b.report.totals();
  EXPECT_EQ(ta.service.transient_errors, tb.service.transient_errors);
  EXPECT_EQ(ta.retries, tb.retries);
  EXPECT_EQ(ta.cells_failed, tb.cells_failed);
}

TEST(RunCampaign, FreeTierQuotaExhaustionIsRecorded) {
  MeasurementOptions options = fast_options();
  options.max_para_configs = 20;  // Amazon's full grid (18) > free-tier quota
  options.campaign.quota_profile = "free-tier";  // 10 training jobs/session
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Amazon"));
  const auto corpus = tiny_corpus();
  const CampaignResult result = run_campaign(corpus, platforms, options);
  const auto& amazon = result.report.platforms[0];
  ASSERT_GT(amazon.cells_total / corpus.size(), 10u)
      << "test needs more configs than the free-tier training quota";
  EXPECT_EQ(amazon.service.trainings, 10u * corpus.size());
  EXPECT_GT(amazon.cells_failed, 0u);
  EXPECT_EQ(amazon.failures_by_status.count("train:quota-exhausted"), 1u);
  // Successful cells are bit-identical to an unconstrained campaign.
  MeasurementOptions unconstrained = options;
  unconstrained.campaign = CampaignOptions{};
  const CampaignResult free_run = run_campaign(corpus, platforms, unconstrained);
  const MeasurementTable measured = result.table.succeeded();
  for (const auto& m : measured.rows()) {
    bool found = false;
    for (const auto& f : free_run.table.rows()) {
      if (f.dataset_id == m.dataset_id && f.params == m.params &&
          f.classifier == m.classifier && f.feature_step == m.feature_step) {
        EXPECT_DOUBLE_EQ(f.test.f_score, m.test.f_score);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RunCampaign, StrictProfileStallsButCompletes) {
  MeasurementOptions options = fast_options();
  options.campaign.quota_profile = "strict";  // 5 requests/min
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Amazon"));
  const CampaignResult result = run_campaign(tiny_corpus(), platforms, options);
  const auto& amazon = result.report.platforms[0];
  // Rate limits stall the campaign (Retry-After waits) but drop no cells.
  EXPECT_GT(amazon.service.rate_limited, 0u);
  EXPECT_GT(amazon.backoff_seconds, 0.0);
  EXPECT_EQ(amazon.cells_failed, 0u);
  EXPECT_DOUBLE_EQ(result.report.coverage(), 1.0);
}

TEST(CampaignReport, TsvRoundTripAndJsonWritten) {
  MeasurementOptions options = fast_options();
  options.campaign.fault_rate = 0.5;
  options.campaign.retry_budget = 2;
  const CampaignResult result = run_campaign(tiny_corpus(), small_roster(), options);
  const std::string tsv = ::testing::TempDir() + "/campaign_report.tsv";
  const std::string json = ::testing::TempDir() + "/campaign_report.json";
  result.report.save_tsv(tsv);
  result.report.save_json(json);
  const auto loaded = CampaignReport::load_tsv(tsv);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->platforms.size(), result.report.platforms.size());
  for (std::size_t i = 0; i < loaded->platforms.size(); ++i) {
    const auto& a = result.report.platforms[i];
    const auto& b = loaded->platforms[i];
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.cells_ok, b.cells_ok);
    EXPECT_EQ(a.cells_failed, b.cells_failed);
    EXPECT_EQ(a.service.requests, b.service.requests);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failures_by_status, b.failures_by_status);
    EXPECT_NEAR(a.simulated_seconds, b.simulated_seconds, 1e-6);
  }
  std::ifstream jin(json);
  ASSERT_TRUE(jin.good());
  std::string text((std::istreambuf_iterator<char>(jin)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"platforms\""), std::string::npos);
  EXPECT_NE(text.find("\"coverage\""), std::string::npos);
  std::remove(tsv.c_str());
  std::remove(json.c_str());
}

TEST(RunOrLoad, FingerprintMismatchForcesRerun) {
  auto platforms = small_roster();
  const std::string path = ::testing::TempDir() + "/mlaas_fingerprint_test.tsv";
  std::remove(path.c_str());
  const auto corpus2 = tiny_corpus();
  const auto table2 = run_or_load(corpus2, platforms, fast_options(), path);
  EXPECT_EQ(table2.dataset_ids().size(), 2u);
  // Same fingerprint: the cache is reused (and the sidecar report reloads).
  CampaignReport cached_report;
  const auto again = run_or_load(corpus2, platforms, fast_options(), path, &cached_report);
  EXPECT_EQ(again.size(), table2.size());
  EXPECT_EQ(cached_report.platforms.size(), platforms.size());
  // Smaller corpus -> different fingerprint -> the stale cache (which has 2
  // datasets) must NOT be reused.
  std::vector<Dataset> corpus1;
  corpus1.push_back(corpus2[0]);
  MeasurementOptions quiet = fast_options();
  quiet.verbose = false;
  const auto table1 = run_or_load(corpus1, platforms, quiet, path);
  EXPECT_EQ(table1.dataset_ids().size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".campaign.tsv").c_str());
  std::remove((path + ".campaign.json").c_str());
}

TEST(RunOrLoad, CorruptCacheIsDiscardedNotFatal) {
  auto platforms = small_roster();
  const std::string path = ::testing::TempDir() + "/mlaas_corrupt_cache.tsv";
  const auto corpus = tiny_corpus();
  MeasurementOptions quiet = fast_options();
  quiet.verbose = false;
  const auto fresh = run_or_load(corpus, platforms, quiet, path);
  // Truncate a row mid-line, keeping the valid fingerprint header.
  {
    std::ifstream in(path);
    std::string header1, header2;
    std::getline(in, header1);
    std::getline(in, header2);
    in.close();
    std::ofstream out(path);
    out << header1 << '\n' << header2 << '\n' << "blob-0\tGoogle\ttrunc";
  }
  const auto recovered = run_or_load(corpus, platforms, quiet, path);
  EXPECT_EQ(recovered.size(), fresh.size());
  // A cache truncated right after the header parses as a valid empty table
  // with a matching fingerprint; it must still be discarded and re-run.
  {
    std::ifstream in(path);
    std::string header1, header2;
    std::getline(in, header1);
    std::getline(in, header2);
    in.close();
    std::ofstream out(path);
    out << header1 << '\n' << header2 << '\n';
  }
  const auto refilled = run_or_load(corpus, platforms, quiet, path);
  EXPECT_EQ(refilled.size(), fresh.size());
  std::remove(path.c_str());
  std::remove((path + ".campaign.tsv").c_str());
  std::remove((path + ".campaign.json").c_str());
}

TEST(MeasurementCsv, MalformedRowsThrowWithLineNumber) {
  const std::string path = ::testing::TempDir() + "/mlaas_malformed.tsv";
  {
    std::ofstream out(path);
    out << "dataset\tplatform\tfeat\tclf\tparams\tdefault\tf\tacc\tprec\trec\tsec\tsig"
           "\tstatus\n";
    out << "d1\tLocal\tnone\tmlp\t\t1\t0.9\t0.8\t0.7\t0.6\t0.1\t01\tok\n";
    out << "d1\tLocal\tshort\n";  // truncated row
  }
  try {
    MeasurementTable::load_csv(path);
    FAIL() << "expected malformed row to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(MeasurementCsv, NonNumericFieldThrowsWithLineNumber) {
  const std::string path = ::testing::TempDir() + "/mlaas_badnum.tsv";
  {
    std::ofstream out(path);
    out << "dataset\tplatform\tfeat\tclf\tparams\tdefault\tf\tacc\tprec\trec\tsec\tsig"
           "\tstatus\n";
    out << "d1\tLocal\tnone\tmlp\t\t1\tnot-a-number\t0.8\t0.7\t0.6\t0.1\t01\tok\n";
  }
  try {
    MeasurementTable::load_csv(path);
    FAIL() << "expected bad numeric field to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":2"), std::string::npos) << what;
    EXPECT_NE(what.find("'f'"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(MeasurementCsv, FailureRowsRoundTrip) {
  MeasurementTable table;
  Measurement ok;
  ok.dataset_id = "d1";
  ok.platform = "Local";
  ok.feature_step = "none";
  ok.classifier = "mlp";
  ok.test.f_score = 0.9;
  ok.label_signature = "01";
  table.add(ok);
  Measurement failed = ok;
  failed.ok = false;
  failed.failure = "train:transient-error";
  failed.test = {};
  failed.label_signature.clear();
  table.add(failed);

  const std::string path = ::testing::TempDir() + "/mlaas_failure_rows.tsv";
  table.save_csv(path, "test-fingerprint v2");
  std::string fingerprint;
  const auto loaded = MeasurementTable::load_csv(path, &fingerprint);
  EXPECT_EQ(fingerprint, "test-fingerprint v2");
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.rows()[0].ok);
  EXPECT_FALSE(loaded.rows()[1].ok);
  EXPECT_EQ(loaded.rows()[1].failure, "train:transient-error");
  EXPECT_EQ(loaded.succeeded().size(), 1u);
  EXPECT_EQ(loaded.failures().size(), 1u);
  std::remove(path.c_str());
}

TEST(CircuitBreakerTest, OpensAfterThresholdProbesThenLatches) {
  BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 3;
  options.cooldown_seconds = 100.0;
  options.max_probes = 2;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.admit(0.0), CircuitBreaker::Decision::kProceed);
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.admit(2.5), CircuitBreaker::Decision::kProceed);
  breaker.record_failure(3.0);  // third consecutive failure: trip
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1u);
  // Open, cooldown still running: admission is time-aware and says wait.
  EXPECT_EQ(breaker.admit(3.5), CircuitBreaker::Decision::kWait);
  EXPECT_DOUBLE_EQ(breaker.probe_wait_seconds(3.5), 99.5);
  EXPECT_EQ(breaker.admit(103.0), CircuitBreaker::Decision::kProbe);
  breaker.record_failure(103.5);  // probe 1 fails: re-trip, cooldown restarts
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.admit(104.0), CircuitBreaker::Decision::kWait);
  EXPECT_EQ(breaker.admit(203.5), CircuitBreaker::Decision::kProbe);
  breaker.record_failure(204.0);  // probe 2 fails: out of probes
  EXPECT_EQ(breaker.admit(300.0), CircuitBreaker::Decision::kDefer);
  EXPECT_EQ(breaker.admit(1e9), CircuitBreaker::Decision::kDefer) << "latched open";
}

TEST(CircuitBreakerTest, CooldownExpiryFlipsWaitToProbe) {
  BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 1;
  options.cooldown_seconds = 50.0;
  CircuitBreaker breaker(options);
  breaker.record_failure(10.0);  // trip at t=10; cooldown runs until t=60
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(breaker.admit(10.0), CircuitBreaker::Decision::kWait);
  EXPECT_EQ(breaker.admit(59.999), CircuitBreaker::Decision::kWait);
  EXPECT_DOUBLE_EQ(breaker.probe_wait_seconds(30.0), 30.0);
  EXPECT_EQ(breaker.admit(60.0), CircuitBreaker::Decision::kProbe) << "boundary";
  EXPECT_EQ(breaker.admit(1e6), CircuitBreaker::Decision::kProbe);
  EXPECT_DOUBLE_EQ(breaker.probe_wait_seconds(60.0), 0.0);
}

TEST(CircuitBreakerTest, SuccessfulProbeClosesTheBreaker) {
  BreakerOptions options;
  options.enabled = true;
  options.failure_threshold = 2;
  options.cooldown_seconds = 10.0;
  CircuitBreaker breaker(options);
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  ASSERT_TRUE(breaker.open());
  ASSERT_EQ(breaker.admit(3.0), CircuitBreaker::Decision::kWait) << "cooling down";
  ASSERT_EQ(breaker.admit(12.0), CircuitBreaker::Decision::kProbe);
  breaker.record_success();  // the half-open probe succeeded
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.admit(13.0), CircuitBreaker::Decision::kProceed);
  // Fully recovered: it takes a fresh run of consecutive failures to re-trip.
  breaker.record_failure(14.0);
  EXPECT_FALSE(breaker.open());
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  CircuitBreaker breaker(BreakerOptions{});  // enabled = false
  for (int i = 0; i < 20; ++i) breaker.record_failure(i);
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.admit(100.0), CircuitBreaker::Decision::kProceed);
}

TEST(RunCampaign, BreakersDeferCellsDeterministically) {
  MeasurementOptions options = fast_options();
  options.campaign.fault_rate = 0.9;
  options.campaign.retry_budget = 1;
  options.campaign.breaker.enabled = true;
  options.campaign.breaker.failure_threshold = 2;
  options.campaign.breaker.cooldown_seconds = 600.0;
  options.campaign.breaker.max_probes = 1;
  const CampaignResult result = run_campaign(tiny_corpus(), small_roster(), options);
  const PlatformCampaignStats total = result.report.totals();
  EXPECT_GT(total.cells_deferred, 0u);
  EXPECT_GT(total.breaker_trips, 0u);
  // Deferred rows are a distinct status: not ok, not a step failure, and
  // excluded from both aggregation and the failure breakdown.
  const MeasurementTable deferred = result.table.deferred();
  EXPECT_EQ(deferred.size(), total.cells_deferred);
  for (const auto& m : deferred.rows()) {
    EXPECT_FALSE(m.ok);
    EXPECT_EQ(m.failure, kDeferredStatus);
    EXPECT_TRUE(m.deferred());
  }
  for (const auto* best : result.table.best_per_dataset()) EXPECT_TRUE(best->ok);
  EXPECT_LT(result.report.coverage(), 1.0);

  // Breakers are scoped per (dataset, platform) session, so the outcome
  // cannot depend on the thread count.
  MeasurementOptions parallel = options;
  parallel.threads = 4;
  MeasurementOptions serial = options;
  serial.threads = 1;
  const auto a = run_campaign(tiny_corpus(), small_roster(), serial);
  const auto b = run_campaign(tiny_corpus(), small_roster(), parallel);
  ASSERT_EQ(a.table.size(), b.table.size());
  for (std::size_t i = 0; i < a.table.size(); ++i) {
    EXPECT_EQ(a.table.rows()[i].ok, b.table.rows()[i].ok);
    EXPECT_EQ(a.table.rows()[i].failure, b.table.rows()[i].failure);
  }
  EXPECT_EQ(a.report.totals().cells_deferred, b.report.totals().cells_deferred);
  EXPECT_EQ(a.report.totals().breaker_trips, b.report.totals().breaker_trips);
}

TEST(RunCampaign, ChaosCampaignIsDeterministic) {
  MeasurementOptions options = fast_options();
  options.campaign.chaos_profile = "storm";
  options.campaign.fault_rate = 0.2;
  options.campaign.retry_budget = 2;
  const auto a = run_campaign(tiny_corpus(), small_roster(), options);
  const auto b = run_campaign(tiny_corpus(), small_roster(), options);
  ASSERT_EQ(a.table.size(), b.table.size());
  for (std::size_t i = 0; i < a.table.size(); ++i) {
    const auto& ra = a.table.rows()[i];
    const auto& rb = b.table.rows()[i];
    EXPECT_EQ(ra.params, rb.params);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.failure, rb.failure);
    EXPECT_DOUBLE_EQ(ra.test.f_score, rb.test.f_score);
  }
  EXPECT_DOUBLE_EQ(a.report.totals().simulated_seconds,
                   b.report.totals().simulated_seconds);
  EXPECT_EQ(a.report.totals().service.unavailable, b.report.totals().service.unavailable);
}

TEST(RunCampaign, UnknownChaosProfileThrowsEagerly) {
  MeasurementOptions options = fast_options();
  options.campaign.chaos_profile = "tempest";
  EXPECT_THROW(run_campaign(tiny_corpus(), small_roster(), options),
               std::invalid_argument);
}

TEST(CampaignOptionsTest, QuotaProfilesResolve) {
  CampaignOptions campaign;
  campaign.fault_rate = 0.25;
  const ServiceQuota q = campaign.quota_for("Google");
  EXPECT_EQ(q.requests_per_window, 100u);
  EXPECT_DOUBLE_EQ(q.fault_rate, 0.25);
  campaign.quota_profile = "free-tier";
  EXPECT_EQ(campaign.quota_for("Amazon").max_training_jobs, 10u);
  campaign.quota_profile = "nope";
  EXPECT_THROW(campaign.quota_for("Amazon"), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
