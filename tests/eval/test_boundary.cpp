#include "eval/boundary.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "platform/all_platforms.h"

namespace mlaas {
namespace {

TEST(Boundary, LinearPlatformYieldsLinearMap) {
  // Local baseline = logistic regression -> linear separator on LINEAR.
  const auto local = make_platform("Local");
  const auto map = probe_decision_boundary(*local, make_linear_probe(1, 500), 1, 60);
  EXPECT_TRUE(boundary_is_linear(map));
  EXPECT_GT(map.linear_fit_accuracy, 0.97);
}

TEST(Boundary, MeshBoundsCoverDataWithMargin) {
  const Dataset probe = make_circle_probe(2, 300);
  const auto local = make_platform("Local");
  const auto map = probe_decision_boundary(*local, probe, 2, 20);
  double x_min = 1e9, x_max = -1e9;
  for (std::size_t i = 0; i < probe.n_samples(); ++i) {
    x_min = std::min(x_min, probe.x()(i, 0));
    x_max = std::max(x_max, probe.x()(i, 0));
  }
  EXPECT_LT(map.x_lo, x_min);
  EXPECT_GT(map.x_hi, x_max);
}

TEST(Boundary, AtIndexingIsRowMajor) {
  BoundaryMap map;
  map.resolution = 2;
  map.labels = {0, 1, 1, 0};
  EXPECT_EQ(map.at(0, 1), 1);
  EXPECT_EQ(map.at(1, 0), 1);
  EXPECT_EQ(map.at(1, 1), 0);
}

TEST(Boundary, ConstantMapIsTriviallyLinear) {
  BoundaryMap map;
  map.resolution = 2;
  map.labels = {1, 1, 1, 1};
  map.linear_fit_accuracy = 1.0;
  EXPECT_TRUE(boundary_is_linear(map));
}

TEST(Boundary, RenderDownsamples) {
  const auto local = make_platform("Local");
  const auto map = probe_decision_boundary(*local, make_linear_probe(3, 300), 3, 40);
  const std::string art = render_boundary(map, 10);
  // 10-ish lines of 40/4 characters each.
  std::size_t lines = 0;
  for (char c : art) lines += c == '\n' ? 1 : 0;
  EXPECT_GE(lines, 9u);
  EXPECT_LE(lines, 11u);
}

}  // namespace
}  // namespace mlaas
