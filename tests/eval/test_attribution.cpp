#include "eval/attribution.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

Measurement row(const std::string& platform, const std::string& feat, const std::string& clf,
                bool default_params, double f, const std::string& dataset = "d1") {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = feat;
  m.classifier = clf;
  m.default_params = default_params;
  m.test.f_score = f;
  return m;
}

MeasurementTable demo() {
  MeasurementTable t;
  // Baseline: LR default, no FEAT.
  t.add(row("P", "none", "logistic_regression", true, 0.5));
  // FEAT-only rows (LR default).
  t.add(row("P", "standard_scaler", "logistic_regression", true, 0.6));
  // CLF-only rows (default params, no FEAT).
  t.add(row("P", "none", "boosted_trees", true, 0.8));
  // PARA-only rows (LR, tuned).
  t.add(row("P", "none", "logistic_regression", false, 0.55));
  // Joint row: must be excluded from every single-dimension set.
  t.add(row("P", "standard_scaler", "boosted_trees", false, 0.99));
  return t;
}

TEST(Attribution, SingleDimensionRowSelection) {
  const auto feat = single_dimension_rows(demo(), "P", ControlDimension::kFeat);
  EXPECT_EQ(feat.size(), 2u);  // baseline + scaler row
  const auto clf = single_dimension_rows(demo(), "P", ControlDimension::kClf);
  EXPECT_EQ(clf.size(), 2u);  // baseline + BST default
  const auto para = single_dimension_rows(demo(), "P", ControlDimension::kPara);
  EXPECT_EQ(para.size(), 2u);  // baseline + tuned LR
}

TEST(Attribution, ImprovementsComputedPerDimension) {
  const auto improvements = control_improvements(demo(), {"P"});
  ASSERT_EQ(improvements.size(), 3u);
  for (const auto& ci : improvements) {
    EXPECT_TRUE(ci.supported);
    EXPECT_NEAR(ci.baseline_f, 0.5, 1e-12);
    switch (ci.dimension) {
      case ControlDimension::kFeat:
        EXPECT_NEAR(ci.relative_improvement, 0.2, 1e-9);  // 0.6 vs 0.5
        break;
      case ControlDimension::kClf:
        EXPECT_NEAR(ci.relative_improvement, 0.6, 1e-9);  // 0.8 vs 0.5
        break;
      case ControlDimension::kPara:
        EXPECT_NEAR(ci.relative_improvement, 0.1, 1e-9);  // 0.55 vs 0.5
        break;
    }
  }
}

TEST(Attribution, ClassifierDominatesInThisFixture) {
  // The paper's headline: CLF provides the largest improvement (§4.2).
  const auto improvements = control_improvements(demo(), {"P"});
  double feat = 0, clf = 0, para = 0;
  for (const auto& ci : improvements) {
    if (ci.dimension == ControlDimension::kFeat) feat = ci.relative_improvement;
    if (ci.dimension == ControlDimension::kClf) clf = ci.relative_improvement;
    if (ci.dimension == ControlDimension::kPara) para = ci.relative_improvement;
  }
  EXPECT_GT(clf, feat);
  EXPECT_GT(clf, para);
}

TEST(Attribution, UnsupportedDimensionFlagged) {
  MeasurementTable t;
  t.add(row("Amazon", "none", "logistic_regression", true, 0.5));
  t.add(row("Amazon", "none", "logistic_regression", false, 0.6));
  const auto improvements = control_improvements(t, {"Amazon"});
  for (const auto& ci : improvements) {
    if (ci.dimension == ControlDimension::kPara) {
      EXPECT_TRUE(ci.supported);
    } else {
      EXPECT_FALSE(ci.supported);  // no FEAT / CLF rows exist
    }
  }
}

TEST(Attribution, DimensionNames) {
  EXPECT_EQ(to_string(ControlDimension::kFeat), "Feature Selection");
  EXPECT_EQ(to_string(ControlDimension::kClf), "Classifier Selection");
  EXPECT_EQ(to_string(ControlDimension::kPara), "Parameter Tuning");
}

}  // namespace
}  // namespace mlaas
