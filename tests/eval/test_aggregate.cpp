#include "eval/aggregate.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

Measurement row(const std::string& dataset, const std::string& platform,
                const std::string& clf, double f, bool default_params = true,
                const std::string& feat = "none") {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = feat;
  m.classifier = clf;
  m.default_params = default_params;
  m.test.f_score = f;
  m.test.accuracy = f;
  m.test.precision = f;
  m.test.recall = f;
  return m;
}

MeasurementTable demo_table() {
  MeasurementTable t;
  for (const auto& d : {"d1", "d2"}) {
    // Platform P1: baseline LR weak, tuned MLP strong.
    t.add(row(d, "P1", "logistic_regression", 0.6));
    t.add(row(d, "P1", "mlp", 0.9, false));
    // Platform P2: baseline better, but no tuning upside.
    t.add(row(d, "P2", "logistic_regression", 0.7));
    t.add(row(d, "P2", "naive_bayes", 0.65));
  }
  return t;
}

TEST(Aggregate, BaselineUsesDefaultLrRows) {
  const auto summaries = baseline_summary(demo_table());
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& s : summaries) {
    if (s.platform == "P1") EXPECT_NEAR(s.avg.f_score, 0.6, 1e-12);
    if (s.platform == "P2") EXPECT_NEAR(s.avg.f_score, 0.7, 1e-12);
  }
}

TEST(Aggregate, OptimizedTakesBestPerDataset) {
  const auto summaries = optimized_summary(demo_table());
  for (const auto& s : summaries) {
    if (s.platform == "P1") EXPECT_NEAR(s.avg.f_score, 0.9, 1e-12);
    if (s.platform == "P2") EXPECT_NEAR(s.avg.f_score, 0.7, 1e-12);
  }
}

TEST(Aggregate, SummariesSortedByFriedmanRank) {
  const auto summaries = optimized_summary(demo_table());
  EXPECT_EQ(summaries[0].platform, "P1");  // best optimized platform first
  EXPECT_LT(summaries[0].avg_rank, summaries[1].avg_rank);
}

TEST(Aggregate, BaselineRanksFlipVsOptimized) {
  const auto base = baseline_summary(demo_table());
  EXPECT_EQ(base[0].platform, "P2");  // P2 wins the baseline comparison
}

TEST(Aggregate, WinSharesDefaultParams) {
  const auto shares = classifier_win_shares(demo_table(), "P2", /*optimized_params=*/false);
  ASSERT_EQ(shares.size(), 1u);  // LR wins every dataset
  EXPECT_EQ(shares[0].first, "logistic_regression");
  EXPECT_DOUBLE_EQ(shares[0].second, 1.0);
}

TEST(Aggregate, WinSharesOptimizedParamsIncludeTunedRows) {
  const auto shares = classifier_win_shares(demo_table(), "P1", /*optimized_params=*/true);
  EXPECT_EQ(shares[0].first, "mlp");
  EXPECT_DOUBLE_EQ(shares[0].second, 1.0);
}

TEST(Aggregate, BestFPerDataset) {
  const auto best = best_f_per_dataset(demo_table());
  EXPECT_DOUBLE_EQ(best.at("d1"), 0.9);
  EXPECT_DOUBLE_EQ(best.at("d2"), 0.9);
}

TEST(Aggregate, StdErrorZeroForConstantScores) {
  const auto summaries = baseline_summary(demo_table());
  for (const auto& s : summaries) EXPECT_NEAR(s.f_std_error, 0.0, 1e-12);
}

}  // namespace
}  // namespace mlaas
