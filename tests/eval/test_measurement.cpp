#include "eval/measurement.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/generators.h"

namespace mlaas {
namespace {

MeasurementOptions fast_options() {
  MeasurementOptions opt;
  opt.seed = 42;
  opt.max_para_configs = 4;
  opt.joint_sample = 5;
  opt.threads = 2;
  return opt;
}

std::vector<Dataset> tiny_corpus() {
  std::vector<Dataset> corpus;
  corpus.push_back(make_blobs(80, 3, 1.0, 5.0, 1));
  corpus.back().meta().id = "blob-0";
  corpus.push_back(make_circles(80, 0.08, 0.5, 2));
  corpus.back().meta().id = "circle-0";
  return corpus;
}

TEST(EnumerateConfigs, BlackBoxHasExactlyBaseline) {
  const auto google = make_platform("Google");
  const auto configs = enumerate_configs(*google, fast_options());
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_TRUE(configs[0].classifier.empty());
}

TEST(EnumerateConfigs, AmazonCoversItsParaGrid) {
  const auto amazon = make_platform("Amazon");
  const auto configs = enumerate_configs(*amazon, fast_options());
  EXPECT_GT(configs.size(), 2u);
  for (const auto& config : configs) EXPECT_TRUE(config.feature_step.empty());
}

TEST(EnumerateConfigs, NoDuplicateKeys) {
  for (const auto& name : platform_names()) {
    const auto platform = make_platform(name);
    const auto configs = enumerate_configs(*platform, fast_options());
    std::set<std::string> keys;
    for (const auto& config : configs) {
      EXPECT_TRUE(keys.insert(config.key()).second) << name << ": " << config.key();
    }
  }
}

TEST(EnumerateConfigs, MicrosoftIncludesFeatAndJointConfigs) {
  const auto microsoft = make_platform("Microsoft");
  const ControlSurface surface = microsoft->controls();
  const auto configs = enumerate_configs(*microsoft, fast_options());
  bool any_feat = false, any_joint = false;
  for (const auto& config : configs) {
    if (!config.feature_step.empty() && config.feature_step != "none") {
      any_feat = true;
      const ClassifierGridSpec* spec = surface.find(config.classifier);
      if (spec != nullptr && !(config.params == spec->default_config())) any_joint = true;
    }
  }
  EXPECT_TRUE(any_feat);
  EXPECT_TRUE(any_joint);
}

TEST(EnumerateConfigs, ScaleGrowsTheGrid) {
  const auto local = make_platform("Local");
  MeasurementOptions small = fast_options();
  MeasurementOptions large = fast_options();
  large.scale = 3.0;
  EXPECT_GT(enumerate_configs(*local, large).size(),
            enumerate_configs(*local, small).size());
}

TEST(MeasureOne, ProducesSaneMetrics) {
  const auto local = make_platform("Local");
  const auto corpus = tiny_corpus();
  const auto m = measure_one(corpus[0], *local, local->baseline_config(), fast_options());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->dataset_id, "blob-0");
  EXPECT_EQ(m->platform, "Local");
  EXPECT_EQ(m->classifier, "logistic_regression");
  EXPECT_TRUE(m->default_params);
  EXPECT_GT(m->test.f_score, 0.8);
}

TEST(MeasureOne, InvalidConfigReturnsNullopt) {
  const auto amazon = make_platform("Amazon");
  PipelineConfig config;
  config.classifier = "decision_tree";
  const auto m = measure_one(tiny_corpus()[0], *amazon, config, fast_options());
  EXPECT_FALSE(m.has_value());
}

TEST(RunMeasurements, CoversAllPlatformsAndDatasets) {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  platforms.push_back(make_platform("Amazon"));
  platforms.push_back(make_platform("PredictionIO"));
  const auto table = run_measurements(tiny_corpus(), platforms, fast_options());
  EXPECT_EQ(table.platforms().size(), 3u);
  EXPECT_EQ(table.dataset_ids().size(), 2u);
  EXPECT_GT(table.size(), 10u);
}

TEST(RunMeasurements, DeterministicUnderThreading) {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Amazon"));
  MeasurementOptions serial = fast_options();
  serial.threads = 1;
  MeasurementOptions parallel = fast_options();
  parallel.threads = 4;
  const auto a = run_measurements(tiny_corpus(), platforms, serial);
  const auto b = run_measurements(tiny_corpus(), platforms, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rows()[i].params, b.rows()[i].params);
    EXPECT_DOUBLE_EQ(a.rows()[i].test.f_score, b.rows()[i].test.f_score);
  }
}

TEST(MeasurementTable, FiltersAndBaseline) {
  MeasurementTable table;
  Measurement m;
  m.dataset_id = "d1";
  m.platform = "Local";
  m.feature_step = "none";
  m.classifier = "logistic_regression";
  m.default_params = true;
  m.test.f_score = 0.7;
  table.add(m);
  m.classifier = "mlp";
  m.test.f_score = 0.9;
  table.add(m);
  m.feature_step = "standard_scaler";
  table.add(m);

  EXPECT_EQ(table.baseline().size(), 1u);
  EXPECT_EQ(table.for_platform("Local").size(), 3u);
  EXPECT_EQ(table.for_platform("Google").size(), 0u);
  EXPECT_EQ(table.classifiers().size(), 2u);
  const auto best = table.best_per_dataset();
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0]->test.f_score, 0.9);
}

TEST(MeasurementTable, CsvRoundTrip) {
  MeasurementTable table;
  Measurement m;
  m.dataset_id = "d1";
  m.platform = "BigML";
  m.feature_step = "none";
  m.classifier = "decision_tree";
  m.params = "max_depth=5,ordering=random";
  m.default_params = false;
  m.test = {0.91, 0.87, 0.88, 0.875};
  m.train_seconds = 0.125;
  m.label_signature = "0110";
  table.add(m);

  const std::string path = ::testing::TempDir() + "/mlaas_table_roundtrip.tsv";
  table.save_csv(path);
  const auto loaded = MeasurementTable::load_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  const auto& row = loaded.rows()[0];
  EXPECT_EQ(row.params, m.params);
  EXPECT_EQ(row.default_params, false);
  EXPECT_DOUBLE_EQ(row.test.f_score, m.test.f_score);
  EXPECT_DOUBLE_EQ(row.test.recall, m.test.recall);
  EXPECT_DOUBLE_EQ(row.train_seconds, 0.125);
  EXPECT_EQ(row.label_signature, "0110");
  std::remove(path.c_str());
}

TEST(RunOrLoad, UsesCacheOnSecondCall) {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  const std::string path = ::testing::TempDir() + "/mlaas_cache_test.tsv";
  std::remove(path.c_str());
  const auto corpus = tiny_corpus();
  const auto first = run_or_load(corpus, platforms, fast_options(), path);
  const auto second = run_or_load(corpus, platforms, fast_options(), path);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_NEAR(first.rows()[i].test.f_score, second.rows()[i].test.f_score, 1e-9);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mlaas
