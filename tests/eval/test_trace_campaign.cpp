// Campaign-level trace determinism (the tentpole's headline invariant):
// per-session tracks are assembled in canonical session order after the
// worker pool joins, and every timestamp comes off the per-session simulated
// clock — so the Chrome trace_event JSON must be byte-identical for every
// thread count, both schedules, and across reruns.  With tracing off the
// report bytes must match the pre-trace format exactly.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "eval/measurement.h"
#include "platform/all_platforms.h"
#include "util/trace.h"

namespace mlaas {
namespace {

MeasurementOptions traced_options(bool trace = true) {
  MeasurementOptions opt;
  opt.seed = 1234;
  opt.max_para_configs = 4;
  opt.joint_sample = 5;
  opt.verbose = false;
  opt.trace = trace;
  // Faults + breakers so retry waits and breaker transitions show up.
  opt.campaign.fault_rate = 0.2;
  opt.campaign.retry_budget = 2;
  opt.campaign.breaker.enabled = true;
  return opt;
}

std::vector<Dataset> skewed_corpus() {
  std::vector<Dataset> corpus;
  corpus.push_back(make_blobs(60, 3, 1.0, 5.0, 1));
  corpus.back().meta().id = "blob-0";
  corpus.push_back(make_circles(60, 0.08, 0.5, 2));
  corpus.back().meta().id = "circle-0";
  corpus.push_back(make_moons(240, 0.1, 3));
  corpus.back().meta().id = "moons-big";
  return corpus;
}

std::vector<PlatformPtr> small_roster() {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  platforms.push_back(make_platform("Amazon"));
  return platforms;
}

std::string traced_json(const MeasurementOptions& base, int threads,
                        Schedule schedule) {
  MeasurementOptions opt = base;
  opt.threads = threads;
  opt.schedule = schedule;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  EXPECT_NE(result.trace, nullptr);
  if (result.trace == nullptr) return {};
  std::ostringstream out;
  result.trace->write_chrome_json(out);
  return out.str();
}

TEST(CampaignTrace, ChromeJsonInvariantAcrossThreadsSchedulesAndReruns) {
  const MeasurementOptions base = traced_options();
  const std::string reference = traced_json(base, 1, Schedule::kStatic);
  ASSERT_FALSE(reference.empty());
  for (const int threads : {1, 4, 16}) {
    for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
      if (threads == 1 && schedule == Schedule::kStatic) continue;
      EXPECT_EQ(traced_json(base, threads, schedule), reference)
          << "trace differs at threads=" << threads
          << " schedule=" << to_string(schedule);
    }
  }
  // Same configuration, fresh run: byte-identical rerun.
  EXPECT_EQ(traced_json(base, 1, Schedule::kStatic), reference);
}

TEST(CampaignTrace, TracksAssembleInCanonicalSessionOrder) {
  MeasurementOptions opt = traced_options();
  opt.threads = 4;
  opt.schedule = Schedule::kDynamic;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  ASSERT_NE(result.trace, nullptr);
  // One track per (dataset, platform) session, dataset-major — the same
  // canonical order the measurement table and journal use — regardless of
  // which worker actually ran each session.  Thread-name metadata records
  // lead the Chrome JSON in track order, so byte positions encode it.
  EXPECT_EQ(result.trace->track_count(), 6u);
  std::ostringstream out;
  result.trace->write_chrome_json(out);
  const std::string json = out.str();
  std::size_t last = 0;
  for (const char* name :
       {"session:blob-0|Google", "session:blob-0|Amazon",
        "session:circle-0|Google", "session:circle-0|Amazon",
        "session:moons-big|Google", "session:moons-big|Amazon"}) {
    const std::size_t at = json.find(std::string("\"name\":\"") + name + "\"");
    ASSERT_NE(at, std::string::npos) << name;
    EXPECT_GT(at, last) << name << " out of canonical order";
    last = at;
  }
  // Every layer left spans: service calls, retry waits, session spans.
  const std::string summary = result.report.trace_summary;
  EXPECT_NE(summary.find("cat:service="), std::string::npos);
  EXPECT_NE(summary.find("cat:campaign="), std::string::npos);
  EXPECT_NE(summary.find("cat:retry="), std::string::npos);
  EXPECT_EQ(summary, result.trace->summary());
}

TEST(CampaignTrace, TracingOffLeavesReportBytesIdentical) {
  // The observability layer must be write-only: with trace off, no trailer
  // and a null trace; with trace on, the TSV differs only by the "# trace"
  // trailer and the measurement table bytes do not move at all.
  MeasurementOptions off_opt = traced_options(/*trace=*/false);
  off_opt.threads = 2;
  MeasurementOptions on_opt = traced_options(/*trace=*/true);
  on_opt.threads = 2;
  const CampaignResult off = run_campaign(skewed_corpus(), small_roster(), off_opt);
  const CampaignResult on = run_campaign(skewed_corpus(), small_roster(), on_opt);
  EXPECT_EQ(off.trace, nullptr);
  EXPECT_TRUE(off.report.trace_summary.empty());
  ASSERT_NE(on.trace, nullptr);
  EXPECT_FALSE(on.report.trace_summary.empty());

  const std::string off_tsv = [&] {
    const std::string path = ::testing::TempDir() + "trace_off.campaign.tsv";
    off.report.save_tsv(path);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }();
  const std::string on_tsv = [&] {
    const std::string path = ::testing::TempDir() + "trace_on.campaign.tsv";
    on.report.save_tsv(path);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }();
  EXPECT_EQ(off_tsv.find("# trace"), std::string::npos);
  ASSERT_NE(on_tsv.find("# trace\t"), std::string::npos);
  // Strip the trailer and mask the wall-clock columns (train-CPU seconds and
  // the scheduler telemetry line — real time, not simulated); every other
  // byte must match.
  auto masked_tsv = [](const std::string& tsv) {
    std::istringstream in(tsv);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("# trace\t", 0) == 0) continue;
      if (line.rfind("# scheduler\t", 0) == 0) {
        out << "# scheduler\tX\n";
        continue;
      }
      std::vector<std::string> fields;
      std::size_t start = 0;
      while (true) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
          fields.push_back(line.substr(start));
          break;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
      }
      if (fields.size() == 23) {
        fields[20] = "X";  // train_cpu_sec
        fields[21] = "X";  // predict_cpu_sec
      }
      for (std::size_t i = 0; i < fields.size(); ++i) {
        out << (i > 0 ? "\t" : "") << fields[i];
      }
      out << '\n';
    }
    return out.str();
  };
  EXPECT_EQ(masked_tsv(on_tsv), masked_tsv(off_tsv));

  // The measurement table itself is untouched by tracing (real-CPU-seconds
  // columns masked: the run-to-run nondeterministic fields).
  auto masked = [](const MeasurementTable& table) {
    std::ostringstream out;
    for (const auto& row : table.rows()) {
      Measurement copy = row;
      copy.train_seconds = 0.0;
      copy.predict_seconds = 0.0;
      out << measurement_row_to_tsv(copy) << '\n';
    }
    return out.str();
  };
  EXPECT_EQ(masked(on.table), masked(off.table));
}

TEST(CampaignTrace, TraceTrailerRoundTripsThroughTsv) {
  MeasurementOptions opt = traced_options();
  opt.threads = 2;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  ASSERT_FALSE(result.report.trace_summary.empty());
  const std::string path = ::testing::TempDir() + "trace_roundtrip.campaign.tsv";
  result.report.save_tsv(path);
  const auto loaded = CampaignReport::load_tsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->trace_summary, result.report.trace_summary);
}

TEST(CampaignTrace, ReportMetricsRegistryCoversAllStats) {
  MeasurementOptions opt = traced_options(/*trace=*/false);
  opt.threads = 2;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  const MetricsRegistry m = result.report.metrics();
  ASSERT_FALSE(result.report.platforms.empty());
  const auto& p = result.report.platforms.front();
  EXPECT_DOUBLE_EQ(m.value("campaign." + p.platform + ".cells_total"),
                   static_cast<double>(p.cells_total));
  EXPECT_DOUBLE_EQ(m.value("campaign." + p.platform + ".service.requests"),
                   static_cast<double>(p.service.requests));
  EXPECT_DOUBLE_EQ(m.value("scheduler.sessions"),
                   static_cast<double>(result.report.scheduler.sessions));
  // Stable registration order -> stable encoding.
  EXPECT_EQ(m.encode(), result.report.metrics().encode());
}

}  // namespace
}  // namespace mlaas
