#include "eval/naive_strategy.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace mlaas {
namespace {

TEST(NaiveStrategy, ChoosesTreeOnCircleLinearOnBlobs) {
  std::vector<Dataset> corpus;
  corpus.push_back(make_circle_probe(1, 400));
  corpus.back().meta().id = "circle";
  corpus.push_back(make_blobs(400, 4, 1.0, 6.0, 2));
  corpus.back().meta().id = "blobs";
  MeasurementOptions opt;
  const auto results = run_naive_strategy(corpus, opt);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].chosen, ClassifierFamily::kNonLinear);
  EXPECT_GT(results[0].dt_f, results[0].lr_f);
  EXPECT_DOUBLE_EQ(results[0].naive_f, std::max(results[0].lr_f, results[0].dt_f));
  // Blobs: both are strong; naive_f must be the max either way.
  EXPECT_GT(results[1].naive_f, 0.9);
}

Measurement row(const std::string& platform, const std::string& clf, double f,
                const std::string& dataset) {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = "none";
  m.classifier = clf;
  m.test.f_score = f;
  return m;
}

TEST(NaiveComparison, CountsWinsAndBreakdown) {
  std::vector<NaiveResult> naive(2);
  naive[0] = {"d1", 0.5, 0.9, ClassifierFamily::kNonLinear, 0.9};
  naive[1] = {"d2", 0.8, 0.6, ClassifierFamily::kLinear, 0.8};

  std::vector<BlackBoxChoice> choices(2);
  choices[0] = {"d1", ClassifierFamily::kLinear, 0.0, 1};
  choices[1] = {"d2", ClassifierFamily::kLinear, 0.0, 1};

  MeasurementTable table;
  table.add(row("Google", "auto", 0.7, "d1"));   // naive 0.9 beats 0.7
  table.add(row("Google", "auto", 0.95, "d2"));  // naive 0.8 loses
  // Local rows provide "optimal other family" references.
  table.add(row("Local", "logistic_regression", 0.6, "d1"));
  table.add(row("Local", "decision_tree", 0.85, "d2"));

  const auto cmp = compare_naive_vs_blackbox(naive, choices, table, "Google");
  EXPECT_EQ(cmp.n_datasets, 2u);
  EXPECT_EQ(cmp.naive_wins, 1u);
  EXPECT_EQ(cmp.wins_breakdown[1][0], 1u);  // naive non-linear vs Google linear
  ASSERT_EQ(cmp.win_gaps.size(), 1u);
  EXPECT_NEAR(cmp.win_gaps[0], 0.2, 1e-12);
  EXPECT_EQ(cmp.switch_gaps.size(), 1u);
  // d1: naive (non-linear, 0.9) > optimal linear (0.6) and > Google -> switching best.
  EXPECT_EQ(cmp.switching_is_best, 1u);
}

TEST(NaiveComparison, NoChoicesMeansEmptyComparison) {
  const auto cmp = compare_naive_vs_blackbox({}, {}, MeasurementTable{}, "Google");
  EXPECT_EQ(cmp.n_datasets, 0u);
  EXPECT_EQ(cmp.naive_wins, 0u);
}

TEST(NaiveStrategy, DeterministicForSeed) {
  std::vector<Dataset> corpus;
  corpus.push_back(make_moons(300, 0.2, 9));
  corpus.back().meta().id = "moons";
  MeasurementOptions opt;
  const auto a = run_naive_strategy(corpus, opt);
  const auto b = run_naive_strategy(corpus, opt);
  EXPECT_DOUBLE_EQ(a[0].naive_f, b[0].naive_f);
  EXPECT_EQ(a[0].chosen, b[0].chosen);
}

}  // namespace
}  // namespace mlaas
