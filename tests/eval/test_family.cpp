#include "eval/family.h"
#include "eval/family_predictor.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "linalg/stats.h"
#include "util/rng.h"

namespace mlaas {
namespace {

Measurement row(const std::string& platform, const std::string& clf, double f,
                const std::string& dataset = "d1") {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = "none";
  m.classifier = clf;
  m.test.f_score = f;
  m.test.accuracy = f;
  m.test.precision = f;
  m.test.recall = f;
  return m;
}

TEST(Family, SplitByFamilyPartitionsRows) {
  MeasurementTable t;
  t.add(row("Local", "logistic_regression", 0.5));
  t.add(row("Local", "naive_bayes", 0.55));
  t.add(row("Local", "decision_tree", 0.9));
  t.add(row("Google", "auto", 0.8));  // skipped
  const auto scores = split_by_family(t);
  EXPECT_EQ(scores.linear_f.size(), 2u);
  EXPECT_EQ(scores.nonlinear_f.size(), 1u);
}

TEST(Family, GapOnCircleFavorsNonLinear) {
  // Figure 11(a): on CIRCLE, non-linear classifiers dominate.
  MeasurementOptions opt;
  opt.max_para_configs = 3;
  opt.joint_sample = 5;
  Dataset circle = make_circle_probe(11, 400);
  circle.meta().id = "circle-probe";
  const auto scores = family_gap_on_probe(circle, opt);
  ASSERT_GT(scores.linear_f.size(), 3u);
  ASSERT_GT(scores.nonlinear_f.size(), 3u);
  EXPECT_GT(mean(scores.nonlinear_f), mean(scores.linear_f) + 0.15);
}

TEST(FamilyPredictor, FeaturesAreMetricsPlusLabelSignature) {
  Measurement m = row("Local", "knn", 0.7);
  m.label_signature = "101";
  const auto f = family_features(m);
  ASSERT_EQ(f.size(), 4u + kLabelSignatureSize);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(f[i], 0.7);
  EXPECT_DOUBLE_EQ(f[4], 1.0);
  EXPECT_DOUBLE_EQ(f[5], 0.0);
  EXPECT_DOUBLE_EQ(f[6], 1.0);
  EXPECT_DOUBLE_EQ(f[7], 0.0);  // zero-padded beyond the signature
}

/// Synthetic meta-problem: linear rows score low, non-linear rows score
/// high -> the family predictor must become near-perfect and selected.
MeasurementTable separable_meta_table(std::uint64_t seed, const std::string& dataset) {
  MeasurementTable t;
  Rng rng(seed);
  const std::vector<std::string> linear{"logistic_regression", "naive_bayes", "linear_svm"};
  const std::vector<std::string> nonlinear{"decision_tree", "random_forest", "boosted_trees"};
  for (int i = 0; i < 30; ++i) {
    t.add(row("Local", linear[static_cast<std::size_t>(i) % 3],
              0.45 + rng.uniform(0.0, 0.05), dataset));
    t.add(row("Microsoft", nonlinear[static_cast<std::size_t>(i) % 3],
              0.9 + rng.uniform(0.0, 0.05), dataset));
  }
  return t;
}

TEST(FamilyPredictor, LearnsSeparableMetaProblem) {
  const auto table = separable_meta_table(5, "dA");
  const auto report = train_family_predictors(table, 1);
  ASSERT_EQ(report.predictors.size(), 1u);
  EXPECT_TRUE(report.predictors[0].trainable);
  EXPECT_GT(report.predictors[0].validation_f, 0.95);
  EXPECT_EQ(report.selected.size(), 1u);
}

TEST(FamilyPredictor, SkipsTinyMetaDatasets) {
  MeasurementTable t;
  t.add(row("Local", "logistic_regression", 0.5));
  t.add(row("Local", "decision_tree", 0.9));
  const auto report = train_family_predictors(t, 1);
  ASSERT_EQ(report.predictors.size(), 1u);
  EXPECT_FALSE(report.predictors[0].trainable);
  EXPECT_TRUE(report.selected.empty());
}

TEST(FamilyPredictor, PredictsBlackBoxChoices) {
  MeasurementTable table = separable_meta_table(7, "dA");
  // Black-box rows: Google scores like a non-linear model, ABM like linear.
  table.add(row("Google", "auto", 0.93, "dA"));
  table.add(row("ABM", "auto", 0.47, "dA"));
  const auto report = train_family_predictors(table, 1);
  ASSERT_FALSE(report.selected.empty());

  const auto google = predict_blackbox_choices(report, table, "Google");
  ASSERT_EQ(google.size(), 1u);
  EXPECT_EQ(google[0].family, ClassifierFamily::kNonLinear);

  const auto abm = predict_blackbox_choices(report, table, "ABM");
  ASSERT_EQ(abm.size(), 1u);
  EXPECT_EQ(abm[0].family, ClassifierFamily::kLinear);
}

TEST(FamilyPredictor, UnselectedDatasetsYieldNoChoices) {
  MeasurementTable t;
  t.add(row("Google", "auto", 0.8));
  const auto report = train_family_predictors(t, 1);
  EXPECT_TRUE(predict_blackbox_choices(report, t, "Google").empty());
}

}  // namespace
}  // namespace mlaas
