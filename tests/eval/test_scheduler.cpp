// The session-level campaign scheduler: the measurement table and the
// write-ahead journal must be byte-identical for every thread count, for
// both schedules, and under chaos + breakers — the scheduler moves work
// between workers, never results.  Train-CPU seconds are the one
// run-to-run nondeterministic column and are masked before comparing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "eval/journal.h"
#include "eval/measurement.h"
#include "ml/classifier.h"
#include "ml/tree/trainer.h"

namespace mlaas {
namespace {

MeasurementOptions fast_options() {
  MeasurementOptions opt;
  opt.seed = 1234;
  opt.max_para_configs = 4;
  opt.joint_sample = 5;
  opt.verbose = false;
  return opt;
}

// Skewed on purpose: the large dataset is where static chunking and dynamic
// stealing schedule sessions most differently.
std::vector<Dataset> skewed_corpus() {
  std::vector<Dataset> corpus;
  corpus.push_back(make_blobs(60, 3, 1.0, 5.0, 1));
  corpus.back().meta().id = "blob-0";
  corpus.push_back(make_circles(60, 0.08, 0.5, 2));
  corpus.back().meta().id = "circle-0";
  corpus.push_back(make_moons(240, 0.1, 3));
  corpus.back().meta().id = "moons-big";
  return corpus;
}

std::vector<PlatformPtr> small_roster() {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(make_platform("Google"));
  platforms.push_back(make_platform("Amazon"));
  return platforms;
}

// The campaign table with the real-CPU-time columns zeroed, one row per line.
std::string masked_table(const MeasurementTable& table) {
  std::ostringstream out;
  for (const auto& row : table.rows()) {
    Measurement copy = row;
    copy.train_seconds = 0.0;
    copy.predict_seconds = 0.0;
    out << measurement_row_to_tsv(copy) << '\n';
  }
  return out.str();
}

// Journal bytes with the sec/psec fields of each row line masked.  Marker and
// header lines pass through untouched.
std::string masked_journal(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "journal missing: " << path;
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("#", 0) == 0 || line.rfind("=", 0) == 0) {
      out << line << '\n';
      continue;
    }
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t tab = line.find('\t', start);
      if (tab == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, tab - start));
      start = tab + 1;
    }
    EXPECT_EQ(fields.size(), 14u) << "unexpected journal row: " << line;
    if (fields.size() == 14) {
      fields[10] = "X";  // sec column
      fields[11] = "X";  // psec column
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      out << (i > 0 ? "\t" : "") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

struct RunArtifacts {
  std::string table;
  std::string journal;
  SchedulerStats scheduler;
};

RunArtifacts run_once(const MeasurementOptions& base, int threads, Schedule schedule) {
  // The journal path embeds the running test's name: several tests in this
  // file call run_once with the same (threads, schedule) pair, and ctest runs
  // them as concurrent processes sharing TempDir — a fixed name lets one
  // test std::remove the journal another is about to read.
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string path = ::testing::TempDir() + "/scheduler_det_" +
                           (info ? info->name() : "unknown") + "_t" +
                           std::to_string(threads) + "_" + to_string(schedule) +
                           ".journal";
  std::remove(path.c_str());
  MeasurementOptions opt = base;
  opt.threads = threads;
  opt.schedule = schedule;
  opt.campaign.journal_path = path;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  RunArtifacts artifacts{masked_table(result.table), masked_journal(path),
                         result.report.scheduler};
  std::remove(path.c_str());
  return artifacts;
}

void expect_identical_across_schedules(const MeasurementOptions& base) {
  const RunArtifacts reference = run_once(base, 1, Schedule::kStatic);
  ASSERT_FALSE(reference.table.empty());
  ASSERT_FALSE(reference.journal.empty());
  for (const int threads : {1, 4, 16}) {
    for (const Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
      if (threads == 1 && schedule == Schedule::kStatic) continue;
      const RunArtifacts run = run_once(base, threads, schedule);
      EXPECT_EQ(run.table, reference.table)
          << "table differs at threads=" << threads << " schedule=" << to_string(schedule);
      EXPECT_EQ(run.journal, reference.journal)
          << "journal differs at threads=" << threads
          << " schedule=" << to_string(schedule);
    }
  }
}

TEST(CampaignScheduler, TableAndJournalBytesInvariantAcrossThreadsAndSchedules) {
  expect_identical_across_schedules(fast_options());
}

TEST(CampaignScheduler, TableAndJournalBytesInvariantAcrossTreeBuilders) {
  // The presort training kernel must be invisible at campaign level: a run
  // with the fast builder produces the same masked table and journal bytes
  // as a run through ReferenceTreeBuilder (the pre-kernel per-node-sort
  // path every earlier campaign used).
  const MeasurementOptions opt = fast_options();
  set_active_tree_builder(TreeBuilder::kReference);
  const RunArtifacts reference = run_once(opt, 2, Schedule::kStatic);
  set_active_tree_builder(TreeBuilder::kFast);
  ASSERT_FALSE(reference.table.empty());
  const RunArtifacts fast = run_once(opt, 2, Schedule::kStatic);
  EXPECT_EQ(fast.table, reference.table);
  EXPECT_EQ(fast.journal, reference.journal);
}

TEST(CampaignScheduler, TableAndJournalBytesInvariantAcrossTrainStateReuse) {
  // The session-scoped TrainContext (shared tree presorts + kNN norms
  // across a session's cells) must be invisible at campaign level: with
  // reuse disabled every fit rebuilds its state from scratch, and the
  // masked table and journal bytes must not move.
  MeasurementOptions fresh = fast_options();
  fresh.reuse_train_state = false;
  const RunArtifacts reference = run_once(fresh, 2, Schedule::kStatic);
  ASSERT_FALSE(reference.table.empty());
  MeasurementOptions reused = fast_options();
  reused.reuse_train_state = true;
  const RunArtifacts run = run_once(reused, 2, Schedule::kStatic);
  EXPECT_EQ(run.table, reference.table);
  EXPECT_EQ(run.journal, reference.journal);
}

TEST(CampaignScheduler, TableAndJournalBytesInvariantAcrossPredictKernels) {
  // The flat prediction kernels must be invisible at campaign level: a run
  // under PredictKernel::kReference (the pre-kernel per-row walks) produces
  // the same masked table and journal bytes as the flat default.
  const MeasurementOptions opt = fast_options();
  set_active_predict_kernel(PredictKernel::kReference);
  const RunArtifacts reference = run_once(opt, 2, Schedule::kStatic);
  set_active_predict_kernel(PredictKernel::kFlat);
  ASSERT_FALSE(reference.table.empty());
  const RunArtifacts flat = run_once(opt, 2, Schedule::kStatic);
  EXPECT_EQ(flat.table, reference.table);
  EXPECT_EQ(flat.journal, reference.journal);
}

TEST(CampaignScheduler, InvariantUnderFaultsChaosAndBreakers) {
  MeasurementOptions opt = fast_options();
  opt.campaign.fault_rate = 0.2;
  opt.campaign.retry_budget = 2;
  opt.campaign.chaos_profile = "storm";
  opt.campaign.breaker.enabled = true;
  expect_identical_across_schedules(opt);
}

TEST(CampaignScheduler, ReportsSchedulerTelemetry) {
  MeasurementOptions opt = fast_options();
  opt.threads = 2;
  opt.schedule = Schedule::kDynamic;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  const SchedulerStats& s = result.report.scheduler;
  EXPECT_EQ(s.schedule, "dynamic");
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.sessions, skewed_corpus().size() * small_roster().size());
  EXPECT_EQ(s.worker_busy_seconds.size(), s.workers);
  EXPECT_GE(s.makespan_seconds, 0.0);
  EXPECT_GE(s.imbalance(), 1.0);
  EXPECT_GE(s.busy_seconds(), 0.0);
}

TEST(CampaignScheduler, StaticScheduleReportsItself) {
  MeasurementOptions opt = fast_options();
  opt.threads = 2;
  opt.schedule = Schedule::kStatic;
  const CampaignResult result = run_campaign(skewed_corpus(), small_roster(), opt);
  EXPECT_EQ(result.report.scheduler.schedule, "static");
  EXPECT_EQ(result.report.scheduler.sessions_stolen, 0u);
}

TEST(CampaignScheduler, ParseScheduleRejectsUnknownNames) {
  EXPECT_EQ(parse_schedule("static"), Schedule::kStatic);
  EXPECT_EQ(parse_schedule("dynamic"), Schedule::kDynamic);
  EXPECT_THROW(parse_schedule("stolen"), std::invalid_argument);
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
}

TEST(CampaignScheduler, NegativeThreadCountIsRejected) {
  MeasurementOptions opt = fast_options();
  opt.threads = -1;
  EXPECT_THROW(run_campaign(skewed_corpus(), small_roster(), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
