#include "eval/variation.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

Measurement row(const std::string& platform, const std::string& clf, const std::string& params,
                double f, const std::string& dataset, bool default_params = false,
                const std::string& feat = "none") {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = platform;
  m.feature_step = feat;
  m.classifier = clf;
  m.params = params;
  m.default_params = default_params;
  m.test.f_score = f;
  return m;
}

MeasurementTable demo() {
  MeasurementTable t;
  // Config A averages 0.5, config B averages 0.9 across two datasets.
  t.add(row("P", "logistic_regression", "", 0.4, "d1", true));
  t.add(row("P", "logistic_regression", "", 0.6, "d2", true));
  t.add(row("P", "boosted_trees", "", 0.85, "d1", true));
  t.add(row("P", "boosted_trees", "", 0.95, "d2", true));
  return t;
}

TEST(Variation, ConfigAveragesAcrossDatasets) {
  const auto averages = config_averages(demo(), "P");
  ASSERT_EQ(averages.size(), 2u);
  // Sorted by config key (boosted < logistic lexicographically).
  EXPECT_NEAR(averages[0] + averages[1], 1.4, 1e-12);
}

TEST(Variation, OverallSummary) {
  const auto v = overall_variation(demo(), "P");
  EXPECT_EQ(v.n_configs, 2u);
  EXPECT_NEAR(v.min_f, 0.5, 1e-12);
  EXPECT_NEAR(v.max_f, 0.9, 1e-12);
  EXPECT_NEAR(v.range(), 0.4, 1e-12);
  EXPECT_NEAR(v.median_f, 0.7, 1e-12);
}

TEST(Variation, EmptyPlatformIsZero) {
  const auto v = overall_variation(demo(), "missing");
  EXPECT_EQ(v.n_configs, 0u);
  EXPECT_DOUBLE_EQ(v.range(), 0.0);
}

TEST(Variation, DimensionNormalization) {
  MeasurementTable t = demo();
  // Add a PARA-varied LR row making the PARA-only range 0.2.
  t.add(row("P", "logistic_regression", "C=100", 0.6, "d1"));
  t.add(row("P", "logistic_regression", "C=100", 0.8, "d2"));
  const auto dims = dimension_variations(t, {"P"});
  for (const auto& d : dims) {
    if (d.dimension == ControlDimension::kClf) {
      EXPECT_TRUE(d.supported);
      EXPECT_NEAR(d.normalized_range, 1.0, 1e-9);  // CLF spans the full range
    }
    if (d.dimension == ControlDimension::kPara) {
      EXPECT_TRUE(d.supported);
      EXPECT_NEAR(d.range, 0.2, 1e-9);
      EXPECT_NEAR(d.normalized_range, 0.5, 1e-9);
    }
    if (d.dimension == ControlDimension::kFeat) EXPECT_FALSE(d.supported);
  }
}

TEST(Variation, ClfDominatesVariationInFixture) {
  // §5.2's finding: classifier choice is the largest variation contributor.
  MeasurementTable t = demo();
  t.add(row("P", "logistic_regression", "C=100", 0.55, "d1"));
  t.add(row("P", "logistic_regression", "C=100", 0.65, "d2"));
  const auto dims = dimension_variations(t, {"P"});
  double clf = 0, para = 0;
  for (const auto& d : dims) {
    if (d.dimension == ControlDimension::kClf) clf = d.range;
    if (d.dimension == ControlDimension::kPara) para = d.range;
  }
  EXPECT_GT(clf, para);
}

}  // namespace
}  // namespace mlaas
