#include "eval/report.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

PlatformSummary summary(const std::string& name, double f, double rank) {
  PlatformSummary s;
  s.platform = name;
  s.avg.f_score = f;
  s.avg.accuracy = f;
  s.avg.precision = f;
  s.avg.recall = f;
  s.rank_f = s.rank_acc = s.rank_prec = s.rank_rec = rank;
  s.avg_rank = rank;
  return s;
}

TEST(Report, PlatformSummariesContainValuesAndRanks) {
  const auto text = render_platform_summaries(
      "Table 3(a)", {summary("Amazon", 0.748, 253.7), summary("Google", 0.706, 267.7)});
  EXPECT_NE(text.find("Table 3(a)"), std::string::npos);
  EXPECT_NE(text.find("Amazon"), std::string::npos);
  EXPECT_NE(text.find("0.748 (253.7)"), std::string::npos);
}

TEST(Report, Fig4OrdersByGivenComplexity) {
  const auto text = render_fig4({summary("Google", 0.7, 2), summary("Local", 0.67, 1)},
                                {summary("Google", 0.7, 2), summary("Local", 0.84, 1)},
                                {"Google", "Local"});
  const auto google_pos = text.find("Google");
  const auto local_pos = text.find("Local");
  EXPECT_NE(google_pos, std::string::npos);
  EXPECT_LT(google_pos, local_pos);
  EXPECT_NE(text.find("0.840"), std::string::npos);
}

TEST(Report, Fig4SkipsMissingPlatforms) {
  const auto text = render_fig4({summary("Google", 0.7, 1)}, {summary("Google", 0.7, 1)},
                                {"Google", "Atlantis"});
  EXPECT_EQ(text.find("Atlantis"), std::string::npos);
}

TEST(Report, Fig5MarksUnsupportedAsNoData) {
  ControlImprovement supported{"P", ControlDimension::kClf, 0.5, 0.6, 0.2, true};
  ControlImprovement missing{"P", ControlDimension::kFeat, 0.5, 0.0, 0.0, false};
  const auto text = render_fig5({supported, missing});
  EXPECT_NE(text.find("20.0%"), std::string::npos);
  EXPECT_NE(text.find("no data"), std::string::npos);
}

TEST(Report, Fig6ShowsRangeColumns) {
  VariationSummary v;
  v.platform = "Microsoft";
  v.min_f = 0.49;
  v.q1_f = 0.6;
  v.median_f = 0.7;
  v.q3_f = 0.73;
  v.max_f = 0.75;
  v.n_configs = 42;
  const auto text = render_fig6({v});
  EXPECT_NE(text.find("0.490"), std::string::npos);
  EXPECT_NE(text.find("0.260"), std::string::npos);  // range
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(Report, Fig8AlignsCurvesByK) {
  SubsetCurve a;
  a.platform = "Local";
  a.points = {{1, 0.6, 0.0}, {2, 0.7, 0.0}};
  SubsetCurve b;
  b.platform = "BigML";
  b.points = {{1, 0.5, 0.0}};
  const auto text = render_fig8({a, b});
  EXPECT_NE(text.find("Local"), std::string::npos);
  EXPECT_NE(text.find("BigML"), std::string::npos);
  EXPECT_NE(text.find("0.700"), std::string::npos);
}

TEST(Report, Table4UsesAbbreviationsAndPercent) {
  const auto text = render_table4(
      "Table 4(a)", {"Local"},
      {{{"boosted_trees", 0.244}, {"knn", 0.126}, {"decision_tree", 0.109},
        {"random_forest", 0.109}, {"mlp", 0.05}}});
  EXPECT_NE(text.find("BST (24.4%)"), std::string::npos);
  EXPECT_NE(text.find("KNN"), std::string::npos);
  // Only top 4 shown.
  EXPECT_EQ(text.find("MLP"), std::string::npos);
}

}  // namespace
}  // namespace mlaas
