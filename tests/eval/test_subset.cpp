#include "eval/subset_analysis.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

TEST(ExpectedSubsetMax, FullSubsetIsMaximum) {
  EXPECT_DOUBLE_EQ(expected_subset_max({0.3, 0.9, 0.5}, 3), 0.9);
}

TEST(ExpectedSubsetMax, SingletonIsMean) {
  EXPECT_NEAR(expected_subset_max({0.2, 0.4, 0.6}, 1), 0.4, 1e-12);
}

TEST(ExpectedSubsetMax, MatchesBruteForceK2) {
  // Values {a,b,c}: subsets {ab, ac, bc} -> E[max] = (max(ab)+max(ac)+max(bc))/3.
  const std::vector<double> v{0.2, 0.7, 0.5};
  const double brute = (0.7 + 0.5 + 0.7) / 3.0;
  EXPECT_NEAR(expected_subset_max(v, 2), brute, 1e-12);
}

TEST(ExpectedSubsetMax, MatchesBruteForceK3of5) {
  const std::vector<double> v{0.1, 0.9, 0.4, 0.6, 0.3};
  // Brute-force over all C(5,3)=10 subsets.
  double total = 0.0;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      for (int k = j + 1; k < 5; ++k) {
        total += std::max({v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)],
                           v[static_cast<std::size_t>(k)]});
        ++count;
      }
    }
  }
  EXPECT_NEAR(expected_subset_max(v, 3), total / count, 1e-12);
}

TEST(ExpectedSubsetMax, MonotoneInK) {
  const std::vector<double> v{0.1, 0.3, 0.5, 0.7, 0.9};
  double prev = 0.0;
  for (int k = 1; k <= 5; ++k) {
    const double e = expected_subset_max(v, k);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(ExpectedSubsetMax, RejectsBadK) {
  EXPECT_THROW(expected_subset_max({0.5}, 0), std::invalid_argument);
  EXPECT_THROW(expected_subset_max({0.5}, 2), std::invalid_argument);
}

Measurement row(const std::string& clf, double f, const std::string& dataset) {
  Measurement m;
  m.dataset_id = dataset;
  m.platform = "P";
  m.feature_step = "none";
  m.classifier = clf;
  m.test.f_score = f;
  return m;
}

TEST(SubsetCurve, CurveRisesTowardBestClassifier) {
  MeasurementTable t;
  for (const auto& d : {"d1", "d2"}) {
    t.add(row("logistic_regression", 0.5, d));
    t.add(row("decision_tree", 0.7, d));
    t.add(row("boosted_trees", 0.9, d));
  }
  const auto curve = classifier_subset_curve(t, "P");
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_NEAR(curve.points[0].expected_best_f, 0.7, 1e-12);  // mean
  EXPECT_NEAR(curve.points[2].expected_best_f, 0.9, 1e-12);  // all -> max
  EXPECT_GT(curve.points[1].expected_best_f, curve.points[0].expected_best_f);
}

TEST(SubsetCurve, UsesBestConfigPerClassifier) {
  MeasurementTable t;
  t.add(row("logistic_regression", 0.4, "d1"));
  Measurement tuned = row("logistic_regression", 0.8, "d1");
  tuned.params = "C=100";
  t.add(tuned);
  const auto curve = classifier_subset_curve(t, "P");
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_NEAR(curve.points[0].expected_best_f, 0.8, 1e-12);
}

TEST(SubsetCurve, IgnoresFeatureRowsAndAuto) {
  MeasurementTable t;
  t.add(row("logistic_regression", 0.5, "d1"));
  Measurement feat = row("logistic_regression", 0.99, "d1");
  feat.feature_step = "standard_scaler";
  t.add(feat);
  Measurement blackbox = row("auto", 0.99, "d1");
  t.add(blackbox);
  const auto curve = classifier_subset_curve(t, "P");
  ASSERT_EQ(curve.points.size(), 1u);
  EXPECT_NEAR(curve.points[0].expected_best_f, 0.5, 1e-12);
}

}  // namespace
}  // namespace mlaas
