#include "util/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "platform/service.h"

namespace mlaas {
namespace {

TEST(MetricsRegistry, KeepsRegistrationOrder) {
  MetricsRegistry r;
  r.counter("zeta") = 1.0;
  r.counter("alpha") = 2.0;
  r.gauge("mid") = 3.0;
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.entries()[0].name, "zeta");
  EXPECT_EQ(r.entries()[1].name, "alpha");
  EXPECT_EQ(r.entries()[2].name, "mid");
  EXPECT_EQ(r.entries()[2].kind, MetricsRegistry::Kind::kGauge);
}

TEST(MetricsRegistry, CounterIsRegisterOrLookup) {
  MetricsRegistry r;
  r.counter("hits") += 2.0;
  r.counter("hits") += 3.0;
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.value("hits"), 5.0);
  EXPECT_TRUE(r.contains("hits"));
  EXPECT_FALSE(r.contains("misses"));
  EXPECT_THROW(r.value("misses"), std::out_of_range);
}

TEST(MetricsRegistry, MergeAddsCountersOverwritesGauges) {
  MetricsRegistry a;
  a.counter("requests") = 10.0;
  a.gauge("depth") = 3.0;
  MetricsRegistry b;
  b.counter("requests") = 5.0;
  b.gauge("depth") = 7.0;
  b.counter("new_only") = 1.0;
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("requests"), 15.0);
  EXPECT_DOUBLE_EQ(a.value("depth"), 7.0);
  // Unknown entries append in the other registry's order, keeping the
  // merged encoding deterministic.
  EXPECT_EQ(a.entries().back().name, "new_only");
}

TEST(MetricsRegistry, EncodeFormatsIntegersWithoutDecimalPoint) {
  MetricsRegistry r;
  r.counter("count") = 42.0;
  r.counter("ratio") = 0.5;
  EXPECT_EQ(r.encode(), "count=42;ratio=0.5");
}

TEST(MetricsRegistry, EncodeRoundTripsDoublesExactly) {
  const double v = 0.1 + 0.2;  // classic non-representable sum
  EXPECT_EQ(std::stod(format_metric_value(v)), v);
  EXPECT_EQ(format_metric_value(3.0), "3");
  EXPECT_EQ(format_metric_value(-17.0), "-17");
}

TEST(MetricsRegistry, WriteJsonPreservesOrder) {
  MetricsRegistry r;
  r.counter("b") = 2.0;
  r.counter("a") = 1.0;
  std::ostringstream out;
  r.write_json(out);
  const std::string json = out.str();
  EXPECT_LT(json.find("\"b\""), json.find("\"a\""));
}

/// Toy stats struct exercising the visit_fields contract directly.
struct ToyStats {
  std::size_t count = 0;
  double seconds = 0.0;

  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("count", self.count);
    visit("seconds", self.seconds);
  }
};

TEST(MetricsStats, MergeStatsAddsFieldwise) {
  ToyStats a, b;
  a.count = 3;
  a.seconds = 1.5;
  b.count = 4;
  b.seconds = 2.25;
  merge_stats(a, b);
  EXPECT_EQ(a.count, 7u);
  EXPECT_DOUBLE_EQ(a.seconds, 3.75);
}

TEST(MetricsStats, RegisterStatsAggregatesRepeatedCalls) {
  ToyStats a;
  a.count = 2;
  a.seconds = 0.5;
  MetricsRegistry r;
  register_stats(r, "toy.", a);
  register_stats(r, "toy.", a);
  EXPECT_DOUBLE_EQ(r.value("toy.count"), 4.0);
  EXPECT_DOUBLE_EQ(r.value("toy.seconds"), 1.0);
  EXPECT_EQ(r.entries()[0].name, "toy.count");
}

TEST(MetricsStats, ServiceStatsMergeMatchesLegacyFieldList) {
  // ServiceStats::merge now routes through merge_stats; this locks that the
  // visitor covers every counter the hand-rolled version added.
  ServiceStats a, b;
  a.requests = 3;
  a.uploads = 1;
  a.train_cpu_seconds = 0.5;
  a.predict_cpu_seconds = 0.125;
  b.requests = 2;
  b.trainings = 4;
  b.predictions = 9;
  b.datasets_deleted = 1;
  b.models_deleted = 2;
  b.rate_limited = 5;
  b.transient_errors = 6;
  b.server_errors = 7;
  b.unavailable = 8;
  b.train_cpu_seconds = 0.25;
  b.predict_cpu_seconds = 0.375;
  a.merge(b);
  EXPECT_EQ(a.requests, 5u);
  EXPECT_EQ(a.uploads, 1u);
  EXPECT_EQ(a.trainings, 4u);
  EXPECT_EQ(a.predictions, 9u);
  EXPECT_EQ(a.datasets_deleted, 1u);
  EXPECT_EQ(a.models_deleted, 2u);
  EXPECT_EQ(a.rate_limited, 5u);
  EXPECT_EQ(a.transient_errors, 6u);
  EXPECT_EQ(a.server_errors, 7u);
  EXPECT_EQ(a.unavailable, 8u);
  EXPECT_DOUBLE_EQ(a.train_cpu_seconds, 0.75);
  EXPECT_DOUBLE_EQ(a.predict_cpu_seconds, 0.5);
}

}  // namespace
}  // namespace mlaas
