#include "util/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace mlaas {
namespace {

TEST(TraceTrack, RecordsSpansAndInstantsInOrder) {
  TraceTrack track("t");
  track.span("service", "upload", 0.0, 1.5, {{"rows", "80"}});
  track.instant("breaker", "open", 2.0);
  ASSERT_EQ(track.size(), 2u);
  EXPECT_EQ(track.dropped(), 0u);
  std::vector<std::string> names;
  track.for_each([&](const TraceEvent& e) { names.push_back(e.name); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "upload");
  EXPECT_EQ(names[1], "open");
}

TEST(TraceTrack, RingOverflowDropsOldestAndCounts) {
  TraceTrack track("t", /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    track.instant("c", "e" + std::to_string(i), static_cast<double>(i));
  }
  EXPECT_EQ(track.size(), 4u);
  EXPECT_EQ(track.dropped(), 6u);
  // The four youngest events survive, oldest-first.
  std::vector<std::string> names;
  track.for_each([&](const TraceEvent& e) { names.push_back(e.name); });
  EXPECT_EQ(names, (std::vector<std::string>{"e6", "e7", "e8", "e9"}));
}

TEST(Trace, TrackIsCreateOrGetInCanonicalOrder) {
  Trace trace;
  TraceTrack& a = trace.track("alpha");
  TraceTrack& b = trace.track("beta");
  EXPECT_EQ(&trace.track("alpha"), &a);
  EXPECT_EQ(&trace.track("beta"), &b);
  EXPECT_EQ(trace.track_count(), 2u);
}

TEST(Trace, AdoptAppendsFinishedTracks) {
  Trace trace;
  TraceTrack standalone("worker");
  standalone.span("c", "s", 0.0, 1.0);
  trace.adopt(std::move(standalone));
  EXPECT_EQ(trace.track_count(), 1u);
  EXPECT_EQ(trace.span_count(), 1u);
  EXPECT_EQ(trace.instant_count(), 0u);
  EXPECT_EQ(trace.event_count(), 1u);
}

TEST(Trace, MetricsCountPerCategory) {
  Trace trace;
  TraceTrack& t = trace.track("t");
  t.span("service", "upload", 0.0, 1.0);
  t.span("service", "train", 1.0, 2.0);
  t.instant("breaker", "open", 3.0);
  const MetricsRegistry m = trace.metrics();
  EXPECT_DOUBLE_EQ(m.value("tracks"), 1.0);
  EXPECT_DOUBLE_EQ(m.value("spans"), 2.0);
  EXPECT_DOUBLE_EQ(m.value("instants"), 1.0);
  EXPECT_DOUBLE_EQ(m.value("dropped"), 0.0);
  EXPECT_DOUBLE_EQ(m.value("cat:service"), 2.0);
  EXPECT_DOUBLE_EQ(m.value("cat:breaker"), 1.0);
  EXPECT_EQ(trace.summary(), m.encode());
}

TEST(Trace, ChromeJsonShape) {
  Trace trace;
  TraceTrack& t = trace.track("router");
  t.span("serving", "flush", 1.0, 0.5, {{"cause", "full"}});
  t.instant("breaker", "open", 2.0, {{"platform", "Google"}});
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  // Metadata record names the track, events carry pid/tid and microsecond
  // timestamps, instants have the "t" scope, and the document closes with
  // the display unit.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"cause\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // 1.0 s -> 1e6 us.
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
}

TEST(Trace, ChromeJsonEscapesStrings) {
  Trace trace;
  trace.track("t").instant("c", "quote\"back\\slash", 0.0,
                           {{"k", "line\nbreak\ttab"}});
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak\\ttab"), std::string::npos);
}

TEST(Trace, ChromeJsonIsByteStableAcrossIdenticalBuilds) {
  auto build = [] {
    Trace trace;
    TraceTrack& a = trace.track("a");
    for (int i = 0; i < 50; ++i) {
      a.span("c", "s" + std::to_string(i), i * 0.1, 0.05,
             {{"i", std::to_string(i)}});
    }
    trace.track("b").instant("c", "end", 5.0);
    std::ostringstream out;
    trace.write_chrome_json(out);
    return out.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(Trace, DroppedEventsSurfaceInSummary) {
  Trace trace(/*track_capacity=*/2);
  TraceTrack& t = trace.track("t");
  for (int i = 0; i < 5; ++i) t.instant("c", "e", static_cast<double>(i));
  EXPECT_EQ(trace.dropped(), 3u);
  EXPECT_NE(trace.summary().find("dropped=3"), std::string::npos);
}

}  // namespace
}  // namespace mlaas
