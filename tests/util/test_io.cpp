#include "util/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "eval/measurement.h"
#include "platform/serving.h"
#include "util/trace.h"

namespace mlaas {
namespace {

/// A path that cannot be opened for writing: a component of the directory
/// chain is a regular file.
std::string unopenable_path() {
  const std::string file = testing::TempDir() + "io_not_a_dir";
  std::ofstream(file) << "plain file\n";
  return file + "/nested/out.tsv";
}

bool dev_full_available() {
  std::ifstream probe("/dev/full");
  return probe.good();
}

TEST(SidecarIo, OpenFailureThrowsWithPath) {
  const std::string path = unopenable_path();
  try {
    open_sidecar(path, "TestWriter");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("TestWriter"), std::string::npos);
  }
}

TEST(SidecarIo, WriteFailureThrowsWithPath) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // exact "disk filled up mid-report" failure the unchecked writers
  // swallowed (they exited 0 leaving a truncated file).
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  std::ofstream out = open_sidecar("/dev/full", "TestWriter");
  out << std::string(1 << 20, 'x');  // larger than libstdc++'s buffer
  try {
    finish_sidecar(out, "/dev/full", "TestWriter");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos) << e.what();
  }
}

TEST(SidecarIo, SuccessfulWriteIsSilent) {
  const std::string path = testing::TempDir() + "io_ok.tsv";
  std::ofstream out = open_sidecar(path, "TestWriter");
  out << "hello\n";
  EXPECT_NO_THROW(finish_sidecar(out, path, "TestWriter"));
}

// Every report writer must surface both failure modes instead of exiting 0
// with a truncated sidecar (the ISSUE bug: none of them checked the stream).

TEST(SidecarIo, MeasurementTableSaveCsvChecksTheStream) {
  MeasurementTable table;
  Measurement m;
  m.dataset_id = "ds";
  m.platform = "Local";
  table.add(m);
  EXPECT_THROW(table.save_csv(unopenable_path()), std::runtime_error);
  if (dev_full_available()) {
    EXPECT_THROW(table.save_csv("/dev/full"), std::runtime_error);
  }
}

TEST(SidecarIo, CampaignReportWritersCheckTheStream) {
  CampaignReport report;
  PlatformCampaignStats p;
  p.platform = "Local";
  p.cells_total = 4;
  report.platforms.push_back(p);
  EXPECT_THROW(report.save_tsv(unopenable_path()), std::runtime_error);
  EXPECT_THROW(report.save_json(unopenable_path()), std::runtime_error);
  if (dev_full_available()) {
    // The report fits inside the stream buffer, so the open-time write
    // succeeds and only the flush can report ENOSPC.
    EXPECT_THROW(report.save_tsv("/dev/full"), std::runtime_error);
    EXPECT_THROW(report.save_json("/dev/full"), std::runtime_error);
  }
}

TEST(SidecarIo, ServingReportWritersCheckTheStream) {
  ServingReport report;
  report.totals.requests = 1;
  EXPECT_THROW(report.save_tsv(unopenable_path()), std::runtime_error);
  EXPECT_THROW(report.save_json(unopenable_path()), std::runtime_error);
  if (dev_full_available()) {
    EXPECT_THROW(report.save_tsv("/dev/full"), std::runtime_error);
    EXPECT_THROW(report.save_json("/dev/full"), std::runtime_error);
  }
}

TEST(SidecarIo, TraceSaveJsonChecksTheStream) {
  Trace trace;
  trace.track("t").instant("c", "e", 0.0);
  EXPECT_THROW(trace.save_json(unopenable_path()), std::runtime_error);
  if (dev_full_available()) {
    EXPECT_THROW(trace.save_json("/dev/full"), std::runtime_error);
  }
}

TEST(SidecarIo, SavedReportRoundTripsAfterCheckedWrite) {
  // The checked writers must not change the bytes, only verify them.
  CampaignReport report;
  PlatformCampaignStats p;
  p.platform = "Local";
  p.cells_total = 2;
  p.cells_ok = 2;
  report.platforms.push_back(p);
  report.scheduler.workers = 1;
  report.scheduler.schedule = "dynamic";
  const std::string path = testing::TempDir() + "io_roundtrip.campaign.tsv";
  report.save_tsv(path);
  const auto loaded = CampaignReport::load_tsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->platforms.size(), 1u);
  EXPECT_EQ(loaded->platforms[0].cells_total, 2u);
  EXPECT_EQ(loaded->scheduler.schedule, "dynamic");
}

}  // namespace
}  // namespace mlaas
