#include "util/cli.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

CliFlags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliFlags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliFlags, ParsesSpaceSeparated) {
  const auto flags = parse({"--seed", "99"});
  EXPECT_EQ(flags.int_or("seed", 0), 99);
}

TEST(CliFlags, ParsesEqualsForm) {
  const auto flags = parse({"--scale=2.5"});
  EXPECT_DOUBLE_EQ(flags.double_or("scale", 1.0), 2.5);
}

TEST(CliFlags, BareFlagIsTrue) {
  const auto flags = parse({"--quick"});
  EXPECT_TRUE(flags.bool_or("quick", false));
}

TEST(CliFlags, MissingUsesDefault) {
  const auto flags = parse({});
  EXPECT_EQ(flags.get_or("name", "def"), "def");
  EXPECT_EQ(flags.int_or("n", 7), 7);
  EXPECT_FALSE(flags.get("anything").has_value());
}

TEST(CliFlags, RejectsPositional) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(BenchOptions, ParsesAll) {
  std::vector<const char*> argv{"prog", "--seed", "5", "--scale", "0.5", "--quick"};
  const auto opt = parse_bench_options(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opt.seed, 5u);
  EXPECT_DOUBLE_EQ(opt.scale, 0.5);
  EXPECT_TRUE(opt.quick);
  EXPECT_EQ(opt.schedule, "dynamic");  // default
}

TEST(BenchOptions, NegativeThreadsRejectedAtParseTime) {
  // The historical crash: --threads -1 passed through a size_t cast and
  // asked the pool for ~2^64 workers.  It must die here, with a usage
  // error, before any campaign machinery runs.
  std::vector<const char*> argv{"prog", "--threads=-1"};
  EXPECT_THROW(parse_bench_options(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
  std::vector<const char*> argv2{"prog", "--threads=-1000000"};
  EXPECT_THROW(parse_bench_options(static_cast<int>(argv2.size()), argv2.data()),
               std::invalid_argument);
}

TEST(BenchOptions, ZeroThreadsMeansHardware) {
  std::vector<const char*> argv{"prog", "--threads", "0"};
  const auto opt = parse_bench_options(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(opt.threads, 0);
}

TEST(BenchOptions, ScheduleValidated) {
  std::vector<const char*> good{"prog", "--schedule", "static"};
  EXPECT_EQ(parse_bench_options(static_cast<int>(good.size()), good.data()).schedule,
            "static");
  std::vector<const char*> bad{"prog", "--schedule", "roundrobin"};
  EXPECT_THROW(parse_bench_options(static_cast<int>(bad.size()), bad.data()),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
