#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

namespace mlaas {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, TaskExceptionsPropagateViaFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsAfterAllTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 99) throw std::runtime_error("task 99 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 99 failed");
  }
  // Every other index ran to completion before the rethrow: the loop must
  // not abandon in-flight chunks (their callable would dangle).
  EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, ParallelForFirstExceptionWins) {
  ThreadPool pool(2);
  // Two failing indices across different chunks: exactly one exception
  // surfaces, and it is the one from the lowest-index chunk joined first.
  try {
    pool.parallel_for(10, [&](std::size_t i) {
      if (i == 0 || i == 9) throw std::runtime_error("fail " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "fail 0");
  }
}

TEST(ThreadPool, ParallelForHandlesZeroAndHugeCounts) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Far more indices than workers: chunking must still cover every index
  // exactly once.
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RejectsAbsurdThreadCounts) {
  // The historical bug: --threads -1 cast through size_t asked for ~2^64
  // workers and took the process down.  The pool now rejects anything past
  // its defensive ceiling instead of trying to spawn it.
  EXPECT_THROW(ThreadPool(static_cast<std::size_t>(-1)), std::invalid_argument);
  EXPECT_THROW(ThreadPool(ThreadPool::kMaxThreads + 1), std::invalid_argument);
}

TEST(ThreadPool, DynamicCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_dynamic(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DynamicEmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelStats stats;
  pool.parallel_for_dynamic(0, [&](std::size_t) { ++calls; }, &stats);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.stolen, 0u);
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(ThreadPool, DynamicPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for_dynamic(100, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("item 3 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected the item exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "item 3 failed");
  }
  // After the failure workers stop claiming fresh tickets, so not every
  // index needs to have run — but nothing may run twice or crash.
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPool, DynamicStatsAccountForEveryItem) {
  ThreadPool pool(3);
  ParallelStats stats;
  pool.parallel_for_dynamic(50, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.busy_seconds.size(), stats.items.size());
  std::size_t total = 0;
  for (std::size_t n : stats.items) total += n;
  EXPECT_EQ(total, 50u);
  EXPECT_GE(stats.makespan_seconds, 0.0);
  EXPECT_GE(stats.imbalance(), 1.0);
}

TEST(ThreadPool, DynamicStealsFromSkewedWork) {
  // One item sleeps while the rest are instant.  With a static partition,
  // the sleeper's owner would also run its other 3 items; dynamic dispatch
  // moves them to the idle worker, which the stolen counter must record.
  ThreadPool pool(2);
  ParallelStats stats;
  pool.parallel_for_dynamic(
      8,
      [](std::size_t i) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
      },
      &stats);
  EXPECT_GE(stats.stolen, 1u);
  std::size_t total = 0;
  for (std::size_t n : stats.items) total += n;
  EXPECT_EQ(total, 8u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace mlaas
