#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mlaas {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) differing += a.next() != b.next() ? 1 : 0;
  EXPECT_GT(differing, 28);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(9);
  std::set<long long> seen;
  for (int i = 0; i < 1000; ++i) {
    const long long v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceProbabilityRoughlyRespected) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(31);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(37);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(DeriveSeed, DistinctSaltsGiveDistinctSeeds) {
  const auto a = derive_seed(42, "alpha");
  const auto b = derive_seed(42, "beta");
  EXPECT_NE(a, b);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(42, "x"), derive_seed(42, "x"));
  EXPECT_EQ(derive_seed(7, 99), derive_seed(7, 99));
}

TEST(Hash64, StableAndSpread) {
  EXPECT_EQ(hash64("abc"), hash64("abc"));
  EXPECT_NE(hash64("abc"), hash64("abd"));
  EXPECT_NE(hash64(""), hash64("a"));
}

}  // namespace
}  // namespace mlaas
