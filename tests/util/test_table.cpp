#include "util/table.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"A", "B", "C"});
  t.add_row({"only-one"});
  EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable t({"X", "Y"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-cell", "2"});
  const std::string s = t.str();
  // All lines must share the same width.
  std::size_t expected = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, expected);
    pos = next + 1;
  }
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.12345, 3), "0.123");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
}

TEST(Fmt, WithRank) { EXPECT_EQ(fmt_with_rank(0.748, 250.5), "0.748 (250.5)"); }

TEST(Fmt, Percent) { EXPECT_EQ(fmt_pct(0.146), "14.6%"); }

TEST(RenderCdf, MonotoneOutput) {
  const std::string s = render_cdf({5.0, 1.0, 3.0, 2.0, 4.0}, 5, "v");
  EXPECT_NE(s.find("v\tCDF"), std::string::npos);
  EXPECT_NE(s.find("5.0000\t1.000"), std::string::npos);
}

TEST(RenderCdf, EmptyInput) { EXPECT_EQ(render_cdf({}, 5), "(empty)\n"); }

TEST(AsciiCanvas, PlotsWithinBounds) {
  AsciiCanvas canvas(10, 5, 0.0, 1.0, 0.0, 1.0);
  canvas.plot(0.05, 0.9, '#');
  canvas.plot(5.0, 5.0, 'X');  // out of bounds, ignored
  const std::string s = canvas.str();
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_EQ(s.find('X'), std::string::npos);
}

TEST(AsciiCanvas, VerticalOrientationFlipped) {
  AsciiCanvas canvas(3, 3, 0.0, 1.0, 0.0, 1.0);
  canvas.plot(0.1, 0.9, 'T');  // high y should appear on the first line
  const std::string s = canvas.str();
  EXPECT_LT(s.find('T'), s.find('\n'));
}

}  // namespace
}  // namespace mlaas
