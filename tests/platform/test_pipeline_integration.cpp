// Integration sweep: every FEAT step of the configurable platforms crossed
// with representative classifiers must produce a working pipeline whose
// accuracy stays above chance.  This catches shape mismatches between
// transformers and classifiers (e.g. Fisher-LDA extraction reducing to one
// column) that unit tests of either side would miss.
#include <gtest/gtest.h>

#include "platform/all_platforms.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

struct PipelineCase {
  std::string platform;
  std::string feature_step;
  std::string classifier;
};

void PrintTo(const PipelineCase& c, std::ostream* os) {
  *os << c.platform << "/" << c.feature_step << "/" << c.classifier;
}

std::vector<PipelineCase> all_feat_clf_cases() {
  std::vector<PipelineCase> cases;
  for (const auto& platform_name : {"Microsoft", "Local"}) {
    const auto platform = make_platform(platform_name);
    const ControlSurface surface = platform->controls();
    for (const auto& feat : surface.feature_steps) {
      // One linear + one tree classifier per FEAT step keeps runtime sane
      // while exercising every transformer.
      cases.push_back({platform_name, feat, "logistic_regression"});
      cases.push_back({platform_name, feat,
                       surface.find("boosted_trees") ? "boosted_trees" : "decision_tree"});
    }
  }
  return cases;
}

class FeatClfPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(FeatClfPipeline, TrainsAndStaysAboveChance) {
  const PipelineCase& c = GetParam();
  const auto platform = make_platform(c.platform);
  // 12-feature problem with redundancy: every filter keeps something useful.
  MakeClassificationOptions opt;
  opt.n_samples = 240;
  opt.n_features = 12;
  opt.n_informative = 6;
  opt.n_redundant = 3;
  opt.class_sep = 1.5;
  const Dataset ds = make_classification(opt, 7);
  const auto split = train_test_split(ds, 0.3, 7);

  PipelineConfig config;
  config.feature_step = c.feature_step;
  config.classifier = c.classifier;
  const auto model = platform->train(split.train, config, 1);
  const double acc = accuracy_score(split.test.y(), model->predict(split.test.x()));
  EXPECT_GT(acc, 0.65) << c.platform << " " << c.feature_step << " " << c.classifier;
}

INSTANTIATE_TEST_SUITE_P(AllFeatSteps, FeatClfPipeline,
                         ::testing::ValuesIn(all_feat_clf_cases()),
                         [](const ::testing::TestParamInfo<PipelineCase>& info) {
                           std::string name = info.param.platform + "_" +
                                              info.param.feature_step + "_" +
                                              info.param.classifier;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(PipelineIntegration, ParamsReachTheClassifier) {
  // A BigML random forest with 1 estimator vs 32 must differ in behaviour
  // on a noisy problem (variance reduction), proving PARA plumbing works.
  const auto bigml = make_platform("BigML");
  const Dataset noisy = make_circles(400, 0.25, 0.5, 11);
  const auto split = train_test_split(noisy, 0.3, 11);

  auto eval = [&](long long n_estimators) {
    PipelineConfig config;
    config.classifier = "random_forest";
    config.params.set("n_estimators", n_estimators);
    double acc = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto model = bigml->train(split.train, config, seed);
      acc += accuracy_score(split.test.y(), model->predict(split.test.x()));
    }
    return acc / 3.0;
  };
  EXPECT_GE(eval(32), eval(1) - 0.02);
}

TEST(PipelineIntegration, FeatureStepAppliedAtPredictTime) {
  // Fisher-LDA reduces to 1 feature; prediction on raw 12-feature inputs
  // must still work (transform applied inside the model).
  const auto microsoft = make_platform("Microsoft");
  MakeClassificationOptions opt;
  opt.n_samples = 200;
  opt.n_features = 12;
  opt.n_informative = 6;
  const Dataset ds = make_classification(opt, 13);
  PipelineConfig config;
  config.feature_step = "fisher_lda";
  config.classifier = "logistic_regression";
  const auto model = microsoft->train(ds, config, 1);
  EXPECT_EQ(model->predict(ds.x()).size(), ds.n_samples());
}

}  // namespace
}  // namespace mlaas
