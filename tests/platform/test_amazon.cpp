// Amazon ML simulator specifics: parameter plumbing and the quantile-binning
// recipe (§6.2 / Figure 13).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"

namespace mlaas {
namespace {

TEST(Amazon, BinningMakesCircleLearnable) {
  // A plain linear model scores near chance on CIRCLE; Amazon's binned LR
  // must do substantially better despite being "logistic regression".
  const Dataset circle = make_circle_probe(1, 700);
  const auto split = train_test_split(circle, 0.3, 1);
  const auto amazon = make_platform("Amazon");
  const auto model = amazon->train(split.train, {}, 1);
  EXPECT_GT(accuracy_score(split.test.y(), model->predict(split.test.x())), 0.8);
}

TEST(Amazon, ParametersAffectTheModel) {
  const Dataset ds = make_moons(500, 0.25, 2);
  const auto split = train_test_split(ds, 0.3, 2);
  const auto amazon = make_platform("Amazon");

  PipelineConfig starved;
  starved.params.set("max_iter", 1LL);
  starved.params.set("reg_param", 1.0);
  PipelineConfig tuned;
  tuned.params.set("max_iter", 100LL);
  tuned.params.set("reg_param", 1e-6);

  const auto m_starved = amazon->train(split.train, starved, 3);
  const auto m_tuned = amazon->train(split.train, tuned, 3);
  const double f_starved = f1_score(split.test.y(), m_starved->predict(split.test.x()));
  const double f_tuned = f1_score(split.test.y(), m_tuned->predict(split.test.x()));
  EXPECT_GE(f_tuned, f_starved);
  EXPECT_GT(f_tuned, 0.85);
}

TEST(Amazon, ShuffleTypeAccepted) {
  const Dataset ds = make_blobs(120, 3, 1.0, 5.0, 4);
  const auto amazon = make_platform("Amazon");
  PipelineConfig config;
  config.params.set("shuffle_type", std::string("none"));
  EXPECT_NO_THROW(amazon->train(ds, config, 1));
}

TEST(Amazon, ExposesPredictionScores) {
  const Dataset ds = make_blobs(120, 3, 1.0, 5.0, 5);
  const auto amazon = make_platform("Amazon");
  const auto model = amazon->train(ds, {}, 1);
  ASSERT_TRUE(model->exposes_scores());
  for (double s : model->predict_score(ds.x())) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Amazon, HandlesConstantFeatures) {
  Matrix x(60, 2);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = 7.0;  // constant: binning must not produce empty edge sets
    x(i, 1) = static_cast<double>(i);
    y[i] = i < 30 ? 0 : 1;
  }
  const Dataset ds(std::move(x), std::move(y));
  const auto amazon = make_platform("Amazon");
  const auto model = amazon->train(ds, {}, 1);
  EXPECT_GT(accuracy_score(ds.y(), model->predict(ds.x())), 0.9);
}

}  // namespace
}  // namespace mlaas
