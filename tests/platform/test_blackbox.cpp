// Black-box platform behaviour (§6.1): Google and ABM must switch classifier
// families between CIRCLE and LINEAR, and Amazon's binned logistic
// regression must produce a non-linear boundary on CIRCLE (Figure 13).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "data/split.h"
#include "eval/boundary.h"
#include "ml/metrics.h"
#include "platform/all_platforms.h"

namespace mlaas {
namespace {

TEST(BlackBox, GoogleSolvesCircle) {
  const Dataset circle = make_circle_probe(1, 600);
  const auto split = train_test_split(circle, 0.3, 1);
  const auto google = make_platform("Google");
  const auto model = google->train(split.train, {}, 1);
  EXPECT_GT(accuracy_score(split.test.y(), model->predict(split.test.x())), 0.9);
}

TEST(BlackBox, AbmSolvesCircle) {
  const Dataset circle = make_circle_probe(2, 600);
  const auto split = train_test_split(circle, 0.3, 2);
  const auto abm = make_platform("ABM");
  const auto model = abm->train(split.train, {}, 2);
  EXPECT_GT(accuracy_score(split.test.y(), model->predict(split.test.x())), 0.85);
}

TEST(BlackBox, GoogleBoundaryNonLinearOnCircleLinearOnLinear) {
  const auto google = make_platform("Google");
  const auto circle_map = probe_decision_boundary(*google, make_circle_probe(3, 600), 3);
  const auto linear_map = probe_decision_boundary(*google, make_linear_probe(3, 600), 3);
  EXPECT_FALSE(boundary_is_linear(circle_map));
  EXPECT_TRUE(boundary_is_linear(linear_map));
}

TEST(BlackBox, AbmBoundaryNonLinearOnCircleLinearOnLinear) {
  const auto abm = make_platform("ABM");
  const auto circle_map = probe_decision_boundary(*abm, make_circle_probe(4, 600), 4);
  const auto linear_map = probe_decision_boundary(*abm, make_linear_probe(4, 600), 4);
  EXPECT_FALSE(boundary_is_linear(circle_map));
  EXPECT_TRUE(boundary_is_linear(linear_map));
}

TEST(BlackBox, AmazonBoundaryNonLinearOnCircle) {
  // Figure 13: despite the documented LR classifier, Amazon's quantile
  // binning yields a non-linear boundary on CIRCLE.
  const auto amazon = make_platform("Amazon");
  const auto map = probe_decision_boundary(*amazon, make_circle_probe(5, 600), 5);
  EXPECT_FALSE(boundary_is_linear(map));
}

TEST(BlackBox, BoundaryMapCoversMesh) {
  const auto google = make_platform("Google");
  const auto map = probe_decision_boundary(*google, make_circle_probe(6, 400), 6, 50);
  EXPECT_EQ(map.resolution, 50);
  EXPECT_EQ(map.labels.size(), 2500u);
  EXPECT_GT(map.positive_fraction, 0.05);
  EXPECT_LT(map.positive_fraction, 0.95);
}

TEST(BlackBox, RenderBoundaryShowsBothClasses) {
  const auto abm = make_platform("ABM");
  const auto map = probe_decision_boundary(*abm, make_circle_probe(7, 400), 7, 60);
  const std::string art = render_boundary(map, 30);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(Boundary, RequiresTwoFeatures) {
  const auto google = make_platform("Google");
  const Dataset high_dim = make_blobs(100, 5, 1.0, 5.0, 8);
  EXPECT_THROW(probe_decision_boundary(*google, high_dim, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
