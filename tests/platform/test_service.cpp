#include "platform/service.h"

#include "platform/all_platforms.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "ml/metrics.h"

namespace mlaas {
namespace {

Dataset small_data(std::uint64_t seed = 1) { return make_blobs(80, 3, 0.8, 5.0, seed); }

MlaasService make_service(ServiceQuota quota = {}, const std::string& platform = "Local",
                          std::uint64_t seed = 1) {
  return MlaasService(make_platform(platform), quota, seed);
}

TEST(Service, EndToEndFlowWorks) {
  auto service = make_service();
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, PipelineConfig{}, &model), ServiceStatus::kOk);
  std::vector<int> labels;
  const Dataset query = small_data(1);  // same generating process as train
  ASSERT_EQ(service.predict(model, query.x(), &labels), ServiceStatus::kOk);
  EXPECT_EQ(labels.size(), query.n_samples());
  EXPECT_GT(accuracy_score(query.y(), labels), 0.8);
}

TEST(Service, UnknownHandlesAreNotFound) {
  auto service = make_service();
  std::string model;
  EXPECT_EQ(service.train("ds-404", {}, &model), ServiceStatus::kNotFound);
  std::vector<int> labels;
  EXPECT_EQ(service.predict("model-404", small_data().x(), &labels),
            ServiceStatus::kNotFound);
}

TEST(Service, BadConfigIsBadRequest) {
  auto service = make_service({}, "Amazon");
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  PipelineConfig config;
  config.classifier = "mlp";  // Amazon: classifier is fixed
  EXPECT_EQ(service.train(ds, config, &model), ServiceStatus::kBadRequest);
}

TEST(Service, RateLimitKicksInWithinWindow) {
  ServiceQuota quota;
  quota.requests_per_window = 3;
  quota.window_seconds = 1e9;  // effectively never drains
  auto service = make_service(quota);
  std::string ds;
  EXPECT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(4), &ds), ServiceStatus::kRateLimited);
  EXPECT_EQ(service.stats().rate_limited, 1u);
}

TEST(Service, RateLimitDrainsWithTheClock) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 10.0;
  auto service = make_service(quota);
  std::string ds;
  EXPECT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kRateLimited);
  service.advance_clock(11.0);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kOk);
}

TEST(Service, TrainingQuotaIsPermanent) {
  ServiceQuota quota;
  quota.max_training_jobs = 1;
  auto service = make_service(quota);
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, {}, &model), ServiceStatus::kOk);
  EXPECT_EQ(service.train(ds, {}, &model), ServiceStatus::kQuotaExhausted);
}

TEST(Service, ClockAdvancesWithLatencyModel) {
  ServiceQuota quota;
  quota.base_latency_seconds = 1.0;
  quota.per_sample_latency_seconds = 0.01;
  auto service = make_service(quota);
  std::string ds;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);  // 80 samples
  EXPECT_NEAR(service.now(), 1.0 + 0.8, 1e-9);
}

TEST(Service, FaultInjectionIsDeterministic) {
  ServiceQuota quota;
  quota.fault_rate = 0.5;
  auto a = make_service(quota, "Local", 7);
  auto b = make_service(quota, "Local", 7);
  std::string ha, hb;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.upload(small_data(), &ha), b.upload(small_data(), &hb));
  }
  EXPECT_GT(a.stats().transient_errors, 0u);
}

TEST(RetryingClientTest, SucceedsDespiteTransientFaults) {
  ServiceQuota quota;
  quota.fault_rate = 0.4;
  auto service = make_service(quota, "Local", 11);
  RetryingClient client(service, /*max_attempts=*/8);
  const Dataset train = small_data(1);
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  EXPECT_GT(accuracy_score(train.y(), *labels), 0.8);
  EXPECT_GT(client.total_retries(), 0u);
}

TEST(RetryingClientTest, BacksOffThroughRateLimits) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 2.0;  // backoff (1s, 2s, ...) outlasts the window
  auto service = make_service(quota);
  RetryingClient client(service, /*max_attempts=*/6);
  const Dataset train = small_data(1);
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  EXPECT_GT(client.total_retries(), 0u);
}

TEST(RetryingClientTest, PermanentErrorsAreNotRetried) {
  ServiceQuota quota;
  quota.max_training_jobs = 0;
  auto service = make_service(quota, "Amazon");
  RetryingClient client(service);
  PipelineConfig bad;
  bad.classifier = "mlp";
  const Dataset train = small_data(1);
  const auto before = service.stats().requests;
  EXPECT_FALSE(client.train_and_predict(train, bad, train.x()).has_value());
  // upload + exactly one train attempt (no retries of kBadRequest).
  EXPECT_EQ(service.stats().requests, before + 2);
}

TEST(Service, RetryAfterHintAtExactExpiryStillRejects) {
  // Boundary contract behind RetryingClient's +1e-6 wake-up epsilon: admit()
  // ages window entries with a strict `t < window_start` comparison, so a
  // request landing exactly when the oldest entry expires is still rejected.
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 10.0;
  quota.base_latency_seconds = 0.0;
  quota.per_sample_latency_seconds = 0.0;
  auto service = make_service(quota);
  std::string ds;
  ASSERT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);  // t=0
  ASSERT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kRateLimited);
  EXPECT_DOUBLE_EQ(service.retry_after_seconds(), 10.0);
  // Exactly at window expiry the t=0 entry still counts against the window.
  service.advance_clock(10.0);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kRateLimited);
  EXPECT_DOUBLE_EQ(service.retry_after_seconds(), 0.0);
  // One tick past expiry the entry has aged out.
  service.advance_clock(1e-6);
  EXPECT_EQ(service.upload(small_data(4), &ds), ServiceStatus::kOk);
}

TEST(RetryingClientTest, RetryAfterHintAtExactExpiryAdmitsWithoutExtraAttempt) {
  // The client sleeps retry_after_seconds() + 1e-6: strictly past expiry, so
  // each rate-limited call burns exactly ONE rejected attempt.  Sleeping the
  // bare hint would land on the t == window_start boundary above and get
  // rejected a second time per call, doubling rate_limited and the retries.
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 500.0;  // dwarfs exponential backoff: hint decides
  quota.base_latency_seconds = 0.0;
  quota.per_sample_latency_seconds = 0.0;
  auto service = make_service(quota);
  RetryingClient client(service, /*max_attempts=*/3);
  const Dataset train = small_data(1);
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  // upload admits at t=0; train and predict each hit the full window once and
  // succeed on their first retry — no attempt wasted at the exact boundary.
  EXPECT_EQ(service.stats().rate_limited, 2u);
  EXPECT_EQ(client.total_retries(), 2u);
  EXPECT_NEAR(client.total_backoff_seconds(), 2 * (500.0 + 1e-6), 1e-6);
}

TEST(ServiceStatusTest, Names) {
  EXPECT_EQ(to_string(ServiceStatus::kOk), "ok");
  EXPECT_EQ(to_string(ServiceStatus::kRateLimited), "rate-limited");
  EXPECT_EQ(to_string(ServiceStatus::kQuotaExhausted), "quota-exhausted");
  EXPECT_EQ(to_string(ServiceStatus::kServerError), "server-error");
  EXPECT_TRUE(is_retryable(ServiceStatus::kRateLimited));
  EXPECT_TRUE(is_retryable(ServiceStatus::kTransientError));
  EXPECT_FALSE(is_retryable(ServiceStatus::kQuotaExhausted));
  EXPECT_FALSE(is_retryable(ServiceStatus::kServerError));
}

TEST(Service, ExplicitTrainSeedReproducesDirectCall) {
  const Dataset data = small_data(3);
  const auto direct_platform = make_platform("Local");
  const auto direct_model = direct_platform->train(data, {}, /*seed=*/1234);
  const auto direct_labels = direct_model->predict(data.x());

  auto service = make_service();
  std::string ds, model;
  ASSERT_EQ(service.upload(data, &ds), ServiceStatus::kOk);
  double train_cpu = -1.0;
  ASSERT_EQ(service.train(ds, {}, &model, /*seed=*/1234, &train_cpu), ServiceStatus::kOk);
  EXPECT_GE(train_cpu, 0.0);
  EXPECT_GT(service.stats().train_cpu_seconds, 0.0);
  std::vector<int> labels;
  double predict_cpu = -1.0;
  ASSERT_EQ(service.predict(model, data.x(), &labels, &predict_cpu), ServiceStatus::kOk);
  EXPECT_EQ(labels, direct_labels);
  EXPECT_GE(predict_cpu, 0.0);
  EXPECT_GE(service.stats().predict_cpu_seconds, predict_cpu);
}

/// A platform whose training always blows up with a non-config error.
class ExplodingPlatform final : public Platform {
 public:
  std::string name() const override { return "Exploding"; }
  int complexity_rank() const override { return 0; }
  ControlSurface controls() const override { return {}; }
  TrainedModelPtr train(const Dataset&, const PipelineConfig&,
                        std::uint64_t) const override {
    throw std::runtime_error("backend fell over");
  }
};

TEST(Service, PlatformCrashBecomesServerErrorNotException) {
  ExplodingPlatform exploding;
  MlaasService service(exploding, ServiceQuota{}, /*seed=*/1);
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.train(ds, {}, &model), ServiceStatus::kServerError);
  EXPECT_EQ(service.last_error(), "backend fell over");
  EXPECT_EQ(service.stats().server_errors, 1u);
  // Permanent: the retrying client gives up immediately.
  RetryingClient client(service, /*max_attempts=*/5);
  const auto before = service.stats().requests;
  EXPECT_EQ(client.train(ds, {}, &model), ServiceStatus::kServerError);
  EXPECT_EQ(service.stats().requests, before + 1);
}

TEST(RetryingClientTest, TrainAndPredictReleasesHandlesOnSuccess) {
  auto service = make_service();
  RetryingClient client(service);
  const Dataset train = small_data(1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.train_and_predict(train, {}, train.x()).has_value());
    EXPECT_EQ(service.dataset_count(), 0u) << "iteration " << i;
    EXPECT_EQ(service.model_count(), 0u) << "iteration " << i;
  }
  EXPECT_EQ(service.stats().datasets_deleted, 3u);
  EXPECT_EQ(service.stats().models_deleted, 3u);
}

TEST(RetryingClientTest, TrainAndPredictReleasesDatasetWhenTrainFails) {
  // Mid-sequence failure: upload succeeds, train explodes permanently.  The
  // uploaded dataset must not be stranded in the service's handle map.
  ExplodingPlatform exploding;
  MlaasService service(exploding, ServiceQuota{}, /*seed=*/1);
  RetryingClient client(service, /*max_attempts=*/3);
  const Dataset train = small_data(1);
  EXPECT_FALSE(client.train_and_predict(train, {}, train.x()).has_value());
  EXPECT_EQ(service.dataset_count(), 0u);
  EXPECT_EQ(service.model_count(), 0u);
}

TEST(RetryingClientTest, TrainAndPredictReleasesHandlesWhenPredictFails) {
  // upload + train fit in the rate-limit window; predict does not, and the
  // single-attempt budget cannot wait the window out.  Both intermediate
  // handles must still be released.
  ServiceQuota quota;
  quota.requests_per_window = 2;
  quota.window_seconds = 1e9;
  auto service = make_service(quota);
  RetryPolicy policy;
  policy.max_attempts = 1;
  RetryingClient client(service, policy);
  const Dataset train = small_data(1);
  EXPECT_FALSE(client.train_and_predict(train, {}, train.x()).has_value());
  EXPECT_EQ(service.dataset_count(), 0u);
  EXPECT_EQ(service.model_count(), 0u);
  EXPECT_EQ(service.stats().datasets_deleted, 1u);
  EXPECT_EQ(service.stats().models_deleted, 1u);
}

TEST(RetryingClientTest, TrainAndPredictReleasesNothingWhenUploadFails) {
  ServiceQuota quota;
  quota.fault_rate = 1.0;  // every admission fails transiently
  auto service = make_service(quota, "Local", 5);
  RetryPolicy policy;
  policy.max_attempts = 2;
  RetryingClient client(service, policy);
  const Dataset train = small_data(1);
  EXPECT_FALSE(client.train_and_predict(train, {}, train.x()).has_value());
  EXPECT_EQ(service.dataset_count(), 0u);
  EXPECT_EQ(service.stats().datasets_deleted, 0u);
  EXPECT_EQ(service.stats().models_deleted, 0u);
}

TEST(Service, NonOwningConstructorSharesThePlatform) {
  const auto platform = make_platform("Local");
  MlaasService a(*platform, ServiceQuota{}, 1);
  MlaasService b(*platform, ServiceQuota{}, 1);
  std::string ds_a, ds_b;
  EXPECT_EQ(a.upload(small_data(), &ds_a), ServiceStatus::kOk);
  EXPECT_EQ(b.upload(small_data(), &ds_b), ServiceStatus::kOk);
  EXPECT_EQ(a.platform_name(), "Local");
}

TEST(Service, RetryAfterHintMatchesWindowDrain) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 10.0;
  quota.base_latency_seconds = 0.0;
  quota.per_sample_latency_seconds = 0.0;
  auto service = make_service(quota);
  std::string ds;
  ASSERT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kRateLimited);
  // The first request landed at t=0; the window drains at t=10.
  EXPECT_NEAR(service.retry_after_seconds(), 10.0, 1e-9);
  service.advance_clock(service.retry_after_seconds() + 1e-6);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kOk);
}

TEST(RetryingClientTest, LongWindowDoesNotExhaustTheBudget) {
  ServiceQuota quota;
  quota.requests_per_window = 2;
  quota.window_seconds = 3600.0;  // far beyond the exponential-backoff reach
  auto service = make_service(quota);
  RetryingClient client(service, /*max_attempts=*/3);
  const Dataset train = small_data(1);
  // upload + train fill the window; predict must wait the window out via the
  // Retry-After hint instead of burning all attempts on short backoffs.
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  EXPECT_GT(client.total_backoff_seconds(), 3000.0);
}

TEST(ServiceStatsTest, MergeAccumulates) {
  ServiceStats a, b;
  a.requests = 3;
  a.trainings = 1;
  a.train_cpu_seconds = 0.5;
  b.requests = 2;
  b.rate_limited = 4;
  b.train_cpu_seconds = 0.25;
  b.datasets_deleted = 2;
  b.models_deleted = 1;
  a.merge(b);
  EXPECT_EQ(a.requests, 5u);
  EXPECT_EQ(a.trainings, 1u);
  EXPECT_EQ(a.rate_limited, 4u);
  EXPECT_EQ(a.datasets_deleted, 2u);
  EXPECT_EQ(a.models_deleted, 1u);
  EXPECT_DOUBLE_EQ(a.train_cpu_seconds, 0.75);
}

TEST(Service, PredictionsCountRowsNotCalls) {
  auto service = make_service();
  std::string ds, model;
  const Dataset data = small_data(1);  // 80 rows
  ASSERT_EQ(service.upload(data, &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, {}, &model), ServiceStatus::kOk);
  std::vector<int> labels;
  ASSERT_EQ(service.predict(model, data.x(), &labels), ServiceStatus::kOk);
  EXPECT_EQ(service.stats().predictions, 80u);
  // One batched call and N single-row calls account identically: the unit
  // matches the per-sample latency the admission path already charges.
  Matrix one_row(1, data.x().cols());
  std::copy(data.x().row(0).begin(), data.x().row(0).end(), one_row.row(0).begin());
  ASSERT_EQ(service.predict(model, one_row, &labels), ServiceStatus::kOk);
  EXPECT_EQ(service.stats().predictions, 81u);
}

TEST(Service, DeleteReleasesHandles) {
  auto service = make_service();
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, {}, &model), ServiceStatus::kOk);
  EXPECT_EQ(service.dataset_count(), 1u);
  EXPECT_EQ(service.model_count(), 1u);

  EXPECT_EQ(service.delete_dataset(ds), ServiceStatus::kOk);
  EXPECT_EQ(service.delete_model(model), ServiceStatus::kOk);
  EXPECT_EQ(service.dataset_count(), 0u);
  EXPECT_EQ(service.model_count(), 0u);
  EXPECT_EQ(service.stats().datasets_deleted, 1u);
  EXPECT_EQ(service.stats().models_deleted, 1u);

  // Double-delete and stale use both surface as kNotFound.
  EXPECT_EQ(service.delete_dataset(ds), ServiceStatus::kNotFound);
  EXPECT_EQ(service.delete_model(model), ServiceStatus::kNotFound);
  std::vector<int> labels;
  EXPECT_EQ(service.predict(model, small_data().x(), &labels),
            ServiceStatus::kNotFound);
  std::string model2;
  EXPECT_EQ(service.train(ds, {}, &model2), ServiceStatus::kNotFound);
}

TEST(Service, DeletesAreNotAdmitted) {
  // Deletes are local bookkeeping: no clock advance, no rate-limit token, no
  // fault-RNG draw — so inserting them into an existing call sequence leaves
  // every other response (and cached campaign tables) byte-identical.
  ServiceQuota quota;
  quota.requests_per_window = 3;
  quota.window_seconds = 1e9;
  auto service = make_service(quota);
  std::string ds1, ds2, ds3;
  ASSERT_EQ(service.upload(small_data(1), &ds1), ServiceStatus::kOk);
  ASSERT_EQ(service.upload(small_data(2), &ds2), ServiceStatus::kOk);
  const double t = service.now();
  const auto requests = service.stats().requests;
  EXPECT_EQ(service.delete_dataset(ds1), ServiceStatus::kOk);
  EXPECT_DOUBLE_EQ(service.now(), t);
  EXPECT_EQ(service.stats().requests, requests);
  // The window still has exactly one admission slot left.
  ASSERT_EQ(service.upload(small_data(3), &ds3), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(4), &ds1), ServiceStatus::kRateLimited);
}

TEST(QuotaProfileTest, NamedProfilesResolve) {
  EXPECT_EQ(quota_profile("default", "Google").requests_per_window, 100u);
  EXPECT_EQ(quota_profile("strict", "Google").requests_per_window, 5u);
  EXPECT_EQ(quota_profile("free-tier", "BigML").max_training_jobs, 10u);
  EXPECT_EQ(quota_profile("unlimited", "ABM").max_training_jobs, 0u);
  EXPECT_THROW(quota_profile("bogus", "Google"), std::invalid_argument);
  EXPECT_EQ(quota_profile_names().size(), 4u);
}

TEST(QuotaProfileTest, UnknownProfileErrorNamesTheProfile) {
  try {
    quota_profile("bogus-profile", "Google");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus-profile"), std::string::npos)
        << e.what();
  }
}

TEST(RetryingClientTest, NoIdleSleepAfterFinalAttempt) {
  ServiceQuota quota;
  quota.fault_rate = 1.0;  // every request fails transiently
  auto service = make_service(quota, "Local", 5);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingClient client(service, policy);
  std::string ds;
  EXPECT_EQ(client.upload(small_data(1), &ds), ServiceStatus::kTransientError);
  // Sleeps happen between attempts only: 1s + 2s, never a third sleep after
  // the budget is spent.
  EXPECT_EQ(client.total_retries(), 2u);
  EXPECT_DOUBLE_EQ(client.total_backoff_seconds(), 3.0);
}

TEST(RetryingClientTest, RetryAfterHintOnFinalAttemptIsNotSlept) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 3600.0;
  quota.base_latency_seconds = 0.0;
  quota.per_sample_latency_seconds = 0.0;
  auto service = make_service(quota);
  RetryPolicy policy;
  policy.max_attempts = 1;  // the first attempt is also the last
  RetryingClient client(service, policy);
  std::string ds, model;
  ASSERT_EQ(client.upload(small_data(1), &ds), ServiceStatus::kOk);
  // The train attempt is rate-limited and carries an hour-long Retry-After
  // hint; with no attempts left the client must report, not sleep it out.
  EXPECT_EQ(client.train(ds, {}, &model), ServiceStatus::kRateLimited);
  EXPECT_EQ(client.total_retries(), 0u);
  EXPECT_DOUBLE_EQ(client.total_backoff_seconds(), 0.0);
  EXPECT_LT(service.now(), 1.0);
}

TEST(RetryingClientTest, RetryAfterHintLongerThanBackoffCapIsHonored) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 500.0;
  quota.base_latency_seconds = 0.0;
  quota.per_sample_latency_seconds = 0.0;
  auto service = make_service(quota);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.max_backoff_seconds = 2.0;  // far below the window drain
  RetryingClient client(service, policy);
  std::string ds, model;
  ASSERT_EQ(client.upload(small_data(1), &ds), ServiceStatus::kOk);
  // Exponential backoff alone (1s + 2s) could never outlast the 500 s
  // window; the Retry-After hint must override the cap.
  EXPECT_EQ(client.train(ds, {}, &model), ServiceStatus::kOk);
  EXPECT_GT(client.total_backoff_seconds(), 400.0);
  EXPECT_LE(client.total_retries(), 2u);
}

TEST(RetryingClientTest, JitterIsBoundedAndSeeded) {
  ServiceQuota quota;
  quota.fault_rate = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 1.0;
  policy.max_backoff_seconds = 8.0;
  policy.jitter = true;
  policy.jitter_seed = 77;

  auto run_once = [&] {
    auto service = make_service(quota, "Local", 5);
    RetryingClient client(service, policy);
    std::string ds;
    EXPECT_EQ(client.upload(small_data(1), &ds), ServiceStatus::kTransientError);
    return client.total_backoff_seconds();
  };
  const double a = run_once();
  const double b = run_once();
  // Decorrelated jitter: each of the 4 sleeps lies in [initial, min(cap,
  // 3 x previous sleep)], so the total is bounded by 4 and 3 + 3*8.
  EXPECT_GE(a, 4.0);
  EXPECT_LE(a, 27.0);
  EXPECT_DOUBLE_EQ(a, b) << "same jitter seed must reproduce the same sleeps";

  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = 78;
  auto service = make_service(quota, "Local", 5);
  RetryingClient client(service, reseeded);
  std::string ds;
  EXPECT_EQ(client.upload(small_data(1), &ds), ServiceStatus::kTransientError);
  EXPECT_NE(client.total_backoff_seconds(), a);
}

TEST(ServiceStatusTest, UnavailableIsRetryable) {
  EXPECT_EQ(to_string(ServiceStatus::kUnavailable), "unavailable");
  EXPECT_TRUE(is_retryable(ServiceStatus::kUnavailable));
}

TEST(FaultWindowTest, RecurringWindowMath) {
  const FaultWindow w{/*period=*/100.0, /*phase=*/10.0, /*duration=*/5.0};
  EXPECT_FALSE(w.active_at(9.0));
  EXPECT_TRUE(w.active_at(10.0));
  EXPECT_TRUE(w.active_at(14.9));
  EXPECT_FALSE(w.active_at(15.0));
  EXPECT_TRUE(w.active_at(112.0));
  EXPECT_NEAR(w.seconds_until_inactive(12.0), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.seconds_until_inactive(50.0), 0.0);
  // Three full occurrences inside [0, 230): [10,15), [110,115), [210,215).
  EXPECT_NEAR(w.seconds_active(0.0, 230.0), 15.0, 1e-9);
  // Partial overlap with the first window only.
  EXPECT_NEAR(w.seconds_active(12.0, 14.0), 2.0, 1e-9);
}

TEST(FaultPlanTest, ProfilesAreSeededAndDeterministic) {
  EXPECT_TRUE(make_fault_plan("none", "Google", 42).empty());
  const FaultPlan storm1 = make_fault_plan("storm", "Google", 42);
  const FaultPlan storm2 = make_fault_plan("storm", "Google", 42);
  EXPECT_FALSE(storm1.outages.empty());
  EXPECT_FALSE(storm1.bursts.empty());
  EXPECT_FALSE(storm1.latency_spikes.empty());
  ASSERT_EQ(storm1.outages.size(), storm2.outages.size());
  for (std::size_t i = 0; i < storm1.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(storm1.outages[i].phase, storm2.outages[i].phase);
    EXPECT_DOUBLE_EQ(storm1.outages[i].period, storm2.outages[i].period);
  }
  // Different platforms draw different schedules from the same seed.
  const FaultPlan other = make_fault_plan("storm", "Amazon", 42);
  EXPECT_NE(storm1.outages[0].phase, other.outages[0].phase);
  EXPECT_EQ(chaos_profile_names().size(), 5u);
  try {
    make_fault_plan("tempest", "Google", 42);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("tempest"), std::string::npos) << e.what();
  }
}

TEST(FaultPlanTest, OutageWindowMakesRequestsUnavailable) {
  ServiceQuota quota;
  quota.base_latency_seconds = 1.0;
  quota.per_sample_latency_seconds = 0.0;
  quota.fault_plan.outages.push_back({/*period=*/1000.0, /*phase=*/0.0,
                                      /*duration=*/100.0});
  auto service = make_service(quota);
  std::string ds;
  EXPECT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kUnavailable);
  EXPECT_EQ(service.stats().unavailable, 1u);
  service.advance_clock(150.0);  // past the outage window
  EXPECT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kOk);
  EXPECT_DOUBLE_EQ(quota.fault_plan.outage_seconds(0.0, 1000.0), 100.0);
}

TEST(FaultPlanTest, BurstAndLatencyWindowsShapeTraffic) {
  FaultPlan plan;
  plan.bursts.push_back({/*period=*/100.0, /*phase=*/0.0, /*duration=*/50.0});
  plan.burst_fault_rate = 0.9;
  plan.latency_spikes.push_back({/*period=*/100.0, /*phase=*/0.0, /*duration=*/50.0});
  plan.latency_multiplier = 4.0;
  EXPECT_DOUBLE_EQ(plan.effective_fault_rate(10.0, 0.05), 0.9);
  EXPECT_DOUBLE_EQ(plan.effective_fault_rate(60.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(plan.latency_factor(10.0), 4.0);
  EXPECT_DOUBLE_EQ(plan.latency_factor(60.0), 1.0);
  // An empty plan is exactly the scalar model: no outage, base rate, x1.
  const FaultPlan empty;
  EXPECT_FALSE(empty.in_outage(0.0));
  EXPECT_DOUBLE_EQ(empty.effective_fault_rate(0.0, 0.05), 0.05);
  EXPECT_DOUBLE_EQ(empty.latency_factor(0.0), 1.0);
}

}  // namespace
}  // namespace mlaas
