#include "platform/service.h"

#include "platform/all_platforms.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "ml/metrics.h"

namespace mlaas {
namespace {

Dataset small_data(std::uint64_t seed = 1) { return make_blobs(80, 3, 0.8, 5.0, seed); }

MlaasService make_service(ServiceQuota quota = {}, const std::string& platform = "Local",
                          std::uint64_t seed = 1) {
  return MlaasService(make_platform(platform), quota, seed);
}

TEST(Service, EndToEndFlowWorks) {
  auto service = make_service();
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, PipelineConfig{}, &model), ServiceStatus::kOk);
  std::vector<int> labels;
  const Dataset query = small_data(1);  // same generating process as train
  ASSERT_EQ(service.predict(model, query.x(), &labels), ServiceStatus::kOk);
  EXPECT_EQ(labels.size(), query.n_samples());
  EXPECT_GT(accuracy_score(query.y(), labels), 0.8);
}

TEST(Service, UnknownHandlesAreNotFound) {
  auto service = make_service();
  std::string model;
  EXPECT_EQ(service.train("ds-404", {}, &model), ServiceStatus::kNotFound);
  std::vector<int> labels;
  EXPECT_EQ(service.predict("model-404", small_data().x(), &labels),
            ServiceStatus::kNotFound);
}

TEST(Service, BadConfigIsBadRequest) {
  auto service = make_service({}, "Amazon");
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  PipelineConfig config;
  config.classifier = "mlp";  // Amazon: classifier is fixed
  EXPECT_EQ(service.train(ds, config, &model), ServiceStatus::kBadRequest);
}

TEST(Service, RateLimitKicksInWithinWindow) {
  ServiceQuota quota;
  quota.requests_per_window = 3;
  quota.window_seconds = 1e9;  // effectively never drains
  auto service = make_service(quota);
  std::string ds;
  EXPECT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(4), &ds), ServiceStatus::kRateLimited);
  EXPECT_EQ(service.stats().rate_limited, 1u);
}

TEST(Service, RateLimitDrainsWithTheClock) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 10.0;
  auto service = make_service(quota);
  std::string ds;
  EXPECT_EQ(service.upload(small_data(1), &ds), ServiceStatus::kOk);
  EXPECT_EQ(service.upload(small_data(2), &ds), ServiceStatus::kRateLimited);
  service.advance_clock(11.0);
  EXPECT_EQ(service.upload(small_data(3), &ds), ServiceStatus::kOk);
}

TEST(Service, TrainingQuotaIsPermanent) {
  ServiceQuota quota;
  quota.max_training_jobs = 1;
  auto service = make_service(quota);
  std::string ds, model;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);
  ASSERT_EQ(service.train(ds, {}, &model), ServiceStatus::kOk);
  EXPECT_EQ(service.train(ds, {}, &model), ServiceStatus::kQuotaExhausted);
}

TEST(Service, ClockAdvancesWithLatencyModel) {
  ServiceQuota quota;
  quota.base_latency_seconds = 1.0;
  quota.per_sample_latency_seconds = 0.01;
  auto service = make_service(quota);
  std::string ds;
  ASSERT_EQ(service.upload(small_data(), &ds), ServiceStatus::kOk);  // 80 samples
  EXPECT_NEAR(service.now(), 1.0 + 0.8, 1e-9);
}

TEST(Service, FaultInjectionIsDeterministic) {
  ServiceQuota quota;
  quota.fault_rate = 0.5;
  auto a = make_service(quota, "Local", 7);
  auto b = make_service(quota, "Local", 7);
  std::string ha, hb;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.upload(small_data(), &ha), b.upload(small_data(), &hb));
  }
  EXPECT_GT(a.stats().transient_errors, 0u);
}

TEST(RetryingClientTest, SucceedsDespiteTransientFaults) {
  ServiceQuota quota;
  quota.fault_rate = 0.4;
  auto service = make_service(quota, "Local", 11);
  RetryingClient client(service, /*max_attempts=*/8);
  const Dataset train = small_data(1);
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  EXPECT_GT(accuracy_score(train.y(), *labels), 0.8);
  EXPECT_GT(client.total_retries(), 0u);
}

TEST(RetryingClientTest, BacksOffThroughRateLimits) {
  ServiceQuota quota;
  quota.requests_per_window = 1;
  quota.window_seconds = 2.0;  // backoff (1s, 2s, ...) outlasts the window
  auto service = make_service(quota);
  RetryingClient client(service, /*max_attempts=*/6);
  const Dataset train = small_data(1);
  const auto labels = client.train_and_predict(train, {}, train.x());
  ASSERT_TRUE(labels.has_value());
  EXPECT_GT(client.total_retries(), 0u);
}

TEST(RetryingClientTest, PermanentErrorsAreNotRetried) {
  ServiceQuota quota;
  quota.max_training_jobs = 0;
  auto service = make_service(quota, "Amazon");
  RetryingClient client(service);
  PipelineConfig bad;
  bad.classifier = "mlp";
  const Dataset train = small_data(1);
  const auto before = service.stats().requests;
  EXPECT_FALSE(client.train_and_predict(train, bad, train.x()).has_value());
  // upload + exactly one train attempt (no retries of kBadRequest).
  EXPECT_EQ(service.stats().requests, before + 2);
}

TEST(ServiceStatusTest, Names) {
  EXPECT_EQ(to_string(ServiceStatus::kOk), "ok");
  EXPECT_EQ(to_string(ServiceStatus::kRateLimited), "rate-limited");
  EXPECT_EQ(to_string(ServiceStatus::kQuotaExhausted), "quota-exhausted");
}

}  // namespace
}  // namespace mlaas
