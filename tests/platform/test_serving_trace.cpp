#include "platform/serving.h"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/trace.h"

namespace mlaas {
namespace {

/// Small traced storm: enough faults, breaker trips and ladder walks to
/// touch every instrumented layer, small enough to run twice per test.
ServingWorkloadOptions storm_options(bool trace) {
  ServingWorkloadOptions options;
  options.seed = 42;
  options.requests = 400;
  options.arrival_rate = 50.0;
  options.serving.fault_rate = 0.1;
  options.serving.chaos_profile = "storm";
  options.serving.deadline_seconds = 30.0;
  options.serving.fallback_platform = "Google";
  options.serving.serve_last_known_good = true;
  options.serving.breaker.enabled = true;
  options.serving.breaker.failure_threshold = 3;
  options.serving.breaker.cooldown_seconds = 120.0;
  options.serving.breaker.max_probes = 4;
  options.serving.trace = trace;
  return options;
}

std::vector<ServingTenantSpec> storm_tenants() {
  return make_serving_tenants(
      4, {"Local", "Google", "Amazon", "BigML"}, /*seed=*/42);
}

std::string chrome_json(const Trace& trace) {
  std::ostringstream out;
  trace.write_chrome_json(out);
  return out.str();
}

/// Drop every "# trace\t..." trailer line from a TSV report.
std::string strip_trace_trailer(const std::string& tsv) {
  std::istringstream in(tsv);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# trace\t", 0) == 0) continue;
    out << line << '\n';
  }
  return out.str();
}

TEST(ServingTrace, ChromeJsonByteIdenticalAcrossReruns) {
  const auto tenants = storm_tenants();
  const auto options = storm_options(/*trace=*/true);
  const ServingWorkloadResult a = run_serving_workload(tenants, options);
  const ServingWorkloadResult b = run_serving_workload(tenants, options);
  ASSERT_NE(a.trace, nullptr);
  ASSERT_NE(b.trace, nullptr);
  EXPECT_GT(a.trace->event_count(), 0u);
  EXPECT_EQ(chrome_json(*a.trace), chrome_json(*b.trace));
}

TEST(ServingTrace, SpansCoverEveryInstrumentedLayer) {
  // One storm run must leave footprints from all layers: service call spans
  // and retry waits on the platform tracks, breaker transitions, the
  // router's flush spans and degradation-ladder rung annotations.  The full
  // bench-sized storm: 400 requests end before the first breaker trips.
  ServingWorkloadOptions options = storm_options(/*trace=*/true);
  options.requests = 2000;
  const ServingWorkloadResult run = run_serving_workload(storm_tenants(), options);
  ASSERT_NE(run.trace, nullptr);
  const std::string json = chrome_json(*run.trace);
  EXPECT_NE(json.find("\"cat\":\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"breaker\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"serving\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ladder\""), std::string::npos);
  EXPECT_NE(json.find("rung:"), std::string::npos);
  // Track layout: router first, then one track per roster platform.
  EXPECT_NE(json.find("\"name\":\"router\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"service:Local\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"service:Google\""), std::string::npos);
  // The summary trailer mirrors the trace.
  EXPECT_EQ(run.report.trace_summary, run.trace->summary());
  EXPECT_NE(run.report.trace_summary.find("cat:serving="), std::string::npos);
}

TEST(ServingTrace, TracingOffLeavesReportBytesIdentical) {
  // The observability layer must be a pure read: with trace off the report
  // bytes match the pre-trace format exactly, and with trace on they differ
  // only by the "# trace" trailer line.
  const auto tenants = storm_tenants();
  const ServingWorkloadResult off =
      run_serving_workload(tenants, storm_options(/*trace=*/false));
  const ServingWorkloadResult on =
      run_serving_workload(tenants, storm_options(/*trace=*/true));
  ASSERT_EQ(off.trace, nullptr);
  EXPECT_TRUE(off.report.trace_summary.empty());

  std::ostringstream off_tsv, on_tsv;
  off.report.write_tsv(off_tsv);
  on.report.write_tsv(on_tsv);
  EXPECT_EQ(off_tsv.str().find("# trace"), std::string::npos);
  EXPECT_NE(on_tsv.str().find("# trace\t"), std::string::npos);
  EXPECT_EQ(strip_trace_trailer(on_tsv.str()), off_tsv.str());
  EXPECT_NE(on_tsv.str(), off_tsv.str());
}

TEST(ServingTrace, ReportMetricsRegistryCoversTotalsAndTenants) {
  const ServingWorkloadResult run =
      run_serving_workload(storm_tenants(), storm_options(/*trace=*/false));
  const MetricsRegistry m = run.report.metrics();
  EXPECT_DOUBLE_EQ(m.value("serving.requests"),
                   static_cast<double>(run.report.totals.requests));
  EXPECT_DOUBLE_EQ(m.value("serving.batches"),
                   static_cast<double>(run.report.totals.batches));
  ASSERT_FALSE(run.report.tenants.empty());
  const auto& t0 = run.report.tenants.front();
  EXPECT_DOUBLE_EQ(m.value("tenant." + t0.tenant + ".requests"),
                   static_cast<double>(t0.requests));
  // Registration order is stable, so the encoding is too.
  EXPECT_EQ(m.encode(), run.report.metrics().encode());
}

// -- Satellite: CLI-facing knob validation (mirrors the --threads fix).

TEST(ServingTrace, ValidateOptionsAcceptsDefaults) {
  EXPECT_NO_THROW(validate_serving_options(ServingOptions{}));
}

TEST(ServingTrace, ValidateOptionsRejectsEachBadKnob) {
  const auto expect_rejected = [](auto mutate, const std::string& needle) {
    ServingOptions o;
    mutate(o);
    try {
      validate_serving_options(o);
      FAIL() << "expected std::invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  expect_rejected([](ServingOptions& o) { o.max_batch_rows = 0; }, "--batch");
  expect_rejected([](ServingOptions& o) { o.linger_seconds = -0.5; }, "--linger");
  expect_rejected([&](ServingOptions& o) { o.linger_seconds = nan; }, "--linger");
  expect_rejected([](ServingOptions& o) { o.model_cache_capacity = 0; },
                  "--cache-capacity");
  expect_rejected([](ServingOptions& o) { o.deadline_seconds = -1.0; },
                  "--deadline-ms");
  expect_rejected([&](ServingOptions& o) { o.deadline_seconds = nan; },
                  "--deadline-ms");
  expect_rejected([](ServingOptions& o) { o.fault_rate = 1.5; }, "--fault-rate");
  expect_rejected([&](ServingOptions& o) { o.fault_rate = nan; }, "--fault-rate");
  expect_rejected([](ServingOptions& o) { o.retry.max_attempts = 0; },
                  "retry attempts");
  expect_rejected(
      [](ServingOptions& o) {
        o.breaker.enabled = true;
        o.breaker.failure_threshold = 0;
      },
      "--breaker-threshold");
  expect_rejected(
      [](ServingOptions& o) {
        o.breaker.enabled = true;
        o.breaker.cooldown_seconds = -1.0;
      },
      "--breaker-cooldown");
  expect_rejected(
      [](ServingOptions& o) {
        o.breaker.enabled = true;
        o.breaker.max_probes = -2;
      },
      "--breaker-probes");
}

TEST(ServingTrace, ValidateOptionsIgnoresBreakerKnobsWhenDisabled) {
  // Disabled breakers are never constructed, so their knobs are inert; the
  // validator must not reject configs that merely carry stale values.
  ServingOptions o;
  o.breaker.enabled = false;
  o.breaker.failure_threshold = 0;
  o.breaker.cooldown_seconds = -1.0;
  EXPECT_NO_THROW(validate_serving_options(o));
}

}  // namespace
}  // namespace mlaas
