#include "platform/auto_select.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace mlaas {
namespace {

TEST(AutoSelect, PicksNonLinearOnCircles) {
  const Dataset circle = make_circle_probe(1, 600);
  const auto result = auto_select_family(circle, {}, 1);
  EXPECT_EQ(result.family, ClassifierFamily::kNonLinear);
  EXPECT_GT(result.nonlinear_cv_f, result.linear_cv_f);
}

TEST(AutoSelect, PicksLinearOnCleanLinearData) {
  const Dataset blob = make_blobs(600, 4, 0.8, 6.0, 2);
  const auto result = auto_select_family(blob, {}, 2);
  EXPECT_EQ(result.family, ClassifierFamily::kLinear);
}

TEST(AutoSelect, LinearBiasBreaksNearTies) {
  // With an overwhelming bias the non-linear arm can never win.
  const Dataset circle = make_circle_probe(3, 400);
  AutoSelectOptions options;
  options.linear_bias = 10.0;
  const auto result = auto_select_family(circle, options, 3);
  EXPECT_EQ(result.family, ClassifierFamily::kLinear);
}

TEST(AutoSelect, SubsamplesLargeInputs) {
  // Functional check: a large dataset still resolves quickly and correctly.
  const Dataset circle = make_circle_probe(4, 3000);
  AutoSelectOptions options;
  options.max_probe_samples = 200;
  const auto result = auto_select_family(circle, options, 4);
  EXPECT_EQ(result.family, ClassifierFamily::kNonLinear);
}

TEST(AutoSelect, DeterministicForSeed) {
  const Dataset ds = make_moons(300, 0.2, 5);
  const auto a = auto_select_family(ds, {}, 9);
  const auto b = auto_select_family(ds, {}, 9);
  EXPECT_EQ(a.family, b.family);
  EXPECT_DOUBLE_EQ(a.linear_cv_f, b.linear_cv_f);
}

TEST(FamilyToString, Names) {
  EXPECT_EQ(to_string(ClassifierFamily::kLinear), "linear");
  EXPECT_EQ(to_string(ClassifierFamily::kNonLinear), "non-linear");
}

}  // namespace
}  // namespace mlaas
