#include <gtest/gtest.h>

#include "platform/all_platforms.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

using testing::circles;
using testing::separable;

TEST(AllPlatforms, SevenInComplexityOrder) {
  const auto platforms = make_all_platforms();
  ASSERT_EQ(platforms.size(), 7u);
  for (std::size_t i = 1; i < platforms.size(); ++i) {
    EXPECT_LT(platforms[i - 1]->complexity_rank(), platforms[i]->complexity_rank());
  }
  EXPECT_EQ(platforms.front()->name(), "Google");
  EXPECT_EQ(platforms.back()->name(), "Local");
}

TEST(AllPlatforms, FactoryByName) {
  for (const auto& name : platform_names()) {
    EXPECT_EQ(make_platform(name)->name(), name);
  }
  EXPECT_THROW(make_platform("Oracle"), std::invalid_argument);
}

TEST(ControlSurfaces, MatchFigure1Checkmarks) {
  // Figure 1/Table 1: which pipeline steps each platform exposes.
  struct Expected {
    const char* name;
    bool feat, clf, para;
    std::size_t n_classifiers;
  };
  const Expected expected[] = {
      {"Google", false, false, false, 0},   {"ABM", false, false, false, 0},
      {"Amazon", false, false, true, 1},    {"BigML", false, true, true, 4},
      {"PredictionIO", false, true, true, 3}, {"Microsoft", true, true, true, 7},
      {"Local", true, true, true, 10},
  };
  for (const auto& e : expected) {
    const auto platform = make_platform(e.name);
    const ControlSurface s = platform->controls();
    EXPECT_EQ(s.feature_selection, e.feat) << e.name;
    EXPECT_EQ(s.classifier_choice, e.clf) << e.name;
    EXPECT_EQ(s.parameter_tuning, e.para) << e.name;
    EXPECT_EQ(s.classifiers.size(), e.n_classifiers) << e.name;
  }
}

TEST(ControlSurfaces, MicrosoftHasEightFeatureMethods) {
  const ControlSurface s = make_platform("Microsoft")->controls();
  EXPECT_EQ(s.feature_steps.size(), 8u);
}

TEST(ControlSurfaces, LocalHasEightFeatureMethods) {
  const ControlSurface s = make_platform("Local")->controls();
  EXPECT_EQ(s.feature_steps.size(), 8u);
}

TEST(BaselineConfig, WhiteBoxDefaultsToLogisticRegression) {
  for (const auto& name : {"Amazon", "BigML", "PredictionIO", "Microsoft", "Local"}) {
    const auto config = make_platform(name)->baseline_config();
    if (std::string(name) == "Amazon") {
      EXPECT_TRUE(config.classifier.empty() || config.classifier == "logistic_regression");
    } else {
      EXPECT_EQ(config.classifier, "logistic_regression") << name;
    }
  }
}

TEST(BaselineConfig, BlackBoxIsEmpty) {
  for (const auto& name : {"Google", "ABM"}) {
    const auto config = make_platform(name)->baseline_config();
    EXPECT_TRUE(config.classifier.empty()) << name;
    EXPECT_TRUE(config.params.empty()) << name;
  }
}

class PlatformTrainTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PlatformTrainTest, BaselineTrainsAndPredicts) {
  const auto platform = make_platform(GetParam());
  const Dataset ds = separable(200, 31);
  const auto model = platform->train(ds, platform->baseline_config(), 1);
  const auto labels = model->predict(ds.x());
  EXPECT_EQ(labels.size(), ds.n_samples());
  EXPECT_GT(accuracy_score(ds.y(), labels), 0.85) << GetParam();
}

TEST_P(PlatformTrainTest, RejectsUnsupportedControls) {
  const auto platform = make_platform(GetParam());
  const ControlSurface s = platform->controls();
  const Dataset ds = separable(60, 32);
  if (!s.feature_selection) {
    PipelineConfig config = platform->baseline_config();
    config.feature_step = "filter_pearson";
    EXPECT_THROW(platform->train(ds, config, 1), std::invalid_argument) << GetParam();
  }
  if (!s.classifier_choice) {
    PipelineConfig config;
    config.classifier = "mlp";
    EXPECT_THROW(platform->train(ds, config, 1), std::invalid_argument) << GetParam();
  }
}

TEST_P(PlatformTrainTest, UnknownClassifierRejected) {
  const auto platform = make_platform(GetParam());
  if (!platform->controls().classifier_choice) return;
  PipelineConfig config;
  config.classifier = "quantum_svm";
  EXPECT_THROW(platform->train(separable(60, 33), config, 1), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformTrainTest,
                         ::testing::ValuesIn(platform_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(PipelineConfig, KeyIsCanonical) {
  PipelineConfig config;
  EXPECT_EQ(config.key(), "none|auto|");
  config.feature_step = "filter_pearson";
  config.classifier = "decision_tree";
  config.params.set("max_depth", 5LL);
  EXPECT_EQ(config.key(), "filter_pearson|decision_tree|max_depth=5");
}

TEST(Microsoft, FeatureSelectionPipelineWorks) {
  const auto platform = make_platform("Microsoft");
  PipelineConfig config;
  config.feature_step = "filter_fisher";
  config.classifier = "boosted_trees";
  const Dataset ds = circles(300, 34);
  const auto model = platform->train(ds, config, 1);
  EXPECT_GT(accuracy_score(ds.y(), model->predict(ds.x())), 0.85);
}

TEST(Microsoft, HeavyDefaultRegularizationWeakensBaseline) {
  // The paper found Microsoft's default LR the weakest baseline (Table 3a);
  // our simulator reproduces the mechanism via strong default L2.
  const Dataset hard = make_sparse_linear(300, 25, 6, 0.1, 35);
  const auto microsoft = make_platform("Microsoft");
  const auto local = make_platform("Local");
  const auto split = train_test_split(hard, 0.3, 7);
  const auto m_model = microsoft->train(split.train, microsoft->baseline_config(), 1);
  const auto l_model = local->train(split.train, local->baseline_config(), 1);
  const double m_acc = accuracy_score(split.test.y(), m_model->predict(split.test.x()));
  const double l_acc = accuracy_score(split.test.y(), l_model->predict(split.test.x()));
  EXPECT_LE(m_acc, l_acc + 0.05);
}

TEST(PredictionIo, DoesNotExposeScores) {
  const auto platform = make_platform("PredictionIO");
  const Dataset ds = separable(100, 36);
  const auto model = platform->train(ds, platform->baseline_config(), 1);
  EXPECT_FALSE(model->exposes_scores());
  EXPECT_THROW(model->predict_score(ds.x()), std::logic_error);
}

TEST(Local, ExposesScores) {
  const auto platform = make_platform("Local");
  const Dataset ds = separable(100, 37);
  const auto model = platform->train(ds, platform->baseline_config(), 1);
  EXPECT_TRUE(model->exposes_scores());
  for (double s : model->predict_score(ds.x())) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
}  // namespace mlaas
