#include "platform/serving.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/generators.h"
#include "ml/classifier.h"
#include "platform/all_platforms.h"
#include "util/rng.h"

namespace mlaas {
namespace {

Dataset serving_data(std::uint64_t seed = 3) {
  Dataset d = make_blobs(120, 4, 0.9, 5.0, seed);
  d.meta().id = "serving-test-" + std::to_string(seed);
  return d;
}

/// One-row query matrix holding row i (mod size) of the training set.
Matrix slice_row(const Dataset& d, int i) {
  Matrix q(1, d.x().cols());
  const auto src = d.x().row(static_cast<std::size_t>(i) % d.x().rows());
  std::copy(src.begin(), src.end(), q.row(0).begin());
  return q;
}

/// Labels from the direct path the serving layer must reproduce byte for
/// byte: Platform::train with the explicit seed, then one predict call.
std::vector<int> direct_labels(const std::string& platform, const Dataset& train,
                               const Matrix& query, std::uint64_t train_seed) {
  const auto p = make_platform(platform);
  return p->train(train, {}, train_seed)->predict(query);
}

/// Push `query` through a fresh router in per-request chunks of `chunk`
/// rows, drain, and return the concatenated labels (ticket order).
std::vector<int> serving_labels(const std::string& platform, const Dataset& train,
                                const Matrix& query, std::uint64_t train_seed,
                                std::size_t chunk, ServingOptions options = {}) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform(platform));
  QueryRouter router(roster, "default", /*seed=*/99, options);
  const auto session =
      router.open_session("t0", platform, train, {}, train_seed);
  EXPECT_TRUE(session.has_value()) << router.last_error();
  if (!session) return {};

  std::vector<QueryRouter::Ticket> tickets;
  for (std::size_t start = 0; start < query.rows(); start += chunk) {
    const std::size_t rows = std::min(chunk, query.rows() - start);
    Matrix q(rows, query.cols());
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = query.row(start + r);
      std::copy(src.begin(), src.end(), q.row(r).begin());
    }
    const auto ticket = router.submit(*session, q);
    EXPECT_TRUE(ticket.has_value());
    if (ticket) tickets.push_back(*ticket);
  }
  router.drain();

  std::vector<int> labels;
  for (const auto ticket : tickets) {
    const QueryResult& r = router.result(ticket);
    EXPECT_TRUE(r.done);
    EXPECT_TRUE(r.ok) << r.error;
    labels.insert(labels.end(), r.labels.begin(), r.labels.end());
  }
  return labels;
}

TEST(QueryRouterTest, ServingMatchesDirectPredictAcrossBatchSizes) {
  // The headline invariant: for every platform and any micro-batch shape the
  // serving path returns byte-identical labels to the direct call — batching
  // only changes how rows ride together, never what comes back.
  const Dataset train = serving_data(5);
  const Matrix& query = train.x();
  for (const auto& platform : platform_names()) {
    const std::vector<int> expected =
        direct_labels(platform, train, query, /*train_seed=*/321);
    ASSERT_EQ(expected.size(), query.rows());
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      EXPECT_EQ(serving_labels(platform, train, query, 321, chunk), expected)
          << platform << " chunk=" << chunk;
    }
  }
}

TEST(QueryRouterTest, BatchShapeDoesNotChangeLabels) {
  // Different max_batch_rows / linger settings regroup the same submits into
  // different predict calls; the concatenated labels must not move.
  const Dataset train = serving_data(6);
  const Matrix& query = train.x();
  const std::vector<int> expected = direct_labels("Local", train, query, 77);
  for (std::size_t max_batch : {std::size_t{1}, std::size_t{16}, std::size_t{256}}) {
    ServingOptions options;
    options.max_batch_rows = max_batch;
    EXPECT_EQ(serving_labels("Local", train, query, 77, 5, options), expected)
        << "max_batch_rows=" << max_batch;
  }
}

TEST(QueryRouterTest, MicroBatchingCoalescesRequests) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 32;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(7);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  // 64 single-row submits inside one linger window coalesce into exactly two
  // 32-row predict calls.
  Matrix one(1, train.x().cols());
  for (int i = 0; i < 64; ++i) {
    std::copy(train.x().row(i % train.x().rows()).begin(),
              train.x().row(i % train.x().rows()).end(), one.row(0).begin());
    ASSERT_TRUE(router.submit(*session, one).has_value());
  }
  router.drain();

  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.rows, 64u);
  EXPECT_EQ(stats.ok, 64u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_rows(), 32.0);
  EXPECT_DOUBLE_EQ(stats.batch_occupancy(options.max_batch_rows), 1.0);
  EXPECT_EQ(stats.flushed_full, 2u);
  // Service-side: upload + train + 2 predicts = 4 admitted requests, and the
  // per-row accounting sees all 64 rows.
  const ServiceStats& platform = router.platform_stats("Local");
  EXPECT_EQ(platform.requests, 4u);
  EXPECT_EQ(platform.predictions, 64u);
}

TEST(QueryRouterTest, LingerDeadlineFlushesPartialBatches) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;  // never fills
  options.linger_seconds = 0.05;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(8);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix one(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), one.row(0).begin());
  const auto ticket = router.submit(*session, one);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_FALSE(router.result(*ticket).done);

  const double submit_time = router.now();
  router.advance_to(submit_time + 0.01);  // before the deadline: still queued
  EXPECT_FALSE(router.result(*ticket).done);
  router.advance_to(submit_time + 0.06);  // past the deadline: flushed
  EXPECT_TRUE(router.result(*ticket).done);
  EXPECT_TRUE(router.result(*ticket).ok);
  EXPECT_EQ(router.stats().flushed_linger, 1u);
  // The request completed at its linger deadline, not at advance_to's t.
  EXPECT_NEAR(router.result(*ticket).complete_seconds - submit_time, 0.05, 1e-6);
}

TEST(QueryRouterTest, WaitFlushesTheTicketsBatch) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(9);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());
  Matrix one(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), one.row(0).begin());
  const auto ticket = router.submit(*session, one);
  ASSERT_TRUE(ticket.has_value());
  const QueryResult& r = router.wait(*ticket);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(router.stats().flushed_linger, 1u);
}

TEST(QueryRouterTest, AbsorbsRateLimitsUnderStrictQuota) {
  // "strict" admits 5 requests/min; upload + train spend two.  The router's
  // retrying client must wait the windows out (honouring Retry-After) so
  // every request still completes.
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 4;
  QueryRouter router(roster, "strict", 1, options);
  const Dataset train = serving_data(10);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix one(1, train.x().cols());
  for (int i = 0; i < 32; ++i) {
    std::copy(train.x().row(i % train.x().rows()).begin(),
              train.x().row(i % train.x().rows()).end(), one.row(0).begin());
    ASSERT_TRUE(router.submit(*session, one).has_value());
  }
  router.drain();

  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.ok, 32u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.rate_limited, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.backoff_seconds, 0.0);
  // Latency telemetry saw every request and the tail reflects the stalls.
  EXPECT_EQ(stats.latency.count(), 32u);
  EXPECT_GE(stats.latency.quantile(0.99), stats.latency.quantile(0.50));
}

TEST(QueryRouterTest, LruEvictionRetrainsDeterministically) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.model_cache_capacity = 1;  // the two tenants constantly evict each other
  options.max_batch_rows = 8;
  QueryRouter router(roster, "unlimited", 1, options);

  const Dataset train_a = serving_data(11);
  const Dataset train_b = serving_data(12);
  const auto sa = router.open_session("a", "Local", train_a, {}, 100);
  const auto sb = router.open_session("b", "Local", train_b, {}, 200);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_LE(router.cached_models(), 1u);

  const std::vector<int> expected_a = direct_labels("Local", train_a, train_a.x(), 100);
  const std::vector<int> expected_b = direct_labels("Local", train_b, train_b.x(), 200);

  // Alternate tenants so every flush is a cache miss + re-train; the labels
  // must stay byte-identical to the direct path on every round.
  for (int round = 0; round < 3; ++round) {
    const auto ta = router.submit(*sa, train_a.x());
    ASSERT_TRUE(ta.has_value());
    router.drain();
    EXPECT_EQ(router.result(*ta).labels, expected_a) << "round " << round;

    const auto tb = router.submit(*sb, train_b.x());
    ASSERT_TRUE(tb.has_value());
    router.drain();
    EXPECT_EQ(router.result(*tb).labels, expected_b) << "round " << round;
  }

  const ServingStats stats = router.stats();
  EXPECT_LE(router.cached_models(), 1u);
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_GT(stats.cache_misses, stats.cache_hits);
  EXPECT_EQ(stats.trainings, stats.cache_misses);
  // Eviction releases handles: the service never holds more than capacity
  // models and no stranded datasets.
  const ServiceStats& platform = router.platform_stats("Local");
  EXPECT_EQ(platform.models_deleted + router.cached_models(), platform.trainings);
  EXPECT_EQ(platform.datasets_deleted, platform.uploads);
}

TEST(QueryRouterTest, AdmissionControlShedsLoad) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;
  options.max_pending_rows = 4;
  options.linger_seconds = 1e9;  // nothing flushes on its own
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(13);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix three(3, train.x().cols());
  for (std::size_t r = 0; r < 3; ++r) {
    std::copy(train.x().row(r).begin(), train.x().row(r).end(), three.row(r).begin());
  }
  EXPECT_TRUE(router.submit(*session, three).has_value());   // 3 pending
  EXPECT_FALSE(router.submit(*session, three).has_value());  // 6 > 4: shed
  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.requests, 1u);  // rejected submits are not requests served
  router.drain();
  EXPECT_EQ(router.stats().ok, 1u);
  // Drain freed the pending rows; admission opens up again.
  EXPECT_TRUE(router.submit(*session, three).has_value());
}

TEST(QueryRouterTest, ClosedSessionRejectsSubmits) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  QueryRouter router(roster, "unlimited", 1, {});
  const Dataset train = serving_data(14);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());
  router.close_session(*session);
  EXPECT_THROW(router.submit(*session, train.x()), std::logic_error);
  EXPECT_THROW(
      QueryRouter(roster, "unlimited", 1, {}).open_session("t", "Nope", train, {}, 1),
      std::invalid_argument);
}

TEST(LatencyHistogramTest, QuantilesAndEncoding) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.encode(), "-");

  // 100 samples at ~2ms, one at ~1s: p50 lands in the 2ms bucket, p99+ near
  // the outlier; every quantile is exact to within one sqrt(2) bucket.
  for (int i = 0; i < 100; ++i) h.record(0.002);
  h.record(1.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_NEAR(h.quantile(0.50), 0.002, 0.002 * 0.5);
  EXPECT_GT(h.quantile(0.995), 0.5);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1.0);
  EXPECT_NEAR(h.mean_seconds(), (0.2 + 1.0) / 101.0, 1e-12);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));

  LatencyHistogram other;
  other.record(0.002);
  other.merge(h);
  EXPECT_EQ(other.count(), 102u);

  // encode() lists only occupied buckets as le_ms=count pairs.
  const std::string enc = h.encode();
  EXPECT_NE(enc.find("=100"), std::string::npos) << enc;
  EXPECT_NE(enc.find(';'), std::string::npos) << enc;
}

TEST(LatencyHistogramTest, OverflowBucketUsesObservedMax) {
  LatencyHistogram h;
  h.record(1e9);  // beyond the last bound
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e9);
  EXPECT_NE(h.encode().find("inf=1"), std::string::npos) << h.encode();
}

TEST(LatencyHistogramTest, EmptySingleSampleAndDisjointMerge) {
  // Empty: every quantile (and the mean) is 0, not NaN or a crash.
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max_seconds(), 0.0);

  // One sample: every quantile resolves to that sample's bucket midpoint.
  LatencyHistogram single;
  single.record(0.010);
  const double mid = single.quantile(0.5);
  EXPECT_DOUBLE_EQ(single.quantile(0.0), mid);
  EXPECT_DOUBLE_EQ(single.quantile(1.0), mid);
  EXPECT_NEAR(mid, 0.010, 0.010 * 0.5);
  EXPECT_DOUBLE_EQ(single.mean_seconds(), 0.010);

  // Merge of histograms occupying disjoint bucket ranges: counts, totals,
  // max and both tails combine; encode() lists both clusters.
  LatencyHistogram fast;
  LatencyHistogram slow;
  for (int i = 0; i < 10; ++i) fast.record(0.001);
  for (int i = 0; i < 10; ++i) slow.record(10.0);
  LatencyHistogram merged = fast;
  merged.merge(slow);
  EXPECT_EQ(merged.count(), 20u);
  EXPECT_DOUBLE_EQ(merged.total_seconds(),
                   fast.total_seconds() + slow.total_seconds());
  EXPECT_DOUBLE_EQ(merged.max_seconds(), 10.0);
  EXPECT_LT(merged.quantile(0.25), 0.01);
  EXPECT_GT(merged.quantile(0.95), 1.0);
  EXPECT_NE(merged.encode().find(';'), std::string::npos) << merged.encode();
  // Merging an empty histogram is the identity.
  LatencyHistogram copy = merged;
  copy.merge(empty);
  EXPECT_EQ(copy.encode(), merged.encode());
  EXPECT_DOUBLE_EQ(copy.quantile(0.5), merged.quantile(0.5));
}

TEST(ServingWorkloadTest, SeededWorkloadIsDeterministic) {
  const auto tenants = make_serving_tenants(4, {"Local", "Google"}, 42);
  ASSERT_EQ(tenants.size(), 4u);
  EXPECT_GT(tenants[0].weight, tenants[3].weight);  // Zipf skew

  ServingWorkloadOptions options;
  options.requests = 200;
  options.seed = 42;
  const auto a = run_serving_workload(tenants, options);
  const auto b = run_serving_workload(tenants, options);
  EXPECT_GT(a.report.totals.requests, 0u);
  EXPECT_EQ(a.report.totals.requests, b.report.totals.requests);
  EXPECT_EQ(a.report.totals.rows, b.report.totals.rows);
  EXPECT_EQ(a.report.totals.ok, b.report.totals.ok);
  EXPECT_EQ(a.report.totals.batches, b.report.totals.batches);
  EXPECT_DOUBLE_EQ(a.report.totals.simulated_seconds,
                   b.report.totals.simulated_seconds);
  EXPECT_EQ(a.report.totals.latency.encode(), b.report.totals.latency.encode());
  ASSERT_EQ(a.report.tenants.size(), b.report.tenants.size());
  for (std::size_t i = 0; i < a.report.tenants.size(); ++i) {
    EXPECT_EQ(a.report.tenants[i].rows, b.report.tenants[i].rows);
  }
}

TEST(ServingWorkloadTest, ClosedLoopServesEveryRequest) {
  const auto tenants = make_serving_tenants(3, {"Local"}, 7);
  ServingWorkloadOptions options;
  options.requests = 120;
  options.closed_loop = true;
  options.clients = 6;
  options.quota_profile = "unlimited";
  const auto result = run_serving_workload(tenants, options);
  EXPECT_EQ(result.report.totals.requests, 120u);
  EXPECT_EQ(result.report.totals.ok, 120u);
  EXPECT_EQ(result.report.totals.failed, 0u);
}

TEST(ServingReportTest, BytesInvariantAcrossPredictKernels) {
  // The flat prediction kernels must be invisible to the serving layer: a
  // workload run under PredictKernel::kReference writes byte-identical
  // report TSVs to the flat default (latency is simulated time, so the
  // report carries no wall-clock nondeterminism).
  const auto tenants = make_serving_tenants(2, {"Local"}, 13);
  ServingWorkloadOptions options;
  options.requests = 80;
  options.seed = 13;
  options.quota_profile = "unlimited";
  const std::string path = testing::TempDir() + "serving_kernel_invariance.tsv";
  const auto read_bytes = [&path]() {
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  set_active_predict_kernel(PredictKernel::kReference);
  run_serving_workload(tenants, options).report.save_tsv(path);
  const std::string reference_bytes = read_bytes();
  set_active_predict_kernel(PredictKernel::kFlat);
  run_serving_workload(tenants, options).report.save_tsv(path);
  const std::string flat_bytes = read_bytes();
  std::remove(path.c_str());
  ASSERT_FALSE(reference_bytes.empty());
  EXPECT_EQ(flat_bytes, reference_bytes);
}

TEST(ServingReportTest, TsvAndJsonRoundOut) {
  const auto tenants = make_serving_tenants(2, {"Local"}, 9);
  ServingWorkloadOptions options;
  options.requests = 60;
  options.quota_profile = "unlimited";
  const auto result = run_serving_workload(tenants, options);

  const std::string tsv = testing::TempDir() + "serving_report.tsv";
  const std::string json = testing::TempDir() + "serving_report.json";
  result.report.save_tsv(tsv);
  result.report.save_json(json);

  std::ifstream tin(tsv);
  std::stringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string tsv_text = tbuf.str();
  EXPECT_NE(tsv_text.find("tenant\trequests\trows"), std::string::npos);
  EXPECT_NE(tsv_text.find("TOTAL"), std::string::npos);
  EXPECT_NE(tsv_text.find("# serving\t"), std::string::npos);
  EXPECT_NE(tsv_text.find("# histogram\t"), std::string::npos);

  std::ifstream jin(json);
  std::stringstream jbuf;
  jbuf << jin.rdbuf();
  const std::string json_text = jbuf.str();
  EXPECT_NE(json_text.find("\"throughput_rows_per_sec\""), std::string::npos);
  EXPECT_NE(json_text.find("\"p99\""), std::string::npos);
  EXPECT_NE(json_text.find("\"tenants\""), std::string::npos);
  std::remove(tsv.c_str());
  std::remove(json.c_str());
}

// ---------------------------------------------------------------------------
// Fault tolerance: chaos serving and the degradation ladder.

/// The pre-resilience TSV format, reconstructed field by field.  This is the
/// byte-lock: with every resilience knob off, ServingReport::write_tsv must
/// produce exactly these bytes — no new columns, no new trailer lines.
std::string legacy_tsv(const ServingReport& report) {
  std::ostringstream out;
  out.precision(10);
  out << "tenant\trequests\trows\tok\tfailed\trejected\tmean_ms\tp50_ms\tp95_ms"
         "\tp99_ms\tmax_ms\n";
  const auto row = [&out](const TenantServingStats& t) {
    out << t.tenant << '\t' << t.requests << '\t' << t.rows << '\t' << t.ok << '\t'
        << t.failed << '\t' << t.rejected << '\t'
        << t.latency.mean_seconds() * 1000.0 << '\t'
        << t.latency.quantile(0.50) * 1000.0 << '\t'
        << t.latency.quantile(0.95) * 1000.0 << '\t'
        << t.latency.quantile(0.99) * 1000.0 << '\t'
        << t.latency.max_seconds() * 1000.0 << '\n';
  };
  for (const auto& t : report.tenants) row(t);
  TenantServingStats total;
  total.tenant = "TOTAL";
  total.requests = report.totals.requests;
  total.rows = report.totals.rows;
  total.ok = report.totals.ok;
  total.failed = report.totals.failed;
  total.rejected = report.totals.rejected;
  total.latency = report.totals.latency;
  row(total);
  out << "# serving\tbatches=" << report.totals.batches
      << "\tmean_batch_rows=" << report.totals.mean_batch_rows()
      << "\toccupancy=" << report.totals.batch_occupancy(report.max_batch_rows)
      << "\tthroughput_rows_per_sec=" << report.totals.throughput_rows_per_sec()
      << "\tsimulated_sec=" << report.totals.simulated_seconds
      << "\tflushed_full=" << report.totals.flushed_full
      << "\tflushed_linger=" << report.totals.flushed_linger
      << "\tflushed_forced=" << report.totals.flushed_forced
      << "\tcache_hits=" << report.totals.cache_hits
      << "\tcache_misses=" << report.totals.cache_misses
      << "\tcache_evictions=" << report.totals.cache_evictions
      << "\ttrainings=" << report.totals.trainings
      << "\tretries=" << report.totals.retries
      << "\trate_limited=" << report.totals.rate_limited
      << "\tbackoff_sec=" << report.totals.backoff_seconds << '\n';
  out << "# histogram\t" << report.totals.latency.encode() << '\n';
  return out.str();
}

TEST(ChaosServingTest, ChaosOffReportIsByteIdenticalToLegacyFormat) {
  const auto tenants = make_serving_tenants(3, {"Local", "Google"}, 21);
  ServingWorkloadOptions options;
  options.requests = 150;
  options.seed = 21;
  const auto result = run_serving_workload(tenants, options);
  ASSERT_FALSE(result.report.resilience)
      << "default options must not switch the report into resilience mode";
  std::ostringstream out;
  result.report.write_tsv(out);
  EXPECT_EQ(out.str(), legacy_tsv(result.report));
}

struct StormRun {
  std::string tsv;
  std::vector<QueryResult> results;  // ticket order
  ServingStats stats;
};

/// One deterministic chaos-storm serving run: chunked submits over Poisson
/// -free fixed arrivals, the full ladder armed (deadline + breaker +
/// failover + last-known-good), chaos profile "storm" plus extra scalar
/// faults on both platforms.
StormRun run_storm(std::size_t chunk, std::uint64_t seed) {
  ServingOptions options;
  options.max_batch_rows = chunk;
  options.linger_seconds = 0.05;
  options.chaos_profile = "storm";
  options.fault_rate = 0.15;
  options.deadline_seconds = 30.0;
  options.fallback_platform = "Google";
  options.serve_last_known_good = true;
  options.breaker.enabled = true;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown_seconds = 120.0;
  options.breaker.max_probes = 4;
  options.retry.max_attempts = 3;

  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  roster.push_back(make_platform("Google"));
  QueryRouter router(roster, "default", seed, options);
  const Dataset train = serving_data(17);
  const auto session = router.open_session("t0", "Local", train, {}, 55);
  EXPECT_TRUE(session.has_value()) << router.last_error();

  StormRun run;
  if (!session) return run;
  std::vector<QueryRouter::Ticket> tickets;
  double t = 0.0;
  for (int i = 0; i < 120; ++i) {
    t += 2.5;  // fixed arrival spacing: storms sweep over the request stream
    router.advance_to(t);
    Matrix q(1, train.x().cols());
    const auto src = train.x().row(static_cast<std::size_t>(i) % train.x().rows());
    std::copy(src.begin(), src.end(), q.row(0).begin());
    const auto ticket = router.submit(*session, q);
    EXPECT_TRUE(ticket.has_value());
    if (ticket) tickets.push_back(*ticket);
  }
  router.drain();

  for (const auto ticket : tickets) run.results.push_back(router.result(ticket));
  run.stats = router.stats();
  std::ostringstream out;
  router.report().write_tsv(out);
  run.tsv = out.str();
  return run;
}

TEST(ChaosServingTest, StormResolvesEveryRequestAndRerunsAreByteIdentical) {
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    const StormRun a = run_storm(chunk, 9001);
    const StormRun b = run_storm(chunk, 9001);
    ASSERT_EQ(a.results.size(), 120u) << "chunk=" << chunk;

    // Liveness under chaos: every accepted request resolves — with labels,
    // a degraded reject or a deadline miss, but never a hang.
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      const QueryResult& r = a.results[i];
      EXPECT_TRUE(r.done) << "chunk=" << chunk << " ticket=" << i;
      EXPECT_NE(r.outcome, QueryOutcome::kPending) << "chunk=" << chunk;
      if (r.ok) EXPECT_FALSE(r.labels.empty());
    }
    // The resolved requests partition into the SLO buckets exactly.
    EXPECT_EQ(a.stats.requests,
              a.stats.ok + a.stats.failed + a.stats.rejected +
                  a.stats.deadline_missed + a.stats.degraded_rejected)
        << "chunk=" << chunk;
    EXPECT_GT(a.stats.goodput(), 0.0) << "chunk=" << chunk;

    // Determinism under chaos: a rerun of the same seed is byte-identical —
    // same report bytes, same per-ticket outcomes and labels.
    EXPECT_EQ(a.tsv, b.tsv) << "chunk=" << chunk;
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].outcome, b.results[i].outcome) << "ticket " << i;
      EXPECT_EQ(a.results[i].labels, b.results[i].labels) << "ticket " << i;
      EXPECT_DOUBLE_EQ(a.results[i].complete_seconds, b.results[i].complete_seconds);
    }
  }
}

TEST(ChaosServingTest, ResilienceTelemetryIsGatedIntoReports) {
  const StormRun storm = run_storm(7, 77);
  EXPECT_NE(storm.tsv.find("# resilience\tgoodput="), std::string::npos);

  // And stays out of chaos-off reports (locked byte-exactly above; this is
  // the cheap smoke check).
  const auto tenants = make_serving_tenants(2, {"Local"}, 5);
  ServingWorkloadOptions options;
  options.requests = 40;
  const auto result = run_serving_workload(tenants, options);
  std::ostringstream out;
  result.report.write_tsv(out);
  EXPECT_EQ(out.str().find("# resilience"), std::string::npos);
}

/// Fixture for deterministic ladder-rung tests: the "strict" quota admits 5
/// requests per rolling minute and retries are disabled, so the primary
/// platform's bucket drains after exactly 3 predicts (open_session spent 2
/// on upload+train) and every later dispatch fails the same way, rerun after
/// rerun — no chaos randomness involved.
class DegradationLadderTest : public ::testing::Test {
 protected:
  ServingOptions ladder_options() {
    ServingOptions options;
    options.max_batch_rows = 1;  // flush on every submit
    options.retry.max_attempts = 1;
    return options;
  }

  /// Router over {Local, Google} with one session on Local; submits one-row
  /// queries and returns the per-request results.
  std::vector<QueryResult> serve(const ServingOptions& options, int requests,
                                 ServingStats* stats = nullptr) {
    std::vector<PlatformPtr> roster;
    roster.push_back(make_platform("Local"));
    roster.push_back(make_platform("Google"));
    QueryRouter router(roster, "strict", 3, options);
    const Dataset train = serving_data(15);
    const auto session = router.open_session("t0", "Local", train, {}, 44);
    EXPECT_TRUE(session.has_value()) << router.last_error();
    if (!session) return {};
    std::vector<QueryRouter::Ticket> tickets;
    for (int i = 0; i < requests; ++i) {
      Matrix q(1, train.x().cols());
      const auto src = train.x().row(static_cast<std::size_t>(i) % train.x().rows());
      std::copy(src.begin(), src.end(), q.row(0).begin());
      const auto ticket = router.submit(*session, q);
      EXPECT_TRUE(ticket.has_value());
      if (ticket) tickets.push_back(*ticket);
      router.drain();
    }
    std::vector<QueryResult> results;
    for (const auto ticket : tickets) results.push_back(router.result(ticket));
    if (stats) *stats = router.stats();
    return results;
  }
};

TEST_F(DegradationLadderTest, FailoverRungRetrainsOnFallbackDeterministically) {
  ServingOptions options = ladder_options();
  options.fallback_platform = "Google";
  ServingStats stats;
  const auto results = serve(options, 6, &stats);
  ASSERT_EQ(results.size(), 6u);

  const Dataset train = serving_data(15);
  // Requests 1-3 drain Local's remaining strict-quota budget; 4-6 fail over.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].outcome, QueryOutcome::kOk) << "request " << i;
    EXPECT_EQ(results[i].labels,
              direct_labels("Local", train, slice_row(train, i), 44));
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(results[i].outcome, QueryOutcome::kFailover) << "request " << i;
    EXPECT_TRUE(results[i].ok);
    // Failover answers come from a Google model trained from the same
    // session seed: deterministic, and byte-identical to the direct path.
    EXPECT_EQ(results[i].labels,
              direct_labels("Google", train, slice_row(train, i), 44));
  }
  EXPECT_EQ(stats.failovers, 3u);
  EXPECT_EQ(stats.ok, 6u);  // failover answers are still in-budget answers
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DegradationLadderTest, LastKnownGoodRungServesRetainedModel) {
  // No fallback: once Local's quota drains, the retained model answers.
  ServingOptions options = ladder_options();
  options.serve_last_known_good = true;
  ServingStats stats;
  const auto results = serve(options, 6, &stats);
  ASSERT_EQ(results.size(), 6u);

  const Dataset train = serving_data(15);
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(results[i].outcome, QueryOutcome::kLastKnownGood) << "request " << i;
    EXPECT_TRUE(results[i].ok);
    // The retained model is the deterministic seed-44 train, so last-known
    // -good labels equal the direct path even though no service was touched.
    EXPECT_EQ(results[i].labels,
              direct_labels("Local", train, slice_row(train, i), 44));
  }
  EXPECT_EQ(stats.degraded_answers, 3u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DegradationLadderTest, DegradedRejectRungReportsDegradedStatus) {
  // Ladder configured (failover to Google) but Google's bucket drains too:
  // after three failovers the bottom rung rejects with the degraded status.
  ServingOptions options = ladder_options();
  options.fallback_platform = "Google";
  ServingStats stats;
  const auto results = serve(options, 9, &stats);
  ASSERT_EQ(results.size(), 9u);
  for (int i = 6; i < 9; ++i) {
    EXPECT_EQ(results[i].outcome, QueryOutcome::kDegraded) << "request " << i;
    EXPECT_FALSE(results[i].ok);
    EXPECT_EQ(results[i].error.rfind("degraded:", 0), 0u) << results[i].error;
  }
  EXPECT_EQ(stats.failovers, 3u);
  EXPECT_EQ(stats.degraded_rejected, 3u);
  EXPECT_EQ(stats.failed, 0u);  // degraded rejects are not classic failures
}

TEST_F(DegradationLadderTest, OpenBreakerHealthGatesDispatch) {
  // With the breaker armed, repeated quota failures trip it; once open, the
  // router stops issuing requests to the platform instead of burning budget.
  ServingOptions options = ladder_options();
  options.breaker.enabled = true;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_seconds = 1e6;  // never recovers inside the test
  ServingStats stats;

  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  roster.push_back(make_platform("Google"));
  QueryRouter router(roster, "strict", 3, options);
  const Dataset train = serving_data(15);
  const auto session = router.open_session("t0", "Local", train, {}, 44);
  ASSERT_TRUE(session.has_value());
  for (int i = 0; i < 8; ++i) {
    Matrix q(1, train.x().cols());
    std::copy(train.x().row(0).begin(), train.x().row(0).end(), q.row(0).begin());
    const std::size_t before = router.platform_stats("Local").requests;
    const auto ticket = router.submit(*session, q);
    ASSERT_TRUE(ticket.has_value());
    router.drain();
    if (router.result(*ticket).error == "breaker:open") {
      // Health-gated: the flush issued no service request at all.
      EXPECT_EQ(router.platform_stats("Local").requests, before) << "request " << i;
    }
  }
  stats = router.stats();
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GT(stats.breaker_gated, 0u);
  // 3 served before the quota drained, 2 failures to trip, the rest gated.
  EXPECT_EQ(stats.breaker_gated, 3u);
}

TEST_F(DegradationLadderTest, DeadlineBudgetRefusesOverrunningSleeps) {
  // Strict quota + a 5s budget: the Retry-After stall (~a minute) would
  // overrun the deadline, so the retry layer refuses the sleep and the
  // request fails fast — within budget — instead of hanging.
  ServingOptions options = ladder_options();
  options.retry.max_attempts = 6;  // retries allowed, but budget-bounded
  options.deadline_seconds = 5.0;
  ServingStats stats;
  const auto results = serve(options, 5, &stats);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 3; i < 5; ++i) {
    EXPECT_EQ(results[i].outcome, QueryOutcome::kFailed) << "request " << i;
    EXPECT_LE(results[i].complete_seconds, results[i].deadline) << "request " << i;
  }
  EXPECT_GT(stats.refused_sleeps, 0u);
  EXPECT_EQ(stats.deadline_missed, 0u) << "refused in budget, not resolved late";
}

TEST_F(DegradationLadderTest, SlowPlatformDeadlineOverrunCountsAsMissNotHang) {
  // ABM's simulated base latency is 2s; a 0.5s budget cannot be met.  The
  // request still resolves — labels and all — and is counted as a deadline
  // miss rather than blocking the router.
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("ABM"));
  ServingOptions options;
  options.max_batch_rows = 4;
  QueryRouter router(roster, "default", 3, options);
  const Dataset train = serving_data(16);
  const auto session = router.open_session("t0", "ABM", train, {}, 44);
  ASSERT_TRUE(session.has_value());
  Matrix q(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), q.row(0).begin());
  const auto ticket = router.submit(*session, q, /*deadline_seconds=*/0.5);
  ASSERT_TRUE(ticket.has_value());
  router.drain();
  const QueryResult& r = router.result(*ticket);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.ok) << "late answers still carry labels";
  EXPECT_EQ(r.outcome, QueryOutcome::kDeadlineMissed);
  EXPECT_GT(r.complete_seconds, r.deadline);
  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.deadline_missed, 1u);
  EXPECT_EQ(stats.ok, 0u);
  EXPECT_DOUBLE_EQ(stats.goodput(), 0.0);
}

TEST_F(DegradationLadderTest, BudgetDeadlineFlushesBatchBeforeLingerExpires) {
  // A request whose budget is tighter than the linger must not sit in the
  // queue: the batch flushes at the budget deadline (its own flush cause).
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;
  options.linger_seconds = 1e9;  // linger alone would never flush
  QueryRouter router(roster, "default", 3, options);
  const Dataset train = serving_data(15);
  const auto session = router.open_session("t0", "Local", train, {}, 44);
  ASSERT_TRUE(session.has_value());
  Matrix q(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), q.row(0).begin());
  const auto ticket = router.submit(*session, q, /*deadline_seconds=*/1.0);
  ASSERT_TRUE(ticket.has_value());
  router.advance_to(router.now() + 10.0);
  const QueryResult& r = router.result(*ticket);
  EXPECT_TRUE(r.done) << "budget deadline must flush the lingering batch";
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(router.stats().flushed_deadline, 1u);
  EXPECT_EQ(router.stats().flushed_linger, 0u);
}

}  // namespace
}  // namespace mlaas
