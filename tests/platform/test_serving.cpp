#include "platform/serving.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/generators.h"
#include "platform/all_platforms.h"
#include "util/rng.h"

namespace mlaas {
namespace {

Dataset serving_data(std::uint64_t seed = 3) {
  Dataset d = make_blobs(120, 4, 0.9, 5.0, seed);
  d.meta().id = "serving-test-" + std::to_string(seed);
  return d;
}

/// Labels from the direct path the serving layer must reproduce byte for
/// byte: Platform::train with the explicit seed, then one predict call.
std::vector<int> direct_labels(const std::string& platform, const Dataset& train,
                               const Matrix& query, std::uint64_t train_seed) {
  const auto p = make_platform(platform);
  return p->train(train, {}, train_seed)->predict(query);
}

/// Push `query` through a fresh router in per-request chunks of `chunk`
/// rows, drain, and return the concatenated labels (ticket order).
std::vector<int> serving_labels(const std::string& platform, const Dataset& train,
                                const Matrix& query, std::uint64_t train_seed,
                                std::size_t chunk, ServingOptions options = {}) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform(platform));
  QueryRouter router(roster, "default", /*seed=*/99, options);
  const auto session =
      router.open_session("t0", platform, train, {}, train_seed);
  EXPECT_TRUE(session.has_value()) << router.last_error();
  if (!session) return {};

  std::vector<QueryRouter::Ticket> tickets;
  for (std::size_t start = 0; start < query.rows(); start += chunk) {
    const std::size_t rows = std::min(chunk, query.rows() - start);
    Matrix q(rows, query.cols());
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = query.row(start + r);
      std::copy(src.begin(), src.end(), q.row(r).begin());
    }
    const auto ticket = router.submit(*session, q);
    EXPECT_TRUE(ticket.has_value());
    if (ticket) tickets.push_back(*ticket);
  }
  router.drain();

  std::vector<int> labels;
  for (const auto ticket : tickets) {
    const QueryResult& r = router.result(ticket);
    EXPECT_TRUE(r.done);
    EXPECT_TRUE(r.ok) << r.error;
    labels.insert(labels.end(), r.labels.begin(), r.labels.end());
  }
  return labels;
}

TEST(QueryRouterTest, ServingMatchesDirectPredictAcrossBatchSizes) {
  // The headline invariant: for every platform and any micro-batch shape the
  // serving path returns byte-identical labels to the direct call — batching
  // only changes how rows ride together, never what comes back.
  const Dataset train = serving_data(5);
  const Matrix& query = train.x();
  for (const auto& platform : platform_names()) {
    const std::vector<int> expected =
        direct_labels(platform, train, query, /*train_seed=*/321);
    ASSERT_EQ(expected.size(), query.rows());
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      EXPECT_EQ(serving_labels(platform, train, query, 321, chunk), expected)
          << platform << " chunk=" << chunk;
    }
  }
}

TEST(QueryRouterTest, BatchShapeDoesNotChangeLabels) {
  // Different max_batch_rows / linger settings regroup the same submits into
  // different predict calls; the concatenated labels must not move.
  const Dataset train = serving_data(6);
  const Matrix& query = train.x();
  const std::vector<int> expected = direct_labels("Local", train, query, 77);
  for (std::size_t max_batch : {std::size_t{1}, std::size_t{16}, std::size_t{256}}) {
    ServingOptions options;
    options.max_batch_rows = max_batch;
    EXPECT_EQ(serving_labels("Local", train, query, 77, 5, options), expected)
        << "max_batch_rows=" << max_batch;
  }
}

TEST(QueryRouterTest, MicroBatchingCoalescesRequests) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 32;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(7);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  // 64 single-row submits inside one linger window coalesce into exactly two
  // 32-row predict calls.
  Matrix one(1, train.x().cols());
  for (int i = 0; i < 64; ++i) {
    std::copy(train.x().row(i % train.x().rows()).begin(),
              train.x().row(i % train.x().rows()).end(), one.row(0).begin());
    ASSERT_TRUE(router.submit(*session, one).has_value());
  }
  router.drain();

  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.requests, 64u);
  EXPECT_EQ(stats.rows, 64u);
  EXPECT_EQ(stats.ok, 64u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_rows(), 32.0);
  EXPECT_DOUBLE_EQ(stats.batch_occupancy(options.max_batch_rows), 1.0);
  EXPECT_EQ(stats.flushed_full, 2u);
  // Service-side: upload + train + 2 predicts = 4 admitted requests, and the
  // per-row accounting sees all 64 rows.
  const ServiceStats& platform = router.platform_stats("Local");
  EXPECT_EQ(platform.requests, 4u);
  EXPECT_EQ(platform.predictions, 64u);
}

TEST(QueryRouterTest, LingerDeadlineFlushesPartialBatches) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;  // never fills
  options.linger_seconds = 0.05;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(8);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix one(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), one.row(0).begin());
  const auto ticket = router.submit(*session, one);
  ASSERT_TRUE(ticket.has_value());
  EXPECT_FALSE(router.result(*ticket).done);

  const double submit_time = router.now();
  router.advance_to(submit_time + 0.01);  // before the deadline: still queued
  EXPECT_FALSE(router.result(*ticket).done);
  router.advance_to(submit_time + 0.06);  // past the deadline: flushed
  EXPECT_TRUE(router.result(*ticket).done);
  EXPECT_TRUE(router.result(*ticket).ok);
  EXPECT_EQ(router.stats().flushed_linger, 1u);
  // The request completed at its linger deadline, not at advance_to's t.
  EXPECT_NEAR(router.result(*ticket).complete_seconds - submit_time, 0.05, 1e-6);
}

TEST(QueryRouterTest, WaitFlushesTheTicketsBatch) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(9);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());
  Matrix one(1, train.x().cols());
  std::copy(train.x().row(0).begin(), train.x().row(0).end(), one.row(0).begin());
  const auto ticket = router.submit(*session, one);
  ASSERT_TRUE(ticket.has_value());
  const QueryResult& r = router.wait(*ticket);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(router.stats().flushed_linger, 1u);
}

TEST(QueryRouterTest, AbsorbsRateLimitsUnderStrictQuota) {
  // "strict" admits 5 requests/min; upload + train spend two.  The router's
  // retrying client must wait the windows out (honouring Retry-After) so
  // every request still completes.
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 4;
  QueryRouter router(roster, "strict", 1, options);
  const Dataset train = serving_data(10);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix one(1, train.x().cols());
  for (int i = 0; i < 32; ++i) {
    std::copy(train.x().row(i % train.x().rows()).begin(),
              train.x().row(i % train.x().rows()).end(), one.row(0).begin());
    ASSERT_TRUE(router.submit(*session, one).has_value());
  }
  router.drain();

  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.ok, 32u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.rate_limited, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.backoff_seconds, 0.0);
  // Latency telemetry saw every request and the tail reflects the stalls.
  EXPECT_EQ(stats.latency.count(), 32u);
  EXPECT_GE(stats.latency.quantile(0.99), stats.latency.quantile(0.50));
}

TEST(QueryRouterTest, LruEvictionRetrainsDeterministically) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.model_cache_capacity = 1;  // the two tenants constantly evict each other
  options.max_batch_rows = 8;
  QueryRouter router(roster, "unlimited", 1, options);

  const Dataset train_a = serving_data(11);
  const Dataset train_b = serving_data(12);
  const auto sa = router.open_session("a", "Local", train_a, {}, 100);
  const auto sb = router.open_session("b", "Local", train_b, {}, 200);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_LE(router.cached_models(), 1u);

  const std::vector<int> expected_a = direct_labels("Local", train_a, train_a.x(), 100);
  const std::vector<int> expected_b = direct_labels("Local", train_b, train_b.x(), 200);

  // Alternate tenants so every flush is a cache miss + re-train; the labels
  // must stay byte-identical to the direct path on every round.
  for (int round = 0; round < 3; ++round) {
    const auto ta = router.submit(*sa, train_a.x());
    ASSERT_TRUE(ta.has_value());
    router.drain();
    EXPECT_EQ(router.result(*ta).labels, expected_a) << "round " << round;

    const auto tb = router.submit(*sb, train_b.x());
    ASSERT_TRUE(tb.has_value());
    router.drain();
    EXPECT_EQ(router.result(*tb).labels, expected_b) << "round " << round;
  }

  const ServingStats stats = router.stats();
  EXPECT_LE(router.cached_models(), 1u);
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_GT(stats.cache_misses, stats.cache_hits);
  EXPECT_EQ(stats.trainings, stats.cache_misses);
  // Eviction releases handles: the service never holds more than capacity
  // models and no stranded datasets.
  const ServiceStats& platform = router.platform_stats("Local");
  EXPECT_EQ(platform.models_deleted + router.cached_models(), platform.trainings);
  EXPECT_EQ(platform.datasets_deleted, platform.uploads);
}

TEST(QueryRouterTest, AdmissionControlShedsLoad) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  ServingOptions options;
  options.max_batch_rows = 1000;
  options.max_pending_rows = 4;
  options.linger_seconds = 1e9;  // nothing flushes on its own
  QueryRouter router(roster, "unlimited", 1, options);
  const Dataset train = serving_data(13);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());

  Matrix three(3, train.x().cols());
  for (std::size_t r = 0; r < 3; ++r) {
    std::copy(train.x().row(r).begin(), train.x().row(r).end(), three.row(r).begin());
  }
  EXPECT_TRUE(router.submit(*session, three).has_value());   // 3 pending
  EXPECT_FALSE(router.submit(*session, three).has_value());  // 6 > 4: shed
  const ServingStats stats = router.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.requests, 1u);  // rejected submits are not requests served
  router.drain();
  EXPECT_EQ(router.stats().ok, 1u);
  // Drain freed the pending rows; admission opens up again.
  EXPECT_TRUE(router.submit(*session, three).has_value());
}

TEST(QueryRouterTest, ClosedSessionRejectsSubmits) {
  std::vector<PlatformPtr> roster;
  roster.push_back(make_platform("Local"));
  QueryRouter router(roster, "unlimited", 1, {});
  const Dataset train = serving_data(14);
  const auto session = router.open_session("t0", "Local", train, {}, 1);
  ASSERT_TRUE(session.has_value());
  router.close_session(*session);
  EXPECT_THROW(router.submit(*session, train.x()), std::logic_error);
  EXPECT_THROW(
      QueryRouter(roster, "unlimited", 1, {}).open_session("t", "Nope", train, {}, 1),
      std::invalid_argument);
}

TEST(LatencyHistogramTest, QuantilesAndEncoding) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.encode(), "-");

  // 100 samples at ~2ms, one at ~1s: p50 lands in the 2ms bucket, p99+ near
  // the outlier; every quantile is exact to within one sqrt(2) bucket.
  for (int i = 0; i < 100; ++i) h.record(0.002);
  h.record(1.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_NEAR(h.quantile(0.50), 0.002, 0.002 * 0.5);
  EXPECT_GT(h.quantile(0.995), 0.5);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1.0);
  EXPECT_NEAR(h.mean_seconds(), (0.2 + 1.0) / 101.0, 1e-12);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));

  LatencyHistogram other;
  other.record(0.002);
  other.merge(h);
  EXPECT_EQ(other.count(), 102u);

  // encode() lists only occupied buckets as le_ms=count pairs.
  const std::string enc = h.encode();
  EXPECT_NE(enc.find("=100"), std::string::npos) << enc;
  EXPECT_NE(enc.find(';'), std::string::npos) << enc;
}

TEST(LatencyHistogramTest, OverflowBucketUsesObservedMax) {
  LatencyHistogram h;
  h.record(1e9);  // beyond the last bound
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1e9);
  EXPECT_NE(h.encode().find("inf=1"), std::string::npos) << h.encode();
}

TEST(ServingWorkloadTest, SeededWorkloadIsDeterministic) {
  const auto tenants = make_serving_tenants(4, {"Local", "Google"}, 42);
  ASSERT_EQ(tenants.size(), 4u);
  EXPECT_GT(tenants[0].weight, tenants[3].weight);  // Zipf skew

  ServingWorkloadOptions options;
  options.requests = 200;
  options.seed = 42;
  const auto a = run_serving_workload(tenants, options);
  const auto b = run_serving_workload(tenants, options);
  EXPECT_GT(a.report.totals.requests, 0u);
  EXPECT_EQ(a.report.totals.requests, b.report.totals.requests);
  EXPECT_EQ(a.report.totals.rows, b.report.totals.rows);
  EXPECT_EQ(a.report.totals.ok, b.report.totals.ok);
  EXPECT_EQ(a.report.totals.batches, b.report.totals.batches);
  EXPECT_DOUBLE_EQ(a.report.totals.simulated_seconds,
                   b.report.totals.simulated_seconds);
  EXPECT_EQ(a.report.totals.latency.encode(), b.report.totals.latency.encode());
  ASSERT_EQ(a.report.tenants.size(), b.report.tenants.size());
  for (std::size_t i = 0; i < a.report.tenants.size(); ++i) {
    EXPECT_EQ(a.report.tenants[i].rows, b.report.tenants[i].rows);
  }
}

TEST(ServingWorkloadTest, ClosedLoopServesEveryRequest) {
  const auto tenants = make_serving_tenants(3, {"Local"}, 7);
  ServingWorkloadOptions options;
  options.requests = 120;
  options.closed_loop = true;
  options.clients = 6;
  options.quota_profile = "unlimited";
  const auto result = run_serving_workload(tenants, options);
  EXPECT_EQ(result.report.totals.requests, 120u);
  EXPECT_EQ(result.report.totals.ok, 120u);
  EXPECT_EQ(result.report.totals.failed, 0u);
}

TEST(ServingReportTest, TsvAndJsonRoundOut) {
  const auto tenants = make_serving_tenants(2, {"Local"}, 9);
  ServingWorkloadOptions options;
  options.requests = 60;
  options.quota_profile = "unlimited";
  const auto result = run_serving_workload(tenants, options);

  const std::string tsv = testing::TempDir() + "serving_report.tsv";
  const std::string json = testing::TempDir() + "serving_report.json";
  result.report.save_tsv(tsv);
  result.report.save_json(json);

  std::ifstream tin(tsv);
  std::stringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string tsv_text = tbuf.str();
  EXPECT_NE(tsv_text.find("tenant\trequests\trows"), std::string::npos);
  EXPECT_NE(tsv_text.find("TOTAL"), std::string::npos);
  EXPECT_NE(tsv_text.find("# serving\t"), std::string::npos);
  EXPECT_NE(tsv_text.find("# histogram\t"), std::string::npos);

  std::ifstream jin(json);
  std::stringstream jbuf;
  jbuf << jin.rdbuf();
  const std::string json_text = jbuf.str();
  EXPECT_NE(json_text.find("\"throughput_rows_per_sec\""), std::string::npos);
  EXPECT_NE(json_text.find("\"p99\""), std::string::npos);
  EXPECT_NE(json_text.find("\"tenants\""), std::string::npos);
  std::remove(tsv.c_str());
  std::remove(json.c_str());
}

}  // namespace
}  // namespace mlaas
