#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlaas {
namespace {

TEST(VectorOps, Dot) {
  const std::vector<double> a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(VectorOps, Norms) {
  const std::vector<double> v{3, -4};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm1(v), 7.0);
}

TEST(VectorOps, Axpy) {
  std::vector<double> a{1, 1};
  const std::vector<double> b{2, 3};
  axpy(a, 2.0, b);
  EXPECT_EQ(a, (std::vector<double>{5, 7}));
}

TEST(VectorOps, ScaleInplace) {
  std::vector<double> a{2, -4};
  scale_inplace(a, 0.5);
  EXPECT_EQ(a, (std::vector<double>{1, -2}));
}

TEST(VectorOps, SquaredDistance) {
  const std::vector<double> a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(VectorOps, MinkowskiP1IsManhattan) {
  const std::vector<double> a{0, 0}, b{3, -4};
  EXPECT_DOUBLE_EQ(minkowski_distance(a, b, 1.0), 7.0);
}

TEST(VectorOps, MinkowskiP2IsEuclidean) {
  const std::vector<double> a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(minkowski_distance(a, b, 2.0), 5.0);
}

TEST(VectorOps, Argmax) {
  const std::vector<double> v{1, 5, 3, 5};
  EXPECT_EQ(argmax(v), 1u);  // first of ties
}

TEST(Sigmoid, SymmetricAndBounded) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(10.0) + sigmoid(-10.0), 1.0, 1e-12);
  EXPECT_GT(sigmoid(1000.0), 0.999);
  EXPECT_LT(sigmoid(-1000.0), 0.001);
}

TEST(Sigmoid, NoOverflowAtExtremes) {
  EXPECT_TRUE(std::isfinite(sigmoid(1e300)));
  EXPECT_TRUE(std::isfinite(sigmoid(-1e300)));
}

TEST(Log1pExp, MatchesReferenceMidRange) {
  EXPECT_NEAR(log1p_exp(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(log1p_exp(1.0), std::log1p(std::exp(1.0)), 1e-12);
}

TEST(Log1pExp, AsymptoticBehaviour) {
  EXPECT_DOUBLE_EQ(log1p_exp(100.0), 100.0);
  EXPECT_DOUBLE_EQ(log1p_exp(-100.0), 0.0);
}

TEST(Softmax, SumsToOne) {
  const auto p = softmax(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Softmax, StableForLargeInputs) {
  const auto p = softmax(std::vector<double>{1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

}  // namespace
}  // namespace mlaas
