#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlaas {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m{{1, 2}, {3, 4}};
  auto row = m.row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, ColExtraction) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto col = m.col(1);
  EXPECT_EQ(col, (std::vector<double>{2, 4, 6}));
}

TEST(Matrix, SetCol) {
  Matrix m(2, 2);
  const std::vector<double> v{7, 8};
  m.set_col(0, v);
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
}

TEST(Matrix, SelectRows) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(Matrix, SelectCols) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> idx{2, 1};
  const Matrix s = m.select_cols(idx);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MatrixVectorMultiply) {
  Matrix m{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  EXPECT_EQ(m.multiply(v), (std::vector<double>{3, 7}));
}

TEST(Matrix, TransposeMultiply) {
  Matrix m{{1, 2}, {3, 4}};
  const std::vector<double> v{1, 1};
  EXPECT_EQ(m.transpose_multiply(v), (std::vector<double>{4, 6}));
}

TEST(Matrix, MatrixMatrixMultiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{0, 1}, {1, 0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(SolveSpd, SolvesIdentity) {
  Matrix eye{{1, 0}, {0, 1}};
  const auto x = solve_spd(eye, {3.0, -4.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -4.0, 1e-12);
}

TEST(SolveSpd, SolvesGeneralSpd) {
  Matrix a{{4, 1}, {1, 3}};
  const std::vector<double> b{1, 2};
  const auto x = solve_spd(a, b);
  EXPECT_NEAR(4 * x[0] + 1 * x[1], 1.0, 1e-9);
  EXPECT_NEAR(1 * x[0] + 3 * x[1], 2.0, 1e-9);
}

TEST(SolveSpd, JitterHandlesSemidefinite) {
  // Rank-deficient matrix: jitter fallback should still return finite x.
  Matrix a{{1, 1}, {1, 1}};
  const auto x = solve_spd(a, {2.0, 2.0});
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_TRUE(std::isfinite(x[1]));
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(SolveSpd, ShapeMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(solve_spd(a, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
