// The blocked dense prediction kernels promise exact equivalence: every
// output element must be BIT-identical to the naive sequential loop it
// replaces, across sizes that exercise both the blocked body and the
// scalar remainder.
#include "linalg/dense_kernels.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "linalg/matrix.h"

namespace mlaas {
namespace {

void expect_bits_equal(const std::vector<double>& got,
                       const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " differs at element " << i << ": " << got[i] << " vs "
        << want[i];
  }
}

Matrix random_matrix(std::size_t n, std::size_t d, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::normal_distribution<double> dist;
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < d; ++c) m(i, c) = dist(gen);
  }
  return m;
}

std::vector<double> random_vector(std::size_t d, std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::normal_distribution<double> dist;
  std::vector<double> v(d);
  for (auto& x : v) x = dist(gen);
  return v;
}

// Sizes chosen so each kernel runs its blocked body, its scalar remainder,
// and the degenerate all-remainder case.
const std::size_t kRowCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 64, 101};
const std::size_t kColCounts[] = {1, 3, 17};

TEST(PredictDenseKernels, MatvecMatchesSequentialDot) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix x = random_matrix(n, d, 1000 + n * 31 + d);
      const std::vector<double> w = random_vector(d, 2000 + d);
      std::vector<double> got(n);
      matvec_into(x, w, got);
      std::vector<double> want(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) s += x(r, c) * w[c];
        want[r] = s;
      }
      expect_bits_equal(got, want, "matvec_into");
    }
  }
}

TEST(PredictDenseKernels, DenseLayerMatchesManualLoop) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix w = random_matrix(n, d, 3000 + n * 31 + d);
      const std::vector<double> v = random_vector(d, 4000 + d);
      const std::vector<double> bias = random_vector(n, 5000 + n);
      std::vector<double> got(n);
      dense_layer_into(w, v, bias, got);
      std::vector<double> want(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) s += w(r, c) * v[c];
        want[r] = s + bias[r];
      }
      expect_bits_equal(got, want, "dense_layer_into");
    }
  }
}

TEST(PredictDenseKernels, SquaredDistanceBlockMatchesScalar) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix rows = random_matrix(n, d, 6000 + n * 31 + d);
      const std::vector<double> q = random_vector(d, 7000 + d);
      std::vector<double> got(n);
      squared_distance_block(q, rows, got);
      std::vector<double> want(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
          const double diff = q[c] - rows(r, c);
          s += diff * diff;
        }
        want[r] = s;
      }
      expect_bits_equal(got, want, "squared_distance_block");
    }
  }
}

TEST(PredictDenseKernels, SquaredDistanceBlock2MatchesSingleQueryKernel) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix rows = random_matrix(n, d, 8000 + n * 31 + d);
      const std::vector<double> q0 = random_vector(d, 9000 + d);
      const std::vector<double> q1 = random_vector(d, 9500 + d);
      std::vector<double> got0(n), got1(n), want0(n), want1(n);
      squared_distance_block2(q0, q1, rows, got0, got1);
      squared_distance_block(q0, rows, want0);
      squared_distance_block(q1, rows, want1);
      expect_bits_equal(got0, want0, "squared_distance_block2 (q0)");
      expect_bits_equal(got1, want1, "squared_distance_block2 (q1)");
    }
  }
}

TEST(PredictDenseKernels, FromNormsBlockMatchesScalarExpression) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix rows = random_matrix(n, d, 10000 + n * 31 + d);
      const std::vector<double> q = random_vector(d, 11000 + d);
      double q_sq = 0.0;
      for (const double v : q) q_sq += v * v;
      std::vector<double> row_sq(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) s += rows(r, c) * rows(r, c);
        row_sq[r] = s;
      }
      std::vector<double> got(n);
      squared_distance_from_norms_block(q, q_sq, rows, row_sq, got);
      std::vector<double> want(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) s += q[c] * rows(r, c);
        want[r] = q_sq - 2.0 * s + row_sq[r];
      }
      expect_bits_equal(got, want, "squared_distance_from_norms_block");
    }
  }
}

TEST(PredictDenseKernels, FromNormsBlock2MatchesSingleQueryKernel) {
  for (const std::size_t n : kRowCounts) {
    for (const std::size_t d : kColCounts) {
      const Matrix rows = random_matrix(n, d, 12000 + n * 31 + d);
      const std::vector<double> q0 = random_vector(d, 13000 + d);
      const std::vector<double> q1 = random_vector(d, 13500 + d);
      double q0_sq = 0.0, q1_sq = 0.0;
      for (const double v : q0) q0_sq += v * v;
      for (const double v : q1) q1_sq += v * v;
      std::vector<double> row_sq(n);
      for (std::size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < d; ++c) s += rows(r, c) * rows(r, c);
        row_sq[r] = s;
      }
      std::vector<double> got0(n), got1(n), want0(n), want1(n);
      squared_distance_from_norms_block2(q0, q0_sq, q1, q1_sq, rows, row_sq,
                                         got0, got1);
      squared_distance_from_norms_block(q0, q0_sq, rows, row_sq, want0);
      squared_distance_from_norms_block(q1, q1_sq, rows, row_sq, want1);
      expect_bits_equal(got0, want0, "squared_distance_from_norms_block2 (q0)");
      expect_bits_equal(got1, want1, "squared_distance_from_norms_block2 (q1)");
    }
  }
}

}  // namespace
}  // namespace mlaas
