#include "linalg/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace mlaas {
namespace {

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{}), 0.0);
}

TEST(Stats, Covariance) {
  const std::vector<double> a{1, 2, 3}, b{2, 4, 6};
  EXPECT_NEAR(covariance(a, b), variance(a) * 2.0, 1e-12);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

/// The pre-nth_element implementation, kept verbatim as the reference: the
/// selection-based quantile must reproduce the full-sort answer bit for bit
/// (same order statistics, same interpolation expression).
double quantile_by_full_sort(std::vector<double> s, double q) {
  std::sort(s.begin(), s.end());
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

TEST(Stats, QuantileMatchesFullSortReferenceExactly) {
  Rng rng(17);
  for (const std::size_t n : {1u, 2u, 3u, 7u, 64u, 1001u}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.normal(0.0, 100.0);
    for (const double q :
         {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      // Exact equality, not EXPECT_NEAR: the interpolation arithmetic is
      // unchanged, only the partial ordering algorithm differs.
      EXPECT_EQ(quantile(v, q), quantile_by_full_sort(v, q))
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(Stats, QuantileExactOnDuplicateHeavyInput) {
  // Ties exercise nth_element's partition boundaries hardest.
  Rng rng(23);
  std::vector<double> v(500);
  for (auto& x : v) x = static_cast<double>(rng.index(5));
  for (const double q : {0.0, 0.1, 0.5, 0.77, 1.0}) {
    EXPECT_EQ(quantile(v, q), quantile_by_full_sort(v, q)) << "q=" << q;
  }
}

TEST(Stats, QuantileRejectsNaN) {
  // The old full-sort silently produced an order-dependent garbage answer
  // (NaN breaks strict weak ordering); now it must refuse deterministically.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(quantile(std::vector<double>{1.0, nan, 3.0}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{nan}, 0.0), std::invalid_argument);
  // Infinities are ordered fine and stay accepted.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(quantile(std::vector<double>{1.0, inf, 3.0}, 0.0), 1.0);
}

TEST(Stats, FractionalRanksWithTies) {
  const auto r = fractional_ranks(std::vector<double>{10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> a{1, 1, 1}, b{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(Stats, SpearmanMonotoneNonlinear) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{1, 8, 27, 64, 125};  // monotone but non-linear
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
}

TEST(Stats, KendallPerfectAgreement) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{10, 20, 30, 40};
  EXPECT_NEAR(kendall(a, b), 1.0, 1e-12);
}

TEST(Stats, KendallPerfectDisagreement) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{4, 3, 2, 1};
  EXPECT_NEAR(kendall(a, b), -1.0, 1e-12);
}

TEST(Stats, KendallIndependentNearZero) {
  Rng rng(5);
  std::vector<double> a(200), b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = rng.normal();
  }
  EXPECT_NEAR(kendall(a, b), 0.0, 0.12);
}

TEST(Stats, FisherScoreSeparatesClasses) {
  std::vector<double> feature;
  std::vector<int> labels;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const int y = i % 2;
    feature.push_back(rng.normal(y == 1 ? 5.0 : 0.0, 1.0));
    labels.push_back(y);
  }
  std::vector<double> noise(200);
  for (auto& v : noise) v = rng.normal();
  EXPECT_GT(fisher_score(feature, labels), 5.0);
  EXPECT_LT(fisher_score(noise, labels), 0.5);
}

TEST(Stats, MutualInformationOrdersInformativeness) {
  Rng rng(11);
  std::vector<double> informative, noise;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = i % 2;
    labels.push_back(y);
    informative.push_back(rng.normal(y == 1 ? 2.0 : -2.0, 1.0));
    noise.push_back(rng.normal());
  }
  EXPECT_GT(mutual_information(informative, labels), mutual_information(noise, labels) + 0.2);
}

TEST(Stats, MutualInformationNonNegative) {
  Rng rng(13);
  std::vector<double> f(100);
  std::vector<int> y(100);
  for (int i = 0; i < 100; ++i) {
    f[static_cast<std::size_t>(i)] = rng.normal();
    y[static_cast<std::size_t>(i)] = rng.chance(0.5) ? 1 : 0;
  }
  EXPECT_GE(mutual_information(f, y), 0.0);
}

TEST(Stats, AnovaFSeparatesClasses) {
  std::vector<double> feature{0, 0.1, -0.1, 5.0, 5.1, 4.9};
  std::vector<int> labels{0, 0, 0, 1, 1, 1};
  EXPECT_GT(anova_f(feature, labels), 100.0);
}

TEST(Stats, ChiSquaredZeroForUninformative) {
  // Feature mass identical across classes -> statistic ~0.
  std::vector<double> f{1, 1, 1, 1};
  std::vector<int> y{0, 1, 0, 1};
  EXPECT_NEAR(chi_squared(f, y), 0.0, 1e-9);
}

TEST(Stats, ChiSquaredPositiveForSkewedMass) {
  std::vector<double> f{10, 10, 0, 0};
  std::vector<int> y{1, 1, 0, 0};
  EXPECT_GT(chi_squared(f, y), 1.0);
}

}  // namespace
}  // namespace mlaas
