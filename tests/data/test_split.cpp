#include "data/split.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"

namespace mlaas {
namespace {

Dataset balanced(std::size_t n) {
  Matrix x(n, 1);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<int>(i % 2);
  }
  return Dataset(std::move(x), std::move(y));
}

TEST(Split, SeventyThirtyProportion) {
  const auto split = train_test_split(balanced(100), 0.3, 1);
  EXPECT_EQ(split.train.n_samples(), 70u);
  EXPECT_EQ(split.test.n_samples(), 30u);
}

TEST(Split, PartitionIsDisjointAndComplete) {
  const auto split = train_test_split(balanced(50), 0.3, 2);
  std::set<double> seen;
  for (std::size_t i = 0; i < split.train.n_samples(); ++i) {
    seen.insert(split.train.x()(i, 0));
  }
  for (std::size_t i = 0; i < split.test.n_samples(); ++i) {
    EXPECT_TRUE(seen.insert(split.test.x()(i, 0)).second);  // no overlap
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Split, StratificationPreservesClassRatio) {
  const auto split = train_test_split(balanced(200), 0.3, 3, /*stratified=*/true);
  EXPECT_NEAR(split.train.positive_fraction(), 0.5, 0.02);
  EXPECT_NEAR(split.test.positive_fraction(), 0.5, 0.02);
}

TEST(Split, MinorityClassPresentOnBothSides) {
  // 90/10 imbalance: both sides must still see the minority class.
  Matrix x(40, 1);
  std::vector<int> y(40, 0);
  for (int i = 0; i < 4; ++i) y[static_cast<std::size_t>(i)] = 1;
  const Dataset ds(std::move(x), std::move(y));
  const auto split = train_test_split(ds, 0.3, 4);
  EXPECT_GT(split.train.positive_fraction(), 0.0);
  EXPECT_GT(split.test.positive_fraction(), 0.0);
}

TEST(Split, DeterministicForSeed) {
  const auto a = train_test_split(balanced(60), 0.3, 7);
  const auto b = train_test_split(balanced(60), 0.3, 7);
  EXPECT_EQ(a.train.x().data().size(), b.train.x().data().size());
  for (std::size_t i = 0; i < a.train.n_samples(); ++i) {
    EXPECT_DOUBLE_EQ(a.train.x()(i, 0), b.train.x()(i, 0));
  }
}

TEST(Split, DifferentSeedsDiffer) {
  const auto a = train_test_split(balanced(60), 0.3, 7);
  const auto b = train_test_split(balanced(60), 0.3, 8);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.train.n_samples(); ++i) {
    any_diff = any_diff || a.train.x()(i, 0) != b.train.x()(i, 0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Split, RejectsBadFraction) {
  EXPECT_THROW(train_test_split(balanced(10), 0.0, 1), std::invalid_argument);
  EXPECT_THROW(train_test_split(balanced(10), 1.0, 1), std::invalid_argument);
}

TEST(KFold, AssignsAllFolds) {
  std::vector<int> y(50);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
  const auto folds = kfold_assignment(y, 5, 1);
  std::set<int> distinct(folds.begin(), folds.end());
  EXPECT_EQ(distinct.size(), 5u);
  for (int f : folds) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, 5);
  }
}

TEST(KFold, StratifiedPerFold) {
  std::vector<int> y(100);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 2);
  const auto folds = kfold_assignment(y, 5, 2);
  for (int f = 0; f < 5; ++f) {
    int pos = 0, total = 0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      if (folds[i] == f) {
        ++total;
        pos += y[i];
      }
    }
    EXPECT_EQ(total, 20);
    EXPECT_EQ(pos, 10);
  }
}

TEST(KFold, RejectsKBelowTwo) {
  EXPECT_THROW(kfold_assignment({0, 1}, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
