#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mlaas {
namespace {

TEST(MakeClassification, ShapeAndLabels) {
  MakeClassificationOptions opt;
  opt.n_samples = 200;
  opt.n_features = 10;
  opt.n_informative = 4;
  opt.n_redundant = 2;
  const Dataset ds = make_classification(opt, 1);
  EXPECT_EQ(ds.n_samples(), 200u);
  EXPECT_EQ(ds.n_features(), 10u);
  EXPECT_NEAR(ds.positive_fraction(), 0.5, 0.05);
}

TEST(MakeClassification, DeterministicForSeed) {
  MakeClassificationOptions opt;
  opt.n_samples = 50;
  opt.n_features = 4;
  const Dataset a = make_classification(opt, 9);
  const Dataset b = make_classification(opt, 9);
  EXPECT_EQ(a.y(), b.y());
  for (std::size_t i = 0; i < a.x().data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x().data()[i], b.x().data()[i]);
  }
}

TEST(MakeClassification, ClassWeightRespected) {
  MakeClassificationOptions opt;
  opt.n_samples = 400;
  opt.n_features = 4;
  opt.weight_class1 = 0.2;
  opt.flip_y = 0.0;
  const Dataset ds = make_classification(opt, 3);
  EXPECT_NEAR(ds.positive_fraction(), 0.2, 0.03);
}

TEST(MakeClassification, SingleClusterMarkedLinear) {
  MakeClassificationOptions opt;
  opt.n_clusters_per_class = 1;
  const Dataset linear = make_classification(opt, 4);
  EXPECT_TRUE(linear.meta().linear_ground_truth);
  opt.n_clusters_per_class = 2;
  opt.n_features = 4;
  opt.n_informative = 2;
  const Dataset nonlinear = make_classification(opt, 4);
  EXPECT_FALSE(nonlinear.meta().linear_ground_truth);
}

TEST(MakeClassification, ValidatesArguments) {
  MakeClassificationOptions opt;
  opt.n_features = 3;
  opt.n_informative = 3;
  opt.n_redundant = 1;
  EXPECT_THROW(make_classification(opt, 1), std::invalid_argument);
}

TEST(MakeCircles, RadialSeparation) {
  const Dataset ds = make_circles(400, 0.0, 0.5, 2);
  for (std::size_t i = 0; i < ds.n_samples(); ++i) {
    const double r = std::hypot(ds.x()(i, 0), ds.x()(i, 1));
    if (ds.y()[i] == 1) {
      EXPECT_NEAR(r, 0.5, 0.01);
    } else {
      EXPECT_NEAR(r, 1.0, 0.01);
    }
  }
  EXPECT_FALSE(ds.meta().linear_ground_truth);
}

TEST(MakeCircles, FactorValidation) {
  EXPECT_THROW(make_circles(10, 0.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_circles(10, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(MakeMoons, TwoBalancedClasses) {
  const Dataset ds = make_moons(300, 0.1, 5);
  EXPECT_EQ(ds.n_features(), 2u);
  EXPECT_NEAR(ds.positive_fraction(), 0.5, 0.02);
}

TEST(MakeBlobs, SeparableByConstruction) {
  const Dataset ds = make_blobs(200, 3, 0.5, 10.0, 6);
  EXPECT_EQ(ds.n_features(), 3u);
  EXPECT_TRUE(ds.meta().linear_ground_truth);
}

TEST(MakeGaussianQuantiles, MedianSplitBalanced) {
  const Dataset ds = make_gaussian_quantiles(301, 4, 7);
  EXPECT_NEAR(ds.positive_fraction(), 0.5, 0.01);
}

TEST(MakeXor, LabelsMatchQuadrant) {
  const Dataset ds = make_xor(400, 0.0, 8);
  for (std::size_t i = 0; i < ds.n_samples(); ++i) {
    const bool expected = (ds.x()(i, 0) > 0) != (ds.x()(i, 1) > 0);
    EXPECT_EQ(ds.y()[i], expected ? 1 : 0);
  }
}

TEST(MakeSpirals, BalancedAndTwoDim) {
  const Dataset ds = make_spirals(200, 0.01, 9);
  EXPECT_EQ(ds.n_features(), 2u);
  EXPECT_NEAR(ds.positive_fraction(), 0.5, 0.01);
}

TEST(MakeSparseLinear, GroundTruthLinear) {
  const Dataset ds = make_sparse_linear(300, 20, 5, 0.0, 10);
  EXPECT_TRUE(ds.meta().linear_ground_truth);
  EXPECT_EQ(ds.n_features(), 20u);
}

TEST(MakeSparseLinear, Validation) {
  EXPECT_THROW(make_sparse_linear(10, 5, 0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_sparse_linear(10, 5, 6, 0.0, 1), std::invalid_argument);
}

TEST(Probes, NamedAndTwoDimensional) {
  const Dataset circle = make_circle_probe(42);
  const Dataset linear = make_linear_probe(42);
  EXPECT_EQ(circle.meta().name, "CIRCLE");
  EXPECT_EQ(linear.meta().name, "LINEAR");
  EXPECT_EQ(circle.n_features(), 2u);
  EXPECT_EQ(linear.n_features(), 2u);
  EXPECT_FALSE(circle.meta().linear_ground_truth);
  EXPECT_TRUE(linear.meta().linear_ground_truth);
}

}  // namespace
}  // namespace mlaas
