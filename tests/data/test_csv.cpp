#include "data/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace mlaas {
namespace {

TEST(Csv, LoadsNumericWithHeader) {
  std::istringstream in("a,b,label\n1.5,2,0\n3,4,1\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.n_samples(), 2u);
  EXPECT_EQ(ds.n_features(), 2u);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.5);
  EXPECT_EQ(ds.y(), (std::vector<int>{0, 1}));
  EXPECT_EQ(ds.feature_names()[0], "a");
}

TEST(Csv, CategoricalMappedToOneBasedCodes) {
  // §3.1: {C1..CN} -> {1..N} in order of first appearance.
  std::istringstream in("color,label\nred,0\nblue,1\nred,1\ngreen,0\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.column_type(0), ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.0);  // red
  EXPECT_DOUBLE_EQ(ds.x()(1, 0), 2.0);  // blue
  EXPECT_DOUBLE_EQ(ds.x()(2, 0), 1.0);  // red again
  EXPECT_DOUBLE_EQ(ds.x()(3, 0), 3.0);  // green
}

TEST(Csv, MissingValuesBecomeNaN) {
  std::istringstream in("a,b,label\n1,?,0\n,2,1\n");
  const Dataset ds = load_csv(in);
  EXPECT_TRUE(std::isnan(ds.x()(0, 1)));
  EXPECT_TRUE(std::isnan(ds.x()(1, 0)));
}

TEST(Csv, StringLabelsMapped) {
  std::istringstream in("a,label\n1,spam\n2,ham\n3,spam\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.y()[0], 0);
  EXPECT_EQ(ds.y()[1], 1);
  EXPECT_EQ(ds.y()[2], 0);
}

TEST(Csv, PositiveLabelOption) {
  CsvOptions opt;
  opt.positive_label = "spam";
  std::istringstream in("a,label\n1,spam\n2,ham\n");
  const Dataset ds = load_csv(in, opt);
  EXPECT_EQ(ds.y()[0], 1);
  EXPECT_EQ(ds.y()[1], 0);
}

TEST(Csv, LabelColumnSelection) {
  CsvOptions opt;
  opt.label_column = 0;
  std::istringstream in("label,a\n1,5\n0,6\n");
  const Dataset ds = load_csv(in, opt);
  EXPECT_EQ(ds.n_features(), 1u);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 5.0);
  EXPECT_EQ(ds.y()[0], 1);
}

TEST(Csv, ThreeLabelValuesThrow) {
  std::istringstream in("a,label\n1,x\n2,y\n3,z\n");
  EXPECT_THROW(load_csv(in), std::invalid_argument);
}

TEST(Csv, RaggedRowsThrow) {
  std::istringstream in("a,b,label\n1,2,0\n1,1\n");
  EXPECT_THROW(load_csv(in), std::invalid_argument);
}

TEST(Csv, EmptyInputThrows) {
  std::istringstream in("a,label\n");
  EXPECT_THROW(load_csv(in), std::invalid_argument);
}

TEST(Csv, QuotedCellsKeepDelimitersAndSpaces) {
  // RFC 4180: quotes protect embedded delimiters; '""' is a literal quote;
  // quoted content is verbatim (leading/trailing spaces preserved, so the
  // two category strings below stay distinct).
  std::istringstream in(
      "name,label\n"
      "\"red, dark\",0\n"
      "\"red, dark \",1\n"
      "\"say \"\"hi\"\"\",0\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.n_samples(), 3u);
  EXPECT_EQ(ds.n_features(), 1u);
  // Three distinct categorical values -> codes 1, 2, 3 in first-seen order.
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.x()(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(ds.x()(2, 0), 3.0);
}

TEST(Csv, QuotedNumericCellsStayNumeric) {
  std::istringstream in("a,b,label\n\"1.5\",2,0\n\"2.5\",3,1\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.n_samples(), 2u);
  EXPECT_EQ(ds.n_features(), 2u);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds.x()(1, 0), 2.5);
}

TEST(Csv, CrlfLineEndingsAccepted) {
  std::istringstream in("a,b,label\r\n1,2,0\r\n3,4,1\r\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.n_samples(), 2u);
  EXPECT_DOUBLE_EQ(ds.x()(1, 1), 4.0);
  EXPECT_EQ(ds.y()[1], 1);
}

TEST(Csv, QuotedHeaderAndUnquotedCellsUnchanged) {
  std::istringstream in("\"a, b\",c,label\n 1 , 2 ,0\n3,4,1\n");
  const Dataset ds = load_csv(in);
  EXPECT_EQ(ds.feature_names()[0], "a, b");
  // Unquoted cells are trimmed exactly as before the quoting support.
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.x()(0, 1), 2.0);
}

TEST(Csv, QuotedLabelAndTrailingEmptyCell) {
  std::istringstream in("a,b,label\n1,,\"yes\"\n2,3,no\n");
  const Dataset ds = load_csv(in);
  EXPECT_TRUE(std::isnan(ds.x()(0, 1)));
  EXPECT_EQ(ds.y()[0], 0);  // "yes" seen first -> class 0
  EXPECT_EQ(ds.y()[1], 1);
}

TEST(Csv, RoundTripPreservesData) {
  std::istringstream in("a,b,label\n1,2,0\n3,?,1\n");
  const Dataset ds = load_csv(in);
  std::ostringstream out;
  save_csv(ds, out);
  std::istringstream in2(out.str());
  const Dataset ds2 = load_csv(in2);
  EXPECT_EQ(ds2.n_samples(), ds.n_samples());
  EXPECT_EQ(ds2.y(), ds.y());
  EXPECT_DOUBLE_EQ(ds2.x()(1, 0), 3.0);
  EXPECT_TRUE(std::isnan(ds2.x()(1, 1)));
}

}  // namespace
}  // namespace mlaas
