#include "data/complexity.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace mlaas {
namespace {

TEST(Complexity, EasyBlobsAreSimple) {
  const Dataset easy = make_blobs(300, 3, 0.4, 8.0, 1);
  const auto m = compute_complexity(easy, 1);
  EXPECT_GT(m.fisher_ratio_f1, 2.0);   // strong single-axis separation
  EXPECT_LT(m.boundary_n1, 0.05);      // almost no boundary points
  EXPECT_LT(m.linear_error_l2, 0.05);  // linearly separable
}

TEST(Complexity, CirclesAreNonLinear) {
  const Dataset circles = make_circles(400, 0.05, 0.5, 2);
  const auto m = compute_complexity(circles, 2);
  EXPECT_LT(m.fisher_ratio_f1, 0.5);   // no single axis separates rings
  EXPECT_GT(m.linear_error_l2, 0.25);  // far from linearly separable
}

TEST(Complexity, XorIsNonLinearButLocallySimple) {
  const Dataset xor_data = make_xor(400, 0.15, 3);
  const auto m = compute_complexity(xor_data, 3);
  // A diagonal threshold can isolate one of XOR's two class-0 clusters, so
  // the best linear separator errs on ~25% of the points — still far from
  // separable.
  EXPECT_GT(m.linear_error_l2, 0.2);
  EXPECT_LT(m.boundary_n1, 0.3);      // clusters are still locally pure
}

TEST(Complexity, OrdersLinearVsNonLinearCorpusMembers) {
  const Dataset linear = make_sparse_linear(400, 8, 4, 0.0, 4);
  const Dataset rings = make_circles(400, 0.05, 0.5, 4);
  const auto ml = compute_complexity(linear, 4);
  const auto mr = compute_complexity(rings, 4);
  EXPECT_LT(ml.linear_error_l2, mr.linear_error_l2);
}

TEST(Complexity, NoiseRaisesBoundaryDensity) {
  const Dataset clean = make_moons(300, 0.05, 5);
  const Dataset noisy = make_moons(300, 0.4, 5);
  EXPECT_LT(compute_complexity(clean, 5).boundary_n1,
            compute_complexity(noisy, 5).boundary_n1);
}

TEST(Complexity, SubsamplingKeepsMeasuresStable) {
  const Dataset big = make_circles(2000, 0.08, 0.5, 6);
  const auto full = compute_complexity(big, 6, 2000);
  const auto sub = compute_complexity(big, 6, 400);
  EXPECT_NEAR(full.linear_error_l2, sub.linear_error_l2, 0.1);
  EXPECT_NEAR(full.boundary_n1, sub.boundary_n1, 0.1);
}

TEST(Complexity, TinyDatasetReturnsZeros) {
  Matrix x{{1, 2}, {3, 4}};
  const Dataset tiny(std::move(x), {0, 1});
  const auto m = compute_complexity(tiny, 7);
  EXPECT_DOUBLE_EQ(m.boundary_n1, 0.0);
  EXPECT_DOUBLE_EQ(m.linear_error_l2, 0.0);
}

TEST(Complexity, SingleClassIsDegenerateButSafe) {
  Matrix x(10, 2);
  const Dataset one_class(std::move(x), std::vector<int>(10, 1));
  const auto m = compute_complexity(one_class, 8);
  EXPECT_DOUBLE_EQ(m.linear_error_l2, 0.0);
}

}  // namespace
}  // namespace mlaas
