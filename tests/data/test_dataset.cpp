#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mlaas {
namespace {

Dataset tiny() {
  Matrix x{{1, 2}, {3, 4}, {5, 6}, {7, 8}};
  return Dataset(std::move(x), {0, 1, 0, 1});
}

TEST(Dataset, BasicShape) {
  const Dataset ds = tiny();
  EXPECT_EQ(ds.n_samples(), 4u);
  EXPECT_EQ(ds.n_features(), 2u);
  EXPECT_EQ(ds.column_types().size(), 2u);
  EXPECT_EQ(ds.column_type(0), ColumnType::kNumeric);
}

TEST(Dataset, DefaultFeatureNames) {
  const Dataset ds = tiny();
  EXPECT_EQ(ds.feature_names()[0], "f0");
  EXPECT_EQ(ds.feature_names()[1], "f1");
}

TEST(Dataset, SetFeatureNamesValidatesCount) {
  Dataset ds = tiny();
  EXPECT_THROW(ds.set_feature_names({"only-one"}), std::invalid_argument);
  ds.set_feature_names({"a", "b"});
  EXPECT_EQ(ds.feature_names()[1], "b");
}

TEST(Dataset, SizeMismatchThrows) {
  Matrix x(3, 2);
  EXPECT_THROW(Dataset(std::move(x), {0, 1}), std::invalid_argument);
}

TEST(Dataset, NonBinaryLabelThrows) {
  Matrix x(2, 1);
  EXPECT_THROW(Dataset(std::move(x), {0, 2}), std::invalid_argument);
}

TEST(Dataset, PositiveFraction) {
  EXPECT_DOUBLE_EQ(tiny().positive_fraction(), 0.5);
}

TEST(Dataset, HasMissingDetectsNaN) {
  Dataset ds = tiny();
  EXPECT_FALSE(ds.has_missing());
  ds.x()(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ds.has_missing());
}

TEST(Dataset, SubsetPreservesSchemaAndMeta) {
  Dataset ds = tiny();
  ds.meta().id = "tiny";
  ds.set_feature_names({"a", "b"});
  const std::vector<std::size_t> idx{1, 3};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.n_samples(), 2u);
  EXPECT_EQ(sub.y(), (std::vector<int>{1, 1}));
  EXPECT_DOUBLE_EQ(sub.x()(0, 0), 3.0);
  EXPECT_EQ(sub.meta().id, "tiny");
  EXPECT_EQ(sub.feature_names()[0], "a");
}

TEST(DomainToString, AllValuesNamed) {
  EXPECT_EQ(to_string(Domain::kLifeScience), "Life Science");
  EXPECT_EQ(to_string(Domain::kSynthetic), "Synthetic");
  EXPECT_EQ(to_string(Domain::kOther), "Other");
}

}  // namespace
}  // namespace mlaas
