#include "data/corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace mlaas {
namespace {

CorpusOptions small_options() {
  CorpusOptions opt;
  opt.seed = 42;
  opt.n_datasets = 119;
  opt.max_samples = 120;
  opt.max_features = 10;
  return opt;
}

TEST(Corpus, DomainPlanMatchesFigure3a) {
  const auto plan = corpus_domain_plan(119);
  std::map<Domain, std::size_t> counts(plan.begin(), plan.end());
  EXPECT_EQ(counts[Domain::kLifeScience], 44u);
  EXPECT_EQ(counts[Domain::kComputerGames], 18u);
  EXPECT_EQ(counts[Domain::kSynthetic], 17u);
  EXPECT_EQ(counts[Domain::kSocialScience], 10u);
  EXPECT_EQ(counts[Domain::kPhysicalScience], 10u);
  EXPECT_EQ(counts[Domain::kFinancial], 7u);
  EXPECT_EQ(counts[Domain::kOther], 13u);
}

TEST(Corpus, DomainPlanScalesToOtherSizes) {
  const auto plan = corpus_domain_plan(24);
  std::size_t total = 0;
  for (const auto& [d, c] : plan) total += c;
  EXPECT_EQ(total, 24u);
}

TEST(Corpus, Builds119Datasets) {
  const auto corpus = build_corpus(small_options());
  EXPECT_EQ(corpus.size(), 119u);
}

TEST(Corpus, UniqueIdsAndValidLabels) {
  const auto corpus = build_corpus(small_options());
  std::set<std::string> ids;
  for (const auto& ds : corpus) {
    EXPECT_TRUE(ids.insert(ds.meta().id).second) << "duplicate id " << ds.meta().id;
    EXPECT_GE(ds.n_samples(), 15u);
    EXPECT_GE(ds.n_features(), 1u);
    ds.check();
    // Both classes present (classifiers need them after a 70/30 split).
    EXPECT_GT(ds.positive_fraction(), 0.0);
    EXPECT_LT(ds.positive_fraction(), 1.0);
  }
}

TEST(Corpus, RespectsCaps) {
  const auto corpus = build_corpus(small_options());
  for (const auto& ds : corpus) {
    EXPECT_LE(ds.n_samples(), 130u);  // cap + imbalance slack
    EXPECT_LE(ds.n_features(), 10u);
  }
}

TEST(Corpus, NominalSizesSpanPaperRange) {
  const auto corpus = build_corpus(small_options());
  std::size_t min_n = SIZE_MAX, max_n = 0, max_d = 0;
  for (const auto& ds : corpus) {
    min_n = std::min(min_n, ds.meta().nominal_samples);
    max_n = std::max(max_n, ds.meta().nominal_samples);
    max_d = std::max(max_d, ds.meta().nominal_features);
  }
  EXPECT_LT(min_n, 200u);     // small datasets exist (paper min: 15)
  EXPECT_GT(max_n, 10000u);   // large datasets exist (paper max: 245k)
  EXPECT_GT(max_d, 100u);     // high-dimensional datasets exist
}

TEST(Corpus, ImputesMissingByDefault) {
  const auto corpus = build_corpus(small_options());
  for (const auto& ds : corpus) EXPECT_FALSE(ds.has_missing());
}

TEST(Corpus, KeepsMissingWhenImputeOff) {
  CorpusOptions opt = small_options();
  opt.impute = false;
  const auto corpus = build_corpus(opt);
  bool any_missing = false;
  for (const auto& ds : corpus) any_missing = any_missing || ds.has_missing();
  EXPECT_TRUE(any_missing);
}

TEST(Corpus, DeterministicForSeed) {
  const auto a = build_corpus(small_options());
  const auto b = build_corpus(small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].meta().id, b[i].meta().id);
    EXPECT_EQ(a[i].n_samples(), b[i].n_samples());
    EXPECT_EQ(a[i].y(), b[i].y());
  }
}

TEST(Corpus, MixesLinearAndNonlinearProcesses) {
  const auto corpus = build_corpus(small_options());
  std::size_t linear = 0;
  for (const auto& ds : corpus) linear += ds.meta().linear_ground_truth ? 1 : 0;
  EXPECT_GT(linear, 20u);
  EXPECT_LT(linear, 99u);
}

TEST(Corpus, RejectsZeroDatasets) {
  CorpusOptions opt;
  opt.n_datasets = 0;
  EXPECT_THROW(build_corpus(opt), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
