#include "data/preprocess.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mlaas {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Preprocess, MedianImputationFillsNaN) {
  Matrix x{{1, kNaN}, {3, 10}, {kNaN, 20}, {5, 30}};
  Dataset ds(std::move(x), {0, 1, 0, 1});
  EXPECT_EQ(count_missing(ds), 2u);
  impute_median(ds);
  EXPECT_EQ(count_missing(ds), 0u);
  EXPECT_DOUBLE_EQ(ds.x()(2, 0), 3.0);   // median of {1,3,5}
  EXPECT_DOUBLE_EQ(ds.x()(0, 1), 20.0);  // median of {10,20,30}
}

TEST(Preprocess, FullyMissingColumnBecomesZero) {
  Matrix x{{kNaN}, {kNaN}};
  Dataset ds(std::move(x), {0, 1});
  impute_median(ds);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.x()(1, 0), 0.0);
}

TEST(Preprocess, NoOpWithoutMissing) {
  Matrix x{{1, 2}, {3, 4}};
  Dataset ds(std::move(x), {0, 1});
  impute_median(ds);
  EXPECT_DOUBLE_EQ(ds.x()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.x()(1, 1), 4.0);
}

}  // namespace
}  // namespace mlaas
