// Property-style CSV round-trip: randomly generated datasets (varying size,
// dimensionality, missing values) must survive save -> load exactly (modulo
// NaN identity).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "data/csv.h"
#include "data/generators.h"
#include "util/rng.h"

namespace mlaas {
namespace {

class CsvRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTrip, SaveLoadPreservesEverything) {
  Rng rng(GetParam());
  MakeClassificationOptions opt;
  opt.n_samples = 20 + rng.index(80);
  opt.n_features = 1 + rng.index(12);
  opt.n_informative = 1;
  opt.n_redundant = 0;
  Dataset ds = make_classification(opt, GetParam());

  // Sprinkle missing values.
  for (std::size_t r = 0; r < ds.n_samples(); ++r) {
    for (std::size_t c = 0; c < ds.n_features(); ++c) {
      if (rng.chance(0.07)) ds.x()(r, c) = std::numeric_limits<double>::quiet_NaN();
    }
  }

  std::ostringstream out;
  save_csv(ds, out);
  std::istringstream in(out.str());
  const Dataset loaded = load_csv(in);

  ASSERT_EQ(loaded.n_samples(), ds.n_samples());
  ASSERT_EQ(loaded.n_features(), ds.n_features());
  EXPECT_EQ(loaded.y(), ds.y());
  EXPECT_EQ(loaded.feature_names(), ds.feature_names());
  for (std::size_t r = 0; r < ds.n_samples(); ++r) {
    for (std::size_t c = 0; c < ds.n_features(); ++c) {
      const double a = ds.x()(r, c);
      const double b = loaded.x()(r, c);
      if (std::isnan(a)) {
        EXPECT_TRUE(std::isnan(b)) << r << "," << c;
      } else {
        EXPECT_NEAR(a, b, 1e-9) << r << "," << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mlaas
