// Property tests over every scaler/normalizer: shape preservation,
// train-statistics reuse, and finiteness on adversarial inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {
namespace {

const char* kScalerNames[] = {"standard_scaler", "minmax_scaler", "maxabs_scaler",
                              "l1_normalizer",   "l2_normalizer", "gaussian_norm"};

class ScalerProperty : public ::testing::TestWithParam<const char*> {};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double scale = 1.0) {
  Rng rng(seed);
  Matrix x(rows, cols);
  for (double& v : x.data()) v = rng.normal(0.0, scale);
  return x;
}

TEST_P(ScalerProperty, PreservesShape) {
  auto scaler = make_scaler(GetParam());
  const Matrix x = random_matrix(30, 5, 1);
  scaler->fit(x, {});
  const Matrix t = scaler->transform(x);
  EXPECT_EQ(t.rows(), 30u);
  EXPECT_EQ(t.cols(), 5u);
}

TEST_P(ScalerProperty, TransformsUnseenDataWithTrainStatistics) {
  auto scaler = make_scaler(GetParam());
  const Matrix train = random_matrix(50, 4, 2);
  const Matrix test = random_matrix(20, 4, 3, 5.0);  // wider than train
  scaler->fit(train, {});
  const Matrix t = scaler->transform(test);
  for (double v : t.data()) EXPECT_TRUE(std::isfinite(v)) << GetParam();
}

TEST_P(ScalerProperty, FiniteOnConstantColumns) {
  auto scaler = make_scaler(GetParam());
  Matrix x(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    x(r, 0) = 3.0;                          // constant
    x(r, 1) = static_cast<double>(r);       // varying
  }
  scaler->fit(x, {});
  for (double v : scaler->transform(x).data()) EXPECT_TRUE(std::isfinite(v)) << GetParam();
}

TEST_P(ScalerProperty, FiniteOnExtremeMagnitudes) {
  auto scaler = make_scaler(GetParam());
  Matrix x(12, 2);
  Rng rng(7);
  for (std::size_t r = 0; r < 12; ++r) {
    x(r, 0) = rng.normal(0.0, 1e12);
    x(r, 1) = rng.normal(0.0, 1e-12);
  }
  scaler->fit(x, {});
  for (double v : scaler->transform(x).data()) EXPECT_TRUE(std::isfinite(v)) << GetParam();
}

TEST_P(ScalerProperty, DeterministicTransform) {
  auto a = make_scaler(GetParam());
  auto b = make_scaler(GetParam());
  const Matrix x = random_matrix(25, 3, 11);
  a->fit(x, {});
  b->fit(x, {});
  const Matrix ta = a->transform(x);
  const Matrix tb = b->transform(x);
  for (std::size_t i = 0; i < ta.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.data()[i], tb.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllScalers, ScalerProperty, ::testing::ValuesIn(kScalerNames));

}  // namespace
}  // namespace mlaas
