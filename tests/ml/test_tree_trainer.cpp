// Exact-equivalence property tests for the presort training kernel: the
// fast path must produce byte-identical serialized models to
// ReferenceTreeBuilder (the original per-node re-sorting builder) across
// criteria, hessian modes, width/node/depth caps, feature sampling and
// random-split modes — for single trees and for every ensemble (whose
// per-tree loops share one TreeWorkspace and run bootstrap/feature-subset
// views through it).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "data/generators.h"
#include "ml/registry.h"
#include "ml/serialize.h"
#include "ml/tree/trainer.h"
#include "ml/tree/tree_model.h"
#include "util/rng.h"

namespace mlaas {
namespace {

class BuilderGuard {
 public:
  explicit BuilderGuard(TreeBuilder b) : prev_(active_tree_builder()) {
    set_active_tree_builder(b);
  }
  ~BuilderGuard() { set_active_tree_builder(prev_); }

 private:
  TreeBuilder prev_;
};

std::string serialized(const TreeModel& tree) {
  std::ostringstream out;
  tree.save(out);
  return out.str();
}

std::string serialized(const Classifier& clf) {
  std::ostringstream out;
  clf.save(out);
  return out.str();
}

Dataset workload(std::uint64_t seed, std::size_t n = 240, std::size_t d = 8) {
  MakeClassificationOptions opt;
  opt.n_samples = n;
  opt.n_features = d;
  opt.n_informative = 4;
  opt.n_redundant = 2;
  opt.flip_y = 0.05;
  return make_classification(opt, seed);
}

void expect_tree_equivalence(const Matrix& x, const std::vector<double>& targets,
                             const std::vector<double>& hessians,
                             const TreeOptions& opt, const std::string& label) {
  TreeModel fast;
  {
    BuilderGuard guard(TreeBuilder::kFast);
    fast.fit(x, targets, hessians, opt);
  }
  TreeModel reference;
  ReferenceTreeBuilder::fit(reference, x, targets, hessians, opt);

  ASSERT_EQ(fast.node_count(), reference.node_count()) << label;
  // Node-for-node equality first (better failure messages), then bytes.
  const auto& fn = fast.nodes();
  const auto& rn = reference.nodes();
  for (std::size_t i = 0; i < fn.size(); ++i) {
    EXPECT_EQ(fn[i].feature, rn[i].feature) << label << " node " << i;
    EXPECT_EQ(fn[i].threshold, rn[i].threshold) << label << " node " << i;
    EXPECT_EQ(fn[i].left, rn[i].left) << label << " node " << i;
    EXPECT_EQ(fn[i].right, rn[i].right) << label << " node " << i;
    EXPECT_EQ(fn[i].value, rn[i].value) << label << " node " << i;
    EXPECT_EQ(fn[i].n_samples, rn[i].n_samples) << label << " node " << i;
  }
  EXPECT_EQ(serialized(fast), serialized(reference)) << label;
}

TEST(TreeTrainerEquivalence, ClassificationCriteriaAndCaps) {
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    const Dataset ds = workload(seed);
    std::vector<double> targets(ds.n_samples());
    for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = ds.y()[i];

    for (const SplitCriterion criterion :
         {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
      for (const std::size_t max_depth : {0ul, 3ul, 9ul}) {
        for (const std::size_t max_features : {0ul, 2ul, 5ul}) {
          TreeOptions opt;
          opt.criterion = criterion;
          opt.max_depth = max_depth;
          opt.max_features = max_features;
          opt.min_samples_leaf = 1 + seed % 4;
          opt.seed = seed * 131;
          expect_tree_equivalence(
              ds.x(), targets, {}, opt,
              "criterion=" + std::to_string(static_cast<int>(criterion)) +
                  " depth=" + std::to_string(max_depth) +
                  " feats=" + std::to_string(max_features) +
                  " seed=" + std::to_string(seed));
        }
      }
    }
  }
}

TEST(TreeTrainerEquivalence, MseWithAndWithoutHessians) {
  for (const std::uint64_t seed : {3u, 11u}) {
    const Dataset ds = workload(seed, 300, 10);
    // Gradient-like continuous targets and positive hessians, as boosting
    // produces them.
    Rng rng(derive_seed(seed, "trainer-test"));
    std::vector<double> grad(ds.n_samples()), hess(ds.n_samples());
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad[i] = rng.normal() * 0.4 + (ds.y()[i] == 1 ? 0.5 : -0.5);
      hess[i] = 0.05 + rng.uniform();
    }
    for (const bool use_hess : {false, true}) {
      TreeOptions opt;
      opt.criterion = SplitCriterion::kMse;
      opt.max_depth = 5;
      opt.min_samples_leaf = 4;
      opt.max_nodes = 31;
      opt.seed = seed;
      expect_tree_equivalence(ds.x(), grad,
                              use_hess ? hess : std::vector<double>{}, opt,
                              std::string("mse hess=") + (use_hess ? "yes" : "no") +
                                  " seed=" + std::to_string(seed));
    }
  }
}

TEST(TreeTrainerEquivalence, RandomSplitsAndWidthBudget) {
  for (const std::uint64_t seed : {5u, 17u}) {
    const Dataset ds = workload(seed, 260, 7);
    std::vector<double> targets(ds.n_samples());
    for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = ds.y()[i];

    for (const int random_splits : {0, 4, 16}) {
      for (const std::size_t max_width : {0ul, 2ul, 8ul}) {
        TreeOptions opt;
        opt.criterion = SplitCriterion::kEntropy;
        opt.max_depth = 12;
        opt.max_width = max_width;
        opt.random_splits = random_splits;
        opt.max_features = 3;
        opt.seed = seed * 977;
        expect_tree_equivalence(ds.x(), targets, {}, opt,
                                "random_splits=" + std::to_string(random_splits) +
                                    " width=" + std::to_string(max_width) +
                                    " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(TreeTrainerEquivalence, TiedFeatureValues) {
  // Duplicated rows and coarsely quantized features force value ties — the
  // case where presort tie order differs from the reference sort's.
  Rng rng(99);
  const std::size_t n = 200, d = 5;
  Matrix x(n, d);
  std::vector<double> targets(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      x(r, c) = std::floor(rng.normal() * 3.0) / 3.0;  // heavy ties
    }
    targets[r] = rng.chance(0.5) ? 1.0 : 0.0;
  }
  // Duplicate a block of rows wholesale.
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < d; ++c) x(n - 1 - r, c) = x(r, c);
    targets[n - 1 - r] = targets[r];
  }
  for (const SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kEntropy, SplitCriterion::kMse}) {
    TreeOptions opt;
    opt.criterion = criterion;
    opt.max_depth = 8;
    opt.seed = 4242;
    expect_tree_equivalence(x, targets, {}, opt,
                            "tied criterion=" +
                                std::to_string(static_cast<int>(criterion)));
  }
}

// Every tree-family classifier, fitted twice with the builder toggled:
// serialized ensembles (bootstrap resamples, feature subsets, shared
// workspace reuse across trees) and scores must match byte for byte.
class EnsembleEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(EnsembleEquivalence, SerializedModelAndScoresAreByteIdentical) {
  const std::string name = GetParam();
  const Dataset ds = workload(1234, 320, 12);

  ParamMap params;
  if (name == "random_forest") params.set("n_estimators", 6ll);
  if (name == "bagging") {
    params.set("n_estimators", 5ll);
    params.set("max_features", 0.5);
  }
  if (name == "boosted_trees") params.set("n_estimators", 8ll);
  if (name == "decision_jungle") params.set("n_dags", 4ll);

  auto fast = make_classifier(name, params, 77);
  {
    BuilderGuard guard(TreeBuilder::kFast);
    fast->fit(ds.x(), ds.y());
  }
  auto reference = make_classifier(name, params, 77);
  {
    BuilderGuard guard(TreeBuilder::kReference);
    reference->fit(ds.x(), ds.y());
  }

  EXPECT_EQ(serialized(*fast), serialized(*reference)) << name;
  const auto fast_scores = fast->predict_score(ds.x());
  const auto ref_scores = reference->predict_score(ds.x());
  ASSERT_EQ(fast_scores.size(), ref_scores.size());
  for (std::size_t i = 0; i < fast_scores.size(); ++i) {
    EXPECT_EQ(fast_scores[i], ref_scores[i]) << name << " row " << i;
  }
}

TEST_P(EnsembleEquivalence, ReplicateResamplingToo) {
  const std::string name = GetParam();
  if (name == "bagging" || name == "boosted_trees") return;  // no resampling knob
  const Dataset ds = workload(88, 200, 9);
  ParamMap params;
  params.set("resampling", std::string("replicate"));
  if (name == "random_forest") params.set("n_estimators", 4ll);
  if (name == "decision_jungle") params.set("n_dags", 3ll);

  auto fast = make_classifier(name, params, 9);
  {
    BuilderGuard guard(TreeBuilder::kFast);
    fast->fit(ds.x(), ds.y());
  }
  auto reference = make_classifier(name, params, 9);
  {
    BuilderGuard guard(TreeBuilder::kReference);
    reference->fit(ds.x(), ds.y());
  }
  EXPECT_EQ(serialized(*fast), serialized(*reference)) << name;
}

INSTANTIATE_TEST_SUITE_P(TreeFamily, EnsembleEquivalence,
                         ::testing::Values("decision_tree", "random_forest",
                                           "bagging", "boosted_trees",
                                           "decision_jungle"));

TEST(TreeTrainerEquivalence, BuilderToggleRoundTrips) {
  EXPECT_EQ(active_tree_builder(), TreeBuilder::kFast);
  {
    BuilderGuard guard(TreeBuilder::kReference);
    EXPECT_EQ(active_tree_builder(), TreeBuilder::kReference);
  }
  EXPECT_EQ(active_tree_builder(), TreeBuilder::kFast);
}

}  // namespace
}  // namespace mlaas
