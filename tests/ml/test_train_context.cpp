#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "ml/registry.h"
#include "ml/tree/trainer.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

std::string fit_and_serialize(const std::string& name, const Dataset& ds,
                              std::uint64_t seed) {
  auto clf = make_classifier(name, {}, seed);
  clf->fit(ds.x(), ds.y());
  std::ostringstream bytes;
  clf->save(bytes);
  return bytes.str();
}

TEST(TrainContext, TreeBaseIsCachedByMatrixIdentity) {
  const Dataset ds = testing::circles(150, 31);
  TrainContext context;
  const auto a = context.tree_base(ds.x());
  const auto b = context.tree_base(ds.x());
  EXPECT_EQ(a.get(), b.get());
  const auto s = context.stats();
  EXPECT_EQ(s.tree_base_misses, 1u);
  EXPECT_EQ(s.tree_base_hits, 1u);
  EXPECT_EQ(a->rows, ds.n_samples());
  EXPECT_EQ(a->cols, ds.n_features());
}

TEST(TrainContext, ContentHashGuardsAgainstStaleState) {
  Dataset ds = testing::circles(100, 37);
  TrainContext context;
  const auto before = context.tree_base(ds.x());
  // Same object, same address, different contents: the cached presort is
  // stale and must be rebuilt, not served.
  ds.x()(0, 0) += 100.0;
  const auto after = context.tree_base(ds.x());
  EXPECT_NE(before.get(), after.get());
  const auto s = context.stats();
  EXPECT_EQ(s.tree_base_misses, 2u);
  EXPECT_EQ(s.tree_base_hits, 0u);
  // The rebuilt presort reflects the new contents: both artifacts are
  // internally consistent, but differ from each other.
  EXPECT_NE(before->columns, after->columns);
}

TEST(TrainContext, TreeFamilyModelsBitIdenticalWithAndWithoutContext) {
  const Dataset ds = testing::circles(200, 41);
  for (const char* name : {"decision_tree", "random_forest", "boosted_trees",
                           "bagging", "decision_jungle"}) {
    const std::string fresh = fit_and_serialize(name, ds, 7);
    TrainContext context;
    std::string reused_first, reused_second;
    {
      ScopedTrainContext scope(&context);
      reused_first = fit_and_serialize(name, ds, 7);
      reused_second = fit_and_serialize(name, ds, 7);  // presort served from cache
    }
    EXPECT_EQ(fresh, reused_first) << name;
    EXPECT_EQ(fresh, reused_second) << name;
    EXPECT_GE(context.stats().tree_base_hits, 1u) << name;
  }
}

TEST(TrainContext, KnnNormsBitIdenticalWithAndWithoutContext) {
  const Dataset ds = testing::separable(150, 43);
  const std::string fresh = fit_and_serialize("knn", ds, 7);
  TrainContext context;
  std::string reused_first, reused_second;
  {
    ScopedTrainContext scope(&context);
    reused_first = fit_and_serialize("knn", ds, 7);
    reused_second = fit_and_serialize("knn", ds, 7);
  }
  EXPECT_EQ(fresh, reused_first);
  EXPECT_EQ(fresh, reused_second);
  const auto s = context.stats();
  EXPECT_EQ(s.norms_misses, 1u);
  EXPECT_EQ(s.norms_hits, 1u);
}

TEST(TrainContext, ScopedInstallRestoresPreviousContext) {
  EXPECT_EQ(active_train_context(), nullptr);
  TrainContext outer, inner;
  {
    ScopedTrainContext outer_scope(&outer);
    EXPECT_EQ(active_train_context(), &outer);
    {
      ScopedTrainContext inner_scope(&inner);
      EXPECT_EQ(active_train_context(), &inner);
    }
    EXPECT_EQ(active_train_context(), &outer);
    {
      // nullptr masks the outer context for the scope.
      ScopedTrainContext masked(nullptr);
      EXPECT_EQ(active_train_context(), nullptr);
    }
    EXPECT_EQ(active_train_context(), &outer);
  }
  EXPECT_EQ(active_train_context(), nullptr);
}

TEST(TrainContext, InstallIsPerThread) {
  TrainContext context;
  ScopedTrainContext scope(&context);
  TrainContext* seen = &context;
  std::thread worker([&] { seen = active_train_context(); });
  worker.join();
  EXPECT_EQ(seen, nullptr);  // fresh thread: no inherited context
  EXPECT_EQ(active_train_context(), &context);
}

TEST(TrainContext, SharedAcrossThreadsServesOneBuild) {
  const Dataset ds = testing::circles(120, 47);
  TrainContext context;
  std::vector<std::shared_ptr<const TreeTrainBase>> got(6);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] {
      ScopedTrainContext scope(&context);
      got[t] = context.tree_base(ds.x());
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& base : got) {
    ASSERT_NE(base, nullptr);
    EXPECT_EQ(base.get(), got[0].get());
  }
  const auto s = context.stats();
  EXPECT_EQ(s.tree_base_misses, 1u);
  EXPECT_EQ(s.tree_base_hits, got.size() - 1);
}

}  // namespace
}  // namespace mlaas
