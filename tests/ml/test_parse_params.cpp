#include <gtest/gtest.h>

#include "ml/params.h"

namespace mlaas {
namespace {

TEST(ParseParams, InfersTypes) {
  const ParamMap p = parse_params("n=80,lr=0.1,penalty=l1,intercept=true");
  EXPECT_EQ(p.get_int("n", 0), 80);
  EXPECT_DOUBLE_EQ(p.get_double("lr", 0.0), 0.1);
  EXPECT_EQ(p.get_string("penalty", ""), "l1");
  EXPECT_TRUE(p.get_bool("intercept", false));
}

TEST(ParseParams, EmptyIsEmpty) {
  EXPECT_TRUE(parse_params("").empty());
  EXPECT_TRUE(parse_params(",,").empty());
}

TEST(ParseParams, ScientificNotationIsDouble) {
  const ParamMap p = parse_params("alpha=1e-4");
  EXPECT_DOUBLE_EQ(p.get_double("alpha", 0.0), 1e-4);
}

TEST(ParseParams, NegativeNumbers) {
  const ParamMap p = parse_params("a=-3,b=-2.5");
  EXPECT_EQ(p.get_int("a", 0), -3);
  EXPECT_DOUBLE_EQ(p.get_double("b", 0.0), -2.5);
}

TEST(ParseParams, MixedAlphanumericIsString) {
  const ParamMap p = parse_params("mode=12abc");
  EXPECT_EQ(p.get_string("mode", ""), "12abc");
}

TEST(ParseParams, RoundTripsWithToString) {
  const ParamMap original = parse_params("C=0.5,penalty=l2,n=10,flag=false");
  const ParamMap reparsed = parse_params(original.to_string());
  EXPECT_EQ(original, reparsed);
}

TEST(ParseParams, MalformedThrows) {
  EXPECT_THROW(parse_params("novalue"), std::invalid_argument);
  EXPECT_THROW(parse_params("=5"), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
