#include <gtest/gtest.h>

#include "ml/tree/bagging.h"
#include "ml/tree/boosted_trees.h"
#include "ml/tree/decision_jungle.h"
#include "ml/tree/decision_tree.h"
#include "ml/tree/random_forest.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

using testing::circles;
using testing::holdout_accuracy;
using testing::separable;

TEST(DecisionTree, LearnsNonLinearBoundary) {
  DecisionTree clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(DecisionTree, EntropyCriterionAlsoLearns) {
  DecisionTree clf(ParamMap{{"criterion", std::string("entropy")}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(DecisionTree, DepthOneIsAStump) {
  const Dataset ds = circles(300, 4);
  DecisionTree clf(ParamMap{{"max_depth", 1LL}});
  clf.fit(ds.x(), ds.y());
  EXPECT_LE(clf.tree().depth(), 1u);
}

TEST(DecisionTree, NodeThresholdLimitsSize) {
  const Dataset ds = circles(400, 5);
  DecisionTree clf(ParamMap{{"node_threshold", 7LL}});
  clf.fit(ds.x(), ds.y());
  EXPECT_LE(clf.tree().node_count(), 7u);
}

TEST(DecisionTree, MaxFeaturesSqrtParses) {
  const auto opt = tree_options_from_params(ParamMap{{"max_features", std::string("sqrt")}},
                                            16, 0);
  EXPECT_EQ(opt.max_features, 4u);
}

TEST(DecisionTree, MaxFeaturesIntegerParses) {
  const auto opt = tree_options_from_params(ParamMap{{"max_features", std::string("3")}}, 16, 0);
  EXPECT_EQ(opt.max_features, 3u);
}

TEST(DecisionTree, MaxFeaturesUnrecognizedStringFallsBackToAllFeatures) {
  // Regression: "auto" (and any other unparsable string) used to throw out
  // of std::stoll instead of falling back to "use all features".
  for (const char* bad : {"auto", "none", "", "3.5x", "sqrt2", "-"}) {
    const auto opt =
        tree_options_from_params(ParamMap{{"max_features", std::string(bad)}}, 16, 0);
    EXPECT_EQ(opt.max_features, 0u) << "max_features=" << bad;
  }
  // Known keywords and plain integers still parse.
  EXPECT_EQ(tree_options_from_params(ParamMap{{"max_features", std::string("log2")}}, 16, 0)
                .max_features,
            4u);
  EXPECT_EQ(tree_options_from_params(ParamMap{{"max_features", std::string("all")}}, 16, 0)
                .max_features,
            0u);
  EXPECT_EQ(tree_options_from_params(ParamMap{{"max_features", std::string("7")}}, 16, 0)
                .max_features,
            7u);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyCircles) {
  const Dataset noisy = make_circles(500, 0.18, 0.5, 6);
  DecisionTree tree;
  RandomForest forest(ParamMap{{"n_estimators", 30LL}});
  const double tree_acc = holdout_accuracy(tree, noisy);
  const double forest_acc = holdout_accuracy(forest, noisy);
  EXPECT_GE(forest_acc, tree_acc - 0.02);
  EXPECT_GT(forest_acc, 0.85);
}

TEST(RandomForest, EstimatorCountHonored) {
  RandomForest clf(ParamMap{{"n_estimators", 7LL}});
  const Dataset ds = separable(100, 7);
  clf.fit(ds.x(), ds.y());
  EXPECT_EQ(clf.tree_count(), 7u);
}

TEST(RandomForest, ReplicateResamplingWorks) {
  RandomForest clf(ParamMap{{"resampling", std::string("replicate")}, {"n_estimators", 5LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(RandomForest, RandomSplitsModeLearns) {
  RandomForest clf(ParamMap{{"random_splits", 8LL}, {"n_estimators", 15LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(Bagging, LearnsNonLinear) {
  BaggedTrees clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.88);
}

TEST(Bagging, FeatureSubsetsPerMember) {
  BaggedTrees clf(ParamMap{{"max_features", 0.5}, {"n_estimators", 8LL}});
  const Dataset ds = separable(200, 8);
  clf.fit(ds.x(), ds.y());
  EXPECT_EQ(clf.tree_count(), 8u);
  // Prediction still works through per-member column remapping.
  const auto labels = clf.predict(ds.x());
  EXPECT_EQ(labels.size(), ds.n_samples());
}

TEST(BoostedTrees, StrongOnCircles) {
  BoostedDecisionTrees clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.92);
}

TEST(BoostedTrees, MoreRoundsImproveTrainingFit) {
  const Dataset ds = make_circles(300, 0.12, 0.5, 9);
  BoostedDecisionTrees small(ParamMap{{"n_estimators", 2LL}});
  BoostedDecisionTrees large(ParamMap{{"n_estimators", 60LL}});
  small.fit(ds.x(), ds.y());
  large.fit(ds.x(), ds.y());
  const double acc_small = accuracy_score(ds.y(), small.predict(ds.x()));
  const double acc_large = accuracy_score(ds.y(), large.predict(ds.x()));
  EXPECT_GE(acc_large, acc_small);
}

TEST(BoostedTrees, StopsWhenNoSplitLeft) {
  // Constant features: the first tree has no split, boosting stops early.
  Matrix x{{1, 1}, {1, 1}, {1, 1}, {1, 1}};
  BoostedDecisionTrees clf(ParamMap{{"n_estimators", 50LL}});
  clf.fit(x, {0, 1, 0, 1});
  EXPECT_EQ(clf.tree_count(), 0u);
  // Falls back to the prior: p = 0.5.
  const auto scores = clf.predict_score(x);
  EXPECT_NEAR(scores[0], 0.5, 1e-6);
}

TEST(DecisionJungle, LearnsNonLinear) {
  DecisionJungle clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(DecisionJungle, WidthConstrainedStillReasonable) {
  DecisionJungle clf(ParamMap{{"max_width", 4LL}, {"n_dags", 12LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.75);
}

TEST(TreeFamily, AllDeclareNonLinearBoundary) {
  EXPECT_FALSE(DecisionTree().is_linear());
  EXPECT_FALSE(RandomForest().is_linear());
  EXPECT_FALSE(BaggedTrees().is_linear());
  EXPECT_FALSE(BoostedDecisionTrees().is_linear());
  EXPECT_FALSE(DecisionJungle().is_linear());
}

}  // namespace
}  // namespace mlaas
