// Flat-vs-reference prediction kernel equivalence: for EVERY registry
// classifier and regressor, predict_score / predict / predict must be
// BIT-identical under PredictKernel::kFlat and PredictKernel::kReference,
// across query block sizes that exercise the blocked bodies, the lane
// remainders, and the single-row path.  Also locks the kNN selection
// strategies against a full-sort oracle and the scratch-buffer reuse fixes
// (repeat calls, serialization round trips).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "linalg/vector_ops.h"
#include "ml/classifier.h"
#include "ml/registry.h"
#include "ml/regression/regressor.h"
#include "ml/serialize.h"

namespace mlaas {
namespace {

// RAII toggle so a failing assertion cannot leak kReference into other
// tests in the same process.
class KernelGuard {
 public:
  explicit KernelGuard(PredictKernel k) : prev_(active_predict_kernel()) {
    set_active_predict_kernel(k);
  }
  ~KernelGuard() { set_active_predict_kernel(prev_); }

 private:
  PredictKernel prev_;
};

void expect_bits_equal(const std::vector<double>& got,
                       const std::vector<double>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]),
              std::bit_cast<std::uint64_t>(want[i]))
        << what << " differs at row " << i << ": " << got[i] << " vs " << want[i];
  }
}

Dataset train_data(std::uint64_t seed = 21) {
  MakeClassificationOptions opt;
  opt.n_samples = 400;
  opt.n_features = 12;
  opt.n_informative = 4;
  opt.n_redundant = 2;
  return make_classification(opt, seed);
}

// Query pool, same geometry but disjoint seed so queries are not training
// points; sliced into the block sizes under test.
Matrix query_block(std::size_t rows, std::uint64_t seed = 22) {
  MakeClassificationOptions opt;
  opt.n_samples = 1000;
  opt.n_features = 12;
  opt.n_informative = 4;
  opt.n_redundant = 2;
  static const Dataset pool = make_classification(opt, seed);
  Matrix q(rows, pool.x().cols());
  for (std::size_t r = 0; r < rows; ++r) {
    const auto src = pool.x().row(r % pool.x().rows());
    std::copy(src.begin(), src.end(), q.row(r).begin());
  }
  return q;
}

const std::size_t kBlockSizes[] = {1, 7, 64, 1000};

class PredictKernelEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(PredictKernelEquivalence, ScoresAndLabelsBitIdenticalAcrossBlockSizes) {
  const Dataset ds = train_data();
  auto clf = make_classifier(GetParam(), {}, 77);
  clf->fit(ds.x(), ds.y());
  for (const std::size_t rows : kBlockSizes) {
    const Matrix q = query_block(rows);
    std::vector<double> reference_scores;
    std::vector<int> reference_labels;
    {
      KernelGuard guard(PredictKernel::kReference);
      reference_scores = clf->predict_score(q);
      reference_labels = clf->predict(q);
    }
    std::vector<double> flat_scores;
    std::vector<int> flat_labels;
    {
      KernelGuard guard(PredictKernel::kFlat);
      flat_scores = clf->predict_score(q);
      flat_labels = clf->predict(q);
    }
    expect_bits_equal(flat_scores, reference_scores,
                      GetParam() + " scores, block=" + std::to_string(rows));
    EXPECT_EQ(flat_labels, reference_labels)
        << GetParam() << " labels, block=" << rows;
  }
}

TEST_P(PredictKernelEquivalence, RepeatCallsReuseScratchWithoutDrift) {
  // The scratch-buffer reuse fixes (per-call allocations removed from the
  // ensemble score paths) must not let one call's state leak into the next:
  // interleaved different-size queries return the same bits every time.
  const Dataset ds = train_data(31);
  auto clf = make_classifier(GetParam(), {}, 9);
  clf->fit(ds.x(), ds.y());
  KernelGuard guard(PredictKernel::kFlat);
  const Matrix big = query_block(64);
  const Matrix small = query_block(3);
  const auto big_first = clf->predict_score(big);
  const auto small_first = clf->predict_score(small);
  const auto big_again = clf->predict_score(big);
  const auto small_again = clf->predict_score(small);
  expect_bits_equal(big_again, big_first, GetParam() + " repeated 64-row call");
  expect_bits_equal(small_again, small_first, GetParam() + " repeated 3-row call");
}

TEST_P(PredictKernelEquivalence, SerializationRoundTripKeepsBothKernels) {
  const Dataset ds = train_data(41);
  auto original = make_classifier(GetParam(), {}, 5);
  original->fit(ds.x(), ds.y());
  std::stringstream buffer;
  save_model(buffer, *original);
  const ClassifierPtr restored = load_model(buffer);
  const Matrix q = query_block(65);
  for (const PredictKernel kernel : {PredictKernel::kFlat, PredictKernel::kReference}) {
    KernelGuard guard(kernel);
    expect_bits_equal(restored->predict_score(q), original->predict_score(q),
                      GetParam() + " restored scores");
  }
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, PredictKernelEquivalence,
                         ::testing::ValuesIn(classifier_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

class PredictKernelRegressors : public ::testing::TestWithParam<std::string> {};

TEST_P(PredictKernelRegressors, PredictionsBitIdenticalAcrossBlockSizes) {
  const Dataset ds = train_data(51);
  std::vector<double> targets(ds.n_samples());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i] = ds.x()(i, 0) * 1.5 + (ds.y()[i] == 1 ? 2.0 : -2.0);
  }
  auto reg = make_regressor(GetParam(), {}, 7);
  reg->fit(ds.x(), targets);
  for (const std::size_t rows : kBlockSizes) {
    const Matrix q = query_block(rows);
    std::vector<double> reference;
    {
      KernelGuard guard(PredictKernel::kReference);
      reference = reg->predict(q);
    }
    std::vector<double> flat;
    {
      KernelGuard guard(PredictKernel::kFlat);
      flat = reg->predict(q);
    }
    expect_bits_equal(flat, reference,
                      GetParam() + " predictions, block=" + std::to_string(rows));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegressors, PredictKernelRegressors,
                         ::testing::ValuesIn(regressor_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(PredictKernelToggle, RoundTripsAndDefaultsToFlat) {
  const PredictKernel initial = active_predict_kernel();
  EXPECT_EQ(initial, PredictKernel::kFlat);
  set_active_predict_kernel(PredictKernel::kReference);
  EXPECT_EQ(active_predict_kernel(), PredictKernel::kReference);
  set_active_predict_kernel(PredictKernel::kFlat);
  EXPECT_EQ(active_predict_kernel(), PredictKernel::kFlat);
}

// Oracle for the kNN euclidean path: the full-sort selection every faster
// strategy (partial_sort, fused bounded insertion, nth_element) must
// reproduce exactly — same expression, same (distance, index) total order,
// same sorted-order weighted vote.
std::vector<double> knn_full_sort_scores(const Matrix& train_x,
                                         const std::vector<int>& train_y,
                                         const Matrix& queries, std::size_t k,
                                         bool distance_weighted) {
  const std::size_t n = train_x.rows();
  std::vector<double> sq_norms(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = train_x.row(i);
    sq_norms[i] = dot(row, row);
  }
  std::vector<double> out(queries.rows());
  std::vector<std::pair<double, std::size_t>> dist(n);
  for (std::size_t qi = 0; qi < queries.rows(); ++qi) {
    const auto q = queries.row(qi);
    const double q_sq = dot(q, q);
    for (std::size_t i = 0; i < n; ++i) {
      const double dd = q_sq - 2.0 * dot(q, train_x.row(i)) + sq_norms[i];
      dist[i] = {std::sqrt(std::max(0.0, dd)), i};
    }
    std::sort(dist.begin(), dist.end());
    double pos = 0.0, total = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double w = distance_weighted ? 1.0 / (dist[j].first + 1e-9) : 1.0;
      total += w;
      if (train_y[dist[j].second] == 1) pos += w;
    }
    out[qi] = total > 0 ? pos / total : 0.5;
  }
  return out;
}

class PredictKernelKnnSelection
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(PredictKernelKnnSelection, MatchesFullSortOracleOnBothKernels) {
  // k = 5 on 400 train rows drives the flat fused bounded-insertion branch
  // (5 * 16 < 400); k = 40 drives the nth_element branch (40 * 16 >= 400).
  // Both must agree with the full-sort oracle bit for bit, under uniform
  // and distance weights.
  const int k = std::get<0>(GetParam());
  const std::string weights = std::get<1>(GetParam());
  const Dataset ds = train_data(61);
  ParamMap params;
  params.set("n_neighbors", static_cast<long long>(k));
  params.set("weights", weights);
  auto clf = make_classifier("knn", params, 3);
  clf->fit(ds.x(), ds.y());
  const Matrix q = query_block(50);
  const std::vector<double> oracle = knn_full_sort_scores(
      ds.x(), ds.y(), q, static_cast<std::size_t>(k), weights == "distance");
  for (const PredictKernel kernel : {PredictKernel::kFlat, PredictKernel::kReference}) {
    KernelGuard guard(kernel);
    expect_bits_equal(clf->predict_score(q), oracle,
                      std::string("knn k=") + std::to_string(k) + " weights=" +
                          weights + (kernel == PredictKernel::kFlat
                                         ? " (flat)"
                                         : " (reference)"));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SelectionStrategies, PredictKernelKnnSelection,
    ::testing::Combine(::testing::Values(5, 40),
                       ::testing::Values("uniform", "distance")),
    [](const ::testing::TestParamInfo<std::tuple<int, const char*>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

}  // namespace
}  // namespace mlaas
