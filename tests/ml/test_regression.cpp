#include <gtest/gtest.h>

#include <cmath>

#include "ml/regression/linear_regression.h"
#include "ml/regression/regression_metrics.h"
#include "ml/regression/regressor.h"
#include "ml/regression/tree_regressors.h"
#include "util/rng.h"

namespace mlaas {
namespace {

/// y = 3*x0 - 2*x1 + 1 + noise.
void linear_problem(std::size_t n, double noise, std::uint64_t seed, Matrix* x,
                    std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.normal();
    (*x)(i, 1) = rng.normal();
    (*y)[i] = 3.0 * (*x)(i, 0) - 2.0 * (*x)(i, 1) + 1.0 + rng.normal(0.0, noise);
  }
}

/// y = sin(2*x) on [0, pi] — smooth non-linear target.
void sine_problem(std::size_t n, std::uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 1);
  y->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.uniform(0.0, 3.14159);
    (*y)[i] = std::sin(2.0 * (*x)(i, 0));
  }
}

TEST(LinearRegressionTest, RecoversCoefficientsExactly) {
  Matrix x;
  std::vector<double> y;
  linear_problem(200, 0.0, 1, &x, &y);
  LinearRegression reg;
  reg.fit(x, y);
  EXPECT_NEAR(reg.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(reg.coefficients()[1], -2.0, 1e-6);
  EXPECT_NEAR(reg.intercept(), 1.0, 1e-6);
}

TEST(LinearRegressionTest, NoisyFitStillClose) {
  Matrix x;
  std::vector<double> y;
  linear_problem(500, 0.5, 2, &x, &y);
  LinearRegression reg;
  reg.fit(x, y);
  EXPECT_NEAR(reg.coefficients()[0], 3.0, 0.15);
  EXPECT_GT(r2_score(y, reg.predict(x)), 0.95);
}

TEST(LinearRegressionTest, RidgeShrinksCoefficients) {
  Matrix x;
  std::vector<double> y;
  linear_problem(100, 0.2, 3, &x, &y);
  auto ols = make_regressor("linear_regression");
  auto ridge = make_regressor("ridge", ParamMap{{"alpha", 500.0}});
  ols->fit(x, y);
  ridge->fit(x, y);
  const auto* ols_lr = dynamic_cast<const LinearRegression*>(ols.get());
  const auto* ridge_lr = dynamic_cast<const LinearRegression*>(ridge.get());
  ASSERT_NE(ols_lr, nullptr);
  ASSERT_NE(ridge_lr, nullptr);
  EXPECT_LT(std::abs(ridge_lr->coefficients()[0]), std::abs(ols_lr->coefficients()[0]));
}

TEST(LinearRegressionTest, CollinearFeaturesStayFinite) {
  Matrix x(50, 2);
  std::vector<double> y(50);
  Rng rng(4);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = 2.0 * x(i, 0);  // perfectly collinear
    y[i] = x(i, 0);
  }
  LinearRegression reg;
  reg.fit(x, y);
  for (double v : reg.predict(x)) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(r2_score(y, reg.predict(x)), 0.99);
}

TEST(RegressionTreeTest, FitsNonLinearTarget) {
  Matrix x;
  std::vector<double> y;
  sine_problem(400, 5, &x, &y);
  RegressionTree tree;
  tree.fit(x, y);
  EXPECT_GT(r2_score(y, tree.predict(x)), 0.95);
}

TEST(RandomForestRegressorTest, SmoothsSingleTreeVariance) {
  Matrix x;
  std::vector<double> y;
  Rng rng(6);
  sine_problem(300, 6, &x, &y);
  for (double& v : y) v += rng.normal(0.0, 0.2);  // noisy target
  Matrix xt;
  std::vector<double> yt;
  sine_problem(100, 7, &xt, &yt);

  RegressionTree tree;
  RandomForestRegressor forest(ParamMap{{"n_estimators", 30LL}});
  tree.fit(x, y);
  forest.fit(x, y);
  EXPECT_LE(mean_squared_error(yt, forest.predict(xt)),
            mean_squared_error(yt, tree.predict(xt)) + 0.01);
}

TEST(BoostedTreesRegressorTest, BeatsLinearOnSine) {
  Matrix x;
  std::vector<double> y;
  sine_problem(400, 8, &x, &y);
  LinearRegression linear;
  BoostedTreesRegressor boosted;
  linear.fit(x, y);
  boosted.fit(x, y);
  EXPECT_GT(r2_score(y, boosted.predict(x)), r2_score(y, linear.predict(x)) + 0.3);
}

class RegressorProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(RegressorProperty, FitsLinearProblemReasonably) {
  Matrix x;
  std::vector<double> y;
  linear_problem(300, 0.1, 9, &x, &y);
  auto reg = make_regressor(GetParam(), {}, 1);
  reg->fit(x, y);
  EXPECT_GT(r2_score(y, reg->predict(x)), 0.7) << GetParam();
}

TEST_P(RegressorProperty, DeterministicForSeed) {
  Matrix x;
  std::vector<double> y;
  sine_problem(150, 10, &x, &y);
  auto a = make_regressor(GetParam(), {}, 5);
  auto b = make_regressor(GetParam(), {}, 5);
  a->fit(x, y);
  b->fit(x, y);
  const auto pa = a->predict(x);
  const auto pb = b->predict(x);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST_P(RegressorProperty, RejectsMismatchedSizes) {
  Matrix x(5, 2);
  auto reg = make_regressor(GetParam(), {}, 1);
  EXPECT_THROW(reg->fit(x, std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllRegressors, RegressorProperty,
                         ::testing::ValuesIn(regressor_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(RegressorRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_regressor("quantum_regressor"), std::invalid_argument);
}

TEST(RegressionMetricsTest, KnownValues) {
  const std::vector<double> t{1, 2, 3};
  const std::vector<double> p{1, 2, 5};
  EXPECT_NEAR(mean_squared_error(t, p), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(root_mean_squared_error(t, p), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mean_absolute_error(t, p), 2.0 / 3.0, 1e-12);
}

TEST(RegressionMetricsTest, R2Anchors) {
  const std::vector<double> t{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2_score(t, t), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r2_score(t, mean_pred), 0.0, 1e-12);
  const std::vector<double> bad{4, 3, 2, 1};
  EXPECT_LT(r2_score(t, bad), 0.0);
}

TEST(RegressionMetricsTest, ValidationErrors) {
  EXPECT_THROW(mean_squared_error({}, {}), std::invalid_argument);
  EXPECT_THROW(mean_absolute_error({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
