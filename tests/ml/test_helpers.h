// Shared fixtures for classifier tests.
#pragma once

#include <cmath>

#include "data/generators.h"
#include "data/split.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace mlaas::testing {

/// Linearly separable 2-blob problem.
inline Dataset separable(std::size_t n = 300, std::uint64_t seed = 1) {
  return make_blobs(n, 4, 0.6, 6.0, seed);
}

/// Non-linear concentric-circles problem.
inline Dataset circles(std::size_t n = 300, std::uint64_t seed = 2) {
  return make_circles(n, 0.05, 0.5, seed);
}

/// Train on 70%, return test accuracy.
inline double holdout_accuracy(Classifier& clf, const Dataset& ds, std::uint64_t seed = 3) {
  const auto split = train_test_split(ds, 0.3, seed);
  clf.fit(split.train.x(), split.train.y());
  return accuracy_score(split.test.y(), clf.predict(split.test.x()));
}

/// All scores must be valid probabilities.
inline void expect_scores_in_unit_interval(const Classifier& clf, const Matrix& x) {
  for (double s : clf.predict_score(x)) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    EXPECT_FALSE(std::isnan(s));
  }
}

}  // namespace mlaas::testing
