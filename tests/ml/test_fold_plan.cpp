#include <gtest/gtest.h>

#include <thread>

#include "ml/model_selection/cross_validation.h"
#include "ml/model_selection/fold_plan.h"
#include "ml/registry.h"
#include "tests/ml/test_helpers.h"
#include "util/rng.h"

namespace mlaas {
namespace {

TEST(FoldPlan, MaterializesEveryFoldOnce) {
  const Dataset ds = testing::separable(120, 5);
  const FoldPlanPtr plan = FoldPlan::compute(ds, 4, 7);
  EXPECT_EQ(plan->requested_k, 4);
  EXPECT_EQ(plan->k, 4);
  EXPECT_EQ(plan->assignment.size(), ds.n_samples());
  ASSERT_EQ(plan->folds.size(), 4u);
  EXPECT_EQ(plan->evaluated_folds, 4);
  for (const auto& fold : plan->folds) {
    EXPECT_FALSE(fold.degenerate);
    // Each fold partitions the dataset: train + test = n.
    EXPECT_EQ(fold.train.n_samples() + fold.test.n_samples(), ds.n_samples());
    EXPECT_EQ(fold.train.n_features(), ds.n_features());
  }
  // Test folds partition the samples.
  std::size_t total_test = 0;
  for (const auto& fold : plan->folds) total_test += fold.test.n_samples();
  EXPECT_EQ(total_test, ds.n_samples());
}

TEST(FoldPlan, AppliesMinorityClassClamp) {
  Matrix x(20, 1);
  std::vector<int> y(20, 0);
  y[0] = y[1] = y[2] = 1;  // minority of 3 -> k must drop to 3
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  const Dataset ds(std::move(x), std::move(y));
  const FoldPlanPtr plan = FoldPlan::compute(ds, 10, 1);
  EXPECT_EQ(plan->requested_k, 10);
  EXPECT_LE(plan->k, 3);
  EXPECT_GE(plan->k, 2);
}

TEST(FoldPlan, CvOverPlanBitIdenticalToDirectCv) {
  const Dataset ds = testing::circles(200, 11);
  const auto factory = [] { return make_classifier("decision_tree", {}, 99); };
  const CvResult direct = cross_validate(factory, ds, 5, 42);
  const CvResult planned = cross_validate(factory, *FoldPlan::compute(ds, 5, 42));
  EXPECT_EQ(direct.folds, planned.folds);
  EXPECT_EQ(direct.evaluated_folds, planned.evaluated_folds);
  EXPECT_EQ(direct.mean.accuracy, planned.mean.accuracy);
  EXPECT_EQ(direct.mean.precision, planned.mean.precision);
  EXPECT_EQ(direct.mean.recall, planned.mean.recall);
  EXPECT_EQ(direct.mean.f_score, planned.mean.f_score);
  EXPECT_EQ(direct.f_score_std, planned.f_score_std);
}

TEST(FoldPlan, CacheSharesOnePlanPerKey) {
  const Dataset ds = testing::separable(80, 3);
  FoldPlanCache cache(ds);
  const FoldPlanPtr a = cache.get(3, 1);
  const FoldPlanPtr b = cache.get(3, 1);
  const FoldPlanPtr c = cache.get(3, 2);
  const FoldPlanPtr d = cache.get(4, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a.get(), d.get());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FoldPlan, CacheIsThreadSafe) {
  const Dataset ds = testing::separable(100, 9);
  FoldPlanCache cache(ds);
  std::vector<FoldPlanPtr> got(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < got.size(); ++t) {
    threads.emplace_back([&, t] { got[t] = cache.get(3, 5); });
  }
  for (auto& th : threads) th.join();
  for (const auto& plan : got) {
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan.get(), got[0].get());
  }
  EXPECT_EQ(cache.misses() + cache.hits(), got.size());
}

TEST(FoldPlan, ExplicitAssignmentMarksDegenerateFolds) {
  const Dataset ds = testing::separable(30, 13);
  // Every sample in fold 0: fold 0 has an empty train side, fold 1 an empty
  // test side — nothing is evaluable.
  const FoldPlanPtr plan =
      FoldPlan::from_assignment(ds, std::vector<int>(ds.n_samples(), 0), 2);
  ASSERT_EQ(plan->folds.size(), 2u);
  EXPECT_TRUE(plan->folds[0].degenerate);
  EXPECT_TRUE(plan->folds[1].degenerate);
  EXPECT_EQ(plan->evaluated_folds, 0);
}

TEST(CrossValidation, AllDegenerateFoldsReportZeroEvaluated) {
  // Regression: the result must distinguish "k folds planned" from "how
  // many actually scored".  With every fold degenerate nothing is fit, the
  // means stay at zero and the std is zero — not NaN, not a crash.
  const Dataset ds = testing::separable(30, 17);
  const FoldPlanPtr plan =
      FoldPlan::from_assignment(ds, std::vector<int>(ds.n_samples(), 0), 2);
  bool factory_called = false;
  const CvResult cv = cross_validate(
      [&] {
        factory_called = true;
        return make_classifier("decision_tree", {}, 1);
      },
      *plan);
  EXPECT_FALSE(factory_called);
  EXPECT_EQ(cv.folds, 2);
  EXPECT_EQ(cv.evaluated_folds, 0);
  EXPECT_EQ(cv.mean.f_score, 0.0);
  EXPECT_EQ(cv.mean.accuracy, 0.0);
  EXPECT_EQ(cv.f_score_std, 0.0);
}

TEST(CrossValidation, ReportsEvaluatedFolds) {
  const Dataset ds = testing::separable(200, 21);
  const CvResult cv = cross_validate("logistic_regression", {}, ds, 5, 1);
  EXPECT_EQ(cv.folds, 5);
  EXPECT_EQ(cv.evaluated_folds, 5);
}

}  // namespace
}  // namespace mlaas
