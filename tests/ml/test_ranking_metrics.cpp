#include "ml/ranking_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "data/split.h"
#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {
namespace {

TEST(RocAuc, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(roc_auc_score({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(RocAuc, ReversedRankingIsZero) {
  EXPECT_DOUBLE_EQ(roc_auc_score({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(RocAuc, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc_score({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(RocAuc, KnownMixedValue) {
  // Positives at ranks {4, 2} of 4: AUC = ((4+2) - 3) / (2*2) = 0.75.
  EXPECT_DOUBLE_EQ(roc_auc_score({0, 1, 0, 1}, {0.2, 0.3, 0.4, 0.9}), 0.75);
}

TEST(RocAuc, DegenerateClassesGiveHalf) {
  EXPECT_DOUBLE_EQ(roc_auc_score({1, 1}, {0.2, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(roc_auc_score({0, 0}, {0.2, 0.9}), 0.5);
}

TEST(RocAuc, InvariantToMonotoneScoreTransforms) {
  Rng rng(3);
  std::vector<int> y(200);
  std::vector<double> s(200), s_squashed(200);
  for (std::size_t i = 0; i < 200; ++i) {
    y[i] = rng.chance(0.4) ? 1 : 0;
    s[i] = rng.normal(y[i], 1.0);
    s_squashed[i] = std::tanh(s[i] / 3.0);  // strictly monotone
  }
  EXPECT_NEAR(roc_auc_score(y, s), roc_auc_score(y, s_squashed), 1e-12);
}

TEST(RocAuc, SizeMismatchThrows) {
  EXPECT_THROW(roc_auc_score({1}, {0.1, 0.2}), std::invalid_argument);
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(average_precision_score({0, 1, 1}, {0.1, 0.8, 0.9}), 1.0);
}

TEST(AveragePrecision, KnownValue) {
  // Order by score desc: y = [1, 0, 1]; AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(average_precision_score({1, 0, 1}, {0.5, 0.6, 0.9}), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecision, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(average_precision_score({0, 0}, {0.4, 0.6}), 0.0);
}

TEST(AveragePrecision, RandomScoresNearPrevalence) {
  Rng rng(9);
  std::vector<int> y(5000);
  std::vector<double> s(5000);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = rng.chance(0.3) ? 1 : 0;
    s[i] = rng.uniform();
  }
  EXPECT_NEAR(average_precision_score(y, s), 0.3, 0.03);
}

TEST(RankingMetrics, GoodClassifierScoresHighAucOnSeparableData) {
  const Dataset ds = make_blobs(400, 3, 0.8, 6.0, 11);
  const auto split = train_test_split(ds, 0.3, 11);
  auto clf = make_classifier("logistic_regression", {}, 1);
  clf->fit(split.train.x(), split.train.y());
  const auto scores = clf->predict_score(split.test.x());
  EXPECT_GT(roc_auc_score(split.test.y(), scores), 0.97);
  EXPECT_GT(average_precision_score(split.test.y(), scores), 0.95);
}

TEST(RankingMetrics, AucDetectsLinearFailureOnCircles) {
  const Dataset ds = make_circles(400, 0.05, 0.5, 12);
  const auto split = train_test_split(ds, 0.3, 12);
  auto linear = make_classifier("logistic_regression", {}, 1);
  auto tree = make_classifier("decision_tree", {}, 1);
  linear->fit(split.train.x(), split.train.y());
  tree->fit(split.train.x(), split.train.y());
  const double auc_linear = roc_auc_score(split.test.y(), linear->predict_score(split.test.x()));
  const double auc_tree = roc_auc_score(split.test.y(), tree->predict_score(split.test.x()));
  EXPECT_GT(auc_tree, auc_linear + 0.2);
}

}  // namespace
}  // namespace mlaas
