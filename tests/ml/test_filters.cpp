#include "ml/feature/filters.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "util/rng.h"

namespace mlaas {
namespace {

/// 6 features: 0 and 3 informative, the rest pure noise.
Dataset informative_vs_noise(std::uint64_t seed = 5) {
  Rng rng(seed);
  Matrix x(400, 6);
  std::vector<int> y(400);
  for (std::size_t i = 0; i < 400; ++i) {
    const int label = static_cast<int>(i % 2);
    y[i] = label;
    for (std::size_t c = 0; c < 6; ++c) x(i, c) = rng.normal();
    x(i, 0) += label * 3.0;
    x(i, 3) += label * 3.0;
  }
  return Dataset(std::move(x), std::move(y));
}

class FilterScore : public ::testing::TestWithParam<std::string> {};

TEST_P(FilterScore, RanksInformativeAboveNoise) {
  const Dataset ds = informative_vs_noise();
  const auto scores = score_features(ds.x(), ds.y(), feature_score_fn(GetParam()));
  ASSERT_EQ(scores.size(), 6u);
  if (GetParam() == "count") return;  // variance proxy is label-blind
  for (std::size_t c : {1u, 2u, 4u, 5u}) {
    EXPECT_GT(scores[0], scores[c]) << GetParam();
    EXPECT_GT(scores[3], scores[c]) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllScores, FilterScore,
                         ::testing::Values("pearson", "spearman", "kendall", "mutual_info",
                                           "chi2", "fisher", "count", "f_classif"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(FeatureScoreFn, UnknownThrows) {
  EXPECT_THROW(feature_score_fn("bogus"), std::invalid_argument);
}

TEST(SelectKBest, KeepsInformativeColumns) {
  const Dataset ds = informative_vs_noise();
  SelectKBest sel("fisher", 2);
  sel.fit(ds.x(), ds.y());
  EXPECT_EQ(sel.selected(), (std::vector<std::size_t>{0, 3}));
  const Matrix t = sel.transform(ds.x());
  EXPECT_EQ(t.cols(), 2u);
}

TEST(SelectKBest, DefaultKeepsHalf) {
  const Dataset ds = informative_vs_noise();
  SelectKBest sel("fisher");
  sel.fit(ds.x(), ds.y());
  EXPECT_EQ(sel.selected().size(), 3u);
}

TEST(SelectKBest, TransformBeforeFitThrows) {
  SelectKBest sel("fisher", 1);
  Matrix x(2, 2);
  EXPECT_THROW(sel.transform(x), std::logic_error);
}

TEST(SelectKBest, KClampedToFeatureCount) {
  const Dataset ds = informative_vs_noise();
  SelectKBest sel("fisher", 99);
  sel.fit(ds.x(), ds.y());
  EXPECT_EQ(sel.selected().size(), 6u);
}

TEST(FisherLdaExtractor, ProjectsToOneDiscriminativeFeature) {
  const Dataset ds = informative_vs_noise();
  FisherLdaExtractor lda;
  lda.fit(ds.x(), ds.y());
  const Matrix t = lda.transform(ds.x());
  ASSERT_EQ(t.cols(), 1u);
  // Projected means must separate the classes.
  double m0 = 0, m1 = 0;
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < ds.n_samples(); ++i) {
    if (ds.y()[i] == 1) {
      m1 += t(i, 0);
      ++n1;
    } else {
      m0 += t(i, 0);
      ++n0;
    }
  }
  EXPECT_GT(std::abs(m1 / static_cast<double>(n1) - m0 / static_cast<double>(n0)), 1.0);
}

TEST(MakeFeatureStep, DispatchesAllKinds) {
  EXPECT_EQ(make_feature_step("none"), nullptr);
  EXPECT_EQ(make_feature_step(""), nullptr);
  EXPECT_NE(make_feature_step("filter_pearson"), nullptr);
  EXPECT_NE(make_feature_step("fisher_lda"), nullptr);
  EXPECT_NE(make_feature_step("standard_scaler"), nullptr);
  EXPECT_THROW(make_feature_step("filter_bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
