#include <gtest/gtest.h>

#include "ml/model_selection/cross_validation.h"
#include "ml/model_selection/grid_search.h"
#include "tests/ml/test_helpers.h"
#include "util/rng.h"

namespace mlaas {
namespace {

TEST(CrossValidation, HighScoreOnSeparableData) {
  const Dataset ds = testing::separable(200, 21);
  const CvResult cv = cross_validate("logistic_regression", {}, ds, 5, 1);
  EXPECT_EQ(cv.folds, 5);
  EXPECT_GT(cv.mean.f_score, 0.9);
  EXPECT_GT(cv.mean.accuracy, 0.9);
}

TEST(CrossValidation, LinearModelFailsCirclesNonlinearWins) {
  const Dataset ds = testing::circles(300, 22);
  const CvResult lr = cross_validate("logistic_regression", {}, ds, 3, 1);
  const CvResult dt = cross_validate("decision_tree", {}, ds, 3, 1);
  EXPECT_GT(dt.mean.f_score, lr.mean.f_score + 0.15);
}

TEST(CrossValidation, FoldCountReducedForTinyMinority) {
  Matrix x(20, 1);
  std::vector<int> y(20, 0);
  y[0] = y[1] = y[2] = 1;  // minority of 3 -> k must drop to 3
  for (std::size_t i = 0; i < 20; ++i) x(i, 0) = static_cast<double>(i);
  const Dataset ds(std::move(x), std::move(y));
  const CvResult cv = cross_validate("decision_tree", {}, ds, 10, 1);
  EXPECT_LE(cv.folds, 3);
}

TEST(CrossValidation, DeterministicForSeed) {
  const Dataset ds = testing::circles(200, 23);
  const CvResult a = cross_validate("random_forest", {}, ds, 3, 9);
  const CvResult b = cross_validate("random_forest", {}, ds, 3, 9);
  EXPECT_DOUBLE_EQ(a.mean.f_score, b.mean.f_score);
}

TEST(GridSearch, FindsNonDefaultWhenItHelps) {
  // Deep trees needed: default max_depth=5 grid should prefer larger depth
  // on circles with the PredictionIO-style DT grid.
  const Dataset ds = testing::circles(400, 24);
  ClassifierGridSpec spec;
  spec.classifier = "decision_tree";
  spec.params = {ParamSpec::integer("max_depth", 3, 1, 30)};
  const GridSearchResult result = grid_search(spec, ds, 3, 1);
  EXPECT_EQ(result.n_configs, 3u);  // sweep {3/100 -> 1, 3, 300 -> 30}
  EXPECT_GT(result.best_params.get_int("max_depth", 0), 1);
  EXPECT_GT(result.best_cv_f_score, 0.8);
}

TEST(GridSearch, ReportsConfigCount) {
  const Dataset ds = testing::separable(120, 25);
  ClassifierGridSpec spec;
  spec.classifier = "logistic_regression";
  spec.params = {ParamSpec::categorical("penalty", {"l2", "l1"})};
  const GridSearchResult result = grid_search(spec, ds, 3, 1);
  EXPECT_EQ(result.n_configs, 2u);
}

TEST(GridSearch, TiesBreakOnCanonicalParamString) {
  // Widely separated tight blobs: every k scores a perfect F on every fold,
  // so all three configs tie and the documented rule decides — the
  // lexicographically smallest canonical parameter string wins, independent
  // of grid enumeration order.
  const Dataset ds = make_blobs(200, 4, 0.15, 8.0, 77);
  ClassifierGridSpec spec;
  spec.classifier = "knn";
  spec.params = {ParamSpec::integer("n_neighbors", 3, 1, 5)};
  const GridSearchResult result = grid_search(spec, ds, 3, 1);
  ASSERT_DOUBLE_EQ(result.best_cv_f_score, 1.0) << "fixture must produce a tie";
  EXPECT_EQ(result.best_params.to_string(), "n_neighbors=1");
}

TEST(GridSearch, WinnerIsDeterministicAcrossRepeatedCalls) {
  const Dataset ds = testing::circles(300, 26);
  ClassifierGridSpec spec;
  spec.classifier = "decision_tree";
  spec.params = {ParamSpec::integer("max_depth", 5, 1, 30)};
  const GridSearchResult a = grid_search(spec, ds, 3, 7);
  const GridSearchResult b = grid_search(spec, ds, 3, 7);
  EXPECT_EQ(a.best_params.to_string(), b.best_params.to_string());
  EXPECT_DOUBLE_EQ(a.best_cv_f_score, b.best_cv_f_score);
}

TEST(GridSearch, BitIdenticalAcrossThreadCountsAndReuseToggle) {
  // The engine contract: the winner and its score are a function of (spec,
  // data, seed) only — never of the worker count or of whether fold/state
  // reuse is on.  Exact double equality, not tolerance.
  const Dataset ds = testing::circles(300, 28);
  ClassifierGridSpec spec;
  spec.classifier = "decision_tree";
  spec.params = {ParamSpec::integer("max_depth", 5, 1, 30),
                 ParamSpec::integer("min_samples_leaf", 4, 1, 64)};

  GridSearchOptions serial_fresh;
  serial_fresh.cv_folds = 3;
  serial_fresh.threads = 1;
  serial_fresh.reuse = false;
  const GridSearchResult reference = grid_search(spec, ds, serial_fresh, 7);
  ASSERT_EQ(reference.n_configs, 9u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    for (const bool reuse : {false, true}) {
      GridSearchOptions options;
      options.cv_folds = 3;
      options.threads = threads;
      options.reuse = reuse;
      const GridSearchResult run = grid_search(spec, ds, options, 7);
      EXPECT_EQ(run.n_configs, reference.n_configs);
      EXPECT_EQ(run.best_params.to_string(), reference.best_params.to_string())
          << "threads=" << threads << " reuse=" << reuse;
      EXPECT_EQ(run.best_cv_f_score, reference.best_cv_f_score)
          << "threads=" << threads << " reuse=" << reuse;
    }
  }
}

TEST(GridSearch, BackCompatSignatureMatchesOptionsForm) {
  const Dataset ds = testing::circles(240, 29);
  ClassifierGridSpec spec;
  spec.classifier = "knn";
  spec.params = {ParamSpec::integer("n_neighbors", 3, 1, 9)};
  const GridSearchResult old_form = grid_search(spec, ds, 3, 5);
  GridSearchOptions options;
  options.cv_folds = 3;
  const GridSearchResult new_form = grid_search(spec, ds, options, 5);
  EXPECT_EQ(old_form.best_params.to_string(), new_form.best_params.to_string());
  EXPECT_EQ(old_form.best_cv_f_score, new_form.best_cv_f_score);
  EXPECT_EQ(old_form.n_configs, new_form.n_configs);
}

TEST(GridSearch, SharedFoldsMatchDatasetLevelCv) {
  // Documented fold-seeding contract: every config is scored on the folds a
  // direct cross_validate(..., ds, k, seed) call would draw, so a
  // single-config grid reproduces that CV score exactly.
  const Dataset ds = testing::circles(200, 30);
  ClassifierGridSpec spec;
  spec.classifier = "decision_tree";  // no swept params -> one default config
  const GridSearchResult result = grid_search(spec, ds, 3, 11);
  ASSERT_EQ(result.n_configs, 1u);
  const ParamMap config = spec.default_config();
  const CvResult cv = cross_validate(
      spec.classifier, config, *FoldPlan::compute(ds, 3, 11),
      derive_seed(11, config.to_string()));
  EXPECT_EQ(result.best_cv_f_score, cv.mean.f_score);
}

}  // namespace
}  // namespace mlaas
