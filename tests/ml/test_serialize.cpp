// Model persistence round-trips: every registry classifier must predict
// identically after save -> load, including single-class models.
#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ml/registry.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

class SerializeRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeRoundTrip, PredictionsSurviveRoundTrip) {
  const Dataset train = testing::circles(200, 3);
  const Dataset test = testing::circles(80, 4);
  auto original = make_classifier(GetParam(), {}, 9);
  original->fit(train.x(), train.y());

  std::stringstream buffer;
  save_model(buffer, *original);
  const ClassifierPtr restored = load_model(buffer);

  ASSERT_EQ(restored->name(), GetParam());
  EXPECT_EQ(restored->predict(test.x()), original->predict(test.x()));
  const auto a = original->predict_score(test.x());
  const auto b = restored->predict_score(test.x());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST_P(SerializeRoundTrip, SingleClassModelsRoundTrip) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  auto original = make_classifier(GetParam(), {}, 9);
  original->fit(x, {1, 1, 1});
  std::stringstream buffer;
  save_model(buffer, *original);
  const ClassifierPtr restored = load_model(buffer);
  EXPECT_EQ(restored->predict(x), (std::vector<int>{1, 1, 1}));
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, SerializeRoundTrip,
                         ::testing::ValuesIn(classifier_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer("not-a-model 1\nlogistic_regression\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, UnsupportedVersionRejected) {
  std::stringstream buffer("mlaas-model 99\nlogistic_regression\n");
  EXPECT_THROW(load_model(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedStateRejected) {
  const Dataset train = testing::separable(100, 5);
  auto clf = make_classifier("random_forest", {}, 1);
  clf->fit(train.x(), train.y());
  std::stringstream buffer;
  save_model(buffer, *clf);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_model(truncated), std::runtime_error);
}

TEST(Serialize, UnknownClassifierNameRejected) {
  std::stringstream buffer("mlaas-model 1\nquantum_svm\n0 0\n");
  EXPECT_THROW(load_model(buffer), std::invalid_argument);
}

TEST(ModelIo, PrimitivesRoundTrip) {
  std::stringstream buffer;
  model_io::write_double(buffer, 0.1234567890123456789);
  model_io::write_int(buffer, -42);
  model_io::write_string(buffer, "hello");
  model_io::write_vec(buffer, std::vector<double>{1.5, -2.5});
  model_io::write_ivec(buffer, std::vector<int>{7, 8, 9});
  Matrix m{{1, 2}, {3, 4}};
  model_io::write_matrix(buffer, m);

  EXPECT_DOUBLE_EQ(model_io::read_double(buffer), 0.1234567890123456789);
  EXPECT_EQ(model_io::read_int(buffer), -42);
  EXPECT_EQ(model_io::read_string(buffer), "hello");
  EXPECT_EQ(model_io::read_vec(buffer), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(model_io::read_ivec(buffer), (std::vector<int>{7, 8, 9}));
  EXPECT_EQ(model_io::read_matrix(buffer), m);
}

TEST(ModelIo, StringsWithWhitespaceRejected) {
  std::stringstream buffer;
  EXPECT_THROW(model_io::write_string(buffer, "two words"), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
