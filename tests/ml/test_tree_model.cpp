#include "ml/tree/tree_model.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace mlaas {
namespace {

std::vector<double> binary_targets(const std::vector<int>& y) {
  std::vector<double> t(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) t[i] = y[i];
  return t;
}

TEST(TreeModel, LearnsSimpleThreshold) {
  Matrix x{{1}, {2}, {3}, {10}, {11}, {12}};
  const std::vector<double> targets{0, 0, 0, 1, 1, 1};
  TreeModel tree;
  tree.fit(x, targets, {}, {});
  EXPECT_GT(tree.node_count(), 1u);
  EXPECT_LT(tree.predict_one(std::vector<double>{2.0}), 0.5);
  EXPECT_GT(tree.predict_one(std::vector<double>{11.0}), 0.5);
}

TEST(TreeModel, PureNodeStaysLeaf) {
  Matrix x{{1}, {2}, {3}};
  TreeModel tree;
  tree.fit(x, std::vector<double>{1, 1, 1}, {}, {});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{5.0}), 1.0);
}

TEST(TreeModel, MaxDepthRespected) {
  const Dataset ds = make_circles(400, 0.05, 0.5, 3);
  TreeOptions opt;
  opt.max_depth = 3;
  TreeModel tree;
  tree.fit(ds.x(), binary_targets(ds.y()), {}, opt);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(TreeModel, NodeBudgetRespected) {
  const Dataset ds = make_circles(400, 0.05, 0.5, 4);
  TreeOptions opt;
  opt.max_nodes = 15;
  TreeModel tree;
  tree.fit(ds.x(), binary_targets(ds.y()), {}, opt);
  EXPECT_LE(tree.node_count(), 15u);
}

TEST(TreeModel, MinSamplesLeafRespected) {
  const Dataset ds = make_circles(300, 0.05, 0.5, 5);
  TreeOptions opt;
  opt.min_samples_leaf = 25;
  TreeModel tree;
  tree.fit(ds.x(), binary_targets(ds.y()), {}, opt);
  for (const auto& node : tree.nodes()) {
    if (node.feature < 0) EXPECT_GE(node.n_samples, 25u);
  }
}

TEST(TreeModel, WidthBudgetLimitsLevelGrowth) {
  const Dataset ds = make_circles(600, 0.08, 0.5, 6);
  TreeOptions narrow;
  narrow.max_width = 2;
  TreeModel tree_narrow;
  tree_narrow.fit(ds.x(), binary_targets(ds.y()), {}, narrow);
  TreeModel tree_full;
  tree_full.fit(ds.x(), binary_targets(ds.y()), {}, {});
  EXPECT_LT(tree_narrow.node_count(), tree_full.node_count());
}

TEST(TreeModel, RandomSplitsStillLearn) {
  const Dataset ds = make_circles(400, 0.05, 0.5, 7);
  TreeOptions opt;
  opt.random_splits = 8;
  opt.seed = 9;
  TreeModel tree;
  tree.fit(ds.x(), binary_targets(ds.y()), {}, opt);
  std::size_t correct = 0;
  const auto scores = tree.predict(ds.x());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    correct += (scores[i] > 0.5 ? 1 : 0) == ds.y()[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(scores.size()), 0.85);
}

TEST(TreeModel, MseCriterionFitsRegressionTargets) {
  Matrix x{{0}, {1}, {2}, {3}, {10}, {11}, {12}, {13}};
  const std::vector<double> targets{1, 1.1, 0.9, 1, 5, 5.1, 4.9, 5};
  TreeOptions opt;
  opt.criterion = SplitCriterion::kMse;
  TreeModel tree;
  tree.fit(x, targets, {}, opt);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{1.5}), 1.0, 0.2);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{12.0}), 5.0, 0.2);
}

TEST(TreeModel, NewtonLeavesUseHessians) {
  Matrix x{{0}, {0}, {10}, {10}};
  const std::vector<double> grads{1, 1, -1, -1};
  const std::vector<double> hess{0.5, 0.5, 0.5, 0.5};
  TreeOptions opt;
  opt.criterion = SplitCriterion::kMse;
  TreeModel tree;
  tree.fit(x, grads, hess, opt);
  // Newton leaf: sum(g) / (sum(h) + eps) = 2 / 1 = ~2.
  EXPECT_NEAR(tree.predict_one(std::vector<double>{0.0}), 2.0, 0.01);
  EXPECT_NEAR(tree.predict_one(std::vector<double>{10.0}), -2.0, 0.01);
}

TEST(TreeModel, ConstantFeaturesYieldSingleLeaf) {
  Matrix x{{5, 5}, {5, 5}, {5, 5}, {5, 5}};
  TreeModel tree;
  tree.fit(x, std::vector<double>{0, 1, 0, 1}, {}, {});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{5.0, 5.0}), 0.5);
}

TEST(TreeModel, LeafCountConsistent) {
  const Dataset ds = make_circles(200, 0.05, 0.5, 8);
  TreeModel tree;
  tree.fit(ds.x(), binary_targets(ds.y()), {}, {});
  // In a binary tree, leaves = internal nodes + 1.
  EXPECT_EQ(tree.leaf_count(), (tree.node_count() - tree.leaf_count()) + 1);
}

TEST(TreeModel, EmptyModelPredictsZero) {
  TreeModel tree;
  EXPECT_DOUBLE_EQ(tree.predict_one(std::vector<double>{1.0}), 0.0);
}

}  // namespace
}  // namespace mlaas
