#include <gtest/gtest.h>

#include "ml/linear/averaged_perceptron.h"
#include "ml/linear/bayes_point_machine.h"
#include "ml/linear/lda.h"
#include "ml/linear/linear_svm.h"
#include "ml/linear/logistic_regression.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

using testing::circles;
using testing::holdout_accuracy;
using testing::separable;

TEST(LogisticRegression, SeparatesBlobs) {
  LogisticRegression clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(LogisticRegression, FailsOnCircles) {
  // A linear model cannot express the circular boundary — near-chance
  // accuracy is the expected (and §6-exploited) behaviour.
  LogisticRegression clf;
  EXPECT_LT(holdout_accuracy(clf, circles()), 0.72);
}

TEST(LogisticRegression, ScaleInvarianceViaStandardization) {
  Dataset ds = separable();
  LogisticRegression a;
  const double acc_raw = holdout_accuracy(a, ds);
  // Blow one feature up by 1e6; internal standardization should cope.
  for (std::size_t r = 0; r < ds.n_samples(); ++r) ds.x()(r, 0) *= 1e6;
  LogisticRegression b;
  const double acc_scaled = holdout_accuracy(b, ds);
  EXPECT_NEAR(acc_raw, acc_scaled, 0.05);
}

TEST(LogisticRegression, StrongL2ShrinksWeights) {
  const Dataset ds = separable();
  LogisticRegression weak(ParamMap{{"C", 100.0}});
  LogisticRegression strong(ParamMap{{"reg_param", 50.0}});
  weak.fit(ds.x(), ds.y());
  strong.fit(ds.x(), ds.y());
  double norm_weak = 0.0, norm_strong = 0.0;
  for (double w : weak.weights()) norm_weak += w * w;
  for (double w : strong.weights()) norm_strong += w * w;
  EXPECT_LT(norm_strong, norm_weak);
}

TEST(LogisticRegression, L1ProducesSparserWeights) {
  // 20 features, only 3 informative: L1 should zero out more coordinates.
  const Dataset ds = make_sparse_linear(400, 20, 3, 0.0, 11);
  LogisticRegression l1(ParamMap{{"penalty", std::string("l1")}, {"reg_param", 0.5}});
  LogisticRegression l2(ParamMap{{"penalty", std::string("l2")}, {"reg_param", 0.5}});
  l1.fit(ds.x(), ds.y());
  l2.fit(ds.x(), ds.y());
  auto count_small = [](const std::vector<double>& w) {
    std::size_t c = 0;
    for (double v : w) c += std::abs(v) < 1e-4 ? 1 : 0;
    return c;
  };
  EXPECT_GE(count_small(l1.weights()), count_small(l2.weights()));
}

TEST(LogisticRegression, FullBatchSolverAlsoLearns) {
  LogisticRegression clf(ParamMap{{"solver", std::string("gd")}, {"max_iter", 200LL}});
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(LogisticRegression, SingleClassPredictsConstant) {
  Matrix x{{1, 2}, {3, 4}};
  LogisticRegression clf;
  clf.fit(x, {1, 1});
  EXPECT_EQ(clf.predict(x), (std::vector<int>{1, 1}));
}

TEST(LinearSvm, SeparatesBlobs) {
  LinearSvm clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(LinearSvm, SquaredHingeAlsoLearns) {
  LinearSvm clf(ParamMap{{"loss", std::string("squared_hinge")}});
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(LinearSvm, FailsOnCircles) {
  LinearSvm clf;
  EXPECT_LT(holdout_accuracy(clf, circles()), 0.72);
}

TEST(AveragedPerceptron, SeparatesBlobs) {
  AveragedPerceptron clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(AveragedPerceptron, ConvergesEarlyOnSeparableData) {
  // With a separable problem the epoch loop exits on the first clean pass;
  // large max_iter must not change the outcome.
  const Dataset ds = separable(200, 5);
  AveragedPerceptron small(ParamMap{{"max_iter", 50LL}});
  AveragedPerceptron large(ParamMap{{"max_iter", 400LL}});
  small.fit(ds.x(), ds.y());
  large.fit(ds.x(), ds.y());
  EXPECT_EQ(small.predict(ds.x()), large.predict(ds.x()));
}

TEST(BayesPointMachine, SeparatesBlobs) {
  BayesPointMachine clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(BayesPointMachine, CommitteeSizeOneStillWorks) {
  BayesPointMachine clf(ParamMap{{"committee_size", 1LL}});
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(Lda, SeparatesBlobs) {
  LinearDiscriminantAnalysis clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(Lda, ShrinkageHandlesHighDimensional) {
  // d close to n: unshrunk covariance is ill-conditioned.
  MakeClassificationOptions opt;
  opt.n_samples = 60;
  opt.n_features = 40;
  opt.n_informative = 10;
  opt.class_sep = 2.0;
  const Dataset ds = make_classification(opt, 13);
  LinearDiscriminantAnalysis clf(ParamMap{{"shrinkage", 0.5}});
  EXPECT_GT(holdout_accuracy(clf, ds), 0.6);
}

TEST(LinearFamily, AllDeclareLinearBoundary) {
  EXPECT_TRUE(LogisticRegression().is_linear());
  EXPECT_TRUE(LinearSvm().is_linear());
  EXPECT_TRUE(AveragedPerceptron().is_linear());
  EXPECT_TRUE(BayesPointMachine().is_linear());
  EXPECT_TRUE(LinearDiscriminantAnalysis().is_linear());
}

}  // namespace
}  // namespace mlaas
