#include "ml/model_selection/param_grid.h"

#include <gtest/gtest.h>

#include <set>

namespace mlaas {
namespace {

TEST(ParamSpec, NumericSweepFollowsPaperRule) {
  // §3.2: {D/100, D, 100*D}.
  const auto spec = ParamSpec::number("c", 0.01, 1e-9, 1e9);
  const auto values = spec.sweep_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<double>(values[0]), 0.0001);
  EXPECT_DOUBLE_EQ(std::get<double>(values[1]), 0.01);
  EXPECT_DOUBLE_EQ(std::get<double>(values[2]), 1.0);
}

TEST(ParamSpec, NumericSweepClampsToValidRange) {
  const auto spec = ParamSpec::number("c", 1.0, 0.1, 10.0);
  const auto values = spec.sweep_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(std::get<double>(values.front()), 0.1);
  EXPECT_DOUBLE_EQ(std::get<double>(values.back()), 10.0);
}

TEST(ParamSpec, IntegerSweepDeduplicatesAfterClamp) {
  const auto spec = ParamSpec::integer("n", 10, 1, 20);
  const auto values = spec.sweep_values();
  // {0->1, 10, 1000->20} -> {1, 10, 20}.
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(std::get<long long>(values[0]), 1);
  EXPECT_EQ(std::get<long long>(values[2]), 20);
}

TEST(ParamSpec, CategoricalEnumeratesAllOptions) {
  const auto spec = ParamSpec::categorical("mode", {"a", "b", "c"});
  EXPECT_EQ(spec.sweep_values().size(), 3u);
  EXPECT_EQ(std::get<std::string>(spec.default_value()), "a");
}

TEST(ParamSpec, BooleanSweepsBothValues) {
  const auto spec = ParamSpec::boolean("flag", true);
  EXPECT_EQ(spec.sweep_values().size(), 2u);
  EXPECT_TRUE(std::get<bool>(spec.default_value()));
}

TEST(ParamSpec, EmptyCategoricalThrows) {
  EXPECT_THROW(ParamSpec::categorical("x", {}), std::invalid_argument);
}

ClassifierGridSpec demo_spec() {
  ClassifierGridSpec spec;
  spec.classifier = "demo";
  spec.fixed.set("solver", std::string("sgd"));
  spec.params = {
      ParamSpec::number("c", 1.0, 1e-6, 1e6),
      ParamSpec::categorical("penalty", {"l2", "l1"}),
      ParamSpec::boolean("intercept", true),
  };
  return spec;
}

TEST(ExpandGrid, FullCrossProduct) {
  const auto grid = expand_grid(demo_spec(), 0, 1);
  EXPECT_EQ(grid.size(), 3u * 2u * 2u);
  EXPECT_EQ(grid_size(demo_spec()), 12u);
  // All configs carry the fixed parameter.
  for (const auto& p : grid) EXPECT_EQ(p.get_string("solver", ""), "sgd");
  // All configs distinct.
  std::set<std::string> keys;
  for (const auto& p : grid) keys.insert(p.to_string());
  EXPECT_EQ(keys.size(), grid.size());
}

TEST(ExpandGrid, DefaultConfigUsesDefaults) {
  const auto def = demo_spec().default_config();
  EXPECT_DOUBLE_EQ(def.get_double("c", 0), 1.0);
  EXPECT_EQ(def.get_string("penalty", ""), "l2");
  EXPECT_TRUE(def.get_bool("intercept", false));
  EXPECT_EQ(def.get_string("solver", ""), "sgd");
}

TEST(ExpandGrid, CapKeepsDefaultAndIsDeterministic) {
  const auto a = expand_grid(demo_spec(), 5, 42);
  const auto b = expand_grid(demo_spec(), 5, 42);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0], demo_spec().default_config());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ExpandGrid, CapSeedChangesSample) {
  const auto a = expand_grid(demo_spec(), 5, 1);
  const auto b = expand_grid(demo_spec(), 5, 2);
  bool differ = false;
  for (std::size_t i = 1; i < a.size(); ++i) differ = differ || !(a[i] == b[i]);
  EXPECT_TRUE(differ);
}

TEST(ExpandGrid, NoParamsYieldsFixedOnly) {
  ClassifierGridSpec spec;
  spec.classifier = "plain";
  const auto grid = expand_grid(spec, 0, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].empty());
}

}  // namespace
}  // namespace mlaas
