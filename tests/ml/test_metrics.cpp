#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

TEST(Metrics, ConfusionMatrixCounts) {
  const std::vector<int> t{1, 1, 0, 0, 1};
  const std::vector<int> p{1, 0, 0, 1, 1};
  const ConfusionMatrix cm = confusion_matrix(t, p);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.total(), 5u);
}

TEST(Metrics, PerfectPrediction) {
  const std::vector<int> y{1, 0, 1, 0};
  const Metrics m = compute_metrics(y, y);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f_score, 1.0);
}

TEST(Metrics, KnownValues) {
  const std::vector<int> t{1, 1, 1, 0, 0, 0};
  const std::vector<int> p{1, 1, 0, 1, 0, 0};
  const Metrics m = compute_metrics(t, p);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.f_score, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.accuracy, 4.0 / 6.0, 1e-12);
}

TEST(Metrics, FScoreIsHarmonicMean) {
  const std::vector<int> t{1, 1, 1, 1, 0, 0, 0, 0};
  const std::vector<int> p{1, 1, 1, 1, 1, 1, 0, 0};  // prec 4/6, rec 1
  const Metrics m = compute_metrics(t, p);
  const double expected = 2.0 * (4.0 / 6.0) * 1.0 / (4.0 / 6.0 + 1.0);
  EXPECT_NEAR(m.f_score, expected, 1e-12);
}

TEST(Metrics, ZeroDivisionConventions) {
  // No positive predictions: precision 0; no positive truths: recall 0.
  const std::vector<int> t{1, 1, 0};
  const std::vector<int> p{0, 0, 0};
  const Metrics m = compute_metrics(t, p);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f_score, 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(compute_metrics({1, 0}, {1}), std::invalid_argument);
}

TEST(Metrics, ConvenienceWrappersAgree) {
  const std::vector<int> t{1, 0, 1, 0, 1};
  const std::vector<int> p{1, 1, 1, 0, 0};
  const Metrics m = compute_metrics(t, p);
  EXPECT_DOUBLE_EQ(accuracy_score(t, p), m.accuracy);
  EXPECT_DOUBLE_EQ(precision_score(t, p), m.precision);
  EXPECT_DOUBLE_EQ(recall_score(t, p), m.recall);
  EXPECT_DOUBLE_EQ(f1_score(t, p), m.f_score);
}

}  // namespace
}  // namespace mlaas
