#include "ml/params.h"

#include <gtest/gtest.h>

namespace mlaas {
namespace {

TEST(ParamMap, TypedGettersWithDefaults) {
  ParamMap p{{"c", 2.5}, {"iters", 10LL}, {"mode", std::string("fast")}, {"flag", true}};
  EXPECT_DOUBLE_EQ(p.get_double("c", 0.0), 2.5);
  EXPECT_EQ(p.get_int("iters", 0), 10);
  EXPECT_EQ(p.get_string("mode", ""), "fast");
  EXPECT_TRUE(p.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(p.get_double("missing", -1.0), -1.0);
  EXPECT_EQ(p.get_string("missing", "d"), "d");
}

TEST(ParamMap, NumericCrossConversion) {
  ParamMap p{{"a", 3LL}, {"b", 4.9}};
  EXPECT_DOUBLE_EQ(p.get_double("a", 0.0), 3.0);
  EXPECT_EQ(p.get_int("b", 0), 4);
}

TEST(ParamMap, WrongCategoryThrows) {
  ParamMap p{{"s", std::string("x")}};
  EXPECT_THROW(p.get_double("s", 0.0), std::invalid_argument);
  EXPECT_THROW(p.get_bool("s", false), std::invalid_argument);
}

TEST(ParamMap, SetOverwrites) {
  ParamMap p;
  p.set("k", 1LL);
  p.set("k", 2LL);
  EXPECT_EQ(p.get_int("k", 0), 2);
  EXPECT_EQ(p.size(), 1u);
}

TEST(ParamMap, CanonicalStringSortedAndStable) {
  ParamMap p;
  p.set("zeta", 1LL);
  p.set("alpha", std::string("x"));
  EXPECT_EQ(p.to_string(), "alpha=x,zeta=1");
}

TEST(ParamMap, EqualityIgnoresInsertionOrder) {
  ParamMap a, b;
  a.set("x", 1LL);
  a.set("y", 2.0);
  b.set("y", 2.0);
  b.set("x", 1LL);
  EXPECT_EQ(a, b);
}

TEST(ParamValue, ToStringForms) {
  EXPECT_EQ(to_string(ParamValue{true}), "true");
  EXPECT_EQ(to_string(ParamValue{std::string("abc")}), "abc");
  EXPECT_EQ(to_string(ParamValue{7LL}), "7");
}

}  // namespace
}  // namespace mlaas
