#include "ml/feature/scalers.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"

namespace mlaas {
namespace {

Matrix sample() { return Matrix{{1, 10}, {2, 20}, {3, 30}, {4, 40}}; }

TEST(StandardScaler, ZeroMeanUnitVariance) {
  StandardScaler s;
  s.fit(sample(), {});
  const Matrix t = s.transform(sample());
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(mean(t.col(c)), 0.0, 1e-12);
    EXPECT_NEAR(stddev(t.col(c)), 1.0, 1e-12);
  }
}

TEST(StandardScaler, ConstantColumnSafe) {
  Matrix x{{5}, {5}, {5}};
  StandardScaler s;
  s.fit(x, {});
  const Matrix t = s.transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
}

TEST(StandardScaler, AppliesTrainStatisticsToNewData) {
  StandardScaler s;
  s.fit(sample(), {});
  Matrix q{{2.5, 25}};
  const Matrix t = s.transform(q);
  EXPECT_NEAR(t(0, 0), 0.0, 1e-12);  // 2.5 is the training mean
}

TEST(MinMaxScaler, MapsToUnitInterval) {
  MinMaxScaler s;
  s.fit(sample(), {});
  const Matrix t = s.transform(sample());
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 1.0 / 3.0);
}

TEST(MaxAbsScaler, DividesByAbsMax) {
  Matrix x{{-4}, {2}};
  MaxAbsScaler s;
  s.fit(x, {});
  const Matrix t = s.transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 0.5);
}

TEST(RowNormalizer, L2RowsHaveUnitNorm) {
  RowNormalizer s(2);
  s.fit(sample(), {});
  const Matrix t = s.transform(sample());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_NEAR(norm2(t.row(r)), 1.0, 1e-12);
  }
}

TEST(RowNormalizer, L1RowsSumToOneAbs) {
  RowNormalizer s(1);
  s.fit(sample(), {});
  const Matrix t = s.transform(sample());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_NEAR(norm1(t.row(r)), 1.0, 1e-12);
  }
}

TEST(RowNormalizer, ZeroRowUntouched) {
  Matrix x{{0, 0}};
  RowNormalizer s(2);
  const Matrix t = s.transform(x);
  EXPECT_DOUBLE_EQ(t(0, 0), 0.0);
}

TEST(RowNormalizer, RejectsBadP) { EXPECT_THROW(RowNormalizer(3), std::invalid_argument); }

TEST(GaussianNorm, OutputRoughlyStandardNormal) {
  Matrix x(1000, 1);
  for (std::size_t i = 0; i < 1000; ++i) {
    x(i, 0) = std::pow(static_cast<double>(i + 1), 3.0);  // heavily skewed
  }
  GaussianNorm g;
  g.fit(x, {});
  const Matrix t = g.transform(x);
  EXPECT_NEAR(mean(t.col(0)), 0.0, 0.05);
  EXPECT_NEAR(stddev(t.col(0)), 1.0, 0.1);
}

TEST(GaussianNorm, MonotonePreserving) {
  Matrix x{{1}, {100}, {3}, {50}};
  GaussianNorm g;
  g.fit(x, {});
  const Matrix t = g.transform(x);
  EXPECT_LT(t(0, 0), t(2, 0));
  EXPECT_LT(t(2, 0), t(3, 0));
  EXPECT_LT(t(3, 0), t(1, 0));
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(inverse_normal_cdf(0.025), -1.959964, 1e-4);
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
}

TEST(MakeScaler, FactoryKnowsAllNames) {
  for (const auto* name : {"standard_scaler", "minmax_scaler", "maxabs_scaler",
                           "l1_normalizer", "l2_normalizer", "gaussian_norm"}) {
    EXPECT_NE(make_scaler(name), nullptr);
  }
  EXPECT_THROW(make_scaler("bogus"), std::invalid_argument);
}

TEST(Scalers, TransformColumnMismatchThrows) {
  StandardScaler s;
  s.fit(sample(), {});
  Matrix wrong(1, 3);
  EXPECT_THROW(s.transform(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace mlaas
