#include <gtest/gtest.h>

#include "ml/bayes/naive_bayes.h"
#include "ml/kernel/rbf_svm.h"
#include "ml/neighbors/knn.h"
#include "ml/neural/mlp.h"
#include "tests/ml/test_helpers.h"
#include "util/rng.h"

namespace mlaas {
namespace {

using testing::circles;
using testing::holdout_accuracy;
using testing::separable;

TEST(NaiveBayes, SeparatesBlobs) {
  GaussianNaiveBayes clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(NaiveBayes, UniformPriorShiftsImbalancedPrediction) {
  // Highly imbalanced data; uniform prior should recall more positives.
  Matrix x(200, 1);
  std::vector<int> y(200, 0);
  Rng rng(3);
  for (std::size_t i = 0; i < 200; ++i) {
    const bool pos = i < 20;
    y[i] = pos ? 1 : 0;
    x(i, 0) = rng.normal(pos ? 1.0 : -1.0, 1.5);
  }
  GaussianNaiveBayes empirical(ParamMap{{"prior", std::string("empirical")}});
  GaussianNaiveBayes uniform(ParamMap{{"prior", std::string("uniform")}});
  empirical.fit(x, y);
  uniform.fit(x, y);
  EXPECT_GE(recall_score(y, uniform.predict(x)), recall_score(y, empirical.predict(x)));
}

TEST(NaiveBayes, HandlesZeroVarianceFeature) {
  Matrix x{{1, 0}, {1, 1}, {1, 0}, {1, 5}};
  GaussianNaiveBayes clf;
  clf.fit(x, {0, 1, 0, 1});
  for (double s : clf.predict_score(x)) EXPECT_FALSE(std::isnan(s));
}

TEST(Knn, LearnsNonLinearBoundary) {
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 5LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(Knn, KLargerThanTrainSetClamps) {
  Matrix x{{0}, {1}, {10}, {11}};
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 100LL}});
  clf.fit(x, {0, 0, 1, 1});
  // With k = n every query sees the global label mix (tie -> score 0.5).
  const auto scores = clf.predict_score(x);
  for (double s : scores) EXPECT_NEAR(s, 0.5, 1e-9);
}

TEST(Knn, DistanceWeightingFavorsCloserNeighbors) {
  Matrix x{{0.0}, {0.4}, {10.0}};
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 3LL}, {"weights", std::string("distance")}});
  clf.fit(x, {1, 1, 0});
  Matrix q{{0.1}};
  EXPECT_GT(clf.predict_score(q)[0], 0.8);
}

TEST(Knn, ManhattanMetricSupported) {
  KNearestNeighbors clf(ParamMap{{"p", 1LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(Mlp, LearnsNonLinearBoundary) {
  MultiLayerPerceptron clf(ParamMap{{"hidden", 16LL}, {"max_iter", 120LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(Mlp, TanhAndSgdVariant) {
  MultiLayerPerceptron clf(ParamMap{{"activation", std::string("tanh")},
                                    {"solver", std::string("sgd")},
                                    {"max_iter", 150LL}});
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(Mlp, TwoHiddenLayers) {
  MultiLayerPerceptron clf(ParamMap{{"layers", 2LL}, {"hidden", 8LL}, {"max_iter", 150LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.8);
}

TEST(RbfSvm, SolvesCircles) {
  RbfSvm clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(RbfSvm, AlsoHandlesLinearProblem) {
  RbfSvm clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(RbfSvm, GammaOverride) {
  RbfSvm clf(ParamMap{{"gamma", 2.0}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(NonLinearFamily, DeclaredCorrectly) {
  EXPECT_FALSE(KNearestNeighbors().is_linear());
  EXPECT_FALSE(MultiLayerPerceptron().is_linear());
  EXPECT_FALSE(RbfSvm().is_linear());
  EXPECT_TRUE(GaussianNaiveBayes().is_linear());  // Table 5 convention
}

}  // namespace
}  // namespace mlaas
