#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "linalg/vector_ops.h"
#include "ml/bayes/naive_bayes.h"
#include "ml/kernel/rbf_svm.h"
#include "ml/neighbors/knn.h"
#include "ml/neural/mlp.h"
#include "tests/ml/test_helpers.h"
#include "util/rng.h"

namespace mlaas {
namespace {

using testing::circles;
using testing::holdout_accuracy;
using testing::separable;

TEST(NaiveBayes, SeparatesBlobs) {
  GaussianNaiveBayes clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.95);
}

TEST(NaiveBayes, UniformPriorShiftsImbalancedPrediction) {
  // Highly imbalanced data; uniform prior should recall more positives.
  Matrix x(200, 1);
  std::vector<int> y(200, 0);
  Rng rng(3);
  for (std::size_t i = 0; i < 200; ++i) {
    const bool pos = i < 20;
    y[i] = pos ? 1 : 0;
    x(i, 0) = rng.normal(pos ? 1.0 : -1.0, 1.5);
  }
  GaussianNaiveBayes empirical(ParamMap{{"prior", std::string("empirical")}});
  GaussianNaiveBayes uniform(ParamMap{{"prior", std::string("uniform")}});
  empirical.fit(x, y);
  uniform.fit(x, y);
  EXPECT_GE(recall_score(y, uniform.predict(x)), recall_score(y, empirical.predict(x)));
}

TEST(NaiveBayes, HandlesZeroVarianceFeature) {
  Matrix x{{1, 0}, {1, 1}, {1, 0}, {1, 5}};
  GaussianNaiveBayes clf;
  clf.fit(x, {0, 1, 0, 1});
  for (double s : clf.predict_score(x)) EXPECT_FALSE(std::isnan(s));
}

TEST(Knn, LearnsNonLinearBoundary) {
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 5LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(Knn, KLargerThanTrainSetClamps) {
  Matrix x{{0}, {1}, {10}, {11}};
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 100LL}});
  clf.fit(x, {0, 0, 1, 1});
  // With k = n every query sees the global label mix (tie -> score 0.5).
  const auto scores = clf.predict_score(x);
  for (double s : scores) EXPECT_NEAR(s, 0.5, 1e-9);
}

TEST(Knn, DistanceWeightingFavorsCloserNeighbors) {
  Matrix x{{0.0}, {0.4}, {10.0}};
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 3LL}, {"weights", std::string("distance")}});
  clf.fit(x, {1, 1, 0});
  Matrix q{{0.1}};
  EXPECT_GT(clf.predict_score(q)[0], 0.8);
}

TEST(Knn, ManhattanMetricSupported) {
  KNearestNeighbors clf(ParamMap{{"p", 1LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(Knn, EuclideanFastPathMatchesBruteForceMinkowski) {
  // The p=2 path computes sqrt(||q||^2 - 2 q.x + ||x||^2) from cached train
  // norms; neighbor sets, tie order and scores must match the direct
  // minkowski_distance scan for both weighting modes.
  const Dataset ds = circles(240, 7);
  const auto split = train_test_split(ds, 0.3, 11);
  for (const char* weights : {"uniform", "distance"}) {
    KNearestNeighbors clf(
        ParamMap{{"n_neighbors", 7LL}, {"weights", std::string(weights)}});
    clf.fit(split.train.x(), split.train.y());
    const auto scores = clf.predict_score(split.test.x());

    const Matrix& tx = split.train.x();
    const auto& ty = split.train.y();
    for (std::size_t q = 0; q < split.test.x().rows(); ++q) {
      std::vector<std::pair<double, std::size_t>> dist(tx.rows());
      for (std::size_t i = 0; i < tx.rows(); ++i) {
        dist[i] = {minkowski_distance(split.test.x().row(q), tx.row(i), 2.0), i};
      }
      std::partial_sort(dist.begin(), dist.begin() + 7, dist.end());
      double pos = 0.0, total = 0.0;
      for (std::size_t j = 0; j < 7; ++j) {
        const double w =
            std::string(weights) == "distance" ? 1.0 / (dist[j].first + 1e-9) : 1.0;
        total += w;
        if (ty[dist[j].second] == 1) pos += w;
      }
      EXPECT_NEAR(scores[q], pos / total, 1e-9)
          << "weights=" << weights << " query " << q;
    }
  }
}

TEST(Knn, FastPathNormsSurviveSerializationRoundTrip) {
  const Dataset ds = circles(120, 5);
  KNearestNeighbors clf(ParamMap{{"n_neighbors", 5LL}});
  clf.fit(ds.x(), ds.y());
  std::stringstream buf;
  clf.save(buf);
  KNearestNeighbors loaded;
  loaded.load(buf);
  const auto a = clf.predict_score(ds.x());
  const auto b = loaded.predict_score(ds.x());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Mlp, LearnsNonLinearBoundary) {
  MultiLayerPerceptron clf(ParamMap{{"hidden", 16LL}, {"max_iter", 120LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(Mlp, TanhAndSgdVariant) {
  MultiLayerPerceptron clf(ParamMap{{"activation", std::string("tanh")},
                                    {"solver", std::string("sgd")},
                                    {"max_iter", 150LL}});
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(Mlp, TwoHiddenLayers) {
  MultiLayerPerceptron clf(ParamMap{{"layers", 2LL}, {"hidden", 8LL}, {"max_iter", 150LL}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.8);
}

TEST(RbfSvm, SolvesCircles) {
  RbfSvm clf;
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.9);
}

TEST(RbfSvm, AlsoHandlesLinearProblem) {
  RbfSvm clf;
  EXPECT_GT(holdout_accuracy(clf, separable()), 0.9);
}

TEST(RbfSvm, GammaOverride) {
  RbfSvm clf(ParamMap{{"gamma", 2.0}});
  EXPECT_GT(holdout_accuracy(clf, circles()), 0.85);
}

TEST(RbfSvm, PrunedSupportSetGivesSameDecisionFunction) {
  // After fit, zero-alpha rows are dropped.  The decision function summed
  // over the (ordered) surviving support vectors must equal predict_score,
  // and on an easy problem some rows should actually have been pruned.
  const Dataset ds = separable(220, 9);
  RbfSvm clf(ParamMap{{"max_iter", 10LL}});
  clf.fit(ds.x(), ds.y());

  std::stringstream buf;
  clf.save(buf);
  RbfSvm loaded;
  loaded.load(buf);
  const auto direct = clf.predict_score(ds.x());
  const auto via_serialized = loaded.predict_score(ds.x());
  ASSERT_EQ(direct.size(), via_serialized.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], via_serialized[i]) << "row " << i;
  }
  EXPECT_LT(clf.support_count(), ds.n_samples());
  EXPECT_GT(clf.support_count(), 0u);
}

TEST(NonLinearFamily, DeclaredCorrectly) {
  EXPECT_FALSE(KNearestNeighbors().is_linear());
  EXPECT_FALSE(MultiLayerPerceptron().is_linear());
  EXPECT_FALSE(RbfSvm().is_linear());
  EXPECT_TRUE(GaussianNaiveBayes().is_linear());  // Table 5 convention
}

}  // namespace
}  // namespace mlaas
