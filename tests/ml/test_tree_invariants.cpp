// Structural invariants of TreeModel over randomized inputs: well-formed
// node links, thresholds within the feature range, leaf values in [0,1] for
// classification targets, and prediction consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.h"
#include "ml/tree/tree_model.h"

namespace mlaas {
namespace {

class TreeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeInvariants, StructureIsWellFormed) {
  MakeClassificationOptions opt;
  opt.n_samples = 150 + (GetParam() % 5) * 60;
  opt.n_features = 3 + (GetParam() % 7);
  opt.n_informative = 2;
  opt.n_redundant = 0;
  opt.flip_y = 0.1;
  const Dataset ds = make_classification(opt, GetParam());
  std::vector<double> targets(ds.n_samples());
  for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = ds.y()[i];

  TreeOptions topt;
  topt.max_depth = 1 + GetParam() % 12;
  topt.min_samples_leaf = 1 + GetParam() % 5;
  topt.seed = GetParam();
  TreeModel tree;
  tree.fit(ds.x(), targets, {}, topt);

  const auto& nodes = tree.nodes();
  ASSERT_FALSE(nodes.empty());
  std::set<int> referenced;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    if (node.feature >= 0) {
      // Internal node: valid feature, children in range and after parent
      // (breadth-first construction), threshold finite.
      EXPECT_LT(node.feature, static_cast<int>(ds.n_features()));
      EXPECT_TRUE(std::isfinite(node.threshold));
      ASSERT_GT(node.left, static_cast<int>(i));
      ASSERT_GT(node.right, static_cast<int>(i));
      ASSERT_LT(node.left, static_cast<int>(nodes.size()));
      ASSERT_LT(node.right, static_cast<int>(nodes.size()));
      EXPECT_TRUE(referenced.insert(node.left).second);
      EXPECT_TRUE(referenced.insert(node.right).second);
    } else {
      // Classification leaf values are class-1 fractions.
      EXPECT_GE(node.value, 0.0);
      EXPECT_LE(node.value, 1.0);
      EXPECT_GE(node.n_samples, topt.min_samples_leaf);
    }
  }
  // Every node except the root is referenced exactly once (it's a tree).
  EXPECT_EQ(referenced.size(), nodes.size() - 1);
  EXPECT_EQ(referenced.count(0), 0u);

  // Depth invariant.
  EXPECT_LE(tree.depth(), topt.max_depth);
}

TEST_P(TreeInvariants, PredictionsAreLeafValues) {
  const Dataset ds = make_moons(200, 0.2, GetParam());
  std::vector<double> targets(ds.n_samples());
  for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = ds.y()[i];
  TreeModel tree;
  tree.fit(ds.x(), targets, {}, {});
  std::set<double> leaf_values;
  for (const auto& node : tree.nodes()) {
    if (node.feature < 0) leaf_values.insert(node.value);
  }
  for (double p : tree.predict(ds.x())) {
    EXPECT_TRUE(leaf_values.count(p) > 0) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace mlaas
