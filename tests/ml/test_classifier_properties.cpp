// Property-style tests run over EVERY registry classifier via parameterized
// gtest: determinism, score validity, single-class handling, and minimum
// competence on a separable problem.
#include <gtest/gtest.h>

#include "ml/registry.h"
#include "tests/ml/test_helpers.h"

namespace mlaas {
namespace {

class ClassifierProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassifierProperty, SeparableProblemAboveChance) {
  auto clf = make_classifier(GetParam(), {}, 1);
  EXPECT_GT(testing::holdout_accuracy(*clf, testing::separable()), 0.9)
      << GetParam() << " failed a trivially separable problem";
}

TEST_P(ClassifierProperty, ScoresAreProbabilities) {
  const Dataset ds = testing::separable(150, 11);
  auto clf = make_classifier(GetParam(), {}, 2);
  clf->fit(ds.x(), ds.y());
  testing::expect_scores_in_unit_interval(*clf, ds.x());
}

TEST_P(ClassifierProperty, PredictionsMatchThresholdedScores) {
  const Dataset ds = testing::separable(150, 12);
  auto clf = make_classifier(GetParam(), {}, 3);
  clf->fit(ds.x(), ds.y());
  const auto scores = clf->predict_score(ds.x());
  const auto labels = clf->predict(ds.x());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels[i], scores[i] > 0.5 ? 1 : 0);
  }
}

TEST_P(ClassifierProperty, DeterministicForSameSeed) {
  const Dataset ds = testing::circles(200, 13);
  auto a = make_classifier(GetParam(), {}, 77);
  auto b = make_classifier(GetParam(), {}, 77);
  a->fit(ds.x(), ds.y());
  b->fit(ds.x(), ds.y());
  EXPECT_EQ(a->predict(ds.x()), b->predict(ds.x()));
}

TEST_P(ClassifierProperty, SingleClassTrainingPredictsThatClass) {
  Matrix x{{1, 2}, {3, 4}, {5, 6}};
  auto clf = make_classifier(GetParam(), {}, 4);
  clf->fit(x, {1, 1, 1});
  EXPECT_EQ(clf->predict(x), (std::vector<int>{1, 1, 1}));
  auto clf0 = make_classifier(GetParam(), {}, 4);
  clf0->fit(x, {0, 0, 0});
  EXPECT_EQ(clf0->predict(x), (std::vector<int>{0, 0, 0}));
}

TEST_P(ClassifierProperty, LabelPermutationInvariantAccuracy) {
  // Shuffling training-row order must not change the model family's ability
  // (exact equality is not required for SGD learners; accuracy must hold).
  const Dataset ds = testing::separable(200, 14);
  std::vector<std::size_t> perm(ds.n_samples());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = perm.size() - 1 - i;
  const Dataset reversed = ds.subset(perm);
  auto clf = make_classifier(GetParam(), {}, 5);
  clf->fit(reversed.x(), reversed.y());
  EXPECT_GT(accuracy_score(ds.y(), clf->predict(ds.x())), 0.9);
}

TEST_P(ClassifierProperty, NameMatchesRegistry) {
  auto clf = make_classifier(GetParam(), {}, 6);
  EXPECT_EQ(clf->name(), GetParam());
}

TEST_P(ClassifierProperty, FamilyMatchesRegistryTable) {
  auto clf = make_classifier(GetParam(), {}, 7);
  EXPECT_EQ(clf->is_linear(), classifier_is_linear(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllClassifiers, ClassifierProperty,
                         ::testing::ValuesIn(classifier_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_classifier("no_such_classifier"), std::invalid_argument);
}

TEST(Registry, AbbreviationsMatchTable4) {
  EXPECT_EQ(classifier_abbrev("logistic_regression"), "LR");
  EXPECT_EQ(classifier_abbrev("boosted_trees"), "BST");
  EXPECT_EQ(classifier_abbrev("decision_jungle"), "DJ");
  EXPECT_EQ(classifier_abbrev("mlp"), "MLP");
}

TEST(Registry, FourteenClassifiers) { EXPECT_EQ(classifier_names().size(), 14u); }

TEST(Registry, LinearFamilyMatchesTable5) {
  // Table 5: linear = {LR, NB, Linear SVM, LDA}; our roster adds the two
  // linear Microsoft classifiers (AP, BPM).
  EXPECT_TRUE(classifier_is_linear("logistic_regression"));
  EXPECT_TRUE(classifier_is_linear("naive_bayes"));
  EXPECT_TRUE(classifier_is_linear("linear_svm"));
  EXPECT_TRUE(classifier_is_linear("lda"));
  EXPECT_FALSE(classifier_is_linear("decision_tree"));
  EXPECT_FALSE(classifier_is_linear("random_forest"));
  EXPECT_FALSE(classifier_is_linear("boosted_trees"));
  EXPECT_FALSE(classifier_is_linear("knn"));
  EXPECT_FALSE(classifier_is_linear("bagging"));
  EXPECT_FALSE(classifier_is_linear("mlp"));
}

}  // namespace
}  // namespace mlaas
