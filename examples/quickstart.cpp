// Quickstart: generate a dataset, train a classifier through a simulated
// MLaaS platform, and compare it to a hand-picked local classifier.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
#include <iostream>

#include "data/generators.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "ml/registry.h"
#include "platform/all_platforms.h"

int main() {
  using namespace mlaas;

  // 1. A binary-classification dataset (two interleaved moons).
  const Dataset dataset = make_moons(600, 0.2, /*seed=*/42);
  const auto split = train_test_split(dataset, 0.3, /*seed=*/42);
  std::cout << "Dataset: " << dataset.n_samples() << " samples, " << dataset.n_features()
            << " features, " << split.train.n_samples() << " train / "
            << split.test.n_samples() << " test\n\n";

  // 2. Upload to a fully automated MLaaS platform — one call, no knobs.
  const auto google = make_platform("Google");
  const auto model = google->train(split.train, /*config=*/{}, /*seed=*/1);
  const auto platform_metrics = compute_metrics(split.test.y(), model->predict(split.test.x()));
  std::cout << "Google (automated)   F-score: " << platform_metrics.f_score
            << "  accuracy: " << platform_metrics.accuracy << "\n";

  // 3. A configurable platform: pick the classifier and a parameter.
  const auto microsoft = make_platform("Microsoft");
  PipelineConfig config;
  config.classifier = "boosted_trees";
  config.params.set("n_estimators", 80LL);
  const auto tuned = microsoft->train(split.train, config, /*seed=*/1);
  const auto tuned_metrics = compute_metrics(split.test.y(), tuned->predict(split.test.x()));
  std::cout << "Microsoft (tuned BST) F-score: " << tuned_metrics.f_score
            << "  accuracy: " << tuned_metrics.accuracy << "\n";

  // 4. Or skip platforms entirely and use the ML library directly.
  auto local = make_classifier("random_forest", ParamMap{{"n_estimators", 40LL}}, /*seed=*/1);
  local->fit(split.train.x(), split.train.y());
  const auto local_metrics = compute_metrics(split.test.y(), local->predict(split.test.x()));
  std::cout << "Local random forest  F-score: " << local_metrics.f_score
            << "  accuracy: " << local_metrics.accuracy << "\n";
  return 0;
}
