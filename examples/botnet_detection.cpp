// Botnet detection — the kind of networking classification task the paper's
// introduction motivates (botnet detection [31], user behavior analysis).
//
// We synthesize a flow-features dataset (packet rate, mean inter-arrival
// time, flow duration, bytes up/down, port entropy, fan-out, ...), where bot
// traffic forms multiple behavioral clusters (C&C beaconing vs. scanning) —
// a non-linear problem with a rare positive class.  The example then does
// what §5.2 recommends: instead of exhaustively tuning one platform, try a
// small random subset of classifiers and keep the best.
#include <cmath>
#include <iostream>
#include <vector>

#include "data/generators.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "ml/registry.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mlaas;

/// Flow records: benign traffic is one broad cluster; bot traffic is two
/// tight clusters (beaconing: low-rate periodic; scanning: high fan-out).
Dataset synthesize_flows(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> names{"pkts_per_s", "mean_iat_ms", "duration_s",
                                       "bytes_up",   "bytes_down",  "port_entropy",
                                       "peer_fanout", "syn_ratio"};
  Matrix x(n, names.size());
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool bot = rng.chance(0.15);  // rare positive class
    y[i] = bot ? 1 : 0;
    if (!bot) {
      x(i, 0) = std::exp(rng.normal(2.0, 1.0));    // pkts/s, lognormal
      x(i, 1) = std::exp(rng.normal(3.0, 0.8));    // IAT
      x(i, 2) = std::exp(rng.normal(2.5, 1.2));    // duration
      x(i, 3) = std::exp(rng.normal(8.0, 1.5));
      x(i, 4) = std::exp(rng.normal(9.0, 1.5));
      x(i, 5) = rng.uniform(0.2, 0.9);             // port entropy
      x(i, 6) = rng.uniform(1, 30);                // fanout
      x(i, 7) = rng.uniform(0.05, 0.4);            // syn ratio
    } else if (rng.chance(0.5)) {
      // C&C beaconing: low rate, very regular IAT, long-lived, small flows.
      x(i, 0) = std::exp(rng.normal(0.2, 0.3));
      x(i, 1) = std::exp(rng.normal(5.5, 0.2));
      x(i, 2) = std::exp(rng.normal(5.0, 0.5));
      x(i, 3) = std::exp(rng.normal(5.0, 0.5));
      x(i, 4) = std::exp(rng.normal(5.2, 0.5));
      x(i, 5) = rng.uniform(0.0, 0.15);
      x(i, 6) = rng.uniform(1, 3);
      x(i, 7) = rng.uniform(0.0, 0.1);
    } else {
      // Scanning: high fanout, high SYN ratio, short flows.
      x(i, 0) = std::exp(rng.normal(3.5, 0.5));
      x(i, 1) = std::exp(rng.normal(1.0, 0.4));
      x(i, 2) = std::exp(rng.normal(0.2, 0.4));
      x(i, 3) = std::exp(rng.normal(4.0, 0.6));
      x(i, 4) = std::exp(rng.normal(2.0, 0.8));
      x(i, 5) = rng.uniform(0.85, 1.0);
      x(i, 6) = rng.uniform(50, 500);
      x(i, 7) = rng.uniform(0.7, 1.0);
    }
  }
  Dataset ds(std::move(x), std::move(y));
  ds.set_feature_names(names);
  ds.meta().id = "botnet-flows";
  ds.meta().name = "synthetic botnet flow records";
  return ds;
}

}  // namespace

int main() {
  using namespace mlaas;
  const Dataset flows = synthesize_flows(2000, 7);
  const auto split = train_test_split(flows, 0.3, 7);
  std::cout << "Botnet detection: " << flows.n_samples() << " flows, "
            << fmt_pct(flows.positive_fraction()) << " bots\n\n";

  // §5.2's advice: a random subset of 3 classifiers gets near-optimal
  // results.  Draw 3 without replacement and keep the best by validation.
  Rng rng(99);
  const auto roster = classifier_names();
  const auto picks = rng.sample_without_replacement(roster.size(), 3);

  TextTable t({"Classifier", "Test F-score", "Precision", "Recall"});
  std::string best_name;
  double best_f = -1;
  for (const auto p : picks) {
    auto clf = make_classifier(roster[p], {}, 7);
    clf->fit(split.train.x(), split.train.y());
    const Metrics m = compute_metrics(split.test.y(), clf->predict(split.test.x()));
    t.add_row({roster[p], fmt(m.f_score), fmt(m.precision), fmt(m.recall)});
    if (m.f_score > best_f) {
      best_f = m.f_score;
      best_name = roster[p];
    }
  }
  std::cout << "Random 3-classifier subset (paper §5.2 strategy):\n" << t.str() << "\n";
  std::cout << "Best of the random subset: " << best_name << " (F = " << fmt(best_f) << ")\n";

  // Reference: exhaustive sweep over the full roster.
  double oracle_f = -1;
  std::string oracle_name;
  for (const auto& name : roster) {
    auto clf = make_classifier(name, {}, 7);
    clf->fit(split.train.x(), split.train.y());
    const double f = f1_score(split.test.y(), clf->predict(split.test.x()));
    if (f > oracle_f) {
      oracle_f = f;
      oracle_name = name;
    }
  }
  std::cout << "All-" << roster.size() << "-classifier optimum: " << oracle_name
            << " (F = " << fmt(oracle_f) << ") — the 3-subset recovers "
            << fmt_pct(best_f / oracle_f) << " of it\n";
  return 0;
}
