// Feature selection + grid search on a high-dimensional problem — the FEAT
// and PARA control dimensions of the paper, driven through the library API.
//
// Scenario: performance characterization from telemetry with hundreds of
// mostly-irrelevant counters (performance crisis fingerprinting, as in the
// paper's intro).  Filter feature selection first, then a cross-validated
// parameter grid for the classifier.
#include <iostream>

#include "data/generators.h"
#include "data/split.h"
#include "ml/feature/filters.h"
#include "ml/metrics.h"
#include "ml/model_selection/grid_search.h"
#include "ml/registry.h"
#include "util/table.h"

int main() {
  using namespace mlaas;

  // 200 telemetry counters, only 8 informative.
  const Dataset telemetry = make_sparse_linear(900, 200, 8, 0.05, 21);
  const auto split = train_test_split(telemetry, 0.3, 21);
  std::cout << "Telemetry: " << telemetry.n_samples() << " windows, "
            << telemetry.n_features() << " counters (8 informative)\n\n";

  // Baseline: logistic regression on all 200 counters.
  auto baseline = make_classifier("logistic_regression", {}, 1);
  baseline->fit(split.train.x(), split.train.y());
  const double baseline_f = f1_score(split.test.y(), baseline->predict(split.test.x()));

  TextTable t({"Filter method", "Kept", "Test F-score"});
  t.add_row({"(none)", "200", fmt(baseline_f)});

  for (const auto* method : {"f_classif", "mutual_info", "fisher", "pearson"}) {
    SelectKBest selector(method, 16);
    selector.fit(split.train.x(), split.train.y());
    const Matrix train_x = selector.transform(split.train.x());
    const Matrix test_x = selector.transform(split.test.x());
    auto clf = make_classifier("logistic_regression", {}, 1);
    clf->fit(train_x, split.train.y());
    t.add_row({method, "16", fmt(f1_score(split.test.y(), clf->predict(test_x)))});
  }
  std::cout << "FEAT dimension: filter selection before a fixed classifier\n" << t.str()
            << "\n";

  // PARA dimension: cross-validated grid over the paper's {D/100, D, 100D}
  // sweep for the regularization strength.
  ClassifierGridSpec spec;
  spec.classifier = "logistic_regression";
  spec.params = {
      ParamSpec::number("C", 1.0, 1e-4, 1e4),
      ParamSpec::categorical("penalty", {"l2", "l1"}),
  };
  const GridSearchResult result = grid_search(spec, split.train, 5, 3);
  std::cout << "PARA dimension: grid search over " << result.n_configs
            << " configurations\n  best params: " << result.best_params.to_string()
            << "\n  cross-validated F: " << fmt(result.best_cv_f_score) << "\n";

  auto tuned = make_classifier("logistic_regression", result.best_params, 1);
  tuned->fit(split.train.x(), split.train.y());
  std::cout << "  held-out test F:   "
            << fmt(f1_score(split.test.y(), tuned->predict(split.test.x()))) << "\n";
  return 0;
}
