// Regression — the other learning task all six MLaaS platforms support
// (paper §3).  Networking scenario: predict flow completion time from flow
// features, comparing the library's regressors (performance
// characterization, as in the paper's intro citations [8, 76]).
#include <cmath>
#include <iostream>

#include "data/split.h"
#include "ml/regression/regression_metrics.h"
#include "ml/regression/regressor.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace mlaas;

/// Flow completion time ~ size/bandwidth + propagation + loss-driven
/// retransmission tail: a smooth but non-linear target.
void synthesize_flows(std::size_t n, std::uint64_t seed, Matrix* x,
                      std::vector<double>* fct_ms) {
  Rng rng(seed);
  *x = Matrix(n, 4);
  fct_ms->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double size_kb = std::exp(rng.normal(5.0, 1.5));       // flow size
    const double bw_mbps = rng.uniform(5.0, 100.0);              // bottleneck
    const double rtt_ms = rng.uniform(1.0, 120.0);               // propagation
    const double loss = rng.uniform(0.0, 0.03);                  // loss rate
    (*x)(i, 0) = size_kb;
    (*x)(i, 1) = bw_mbps;
    (*x)(i, 2) = rtt_ms;
    (*x)(i, 3) = loss;
    const double transfer = size_kb * 8.0 / bw_mbps / 1000.0 * 1e3;  // ms
    const double retx_tail = loss * 8.0 * rtt_ms * std::log1p(size_kb);
    (*fct_ms)[i] = transfer + 1.5 * rtt_ms + retx_tail + rng.normal(0.0, 2.0);
  }
}

}  // namespace

int main() {
  using namespace mlaas;
  Matrix x;
  std::vector<double> fct;
  synthesize_flows(1500, 31, &x, &fct);

  // 70/30 split by hand (regression targets, so no stratification needed).
  const std::size_t n_train = 1050;
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    (i < n_train ? train_idx : test_idx).push_back(i);
  }
  const Matrix x_train = x.select_rows(train_idx);
  const Matrix x_test = x.select_rows(test_idx);
  std::vector<double> y_train(fct.begin(), fct.begin() + n_train);
  std::vector<double> y_test(fct.begin() + n_train, fct.end());

  std::cout << "Flow-completion-time regression: " << n_train << " train / "
            << y_test.size() << " test flows\n\n";
  TextTable t({"Regressor", "RMSE (ms)", "MAE (ms)", "R^2"});
  for (const auto& name : regressor_names()) {
    auto reg = make_regressor(name, {}, 7);
    reg->fit(x_train, y_train);
    const auto pred = reg->predict(x_test);
    t.add_row({name, fmt(root_mean_squared_error(y_test, pred), 1),
               fmt(mean_absolute_error(y_test, pred), 1), fmt(r2_score(y_test, pred), 3)});
  }
  std::cout << t.str()
            << "\nThe tree ensembles capture the size/bandwidth interaction that the\n"
               "linear models miss — the regression analogue of the paper's classifier-\n"
               "choice finding.\n";
  return 0;
}
