// Probing black-box MLaaS platforms (§6): train the automated platforms on
// the CIRCLE and LINEAR probes, render their decision boundaries, and infer
// which classifier family each platform chose — without ever seeing inside.
#include <iostream>

#include "data/generators.h"
#include "eval/boundary.h"
#include "platform/all_platforms.h"
#include "util/table.h"

int main() {
  using namespace mlaas;

  const Dataset circle = make_circle_probe(17);
  const Dataset linear = make_linear_probe(17);

  TextTable verdicts({"Platform", "Probe", "Linear-fit acc", "Inferred family"});
  for (const auto* platform_name : {"Google", "ABM", "Amazon"}) {
    const auto platform = make_platform(platform_name);
    for (const Dataset* probe : {&circle, &linear}) {
      const BoundaryMap map = probe_decision_boundary(*platform, *probe, 17);
      verdicts.add_row({platform_name, probe->meta().name, fmt(map.linear_fit_accuracy),
                        boundary_is_linear(map) ? "linear" : "NON-linear"});
      if (probe == &circle) {
        std::cout << platform_name << " on CIRCLE ('#' = inner class):\n"
                  << render_boundary(map, 40) << "\n";
      }
    }
  }
  std::cout << "Inference summary (the paper's §6.1 finding: automated platforms switch\n"
               "between linear and non-linear classifiers per dataset; Amazon is\n"
               "non-linear on CIRCLE despite documenting logistic regression):\n"
            << verdicts.str();
  return 0;
}
