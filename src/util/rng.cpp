#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace mlaas {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return derive_seed(h, 0);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  std::uint64_t a = splitmix64(state);
  std::uint64_t b = splitmix64(state);
  return a ^ (b << 1);
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view salt) {
  return derive_seed(seed, hash64(salt));
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

long long Rng::integer(long long lo, long long hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<long long>(next());  // full 64-bit range
  return lo + static_cast<long long>(index(static_cast<std::size_t>(span)));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  std::vector<std::size_t> idx;
  sample_without_replacement_into(n, k, idx);
  return idx;
}

void Rng::sample_without_replacement_into(std::size_t n, std::size_t k,
                                          std::vector<std::size_t>& out) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(out[i], out[j]);
  }
  out.resize(k);
}

}  // namespace mlaas
