// A minimal fixed-size thread pool used by the measurement runner.
//
// Work items are type-erased std::function<void()>; submit() returns a
// std::future for the callable's result.  The pool joins in its destructor
// after draining the queue (tasks submitted before destruction all run).
//
// Two bulk dispatchers are provided:
//   parallel_for         — static chunking: the index range is cut into
//                          O(workers) contiguous chunks up front.  Cheap, but
//                          one slow chunk leaves the other workers idle.
//   parallel_for_dynamic — an atomic ticket: every worker pulls the next
//                          index the moment it finishes the previous one, so
//                          skewed workloads balance automatically.  Both can
//                          fill a ParallelStats with per-worker telemetry.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mlaas {

/// Per-worker telemetry of one parallel_for / parallel_for_dynamic call.
struct ParallelStats {
  /// Wall seconds each worker spent inside the callable (index = worker).
  std::vector<double> busy_seconds;
  /// Items each worker executed.
  std::vector<std::size_t> items;
  /// Dynamic dispatch only: items executed by a different worker than the
  /// one a static contiguous partition would have assigned them to — how
  /// much work the ticket moved off overloaded workers.  Always 0 for
  /// parallel_for.
  std::size_t stolen = 0;
  /// Wall seconds of the whole dispatch (submission to last completion).
  double makespan_seconds = 0.0;

  double total_busy_seconds() const;
  /// max(worker busy) / mean(worker busy); 1.0 = perfectly balanced.
  /// Returns 1.0 when no worker did any work.
  double imbalance() const;
};

class ThreadPool {
 public:
  /// Defensive ceiling on the worker count: thread handles cost real memory
  /// and a request this large is always a bug (e.g. a negative count pushed
  /// through a size_t cast), never a machine.
  static constexpr std::size_t kMaxThreads = 1024;

  /// n_threads == 0 means hardware_concurrency (at least 1).  Throws
  /// std::invalid_argument for n_threads > kMaxThreads.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Static chunking; on an exception every other index still runs to
  /// completion before the first exception is rethrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    ParallelStats* stats = nullptr);

  /// Run fn(i) for i in [0, n) with dynamic dispatch: one runner per worker,
  /// each pulling the next index off a shared atomic ticket.  Indices are
  /// claimed in ascending order but may execute concurrently and finish in
  /// any order.  On an exception, workers stop claiming new indices
  /// (in-flight ones finish) and the first exception is rethrown.
  void parallel_for_dynamic(std::size_t n, const std::function<void(std::size_t)>& fn,
                            ParallelStats* stats = nullptr);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mlaas
