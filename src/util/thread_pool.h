// A minimal fixed-size thread pool used by the measurement runner.
//
// Work items are type-erased std::function<void()>; submit() returns a
// std::future for the callable's result.  The pool joins in its destructor
// after draining the queue (tasks submitted before destruction all run).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mlaas {

class ThreadPool {
 public:
  /// n_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mlaas
