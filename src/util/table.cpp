#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mlaas {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_with_rank(double v, double rank, int precision) {
  return fmt(v, precision) + " (" + fmt(rank, 1) + ")";
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

std::string render_cdf(std::vector<double> values, int points, const std::string& x_label) {
  std::ostringstream os;
  if (values.empty()) return "(empty)\n";
  std::sort(values.begin(), values.end());
  os << x_label << "\tCDF\n";
  const std::size_t n = values.size();
  for (int p = 1; p <= points; ++p) {
    const double q = static_cast<double>(p) / points;
    std::size_t i = static_cast<std::size_t>(std::ceil(q * n)) - 1;
    i = std::min(i, n - 1);
    os << fmt(values[i], 4) << "\t" << fmt(q, 3) << "\n";
  }
  return os.str();
}

AsciiCanvas::AsciiCanvas(int width, int height, double x_lo, double x_hi, double y_lo,
                         double y_hi)
    : width_(width),
      height_(height),
      x_lo_(x_lo),
      x_hi_(x_hi),
      y_lo_(y_lo),
      y_hi_(y_hi),
      grid_(height, std::string(width, ' ')) {}

void AsciiCanvas::plot(double x, double y, char c) {
  if (x < x_lo_ || x >= x_hi_ || y < y_lo_ || y >= y_hi_) return;
  const int col = static_cast<int>((x - x_lo_) / (x_hi_ - x_lo_) * width_);
  const int row = static_cast<int>((y - y_lo_) / (y_hi_ - y_lo_) * height_);
  // Flip vertically so larger y is drawn higher.
  grid_[static_cast<std::size_t>(height_ - 1 - row)][static_cast<std::size_t>(col)] = c;
}

std::string AsciiCanvas::str() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(height_) * (static_cast<std::size_t>(width_) + 1));
  for (const auto& row : grid_) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace mlaas
