// Tiny command-line flag parser shared by bench/example binaries.
//
// Supports "--name value" and "--name=value"; unknown flags raise an error so
// typos are caught.  Also reads MLAAS_SCALE / MLAAS_SEED environment
// variables as defaults for the common knobs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace mlaas {

class CliFlags {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  CliFlags(int argc, const char* const* argv);

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& def) const;
  long long int_or(const std::string& name, long long def) const;
  double double_or(const std::string& name, double def) const;
  bool bool_or(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> flags_;
};

/// Common bench configuration derived from flags + environment.
struct BenchOptions {
  std::uint64_t seed = 42;      // --seed / MLAAS_SEED
  double scale = 1.0;           // --scale / MLAAS_SCALE: grid & corpus scaling
  int threads = 0;              // --threads (0 = hardware; negative rejected)
  std::string schedule = "dynamic";  // --schedule: static|dynamic session dispatch
  bool quick = false;           // --quick: tiny corpus for smoke runs
  // Campaign transport envelope (service simulation):
  double fault_rate = 0.0;          // --fault-rate / MLAAS_FAULT_RATE
  std::string quota_profile = "default";  // --quota-profile
  int retry_budget = 6;             // --retry-budget: attempts per request
  // Resilience knobs (chaos schedules, circuit breakers, retry jitter):
  std::string chaos_profile = "none";  // --chaos-profile: none|outages|bursts|latency|storm
  bool breakers = false;            // --breakers: per-platform circuit breakers
  int breaker_threshold = 3;        // --breaker-threshold: failures before opening
  double breaker_cooldown = 300.0;  // --breaker-cooldown: seconds before half-open probe
  int breaker_probes = 2;           // --breaker-probes: half-open probes before latching
  bool jitter = false;              // --jitter: decorrelated backoff jitter
  bool resume = true;               // --resume / --fresh: journal resume on crash
};

BenchOptions parse_bench_options(int argc, const char* const* argv);

}  // namespace mlaas
