#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace mlaas {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Index of the executing worker within its pool; set once per worker thread.
// A thread belongs to exactly one pool, so a plain thread_local suffices.
thread_local std::size_t tls_worker_index = 0;

}  // namespace

double ParallelStats::total_busy_seconds() const {
  double total = 0.0;
  for (double b : busy_seconds) total += b;
  return total;
}

double ParallelStats::imbalance() const {
  if (busy_seconds.empty()) return 1.0;
  double max_busy = 0.0, total = 0.0;
  for (double b : busy_seconds) {
    max_busy = std::max(max_busy, b);
    total += b;
  }
  const double mean = total / static_cast<double>(busy_seconds.size());
  return mean > 0.0 ? max_busy / mean : 1.0;
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads > kMaxThreads) {
    throw std::invalid_argument("ThreadPool: " + std::to_string(n_threads) +
                                " workers requested (max " + std::to_string(kMaxThreads) +
                                "); was a negative count cast to size_t?");
  }
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this, i] {
      tls_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              ParallelStats* stats) {
  if (stats != nullptr) {
    *stats = ParallelStats{};
    stats->busy_seconds.assign(workers_.size(), 0.0);
    stats->items.assign(workers_.size(), 0);
  }
  if (n == 0) return;
  const auto dispatch_t0 = std::chrono::steady_clock::now();
  // Chunk the index range so a large n costs O(workers) queue entries and
  // futures instead of O(n).  Indices stay in ascending order within a
  // chunk, so fn(i) still observes i monotonically per task.
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, workers_.size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) break;
    // Telemetry is attributed to the physical worker executing the chunk
    // (each slot is only ever written by its own worker thread).
    futs.push_back(submit([lo, hi, &fn, stats] {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (stats != nullptr) {
        stats->busy_seconds[tls_worker_index] += seconds_since(t0);
        stats->items[tls_worker_index] += hi - lo;
      }
    }));
  }
  // Join every future before surfacing a failure: rethrowing mid-join would
  // destroy `futs` (and let `fn` dangle for chunks still running) while
  // workers are executing them.  First exception wins; later ones are
  // swallowed, matching what a sequential loop would have surfaced.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (stats != nullptr) stats->makespan_seconds = seconds_since(dispatch_t0);
  if (first) std::rethrow_exception(first);
}

void ThreadPool::parallel_for_dynamic(std::size_t n,
                                      const std::function<void(std::size_t)>& fn,
                                      ParallelStats* stats) {
  const std::size_t runners = std::min(n, std::max<std::size_t>(1, workers_.size()));
  if (stats != nullptr) {
    *stats = ParallelStats{};
    stats->busy_seconds.assign(workers_.size(), 0.0);
    stats->items.assign(workers_.size(), 0);
  }
  if (n == 0) return;
  const auto dispatch_t0 = std::chrono::steady_clock::now();

  auto ticket = std::make_shared<std::atomic<std::size_t>>(0);
  auto stop = std::make_shared<std::atomic<bool>>(false);
  std::mutex err_mu;
  std::exception_ptr first;
  std::atomic<std::size_t> stolen{0};

  std::vector<std::future<void>> futs;
  futs.reserve(runners);
  for (std::size_t r = 0; r < runners; ++r) {
    futs.push_back(submit([r, n, runners, ticket, stop, &fn, &err_mu, &first, &stolen,
                           stats] {
      std::size_t local_stolen = 0;
      for (;;) {
        if (stop->load(std::memory_order_relaxed)) break;
        const std::size_t i = ticket->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        // The worker a static contiguous partition would have given index i.
        const std::size_t owner = i * runners / n;
        if (owner != r) ++local_stolen;
        const auto t0 = std::chrono::steady_clock::now();
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard lock(err_mu);
            if (!first) first = std::current_exception();
          }
          stop->store(true, std::memory_order_relaxed);
          if (stats != nullptr) {
            stats->busy_seconds[r] += seconds_since(t0);
            ++stats->items[r];
          }
          break;
        }
        if (stats != nullptr) {
          stats->busy_seconds[r] += seconds_since(t0);
          ++stats->items[r];
        }
      }
      stolen.fetch_add(local_stolen, std::memory_order_relaxed);
    }));
  }
  // Runners catch everything themselves, so these futures cannot throw;
  // join all of them before touching the shared state they write.
  for (auto& f : futs) f.get();
  if (stats != nullptr) {
    stats->stolen = stolen.load();
    stats->makespan_seconds = seconds_since(dispatch_t0);
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mlaas
