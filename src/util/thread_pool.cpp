#include "util/thread_pool.h"

#include <algorithm>

namespace mlaas {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index range so a large n costs O(workers) queue entries and
  // futures instead of O(n).  Indices stay in ascending order within a
  // chunk, so fn(i) still observes i monotonically per task.
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, workers_.size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Join every future before surfacing a failure: rethrowing mid-join would
  // destroy `futs` (and let `fn` dangle for chunks still running) while
  // workers are executing them.  First exception wins; later ones are
  // swallowed, matching what a sequential loop would have surfaced.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mlaas
