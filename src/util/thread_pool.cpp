#include "util/thread_pool.h"

#include <algorithm>

namespace mlaas {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(submit([i, &fn] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace mlaas
