#include "util/metrics.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mlaas {

double& MetricsRegistry::slot(const std::string& name, Kind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) return entries_[it->second].value;
  index_.emplace(name, entries_.size());
  entries_.push_back(Entry{name, kind, 0.0});
  return entries_.back().value;
}

double MetricsRegistry::value(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("MetricsRegistry: unknown metric " + name);
  }
  return entries_[it->second].value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const Entry& entry : other.entries_) {
    double& mine = slot(entry.name, entry.kind);
    if (entry.kind == Kind::kCounter) {
      mine += entry.value;
    } else {
      mine = entry.value;
    }
  }
}

std::string format_metric_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string MetricsRegistry::encode() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << ';';
    out << entries_[i].name << '=' << format_metric_value(entries_[i].value);
  }
  return out.str();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << entries_[i].name << "\": " << format_metric_value(entries_[i].value);
  }
  out << "}";
}

}  // namespace mlaas
