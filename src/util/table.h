// Plain-text table and CDF rendering used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mlaas {

/// Column-aligned text table.  Usage:
///   TextTable t({"Platform", "F-score"});
///   t.add_row({"Microsoft", "0.837"});
///   std::cout << t.str();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

/// Format a double with fixed precision.
std::string fmt(double v, int precision = 3);
/// Format "value (rank)" cells as in Table 3.
std::string fmt_with_rank(double v, double rank, int precision = 3);
/// Percentage string, e.g. 14.6%.
std::string fmt_pct(double fraction, int precision = 1);

/// Print an empirical CDF of `values` as (x, F(x)) pairs at `points` evenly
/// spaced quantiles — the text analogue of the paper's CDF figures.
std::string render_cdf(std::vector<double> values, int points = 20,
                       const std::string& x_label = "x");

/// Simple ASCII scatter plot on a grid (used for decision boundaries and the
/// CIRCLE/LINEAR dataset visualizations).
class AsciiCanvas {
 public:
  AsciiCanvas(int width, int height, double x_lo, double x_hi, double y_lo, double y_hi);

  void plot(double x, double y, char c);
  std::string str() const;

 private:
  int width_, height_;
  double x_lo_, x_hi_, y_lo_, y_hi_;
  std::vector<std::string> grid_;
};

}  // namespace mlaas
