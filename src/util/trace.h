// Deterministic end-to-end tracing for the service→serving→campaign stack.
//
// Every event is timestamped off the *simulated* gateway/service clock, never
// the wall clock, so a traced run produces byte-identical output for every
// thread count, schedule and rerun — the same discipline the measurement
// table and journal already follow.  The scheduler's wall-clock telemetry
// (steal counts, worker busy seconds) is deliberately excluded: it is the one
// nondeterministic corner of the stack and lives in SchedulerStats only.
//
// Concurrency model (the OrderedJournalWriter pattern applied to traces):
//   - TraceTrack is single-owner: exactly one worker appends to a track, with
//     no locks on the hot path.  A bounded ring keeps a runaway session from
//     growing without bound (overflow evicts the oldest event and counts it).
//   - Trace assembles finished tracks in canonical order *after* the parallel
//     section — the campaign driver builds one track per session slot and
//     adopts them in session order once the pool joins, exactly like the
//     measurement-table slots and the ordered journal drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace mlaas {

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kSpan,     ///< Chrome "X" complete event: [ts, ts + dur).
    kInstant,  ///< Chrome "i" instant event at ts.
  };

  Phase phase = Phase::kSpan;
  const char* category = "";  ///< Static string: "service", "retry", "breaker", ...
  std::string name;
  double ts = 0.0;   ///< Simulated seconds.
  double dur = 0.0;  ///< Simulated seconds; 0 for instants.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Single-owner bounded event buffer.  Appends are lock-free because only
/// the owning worker ever touches the track until it is adopted by a Trace.
class TraceTrack {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceTrack(std::string name, std::size_t capacity = kDefaultCapacity);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  void span(const char* category, std::string name, double ts, double dur,
            std::vector<std::pair<std::string, std::string>> args = {});
  void instant(const char* category, std::string name, double ts,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Surviving events in record order (oldest first).
  std::size_t size() const { return events_.size(); }
  /// Events evicted by ring overflow; nonzero means the trace is partial.
  std::size_t dropped() const { return dropped_; }

  /// Visit surviving events oldest-first.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      visit(events_[(head_ + i) % events_.size()]);
    }
  }

 private:
  void push(TraceEvent event);

  std::string name_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  ///< Oldest surviving event once the ring wraps.
  std::size_t dropped_ = 0;
};

/// An ordered collection of tracks plus the exporters.  Not thread-safe:
/// either use it single-threaded (the serving router) or build standalone
/// TraceTracks in parallel and adopt() them in canonical order afterwards
/// (the campaign driver).
class Trace {
 public:
  explicit Trace(std::size_t track_capacity = TraceTrack::kDefaultCapacity);

  /// Create-or-get a track; creation order is the canonical export order.
  TraceTrack& track(const std::string& name);
  /// Move a finished standalone track in at the end of the canonical order.
  void adopt(TraceTrack track);

  std::size_t track_count() const { return tracks_.size(); }
  std::size_t event_count() const;
  std::size_t span_count() const;
  std::size_t instant_count() const;
  std::size_t dropped() const;

  /// Counters over the whole trace (tracks/spans/instants/dropped plus
  /// per-category event counts) in canonical first-seen order.
  MetricsRegistry metrics() const;

  /// Payload of the "# trace" report trailer: metrics().encode().
  std::string summary() const;

  /// Chrome trace_event JSON ("JSON Object Format"): one thread_name
  /// metadata record per track, then every event with pid 0 and tid = track
  /// index.  Timestamps are simulated microseconds with fixed formatting,
  /// so the bytes are deterministic whenever the simulated run is.
  void write_chrome_json(std::ostream& out) const;

  /// write_chrome_json to a file, with the stream checked after flush so a
  /// full disk or unwritable path fails loudly instead of truncating.
  void save_json(const std::string& path) const;

 private:
  std::size_t track_capacity_;
  std::deque<TraceTrack> tracks_;  ///< deque: stable addresses for wiring.
  std::map<std::string, std::size_t> index_;
};

}  // namespace mlaas
