// Checked sidecar-file writing, shared by every report/table/trace writer.
//
// ofstream happily swallows write errors: on a full disk or an unwritable
// path the stream just sets failbit and the program exits 0 with a
// truncated report.  Every sidecar writer in this repo opens through
// open_sidecar and finishes through finish_sidecar so both failure modes
// (cannot open, write failed) surface as std::runtime_error with the path.
#pragma once

#include <fstream>
#include <string>

namespace mlaas {

/// Open `path` for writing; throws std::runtime_error("<what>: cannot
/// write <path>") when the stream cannot be opened.
std::ofstream open_sidecar(const std::string& path, const char* what);

/// Flush and verify the stream: throws std::runtime_error naming `path`
/// when any write failed (full disk, I/O error, unwritable device).
void finish_sidecar(std::ofstream& out, const std::string& path, const char* what);

}  // namespace mlaas
