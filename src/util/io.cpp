#include "util/io.h"

#include <stdexcept>

namespace mlaas {

std::ofstream open_sidecar(const std::string& path, const char* what) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error(std::string(what) + ": cannot write " + path);
  }
  return out;
}

void finish_sidecar(std::ofstream& out, const std::string& path, const char* what) {
  out.flush();
  if (out.fail()) {
    throw std::runtime_error(std::string(what) + ": write failed (disk full or "
                             "unwritable): " + path);
  }
}

}  // namespace mlaas
