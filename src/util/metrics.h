// A typed metrics registry with stable registration order, plus the
// visit_fields-based helpers that let every stats struct in the stack
// (ServiceStats, TenantServingStats, PlatformCampaignStats, SchedulerStats)
// share one merge/registration implementation instead of hand-rolled
// field-by-field copies that drift whenever a counter is added.
//
// A stats struct opts in by defining a static visitor over its scalar
// fields:
//
//   template <typename Self, typename Visitor>
//   static void visit_fields(Self& self, Visitor&& visit) {
//     visit("requests", self.requests);
//     visit("uploads", self.uploads);
//     ...
//   }
//
// The Self template parameter makes the same visitor work for const and
// non-const instances, so merge_stats (mutating) and register_stats
// (read-only) both run off the single field list.
#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace mlaas {

/// Ordered registry of named counters and gauges.  Entries keep their
/// first-registration order, so encoding the registry is deterministic as
/// long as registration order is — which every caller in this repo
/// guarantees by registering in canonical (roster / field-declaration)
/// order.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge };

  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;
  };

  /// Register-or-lookup; counters start at zero.
  double& counter(const std::string& name) { return slot(name, Kind::kCounter); }
  double& gauge(const std::string& name) { return slot(name, Kind::kGauge); }

  void add(const std::string& name, double delta) { counter(name) += delta; }
  void set(const std::string& name, double value) { gauge(name) = value; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Value of a registered metric; throws std::out_of_range when absent.
  double value(const std::string& name) const;
  bool contains(const std::string& name) const { return index_.count(name) > 0; }

  /// Fold another registry in: counters add, gauges take the other side's
  /// value.  Entries unknown to this registry are appended in the other
  /// registry's order, so merging preserves determinism.
  void merge(const MetricsRegistry& other);

  /// "name=value;name=value" in registration order.  Integral values print
  /// without a decimal point so encoded counters look like the hand-written
  /// TSV trailers they replace.
  std::string encode() const;

  /// One JSON object, registration order preserved.
  void write_json(std::ostream& out) const;

 private:
  double& slot(const std::string& name, Kind kind);

  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;
};

/// Format one metric value the way encode() does: integral values as
/// integers, everything else with enough digits to round-trip.
std::string format_metric_value(double value);

/// Field-wise add of `from` into `into` via the struct's visit_fields.
/// Values are accumulated through double, which is exact for the counter
/// magnitudes this repo produces (below 2^53).
template <typename Stats>
void merge_stats(Stats& into, const Stats& from) {
  std::vector<double> values;
  Stats::visit_fields(from, [&values](const char*, const auto& field) {
    values.push_back(static_cast<double>(field));
  });
  std::size_t i = 0;
  Stats::visit_fields(into, [&values, &i](const char*, auto& field) {
    using Field = std::decay_t<decltype(field)>;
    field = static_cast<Field>(static_cast<double>(field) + values[i++]);
  });
}

/// Register every visit_fields scalar as `prefix + name`, adding into any
/// counter already present (so repeated registration aggregates).
template <typename Stats>
void register_stats(MetricsRegistry& registry, const std::string& prefix,
                    const Stats& stats) {
  Stats::visit_fields(stats, [&registry, &prefix](const char* name, const auto& field) {
    registry.counter(prefix + name) += static_cast<double>(field);
  });
}

}  // namespace mlaas
