#include "util/trace.h"

#include <utility>

#include "util/io.h"

namespace mlaas {
namespace {

/// Minimal JSON string escape: quotes, backslashes and control characters.
/// Everything this repo puts into a trace is ASCII.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_args(std::ostream& out, const TraceEvent& event) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < event.args.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(event.args[i].first) << "\":\""
        << json_escape(event.args[i].second) << "\"";
  }
  out << "}";
}

}  // namespace

TraceTrack::TraceTrack(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {}

void TraceTrack::push(TraceEvent event) {
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
    return;
  }
  // Ring overflow: evict the oldest event.  head_ is both the slot to
  // overwrite and, afterwards, the index of the new oldest survivor.
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceTrack::span(const char* category, std::string name, double ts, double dur,
                      std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kSpan;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.dur = dur;
  event.args = std::move(args);
  push(std::move(event));
}

void TraceTrack::instant(const char* category, std::string name, double ts,
                         std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.category = category;
  event.name = std::move(name);
  event.ts = ts;
  event.args = std::move(args);
  push(std::move(event));
}

Trace::Trace(std::size_t track_capacity) : track_capacity_(track_capacity) {}

TraceTrack& Trace::track(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return tracks_[it->second];
  index_.emplace(name, tracks_.size());
  tracks_.emplace_back(name, track_capacity_);
  return tracks_.back();
}

void Trace::adopt(TraceTrack track) {
  index_.emplace(track.name(), tracks_.size());
  tracks_.push_back(std::move(track));
}

std::size_t Trace::event_count() const {
  std::size_t n = 0;
  for (const TraceTrack& t : tracks_) n += t.size();
  return n;
}

std::size_t Trace::span_count() const {
  std::size_t n = 0;
  for (const TraceTrack& t : tracks_) {
    t.for_each([&n](const TraceEvent& e) {
      if (e.phase == TraceEvent::Phase::kSpan) ++n;
    });
  }
  return n;
}

std::size_t Trace::instant_count() const {
  std::size_t n = 0;
  for (const TraceTrack& t : tracks_) {
    t.for_each([&n](const TraceEvent& e) {
      if (e.phase == TraceEvent::Phase::kInstant) ++n;
    });
  }
  return n;
}

std::size_t Trace::dropped() const {
  std::size_t n = 0;
  for (const TraceTrack& t : tracks_) n += t.dropped();
  return n;
}

MetricsRegistry Trace::metrics() const {
  MetricsRegistry registry;
  registry.counter("tracks") = static_cast<double>(track_count());
  registry.counter("spans") = static_cast<double>(span_count());
  registry.counter("instants") = static_cast<double>(instant_count());
  registry.counter("dropped") = static_cast<double>(dropped());
  // Per-category counts in canonical order: track order, then record order.
  for (const TraceTrack& t : tracks_) {
    t.for_each([&registry](const TraceEvent& e) {
      registry.counter(std::string("cat:") + e.category) += 1.0;
    });
  }
  return registry;
}

std::string Trace::summary() const { return metrics().encode(); }

void Trace::write_chrome_json(std::ostream& out) const {
  out.precision(17);
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(tracks_[tid].name()) << "\"}}";
  }
  for (std::size_t tid = 0; tid < tracks_.size(); ++tid) {
    tracks_[tid].for_each([&out, &first, tid](const TraceEvent& e) {
      if (!first) out << ",\n";
      first = false;
      // Simulated seconds → Chrome microseconds, default float format at
      // precision 17: lossless round-trip and byte-stable across runs.
      if (e.phase == TraceEvent::Phase::kSpan) {
        out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"cat\":\""
            << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
            << "\",\"ts\":" << e.ts * 1e6 << ",\"dur\":" << e.dur * 1e6 << ",";
      } else {
        out << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tid << ",\"s\":\"t\",\"cat\":\""
            << json_escape(e.category) << "\",\"name\":\"" << json_escape(e.name)
            << "\",\"ts\":" << e.ts * 1e6 << ",";
      }
      write_args(out, e);
      out << "}";
    });
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Trace::save_json(const std::string& path) const {
  std::ofstream out = open_sidecar(path, "Trace");
  write_chrome_json(out);
  finish_sidecar(out, path, "Trace");
}

}  // namespace mlaas
