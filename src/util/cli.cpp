#include "util/cli.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mlaas {

CliFlags::CliFlags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + std::string(arg));
    }
    arg.remove_prefix(2);
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[std::string(arg)] = argv[++i];
    } else {
      flags_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> CliFlags::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliFlags::get_or(const std::string& name, const std::string& def) const {
  return get(name).value_or(def);
}

long long CliFlags::int_or(const std::string& name, long long def) const {
  auto v = get(name);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" + *v + "'");
  }
}

double CliFlags::double_or(const std::string& name, double def) const {
  auto v = get(name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" + *v + "'");
  }
}

bool CliFlags::bool_or(const std::string& name, bool def) const {
  auto v = get(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

BenchOptions parse_bench_options(int argc, const char* const* argv) {
  CliFlags flags(argc, argv);
  BenchOptions opt;
  if (const char* env = std::getenv("MLAAS_SEED")) opt.seed = std::strtoull(env, nullptr, 10);
  if (const char* env = std::getenv("MLAAS_SCALE")) opt.scale = std::strtod(env, nullptr);
  if (const char* env = std::getenv("MLAAS_FAULT_RATE")) {
    opt.fault_rate = std::strtod(env, nullptr);
  }
  opt.seed = static_cast<std::uint64_t>(flags.int_or("seed", static_cast<long long>(opt.seed)));
  opt.scale = flags.double_or("scale", opt.scale);
  opt.threads = static_cast<int>(flags.int_or("threads", 0));
  if (opt.threads < 0) {
    // Catch this at parse time: the old behavior cast -1 to size_t and asked
    // the thread pool for ~2^64 workers.
    throw std::invalid_argument("--threads must be >= 0 (0 = hardware concurrency), got " +
                                std::to_string(opt.threads));
  }
  opt.schedule = flags.get_or("schedule", opt.schedule);
  if (opt.schedule != "static" && opt.schedule != "dynamic") {
    throw std::invalid_argument("--schedule must be 'static' or 'dynamic', got '" +
                                opt.schedule + "'");
  }
  opt.quick = flags.bool_or("quick", false);
  // Validate the shared campaign knobs at parse time, like --threads above:
  // each of these used to flow unchecked into the service layer, where a
  // nonsense value (negative retry budget, fault rate above 1) produced a
  // silently degenerate campaign instead of a usage error.
  if (!(opt.scale > 0.0) || !std::isfinite(opt.scale)) {
    throw std::invalid_argument("--scale must be a finite value > 0");
  }
  opt.fault_rate = flags.double_or("fault-rate", opt.fault_rate);
  if (!(opt.fault_rate >= 0.0 && opt.fault_rate <= 1.0)) {
    throw std::invalid_argument("--fault-rate must be in [0, 1]");
  }
  opt.quota_profile = flags.get_or("quota-profile", opt.quota_profile);
  opt.retry_budget = static_cast<int>(flags.int_or("retry-budget", opt.retry_budget));
  if (opt.retry_budget < 1) {
    throw std::invalid_argument("--retry-budget must be >= 1, got " +
                                std::to_string(opt.retry_budget));
  }
  opt.chaos_profile = flags.get_or("chaos-profile", opt.chaos_profile);
  opt.breakers = flags.bool_or("breakers", opt.breakers);
  opt.breaker_threshold =
      static_cast<int>(flags.int_or("breaker-threshold", opt.breaker_threshold));
  if (opt.breaker_threshold < 1) {
    throw std::invalid_argument("--breaker-threshold must be >= 1, got " +
                                std::to_string(opt.breaker_threshold));
  }
  opt.breaker_cooldown = flags.double_or("breaker-cooldown", opt.breaker_cooldown);
  if (!(opt.breaker_cooldown >= 0.0) || !std::isfinite(opt.breaker_cooldown)) {
    throw std::invalid_argument("--breaker-cooldown must be a finite value >= 0");
  }
  opt.breaker_probes = static_cast<int>(flags.int_or("breaker-probes", opt.breaker_probes));
  if (opt.breaker_probes < 0) {
    throw std::invalid_argument("--breaker-probes must be >= 0, got " +
                                std::to_string(opt.breaker_probes));
  }
  opt.jitter = flags.bool_or("jitter", opt.jitter);
  opt.resume = flags.bool_or("resume", opt.resume);
  if (flags.bool_or("fresh", false)) opt.resume = false;
  return opt;
}

}  // namespace mlaas
