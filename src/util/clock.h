// Per-thread CPU clock for training-cost measurement.
//
// The §8 training-time dimension must not depend on how many pool workers
// share the machine: wall clocks inflate under oversubscription (a worker
// descheduled mid-train keeps "training" on a steady_clock).  Differences of
// thread_cpu_seconds() count only the CPU time the calling thread actually
// consumed, so measured training cost is the same at --threads 1 and
// --threads 16.
#pragma once

namespace mlaas {

/// CPU seconds consumed by the calling thread so far
/// (CLOCK_THREAD_CPUTIME_ID).  Falls back to a monotonic wall clock on
/// platforms without a per-thread CPU clock.  Only differences are
/// meaningful; the epoch is unspecified.
double thread_cpu_seconds();

}  // namespace mlaas
