#include "util/clock.h"

#if defined(_WIN32)
#include <chrono>
#else
#include <ctime>
#endif

namespace mlaas {

double thread_cpu_seconds() {
#if defined(_WIN32)
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#else
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
}

}  // namespace mlaas
