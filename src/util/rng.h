// Deterministic pseudo-random number generation.
//
// Everything stochastic in this codebase draws from mlaas::Rng, a
// xoshiro256** generator seeded via splitmix64.  Seeds for sub-components
// are derived with derive_seed(), so experiments are reproducible and
// independent of evaluation order or parallelism.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>
#include <vector>

namespace mlaas {

/// splitmix64 step; used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit hash of a string (FNV-1a finished with splitmix64).
std::uint64_t hash64(std::string_view s);

/// Combine a seed with extra entropy (order-sensitive, deterministic).
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt);
std::uint64_t derive_seed(std::uint64_t seed, std::string_view salt);

/// xoshiro256** — small, fast, high-quality PRNG.
/// Satisfies UniformRandomBitGenerator so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);
  /// Uniform integer in [lo, hi] inclusive.
  long long integer(long long lo, long long hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  /// Bernoulli draw.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Same draw sequence as sample_without_replacement, writing into a
  /// caller-owned buffer (resized to k) so hot loops avoid the per-call
  /// allocation.
  void sample_without_replacement_into(std::size_t n, std::size_t k,
                                       std::vector<std::size_t>& out);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mlaas
