#include "ml/tree/random_forest.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "ml/tree/decision_tree.h"
#include "ml/tree/trainer.h"
#include "util/rng.h"

namespace mlaas {

RandomForest::RandomForest(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void RandomForest::fit(const Matrix& x, const std::vector<int>& y) {
  trees_.clear();
  flat_.clear();
  if (check_single_class(y)) return;

  const auto n_estimators = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_estimators", 10), 1, 500));
  const bool bootstrap = params_.get_string("resampling", "bagging") != "replicate";

  // Forests default to sqrt feature sampling unless told otherwise.
  ParamMap tree_params = params_;
  if (!params_.contains("max_features")) tree_params.set("max_features", std::string("sqrt"));
  TreeOptions opt = tree_options_from_params(tree_params, x.cols(), seed_);
  opt.random_splits = static_cast<int>(
      std::clamp<long long>(params_.get_int("random_splits", 0), 0, 1024));

  const std::size_t n = x.rows();
  std::vector<double> targets(n);
  std::vector<double> boot_targets(n);
  std::vector<std::size_t> boot_rows(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = y[i] == 1 ? 1.0 : 0.0;

  trees_.resize(n_estimators);
  TreeWorkspace workspace;  // column cache + presorted orders shared by all trees
  for (std::size_t t = 0; t < n_estimators; ++t) {
    opt.seed = derive_seed(seed_, "rf-" + std::to_string(t));
    if (bootstrap) {
      Rng rng(derive_seed(opt.seed, "bootstrap"));
      for (std::size_t i = 0; i < n; ++i) {
        boot_rows[i] = rng.index(n);
        boot_targets[i] = targets[boot_rows[i]];
      }
      train_tree(trees_[t], workspace, x, boot_targets, {}, opt, boot_rows);
    } else {
      train_tree(trees_[t], workspace, x, targets, {}, opt);
    }
  }
  rebuild_flat();
}

void RandomForest::rebuild_flat() {
  flat_.clear();
  for (const auto& tree : trees_) flat_.add_tree(tree);
}

std::vector<double> RandomForest::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void RandomForest::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    reference_predict_score_into(x, out);
    return;
  }
  out.assign(x.rows(), 0.0);
  flat_.predict_accumulate(x, 1.0, out);
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, trees_.size()));
  for (double& v : out) v *= inv;
}

void RandomForest::reference_predict_score_into(const Matrix& x,
                                                std::vector<double>& out) const {
  out.assign(x.rows(), 0.0);
  for (const auto& tree : trees_) tree.predict_accumulate(x, 1.0, out);
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, trees_.size()));
  for (double& v : out) v *= inv;
}


void RandomForest::save(std::ostream& out) const {
  save_base(out);
  model_io::write_int(out, static_cast<long long>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

void RandomForest::load(std::istream& in) {
  load_base(in);
  trees_.assign(static_cast<std::size_t>(model_io::read_int(in)), TreeModel{});
  for (auto& tree : trees_) tree.load(in);
  rebuild_flat();
}

}  // namespace mlaas
