// Flattened struct-of-arrays inference layout for tree ensembles.
//
// TreeModel stores nodes as an array-of-structs (40 bytes per node, of
// which a traversal touches at most 20); every ensemble classifier walks
// its trees one after another over the full query matrix, so each tree's
// nodes are re-fetched cold for every predict call and each query row is
// re-streamed once per tree.  FlatForest flattens every fitted tree of an
// ensemble into four parallel arrays (feature / threshold / left / right,
// build order preserved, leaf prediction stored in the threshold slot) with
// absolute child indices, and traverses ROW BLOCKS against ALL trees: a
// 64-row block of the query matrix stays in cache while every tree scores
// it, and four rows walk each tree concurrently so the dependent node loads
// of one walk overlap the other three.  Leaves are self-loops (both
// children point at the leaf), which makes every traversal step the same
// branch-free compare-select whether a lane is still descending or already
// parked — tree walks are dominated by data-dependent branch mispredicts,
// and this removes all of them except the shared loop exit.
//
// Exact equivalence: node visits compare the same doubles in the same
// direction (value <= threshold) and out[r] accumulates scale * leaf in
// tree order per row, exactly like TreeModel::predict_accumulate — row
// interleaving and block order never reorder any per-element arithmetic,
// so scores are bit-identical to the reference path.  Bagged column
// subsets are baked into the node feature indices at build time, replacing
// the per-node feature_map indirection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class FlatForest {
 public:
  void clear();
  bool empty() const { return roots_.empty(); }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }

  /// Append one fitted tree.  When `feature_map` is non-empty, node feature
  /// f is rewritten to feature_map[f] (bagged members trained on a column
  /// subset score the full matrix directly).  An empty tree flattens to a
  /// single 0-valued leaf, preserving predict_accumulate's "+= scale * 0.0"
  /// arithmetic.
  void add_tree(const TreeModel& tree, std::span<const std::size_t> feature_map = {});

  /// out[r] += scale * tree_t(row r), summed over trees in insertion order —
  /// bit-identical to calling predict_accumulate(x, scale, out) on each
  /// TreeModel in the same order.
  void predict_accumulate(const Matrix& x, double scale, std::span<double> out) const;

  /// out[r] = tree_0(row r); requires exactly one tree.  The single-tree
  /// (DecisionTree / RegressionTree) path, bit-identical to
  /// TreeModel::predict.
  void predict_into(const Matrix& x, std::span<double> out) const;

 private:
  // Node SoA, all trees contiguous; left_/right_ are absolute indices into
  // these arrays.  A leaf n has left_[n] == right_[n] == n (self-loop),
  // feature_[n] == 0 and its prediction in threshold_[n]; the walk parks on
  // it without a guard branch, and its comparisons are inconsequential.
  std::vector<std::int32_t> feature_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> roots_;  // root node index per tree
};

}  // namespace mlaas
