// Shared CART tree core.
//
// One builder backs every tree-based classifier in the library:
//   - DecisionTree / RandomForest / Bagging use Gini or entropy impurity on
//     binary labels (leaf value = positive fraction);
//   - BoostedDecisionTree fits MSE trees to gradients with optional Newton
//     leaf values (sum grad / (sum hess + lambda));
//   - DecisionJungle uses the level-width budget (max_width) to approximate
//     width-limited decision DAGs.
//
// Trees are built breadth-first so node budgets (max_nodes, BigML's
// "node threshold") and level-width budgets are enforced fairly.  The
// actual training kernels live in ml/tree/trainer.{h,cpp}: fit() routes
// through the presort workspace kernel (or the reference builder, when
// selected for tests/benchmarks).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace mlaas {

enum class SplitCriterion { kGini, kEntropy, kMse };

struct TreeOptions {
  SplitCriterion criterion = SplitCriterion::kGini;
  std::size_t max_depth = 0;        // 0 = unlimited (hard cap 64)
  std::size_t min_samples_leaf = 1;
  std::size_t min_samples_split = 2;
  std::size_t max_features = 0;     // per-split feature sample; 0 = all
  std::size_t max_nodes = 0;        // total node budget; 0 = unlimited
  std::size_t max_width = 0;        // per-level split budget (jungle); 0 = off
  int random_splits = 0;            // >0: evaluate this many random thresholds
                                    // per feature instead of the full scan
  std::uint64_t seed = 0;
};

struct TreeNode {
  int feature = -1;                 // -1 = leaf
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;               // leaf prediction
  std::uint32_t n_samples = 0;
};

class TreeModel {
 public:
  /// Fit a regression/classification tree on targets (binary labels as
  /// 0/1 doubles for classification).  `hessians`, when non-empty, switches
  /// leaves to Newton values sum(target)/(sum(hessian)+1e-6) — used by
  /// gradient boosting (targets are then gradients).
  void fit(const Matrix& x, std::span<const double> targets,
           std::span<const double> hessians, const TreeOptions& options);

  double predict_one(std::span<const double> row) const;
  std::vector<double> predict(const Matrix& x) const;

  /// out[r] += scale * prediction(row r), traversed in row blocks with no
  /// per-tree temporary vector — the ensemble accumulation hot path.  When
  /// `feature_map` is non-empty, node feature f reads x(r, feature_map[f])
  /// (bagged members trained on a column subset predict without
  /// materializing the subset matrix).
  void predict_accumulate(const Matrix& x, double scale, std::span<double> out,
                          std::span<const std::size_t> feature_map = {}) const;

  /// Serialize/restore the node array (see ml/serialize.h framing).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;
  std::size_t depth() const;
  bool empty() const { return nodes_.empty(); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Install a trained node array; called by the training kernels in
  /// ml/tree/trainer.cpp.
  void set_nodes(std::vector<TreeNode> nodes) { nodes_ = std::move(nodes); }

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace mlaas
