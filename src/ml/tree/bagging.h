// Bagged decision trees (Breiman 1996) — BigML's "Bagging" and the local
// library's BaggingClassifier.
//
// Unlike RandomForest, each member tree sees ALL features at every split but
// may be restricted to a random feature SUBSET for the whole tree
// (max_features as a fraction), the sklearn Bagging semantics.
//
// Parameters:
//   n_estimators    (default 10)
//   max_features    fraction of features per member in (0,1]; default 1.0
//   node_threshold  per-tree node budget (BigML)
//   ordering        "standard" | "random" (BigML)
#pragma once

#include "ml/classifier.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class BaggedTrees final : public Classifier {
 public:
  explicit BaggedTrees(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "bagging"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  std::size_t tree_count() const { return members_.size(); }

 private:
  struct Member {
    TreeModel tree;
    std::vector<std::size_t> features;  // column subset the tree was fit on
  };

  void rebuild_flat();
  void reference_predict_score_into(const Matrix& x, std::vector<double>& out) const;

  ParamMap params_;
  std::uint64_t seed_;
  std::vector<Member> members_;
  FlatForest flat_;  // inference layout (feature subsets baked in), rebuilt by fit()/load()
};

}  // namespace mlaas
