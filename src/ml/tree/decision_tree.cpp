#include "ml/tree/decision_tree.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace mlaas {

TreeOptions tree_options_from_params(const ParamMap& params, std::size_t n_features,
                                     std::uint64_t seed) {
  TreeOptions opt;
  opt.criterion = params.get_string("criterion", "gini") == "entropy"
                      ? SplitCriterion::kEntropy
                      : SplitCriterion::kGini;
  opt.max_depth = static_cast<std::size_t>(std::max<long long>(0, params.get_int("max_depth", 0)));
  opt.min_samples_leaf = static_cast<std::size_t>(
      std::max<long long>(1, params.get_int("min_samples_leaf", 1)));
  opt.min_samples_split = static_cast<std::size_t>(
      std::max<long long>(2, params.get_int("min_samples_split", 2)));
  opt.max_nodes = static_cast<std::size_t>(
      std::max<long long>(0, params.get_int("node_threshold", 0)));
  if (params.get_bool("random_candidates", false)) opt.random_splits = 16;
  opt.seed = params.get_string("ordering", "standard") == "random"
                 ? derive_seed(seed, "random-ordering")
                 : seed;

  const std::string mf = params.get_string("max_features", "all");
  if (mf == "sqrt") {
    opt.max_features = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(n_features)))));
  } else if (mf == "log2") {
    opt.max_features = static_cast<std::size_t>(
        std::max(1.0, std::round(std::log2(std::max<double>(2.0, static_cast<double>(n_features))))));
  } else if (mf == "all" || mf.empty()) {
    opt.max_features = 0;
  } else {
    // Integer feature count.  Unrecognized strings ("auto", garbage) fall
    // back to 0 (all features) instead of throwing out of fit().
    try {
      std::size_t parsed = 0;
      const long long v = std::stoll(mf, &parsed);
      opt.max_features =
          parsed == mf.size() ? static_cast<std::size_t>(std::max(1LL, v)) : 0;
    } catch (const std::exception&) {
      opt.max_features = 0;
    }
  }
  return opt;
}

DecisionTree::DecisionTree(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void DecisionTree::fit(const Matrix& x, const std::vector<int>& y) {
  tree_ = TreeModel();
  flat_.clear();
  if (check_single_class(y)) return;
  std::vector<double> targets(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) targets[i] = y[i] == 1 ? 1.0 : 0.0;
  tree_.fit(x, targets, {}, tree_options_from_params(params_, x.cols(), seed_));
  rebuild_flat();
}

void DecisionTree::rebuild_flat() {
  flat_.clear();
  flat_.add_tree(tree_);
}

std::vector<double> DecisionTree::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void DecisionTree::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    out = tree_.predict(x);
    return;
  }
  out.resize(x.rows());
  flat_.predict_into(x, out);
}


void DecisionTree::save(std::ostream& out) const {
  save_base(out);
  tree_.save(out);
}

void DecisionTree::load(std::istream& in) {
  load_base(in);
  tree_.load(in);
  rebuild_flat();
}

}  // namespace mlaas
