// Random forest (Breiman 2001).
//
// Parameters (union of BigML / Microsoft / local offerings, Table 1):
//   n_estimators        number of trees            (default 10)
//   max_depth           per-tree depth cap         (default 0 = unlimited)
//   max_features        "sqrt" (default) | "log2" | "all" | integer
//   resampling          "bagging" (bootstrap, default) | "replicate" (none)
//   random_splits       Microsoft's "# of random splits per node": when > 0
//                       each feature is evaluated at this many random
//                       thresholds (extra-trees style)
//   min_samples_leaf                               (default 1)
//   node_threshold      per-tree node budget       (default 0)
#pragma once

#include "ml/classifier.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "random_forest"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  void rebuild_flat();
  void reference_predict_score_into(const Matrix& x, std::vector<double>& out) const;

  ParamMap params_;
  std::uint64_t seed_;
  std::vector<TreeModel> trees_;
  FlatForest flat_;  // inference layout, rebuilt by fit()/load()
};

}  // namespace mlaas
