// Fast exact-equivalence training kernels for the CART tree family.
//
// The original TreeModel builder re-sorted every sampled feature at every
// node: O(nodes x features x n log n) with a fresh (value, index) pair
// vector per feature per node.  TreeWorkspace replaces the per-node sort
// with the classic CART presort scheme:
//
//   (a) a feature-major column cache of the training matrix,
//   (b) per-feature sample orders presorted once per tree and maintained
//       across node splits by a stable tandem partition over a left/right
//       flag buffer,
//   (c) gathered value/target/hessian scratch buffers so split scans are
//       branch-light linear passes.
//
// The workspace is allocated once and reused across all trees of an
// ensemble.  For ensembles that train every tree on the same matrix
// (boosting), the base matrix is transposed and presorted once and each
// tree restores the pristine orders with a copy; bootstrap resamples
// derive their presorted orders from the base orders by a counting pass,
// with no per-tree sort at all.
//
// Exact equivalence: train_tree() visits the same candidate thresholds in
// the same order as ReferenceTreeBuilder (the original builder, kept below
// for tests and benchmarks), draws from the RNG at the same points, and
// computes node statistics over the same index-buffer folds, so chosen
// splits, tie-breaks and serialized nodes are bit-identical.  See
// DESIGN.md "Training kernels" for the full argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

/// Which builder train_tree() (and therefore TreeModel::fit and every
/// tree-family classifier) dispatches to.  kReference runs the original
/// per-node re-sorting builder; it exists so tests and benchmarks can
/// assert byte-identity and measure the speedup.  Not meant to be flipped
/// while fits are in flight.
enum class TreeBuilder { kFast, kReference };

TreeBuilder active_tree_builder();
void set_active_tree_builder(TreeBuilder builder);

/// Per-ensemble training workspace: column cache, presorted per-feature
/// orders and scratch buffers.  bind() is called by train_tree(); the
/// bound matrix must stay alive and unchanged while the workspace uses it.
class TreeWorkspace {
 public:
  /// Bind a training view of `x`: the full matrix (rows/features empty), a
  /// bootstrap row multiset, and/or a feature subset.  The base column
  /// cache and presorted base orders are computed once per matrix and
  /// reused for every subsequent view of the same matrix.
  void bind(const Matrix& x, std::span<const std::size_t> rows = {},
            std::span<const std::size_t> features = {});

  std::size_t view_rows() const { return view_rows_; }
  std::size_t view_cols() const { return view_cols_; }

  /// Contiguous column of the bound view.
  const double* column(std::size_t f) const {
    return (view_is_base_ ? base_columns_.data() : view_columns_.data()) +
           f * view_rows_;
  }
  /// Working sample order of feature f (positions into the view).
  std::uint32_t* order(std::size_t f) { return order_.data() + f * view_rows_; }

  /// Stable tandem partition of every feature order over [start, end):
  /// samples flagged left (goes_left()[pos] != 0) keep their relative
  /// order in [start, mid), the rest in [mid, end).
  void tandem_partition(std::size_t start, std::size_t mid, std::size_t end);

  std::vector<std::uint8_t>& goes_left() { return goes_left_; }
  double* value_scratch() { return value_scratch_.data(); }
  double* target_scratch() { return target_scratch_.data(); }
  double* hessian_scratch() { return hessian_scratch_.data(); }

 private:
  void bind_base(const Matrix& x);

  const Matrix* base_ = nullptr;
  std::size_t base_rows_ = 0;
  std::size_t base_cols_ = 0;
  std::vector<double> base_columns_;      // feature-major base matrix
  std::vector<std::uint32_t> pristine_;   // per-feature presorted base orders

  std::size_t view_rows_ = 0;
  std::size_t view_cols_ = 0;
  bool view_is_base_ = false;
  std::vector<double> view_columns_;      // gathered bootstrap/subset columns
  std::vector<std::uint32_t> order_;      // per-feature working orders

  std::vector<std::uint8_t> goes_left_;   // per-position split side flags
  std::vector<std::uint32_t> part_right_;  // tandem right spill buffer
  std::vector<double> value_scratch_, target_scratch_, hessian_scratch_;
  // Bootstrap order derivation scratch (counting pass).
  std::vector<std::uint32_t> row_count_, row_offset_, row_positions_;
};

/// Train `tree` on a view of `x` (optionally a bootstrap row multiset
/// and/or feature subset) through `workspace`.  Targets/hessians are
/// indexed by view row.  Honors active_tree_builder(): the reference
/// builder materializes the view like the pre-workspace ensembles did.
void train_tree(TreeModel& tree, TreeWorkspace& workspace, const Matrix& x,
                std::span<const double> targets, std::span<const double> hessians,
                const TreeOptions& options, std::span<const std::size_t> rows = {},
                std::span<const std::size_t> features = {});

/// The original per-node re-sorting builder, preserved verbatim so tests
/// can assert node-for-node equality and benchmarks can measure speedup.
class ReferenceTreeBuilder {
 public:
  static void fit(TreeModel& tree, const Matrix& x, std::span<const double> targets,
                  std::span<const double> hessians, const TreeOptions& options);
};

}  // namespace mlaas
