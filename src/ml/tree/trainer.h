// Fast exact-equivalence training kernels for the CART tree family.
//
// The original TreeModel builder re-sorted every sampled feature at every
// node: O(nodes x features x n log n) with a fresh (value, index) pair
// vector per feature per node.  TreeWorkspace replaces the per-node sort
// with the classic CART presort scheme:
//
//   (a) a feature-major column cache of the training matrix,
//   (b) per-feature sample orders presorted once per tree and maintained
//       across node splits by a stable tandem partition over a left/right
//       flag buffer,
//   (c) gathered value/target/hessian scratch buffers so split scans are
//       branch-light linear passes.
//
// The workspace is allocated once and reused across all trees of an
// ensemble.  For ensembles that train every tree on the same matrix
// (boosting), the base matrix is transposed and presorted once and each
// tree restores the pristine orders with a copy; bootstrap resamples
// derive their presorted orders from the base orders by a counting pass,
// with no per-tree sort at all.
//
// Exact equivalence: train_tree() visits the same candidate thresholds in
// the same order as ReferenceTreeBuilder (the original builder, kept below
// for tests and benchmarks), draws from the RNG at the same points, and
// computes node statistics over the same index-buffer folds, so chosen
// splits, tie-breaks and serialized nodes are bit-identical.  See
// DESIGN.md "Training kernels" for the full argument.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

/// Which builder train_tree() (and therefore TreeModel::fit and every
/// tree-family classifier) dispatches to.  kReference runs the original
/// per-node re-sorting builder; it exists so tests and benchmarks can
/// assert byte-identity and measure the speedup.  Not meant to be flipped
/// while fits are in flight.
enum class TreeBuilder { kFast, kReference };

TreeBuilder active_tree_builder();
void set_active_tree_builder(TreeBuilder builder);

/// The immutable, matrix-only half of the presort scheme: the feature-major
/// column cache and the per-feature presorted base orders.  Depends only on
/// the training matrix's contents, so one build can be shared (shared_ptr)
/// by every workspace — and every classifier fit — training on that matrix.
struct TreeTrainBase {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> columns;          // feature-major base matrix
  std::vector<std::uint32_t> pristine;  // per-feature presorted base orders

  /// Transpose + presort `x`.  Deterministic: ascending value with row index
  /// as tie-break, so two builds of equal matrices are byte-identical.
  static std::shared_ptr<const TreeTrainBase> build(const Matrix& x);
};

/// Cross-fit cache of data-only training state, shared between every config
/// a tuner or campaign session fits on the same training matrix: the tree
/// family's TreeTrainBase and kNN's cached squared row norms.
///
/// Entries are keyed on matrix identity (data pointer, rows, cols) and
/// guarded by a full content hash verified on every lookup — a freed matrix
/// whose address is reused by different data (e.g. per-config feature-step
/// temporaries) hashes differently and rebuilds instead of silently serving
/// a stale presort.  The hash pass is O(n·d); the presort it saves is
/// O(d · n log n), and a wrong hit would corrupt results, so the guard is
/// cheap insurance.  A small LRU cap bounds memory.
///
/// Thread-safe: grid_search workers on different folds share one context.
/// Cached artifacts are immutable and returned by shared_ptr, so they stay
/// valid even after eviction.  Using a context never changes results: the
/// cached state is bit-identical to what each fit would rebuild.
class TrainContext {
 public:
  std::shared_ptr<const TreeTrainBase> tree_base(const Matrix& x);
  std::shared_ptr<const std::vector<double>> row_squared_norms(const Matrix& x);

  struct Stats {
    std::size_t tree_base_hits = 0;
    std::size_t tree_base_misses = 0;
    std::size_t norms_hits = 0;
    std::size_t norms_misses = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    const void* data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::uint64_t content_hash = 0;
    std::uint64_t last_used = 0;
    std::shared_ptr<const TreeTrainBase> base;
    std::shared_ptr<const std::vector<double>> norms;
  };
  /// Find-or-create the entry for `x` (hash already computed); resets a
  /// stale entry whose address was reused by different contents.  mu_ held.
  Entry& touch(const Matrix& x, std::uint64_t hash);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

/// The calling thread's installed TrainContext (nullptr when none).
/// Consulted by TreeWorkspace::bind and KNearestNeighbors::fit.
TrainContext* active_train_context();

/// RAII installer for the thread-local active context.  Passing nullptr
/// masks any outer context for the scope; the previous value is restored on
/// destruction.  Install the same TrainContext on each worker thread to
/// share state across a parallel sweep.
class ScopedTrainContext {
 public:
  explicit ScopedTrainContext(TrainContext* context);
  ~ScopedTrainContext();
  ScopedTrainContext(const ScopedTrainContext&) = delete;
  ScopedTrainContext& operator=(const ScopedTrainContext&) = delete;

 private:
  TrainContext* prev_;
};

/// Per-ensemble training workspace: shared column cache + presorted orders
/// (TreeTrainBase) and per-tree working orders and scratch buffers.  bind()
/// is called by train_tree(); the bound matrix must stay alive and
/// unchanged while the workspace uses it.
class TreeWorkspace {
 public:
  /// Bind a training view of `x`: the full matrix (rows/features empty), a
  /// bootstrap row multiset, and/or a feature subset.  The base column
  /// cache and presorted base orders are computed once per matrix and
  /// reused for every subsequent view of the same matrix.
  void bind(const Matrix& x, std::span<const std::size_t> rows = {},
            std::span<const std::size_t> features = {});

  std::size_t view_rows() const { return view_rows_; }
  std::size_t view_cols() const { return view_cols_; }

  /// Contiguous column of the bound view.
  const double* column(std::size_t f) const {
    return (view_is_base_ ? base_->columns.data() : view_columns_.data()) +
           f * view_rows_;
  }
  /// Working sample order of feature f (positions into the view).
  std::uint32_t* order(std::size_t f) { return order_.data() + f * view_rows_; }

  /// Stable tandem partition of every feature order over [start, end):
  /// samples flagged left (goes_left()[pos] != 0) keep their relative
  /// order in [start, mid), the rest in [mid, end).
  void tandem_partition(std::size_t start, std::size_t mid, std::size_t end);

  std::vector<std::uint8_t>& goes_left() { return goes_left_; }
  double* value_scratch() { return value_scratch_.data(); }
  double* target_scratch() { return target_scratch_.data(); }
  double* hessian_scratch() { return hessian_scratch_.data(); }

 private:
  void bind_base(const Matrix& x);

  const Matrix* base_matrix_ = nullptr;             // identity of the bound base
  std::shared_ptr<const TreeTrainBase> base_;       // columns + pristine orders

  std::size_t view_rows_ = 0;
  std::size_t view_cols_ = 0;
  bool view_is_base_ = false;
  std::vector<double> view_columns_;      // gathered bootstrap/subset columns
  std::vector<std::uint32_t> order_;      // per-feature working orders

  std::vector<std::uint8_t> goes_left_;   // per-position split side flags
  std::vector<std::uint32_t> part_right_;  // tandem right spill buffer
  std::vector<double> value_scratch_, target_scratch_, hessian_scratch_;
  // Bootstrap order derivation scratch (counting pass).
  std::vector<std::uint32_t> row_count_, row_offset_, row_positions_;
};

/// Train `tree` on a view of `x` (optionally a bootstrap row multiset
/// and/or feature subset) through `workspace`.  Targets/hessians are
/// indexed by view row.  Honors active_tree_builder(): the reference
/// builder materializes the view like the pre-workspace ensembles did.
void train_tree(TreeModel& tree, TreeWorkspace& workspace, const Matrix& x,
                std::span<const double> targets, std::span<const double> hessians,
                const TreeOptions& options, std::span<const std::size_t> rows = {},
                std::span<const std::size_t> features = {});

/// The original per-node re-sorting builder, preserved verbatim so tests
/// can assert node-for-node equality and benchmarks can measure speedup.
class ReferenceTreeBuilder {
 public:
  static void fit(TreeModel& tree, const Matrix& x, std::span<const double> targets,
                  std::span<const double> hessians, const TreeOptions& options);
};

}  // namespace mlaas
