// CART decision-tree classifier.
//
// Parameters (union of Table 1's DT offerings):
//   criterion          "gini" | "entropy"        (default "gini")
//   max_depth          0 = unlimited             (default 0)
//   min_samples_leaf                              (default 1)
//   min_samples_split                             (default 2)
//   max_features       "all" | "sqrt" | "log2" or an integer (default "all")
//   node_threshold     total node budget, BigML's knob (default 0 = off)
//   ordering           "standard" | "random": random shuffles the feature
//                      evaluation order (BigML's tie-break knob)
//   random_candidates  true: evaluate 16 random thresholds per feature
//                      instead of the exhaustive scan (BigML)
#pragma once

#include "ml/classifier.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

/// Translate the shared tree parameters out of a ParamMap.
TreeOptions tree_options_from_params(const ParamMap& params, std::size_t n_features,
                                     std::uint64_t seed);

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "decision_tree"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  const TreeModel& tree() const { return tree_; }

 private:
  void rebuild_flat();

  ParamMap params_;
  std::uint64_t seed_;
  TreeModel tree_;
  FlatForest flat_;  // inference layout, rebuilt by fit()/load()
};

}  // namespace mlaas
