#include "ml/tree/decision_jungle.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "ml/tree/trainer.h"
#include "util/rng.h"

namespace mlaas {

DecisionJungle::DecisionJungle(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void DecisionJungle::fit(const Matrix& x, const std::vector<int>& y) {
  dags_.clear();
  flat_.clear();
  if (check_single_class(y)) return;

  const auto n_dags = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_dags", 8), 1, 256));
  const bool bootstrap = params_.get_string("resampling", "bagging") != "replicate";

  TreeOptions opt;
  opt.criterion = SplitCriterion::kEntropy;  // jungles train on information gain
  opt.max_depth = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("max_depth", 16), 1, 64));
  opt.max_width = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("max_width", 32), 1, 4096));
  opt.random_splits = static_cast<int>(
      std::clamp<long long>(params_.get_int("optimization_steps", 16), 1, 256));
  opt.max_features = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::max(1.0, std::sqrt(static_cast<double>(x.cols())))));

  const std::size_t n = x.rows();
  std::vector<double> targets(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = y[i] == 1 ? 1.0 : 0.0;

  dags_.resize(n_dags);
  std::vector<std::size_t> boot_rows(n);
  std::vector<double> boot_targets(n);
  TreeWorkspace workspace;  // column cache + presorted orders shared by all DAGs
  for (std::size_t t = 0; t < n_dags; ++t) {
    opt.seed = derive_seed(seed_, "jungle-" + std::to_string(t));
    if (bootstrap) {
      Rng rng(derive_seed(opt.seed, "bootstrap"));
      for (std::size_t i = 0; i < n; ++i) {
        boot_rows[i] = rng.index(n);
        boot_targets[i] = targets[boot_rows[i]];
      }
      train_tree(dags_[t], workspace, x, boot_targets, {}, opt, boot_rows);
    } else {
      train_tree(dags_[t], workspace, x, targets, {}, opt);
    }
  }
  rebuild_flat();
}

void DecisionJungle::rebuild_flat() {
  flat_.clear();
  for (const auto& dag : dags_) flat_.add_tree(dag);
}

std::vector<double> DecisionJungle::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void DecisionJungle::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    reference_predict_score_into(x, out);
    return;
  }
  out.assign(x.rows(), 0.0);
  flat_.predict_accumulate(x, 1.0, out);
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, dags_.size()));
  for (double& v : out) v *= inv;
}

void DecisionJungle::reference_predict_score_into(const Matrix& x,
                                                  std::vector<double>& out) const {
  out.assign(x.rows(), 0.0);
  for (const auto& dag : dags_) dag.predict_accumulate(x, 1.0, out);
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, dags_.size()));
  for (double& v : out) v *= inv;
}


void DecisionJungle::save(std::ostream& out) const {
  save_base(out);
  model_io::write_int(out, static_cast<long long>(dags_.size()));
  for (const auto& dag : dags_) dag.save(out);
}

void DecisionJungle::load(std::istream& in) {
  load_base(in);
  dags_.assign(static_cast<std::size_t>(model_io::read_int(in)), TreeModel{});
  for (auto& dag : dags_) dag.load(in);
  rebuild_flat();
}

}  // namespace mlaas
