#include "ml/tree/trainer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace mlaas {

namespace {

constexpr std::size_t kHardDepthCap = 64;

std::atomic<TreeBuilder> g_builder{TreeBuilder::kFast};

struct NodeStats {
  double n = 0.0;       // sample count
  double sum = 0.0;     // sum of targets
  double sumsq = 0.0;   // sum of squared targets
  double hess = 0.0;    // sum of hessians (0 if unused)
};

double impurity(const NodeStats& s, SplitCriterion criterion) {
  if (s.n <= 0) return 0.0;
  const double mean = s.sum / s.n;
  switch (criterion) {
    case SplitCriterion::kGini: {
      const double p = std::clamp(mean, 0.0, 1.0);
      return 2.0 * p * (1.0 - p);
    }
    case SplitCriterion::kEntropy: {
      const double p = std::clamp(mean, 0.0, 1.0);
      if (p <= 0.0 || p >= 1.0) return 0.0;
      return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
    }
    case SplitCriterion::kMse:
      return std::max(0.0, s.sumsq / s.n - mean * mean);
  }
  return 0.0;
}

struct PendingNode {
  int node_id;
  std::size_t start, end;  // range in the shared index buffer
  std::size_t depth;
  NodeStats stats;
};

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Shared gain evaluation: both builders must compare candidates with the
/// exact same arithmetic for split choices to be bit-identical.
inline void consider_threshold(double threshold, const NodeStats& left,
                               const PendingNode& p, double parent_imp,
                               SplitCriterion criterion, std::size_t min_samples_leaf,
                               std::size_t feature, BestSplit& best) {
  NodeStats right{p.stats.n - left.n, p.stats.sum - left.sum,
                  p.stats.sumsq - left.sumsq, p.stats.hess - left.hess};
  if (left.n < static_cast<double>(min_samples_leaf) ||
      right.n < static_cast<double>(min_samples_leaf)) {
    return;
  }
  const double gain = parent_imp - (left.n / p.stats.n) * impurity(left, criterion) -
                      (right.n / p.stats.n) * impurity(right, criterion);
  if (gain > best.gain + 1e-12) {
    best = {static_cast<int>(feature), threshold, gain};
  }
}

/// The split search + index partition strategy; the breadth-first build
/// loop is shared between the fast and reference builders.
class SplitEngine {
 public:
  SplitEngine(std::span<const double> targets, std::span<const double> hessians,
              const TreeOptions& opt)
      : targets_(targets), hessians_(hessians), use_hess_(!hessians.empty()), opt_(opt) {}
  virtual ~SplitEngine() = default;

  virtual std::size_t n_features() const = 0;
  /// Best split of node p; draws feature samples / random thresholds from rng.
  virtual BestSplit find_best_split(const PendingNode& p, Rng& rng) = 0;
  /// Partition indices[start, end) for an accepted split; returns mid.
  virtual std::size_t partition(std::size_t start, std::size_t end,
                                const BestSplit& split) = 0;

  std::vector<std::size_t> indices;

 protected:
  std::span<const double> targets_;
  std::span<const double> hessians_;
  bool use_hess_;
  const TreeOptions& opt_;
};

/// Breadth-first CART build over an abstract split engine.  Moved verbatim
/// from the original TreeModel::fit; node statistics fold over the shared
/// index buffer so both engines produce the same bytes.
void build_cart(std::vector<TreeNode>& nodes, SplitEngine& engine, std::size_t n,
                std::span<const double> targets, std::span<const double> hessians,
                const TreeOptions& opt) {
  nodes.clear();
  const bool use_hess = !hessians.empty();
  const std::size_t max_depth =
      opt.max_depth == 0 ? kHardDepthCap : std::min(opt.max_depth, kHardDepthCap);
  Rng rng(derive_seed(opt.seed, "tree"));

  auto& indices = engine.indices;
  indices.resize(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});

  auto stats_of = [&](std::size_t start, std::size_t end) {
    NodeStats s;
    for (std::size_t i = start; i < end; ++i) {
      const double t = targets[indices[i]];
      s.n += 1.0;
      s.sum += t;
      s.sumsq += t * t;
      if (use_hess) s.hess += hessians[indices[i]];
    }
    return s;
  };
  auto leaf_value = [&](const NodeStats& s) {
    if (use_hess) return s.sum / (s.hess + 1e-6);
    return s.n > 0 ? s.sum / s.n : 0.0;
  };

  auto make_node = [&](const NodeStats& s) {
    TreeNode node;
    node.value = leaf_value(s);
    node.n_samples = static_cast<std::uint32_t>(s.n);
    nodes.push_back(node);
    return static_cast<int>(nodes.size() - 1);
  };

  std::vector<PendingNode> frontier;
  {
    const NodeStats root_stats = stats_of(0, n);
    const int root = make_node(root_stats);
    frontier.push_back({root, 0, n, 0, root_stats});
  }

  while (!frontier.empty()) {
    // Level-width budget (decision jungle): only the widest-impact nodes of
    // each level may split; the rest stay leaves.
    if (opt.max_width > 0 && frontier.size() > opt.max_width) {
      std::stable_sort(frontier.begin(), frontier.end(),
                       [&](const PendingNode& a, const PendingNode& b) {
                         return a.stats.n * impurity(a.stats, opt.criterion) >
                                b.stats.n * impurity(b.stats, opt.criterion);
                       });
      frontier.resize(opt.max_width);
    }
    std::vector<PendingNode> next;
    for (const auto& p : frontier) {
      const std::size_t n_node = p.end - p.start;
      const bool budget_ok = opt.max_nodes == 0 || nodes.size() + 2 <= opt.max_nodes;
      if (p.depth >= max_depth || n_node < opt.min_samples_split || !budget_ok ||
          impurity(p.stats, opt.criterion) <= 1e-12) {
        continue;  // stays a leaf
      }
      const BestSplit split = engine.find_best_split(p, rng);
      if (split.feature < 0) continue;

      const std::size_t mid = engine.partition(p.start, p.end, split);
      if (mid == p.start || mid == p.end) continue;  // degenerate partition

      const NodeStats left_stats = stats_of(p.start, mid);
      const NodeStats right_stats = stats_of(mid, p.end);
      const int left = make_node(left_stats);
      const int right = make_node(right_stats);
      nodes[static_cast<std::size_t>(p.node_id)].feature = split.feature;
      nodes[static_cast<std::size_t>(p.node_id)].threshold = split.threshold;
      nodes[static_cast<std::size_t>(p.node_id)].left = left;
      nodes[static_cast<std::size_t>(p.node_id)].right = right;
      next.push_back({left, p.start, mid, p.depth + 1, left_stats});
      next.push_back({right, mid, p.end, p.depth + 1, right_stats});
    }
    frontier = std::move(next);
  }
}

/// The original per-node re-sorting split search.
class ReferenceEngine final : public SplitEngine {
 public:
  ReferenceEngine(const Matrix& x, std::span<const double> targets,
                  std::span<const double> hessians, const TreeOptions& opt)
      : SplitEngine(targets, hessians, opt), x_(x) {}

  std::size_t n_features() const override { return x_.cols(); }

  BestSplit find_best_split(const PendingNode& p, Rng& rng) override {
    BestSplit best;
    const double parent_imp = impurity(p.stats, opt_.criterion);
    const std::size_t n_node = p.end - p.start;
    const std::size_t d = x_.cols();

    std::size_t n_feat = opt_.max_features == 0 ? d : std::min(opt_.max_features, d);
    auto feats = rng.sample_without_replacement(d, n_feat);

    for (auto f : feats) {
      sorted_buf_.clear();
      sorted_buf_.reserve(n_node);
      for (std::size_t i = p.start; i < p.end; ++i) {
        sorted_buf_.emplace_back(x_(indices[i], f), indices[i]);
      }
      std::sort(sorted_buf_.begin(), sorted_buf_.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (sorted_buf_.front().first == sorted_buf_.back().first) continue;  // constant

      if (opt_.random_splits > 0) {
        // Extremely-randomized mode: random thresholds in (min, max).
        const double lo = sorted_buf_.front().first;
        const double hi = sorted_buf_.back().first;
        for (int s = 0; s < opt_.random_splits; ++s) {
          const double threshold = rng.uniform(lo, hi);
          NodeStats left;
          for (const auto& [v, idx] : sorted_buf_) {
            if (v > threshold) break;
            const double t = targets_[idx];
            left.n += 1.0;
            left.sum += t;
            left.sumsq += t * t;
            if (use_hess_) left.hess += hessians_[idx];
          }
          consider_threshold(threshold, left, p, parent_imp, opt_.criterion,
                             opt_.min_samples_leaf, f, best);
        }
      } else {
        // Full scan over boundaries between distinct values.
        NodeStats left;
        for (std::size_t i = 0; i + 1 < sorted_buf_.size(); ++i) {
          const auto& [v, idx] = sorted_buf_[i];
          const double t = targets_[idx];
          left.n += 1.0;
          left.sum += t;
          left.sumsq += t * t;
          if (use_hess_) left.hess += hessians_[idx];
          const double next_v = sorted_buf_[i + 1].first;
          if (v == next_v) continue;
          consider_threshold((v + next_v) / 2.0, left, p, parent_imp, opt_.criterion,
                             opt_.min_samples_leaf, f, best);
        }
      }
    }
    return best;
  }

  std::size_t partition(std::size_t start, std::size_t end,
                        const BestSplit& split) override {
    auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(start),
        indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
          return x_(idx, static_cast<std::size_t>(split.feature)) <= split.threshold;
        });
    return static_cast<std::size_t>(mid_it - indices.begin());
  }

 private:
  const Matrix& x_;
  std::vector<std::pair<double, std::size_t>> sorted_buf_;  // (value, index)
};

/// Presorted split search over a TreeWorkspace: no per-node sort, linear
/// scans over gathered scratch, tandem order maintenance on partition.
class FastEngine final : public SplitEngine {
 public:
  FastEngine(TreeWorkspace& ws, std::span<const double> targets,
             std::span<const double> hessians, const TreeOptions& opt)
      : SplitEngine(targets, hessians, opt), ws_(ws) {}

  std::size_t n_features() const override { return ws_.view_cols(); }

  BestSplit find_best_split(const PendingNode& p, Rng& rng) override {
    BestSplit best;
    const double parent_imp = impurity(p.stats, opt_.criterion);
    const std::size_t m = p.end - p.start;
    const std::size_t d = ws_.view_cols();

    std::size_t n_feat = opt_.max_features == 0 ? d : std::min(opt_.max_features, d);
    rng.sample_without_replacement_into(d, n_feat, feat_scratch_);

    double* vals = ws_.value_scratch();
    double* targs = ws_.target_scratch();
    double* hesss = ws_.hessian_scratch();

    for (auto f : feat_scratch_) {
      const double* col = ws_.column(f);
      const std::uint32_t* ord = ws_.order(f) + p.start;
      if (col[ord[0]] == col[ord[m - 1]]) continue;  // constant

      if (opt_.random_splits > 0) {
        // Random thresholds re-scan the prefix per candidate, so gather the
        // node's presorted values/targets into contiguous scratch once.
        for (std::size_t i = 0; i < m; ++i) {
          const std::uint32_t pos = ord[i];
          vals[i] = col[pos];
          targs[i] = targets_[pos];
        }
        if (use_hess_) {
          for (std::size_t i = 0; i < m; ++i) hesss[i] = hessians_[ord[i]];
        }
        const double lo = vals[0];
        const double hi = vals[m - 1];
        for (int s = 0; s < opt_.random_splits; ++s) {
          const double threshold = rng.uniform(lo, hi);
          NodeStats left;
          for (std::size_t i = 0; i < m; ++i) {
            if (vals[i] > threshold) break;
            const double t = targs[i];
            left.n += 1.0;
            left.sum += t;
            left.sumsq += t * t;
            if (use_hess_) left.hess += hesss[i];
          }
          consider_threshold(threshold, left, p, parent_imp, opt_.criterion,
                             opt_.min_samples_leaf, f, best);
        }
      } else {
        // Single fused pass: accumulate row i-1 into the left stats, then
        // evaluate the boundary before row i whenever the value changes.
        // Same accumulation and consider_threshold sequence as the gathered
        // form (and as the reference scan), one memory pass instead of three.
        NodeStats left;
        double prev = col[ord[0]];
        {
          const std::uint32_t pos = ord[0];
          const double t = targets_[pos];
          left.n += 1.0;
          left.sum += t;
          left.sumsq += t * t;
          if (use_hess_) left.hess += hessians_[pos];
        }
        for (std::size_t i = 1; i < m; ++i) {
          const std::uint32_t pos = ord[i];
          const double v = col[pos];
          if (v != prev) {
            consider_threshold((prev + v) / 2.0, left, p, parent_imp,
                               opt_.criterion, opt_.min_samples_leaf, f, best);
            prev = v;
          }
          const double t = targets_[pos];
          left.n += 1.0;
          left.sum += t;
          left.sumsq += t * t;
          if (use_hess_) left.hess += hessians_[pos];
        }
      }
    }
    return best;
  }

  std::size_t partition(std::size_t start, std::size_t end,
                        const BestSplit& split) override {
    const double* col = ws_.column(static_cast<std::size_t>(split.feature));
    auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(start),
        indices.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::size_t idx) { return col[idx] <= split.threshold; });
    const std::size_t mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == start || mid == end) return mid;  // degenerate: orders untouched

    auto& flags = ws_.goes_left();
    for (std::size_t i = start; i < mid; ++i) flags[indices[i]] = 1;
    for (std::size_t i = mid; i < end; ++i) flags[indices[i]] = 0;
    ws_.tandem_partition(start, mid, end);
    return mid;
  }

 private:
  TreeWorkspace& ws_;
  std::vector<std::size_t> feat_scratch_;
};

}  // namespace

TreeBuilder active_tree_builder() {
  return g_builder.load(std::memory_order_relaxed);
}

void set_active_tree_builder(TreeBuilder builder) {
  g_builder.store(builder, std::memory_order_relaxed);
}

std::shared_ptr<const TreeTrainBase> TreeTrainBase::build(const Matrix& x) {
  auto base = std::make_shared<TreeTrainBase>();
  base->rows = x.rows();
  base->cols = x.cols();

  // Feature-major column cache: contiguous reads in split scans and
  // partition predicates instead of strided row-major access.
  base->columns.resize(base->rows * base->cols);
  for (std::size_t r = 0; r < base->rows; ++r) {
    const auto row = x.row(r);
    for (std::size_t f = 0; f < base->cols; ++f) {
      base->columns[f * base->rows + r] = row[f];
    }
  }

  // Presort every feature once: ascending value, row index as tie-break (a
  // deterministic total order; see DESIGN.md on why tie order is free).
  // Sorting contiguous (value, index) pairs — default lexicographic compare
  // is exactly that order — beats an indirect comparator into the column:
  // every hot comparison reads the keys from the sort's own working set.
  base->pristine.resize(base->rows * base->cols);
  std::vector<std::pair<double, std::uint32_t>> keyed(base->rows);
  for (std::size_t f = 0; f < base->cols; ++f) {
    const double* col = base->columns.data() + f * base->rows;
    for (std::size_t r = 0; r < base->rows; ++r) {
      keyed[r] = {col[r], static_cast<std::uint32_t>(r)};
    }
    std::sort(keyed.begin(), keyed.end());
    std::uint32_t* ord = base->pristine.data() + f * base->rows;
    for (std::size_t r = 0; r < base->rows; ++r) ord[r] = keyed[r].second;
  }
  return base;
}

namespace {

thread_local TrainContext* t_active_context = nullptr;

/// Bound on TrainContext entries: a grid search touches one matrix per fold
/// and a campaign session one per feature step, both far below this; the
/// cap only guards pathological callers from unbounded column-cache memory.
constexpr std::size_t kMaxContextEntries = 16;

/// Full content hash of a matrix (splitmix64 over the raw double bits plus
/// the dimensions).  Collision-resistant enough that a stale cache entry
/// whose address was reused by different data is detected in practice; the
/// dimensions are mixed in so a truncated reuse cannot alias.
std::uint64_t matrix_content_hash(const Matrix& x) {
  std::uint64_t state = x.rows() * 0x9e3779b97f4a7c15ull + x.cols();
  std::uint64_t h = splitmix64(state);
  for (const double v : x.data()) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    state = h ^ bits;
    h = splitmix64(state);
  }
  return h;
}

}  // namespace

TrainContext::Entry& TrainContext::touch(const Matrix& x, std::uint64_t hash) {
  const void* key = x.data().data();
  for (Entry& e : entries_) {
    if (e.data == key && e.rows == x.rows() && e.cols == x.cols()) {
      if (e.content_hash != hash) {
        // Address reused by different contents: drop the stale artifacts.
        e = Entry{};
        e.data = key;
        e.rows = x.rows();
        e.cols = x.cols();
        e.content_hash = hash;
      }
      e.last_used = ++tick_;
      return e;
    }
  }
  if (entries_.size() >= kMaxContextEntries) {
    auto lru = std::min_element(entries_.begin(), entries_.end(),
                                [](const Entry& a, const Entry& b) {
                                  return a.last_used < b.last_used;
                                });
    entries_.erase(lru);
  }
  Entry e;
  e.data = key;
  e.rows = x.rows();
  e.cols = x.cols();
  e.content_hash = hash;
  e.last_used = ++tick_;
  entries_.push_back(std::move(e));
  return entries_.back();
}

std::shared_ptr<const TreeTrainBase> TrainContext::tree_base(const Matrix& x) {
  const std::uint64_t hash = matrix_content_hash(x);
  std::lock_guard lock(mu_);
  Entry& e = touch(x, hash);
  if (e.base) {
    ++stats_.tree_base_hits;
    return e.base;
  }
  ++stats_.tree_base_misses;
  e.base = TreeTrainBase::build(x);
  return e.base;
}

std::shared_ptr<const std::vector<double>> TrainContext::row_squared_norms(
    const Matrix& x) {
  const std::uint64_t hash = matrix_content_hash(x);
  std::lock_guard lock(mu_);
  Entry& e = touch(x, hash);
  if (e.norms) {
    ++stats_.norms_hits;
    return e.norms;
  }
  ++stats_.norms_misses;
  // Same per-row dot as KNearestNeighbors::fit computed, so cached norms
  // are bit-identical to freshly computed ones.
  auto norms = std::make_shared<std::vector<double>>(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    (*norms)[i] = dot(row, row);
  }
  e.norms = std::move(norms);
  return e.norms;
}

TrainContext::Stats TrainContext::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

TrainContext* active_train_context() { return t_active_context; }

ScopedTrainContext::ScopedTrainContext(TrainContext* context) : prev_(t_active_context) {
  t_active_context = context;
}

ScopedTrainContext::~ScopedTrainContext() { t_active_context = prev_; }

void TreeWorkspace::bind_base(const Matrix& x) {
  // Same-matrix early-out: ensembles re-bind per tree.  The identity check
  // (address + dims) matches the pre-context behaviour; an installed
  // TrainContext additionally content-hashes on a fresh bind, so cross-fit
  // reuse never survives an address reused by different data.
  if (base_matrix_ == &x && base_ != nullptr && base_->rows == x.rows() &&
      base_->cols == x.cols()) {
    return;
  }
  base_matrix_ = &x;
  if (TrainContext* context = active_train_context()) {
    base_ = context->tree_base(x);
  } else {
    base_ = TreeTrainBase::build(x);
  }
}

void TreeWorkspace::bind(const Matrix& x, std::span<const std::size_t> rows,
                         std::span<const std::size_t> features) {
  bind_base(x);
  const std::size_t base_rows = base_->rows;
  view_rows_ = rows.empty() ? base_rows : rows.size();
  view_cols_ = features.empty() ? base_->cols : features.size();
  view_is_base_ = rows.empty() && features.empty();
  order_.resize(view_rows_ * view_cols_);

  if (!view_is_base_) {
    view_columns_.resize(view_rows_ * view_cols_);
    for (std::size_t j = 0; j < view_cols_; ++j) {
      const std::size_t f = features.empty() ? j : features[j];
      const double* src = base_->columns.data() + f * base_rows;
      double* dst = view_columns_.data() + j * view_rows_;
      if (rows.empty()) {
        std::copy(src, src + base_rows, dst);
      } else {
        for (std::size_t i = 0; i < view_rows_; ++i) dst[i] = src[rows[i]];
      }
    }
  }

  if (rows.empty()) {
    // Same sample set as the base: restore the pristine orders with a copy.
    const auto& pristine = base_->pristine;
    for (std::size_t j = 0; j < view_cols_; ++j) {
      const std::size_t f = features.empty() ? j : features[j];
      std::copy(pristine.begin() + static_cast<std::ptrdiff_t>(f * base_rows),
                pristine.begin() + static_cast<std::ptrdiff_t>((f + 1) * base_rows),
                order_.begin() + static_cast<std::ptrdiff_t>(j * view_rows_));
    }
  } else {
    // Bootstrap: derive each feature's presorted order from the base order
    // by a counting pass — walk base rows in sorted order and emit every
    // bootstrap position that drew that row, ascending.  O(d x n), no sort.
    row_count_.assign(base_rows, 0);
    for (const std::size_t r : rows) ++row_count_[r];
    row_offset_.resize(base_rows + 1);
    row_offset_[0] = 0;
    for (std::size_t r = 0; r < base_rows; ++r) {
      row_offset_[r + 1] = row_offset_[r] + row_count_[r];
    }
    row_positions_.resize(view_rows_);
    row_count_.assign(base_rows, 0);
    for (std::size_t i = 0; i < view_rows_; ++i) {
      const std::size_t r = rows[i];
      row_positions_[row_offset_[r] + row_count_[r]++] = static_cast<std::uint32_t>(i);
    }
    for (std::size_t j = 0; j < view_cols_; ++j) {
      const std::size_t f = features.empty() ? j : features[j];
      const std::uint32_t* base_ord = base_->pristine.data() + f * base_rows;
      std::uint32_t* ord = order_.data() + j * view_rows_;
      std::size_t w = 0;
      for (std::size_t k = 0; k < base_rows; ++k) {
        const std::uint32_t r = base_ord[k];
        for (std::uint32_t o = row_offset_[r]; o < row_offset_[r + 1]; ++o) {
          ord[w++] = row_positions_[o];
        }
      }
      assert(w == view_rows_);
    }
  }

  goes_left_.resize(view_rows_);
  part_right_.resize(view_rows_ + 1);
  value_scratch_.resize(view_rows_);
  target_scratch_.resize(view_rows_);
  hessian_scratch_.resize(view_rows_);
}

void TreeWorkspace::tandem_partition(std::size_t start, std::size_t mid,
                                     std::size_t end) {
  // Branchless stable split: every element is written both in place at the
  // left cursor (safe: w never passes the read position) and to the right
  // spill buffer, and only the matching cursor advances.  The side flag is
  // data-dependent and essentially random, so a conditional write would
  // mispredict on every other element; two unconditional stores are far
  // cheaper.  The spill buffer is one slot larger than the view so the
  // trailing non-advancing store stays in bounds.
  std::uint32_t* rhs = part_right_.data();
  const std::uint8_t* flags = goes_left_.data();
  for (std::size_t f = 0; f < view_cols_; ++f) {
    std::uint32_t* ord = order(f);
    std::size_t w = start;
    std::size_t nr = 0;
    for (std::size_t i = start; i < end; ++i) {
      const std::uint32_t pos = ord[i];
      const std::uint8_t left = flags[pos];
      ord[w] = pos;
      rhs[nr] = pos;
      w += left;
      nr += 1 - left;
    }
    assert(w == mid);
    (void)mid;
    std::copy(rhs, rhs + nr, ord + w);
  }
}

void train_tree(TreeModel& tree, TreeWorkspace& workspace, const Matrix& x,
                std::span<const double> targets, std::span<const double> hessians,
                const TreeOptions& options, std::span<const std::size_t> rows,
                std::span<const std::size_t> features) {
  if (active_tree_builder() == TreeBuilder::kReference) {
    // Materialize the view exactly like the pre-workspace ensembles did.
    if (rows.empty() && features.empty()) {
      ReferenceTreeBuilder::fit(tree, x, targets, hessians, options);
    } else {
      Matrix view = rows.empty() ? x : x.select_rows(rows);
      if (!features.empty()) view = view.select_cols(features);
      ReferenceTreeBuilder::fit(tree, view, targets, hessians, options);
    }
    return;
  }
  workspace.bind(x, rows, features);
  FastEngine engine(workspace, targets, hessians, options);
  std::vector<TreeNode> nodes;
  build_cart(nodes, engine, workspace.view_rows(), targets, hessians, options);
  tree.set_nodes(std::move(nodes));
}

void ReferenceTreeBuilder::fit(TreeModel& tree, const Matrix& x,
                               std::span<const double> targets,
                               std::span<const double> hessians,
                               const TreeOptions& options) {
  ReferenceEngine engine(x, targets, hessians, options);
  std::vector<TreeNode> nodes;
  build_cart(nodes, engine, x.rows(), targets, hessians, options);
  tree.set_nodes(std::move(nodes));
}

}  // namespace mlaas
