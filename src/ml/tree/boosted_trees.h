// Gradient-boosted decision trees with logistic loss (Friedman 2002) —
// Microsoft's "Boosted Decision Tree" and the local library's
// GradientBoostingClassifier.
//
// Each round fits an MSE regression tree to the negative gradient of the
// logistic loss; leaves take Newton values sum(g) / (sum(h) + eps).
//
// Parameters (Table 1, Microsoft BST):
//   n_estimators            # of trees constructed        (default 40)
//   learning_rate                                          (default 0.2)
//   max_leaves              max # of leaves per tree       (default 20)
//   min_instances_per_leaf                                 (default 10)
//   criterion / max_features accepted for local-library grid parity
#pragma once

#include "ml/classifier.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class BoostedDecisionTrees final : public Classifier {
 public:
  explicit BoostedDecisionTrees(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "boosted_trees"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  void rebuild_flat();
  void reference_predict_score_into(const Matrix& x, std::vector<double>& out) const;

  ParamMap params_;
  std::uint64_t seed_;
  double learning_rate_ = 0.2;
  double base_score_ = 0.0;  // log-odds prior
  std::vector<TreeModel> trees_;
  FlatForest flat_;  // inference layout, rebuilt by fit()/load()
};

}  // namespace mlaas
