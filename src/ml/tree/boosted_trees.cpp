#include "ml/tree/boosted_trees.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "ml/tree/decision_tree.h"
#include "ml/tree/trainer.h"
#include "util/rng.h"

namespace mlaas {

BoostedDecisionTrees::BoostedDecisionTrees(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void BoostedDecisionTrees::fit(const Matrix& x, const std::vector<int>& y) {
  trees_.clear();
  flat_.clear();
  if (check_single_class(y)) return;

  const auto n_estimators = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_estimators", 40), 1, 500));
  learning_rate_ = std::clamp(params_.get_double("learning_rate", 0.2), 1e-4, 10.0);
  const auto max_leaves = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("max_leaves", 20), 2, 4096));
  const auto min_leaf = static_cast<std::size_t>(
      std::max<long long>(1, params_.get_int("min_instances_per_leaf", 10)));

  TreeOptions opt = tree_options_from_params(params_, x.cols(), seed_);
  opt.criterion = SplitCriterion::kMse;
  opt.min_samples_leaf = min_leaf;
  // A tree with L leaves has 2L-1 nodes; depth cap keeps trees shallow, the
  // usual boosting regime.
  opt.max_nodes = 2 * max_leaves - 1;
  if (opt.max_depth == 0) {
    opt.max_depth = static_cast<std::size_t>(
        std::max(2.0, std::ceil(std::log2(static_cast<double>(max_leaves)) + 1.0)));
  }

  const std::size_t n = x.rows();
  const double pos = static_cast<double>(count_positive(y));
  const double prior = std::clamp(pos / static_cast<double>(n), 1e-4, 1.0 - 1e-4);
  base_score_ = std::log(prior / (1.0 - prior));

  std::vector<double> raw(n, base_score_);
  std::vector<double> grad(n), hess(n);
  TreeWorkspace workspace;  // every round trains on x: presorted once, restored per tree
  for (std::size_t round = 0; round < n_estimators; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(raw[i]);
      grad[i] = (y[i] == 1 ? 1.0 : 0.0) - p;  // negative gradient
      hess[i] = std::max(1e-6, p * (1.0 - p));
    }
    TreeModel tree;
    opt.seed = derive_seed(seed_, "bst-" + std::to_string(round));
    train_tree(tree, workspace, x, grad, hess, opt);
    if (tree.node_count() <= 1) break;  // no useful split left
    tree.predict_accumulate(x, learning_rate_, raw);
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
}

void BoostedDecisionTrees::rebuild_flat() {
  flat_.clear();
  for (const auto& tree : trees_) flat_.add_tree(tree);
}

std::vector<double> BoostedDecisionTrees::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void BoostedDecisionTrees::predict_score_into(const Matrix& x,
                                              std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    reference_predict_score_into(x, out);
    return;
  }
  // `out` doubles as the raw-score buffer (seeded with the log-odds prior,
  // squashed in place) — no per-call scratch vector.
  out.assign(x.rows(), base_score_);
  flat_.predict_accumulate(x, learning_rate_, out);
  for (double& v : out) v = sigmoid(v);
}

void BoostedDecisionTrees::reference_predict_score_into(const Matrix& x,
                                                        std::vector<double>& out) const {
  out.resize(x.rows());
  std::vector<double> raw(x.rows(), base_score_);
  for (const auto& tree : trees_) tree.predict_accumulate(x, learning_rate_, raw);
  for (std::size_t i = 0; i < raw.size(); ++i) out[i] = sigmoid(raw[i]);
}


void BoostedDecisionTrees::save(std::ostream& out) const {
  save_base(out);
  model_io::write_double(out, learning_rate_);
  model_io::write_double(out, base_score_);
  model_io::write_int(out, static_cast<long long>(trees_.size()));
  for (const auto& tree : trees_) tree.save(out);
}

void BoostedDecisionTrees::load(std::istream& in) {
  load_base(in);
  learning_rate_ = model_io::read_double(in);
  base_score_ = model_io::read_double(in);
  trees_.assign(static_cast<std::size_t>(model_io::read_int(in)), TreeModel{});
  for (auto& tree : trees_) tree.load(in);
  rebuild_flat();
}

}  // namespace mlaas
