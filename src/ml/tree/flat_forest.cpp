#include "ml/tree/flat_forest.h"

#include <algorithm>
#include <cassert>

namespace mlaas {

void FlatForest::clear() {
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  roots_.clear();
}

void FlatForest::add_tree(const TreeModel& tree, std::span<const std::size_t> feature_map) {
  const auto base = static_cast<std::int32_t>(feature_.size());
  roots_.push_back(base);
  const auto& nodes = tree.nodes();
  if (nodes.empty()) {
    // Sentinel 0-valued leaf: predict_accumulate on an empty TreeModel does
    // out[r] += scale * 0.0, and a leaf holding 0.0 reproduces that exactly.
    feature_.push_back(0);
    threshold_.push_back(0.0);
    left_.push_back(base);
    right_.push_back(base);
    return;
  }
  const bool remap = !feature_map.empty();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto& node = nodes[i];
    const auto self = base + static_cast<std::int32_t>(i);
    if (node.feature < 0) {
      // Self-looping leaf: both children point back at the node, so the
      // branchless walk below parks here without a per-lane guard branch.
      // The comparison a parked lane keeps evaluating reads column 0
      // against the leaf value riding in the threshold slot; its outcome is
      // irrelevant because both outcomes stay on the leaf.
      feature_.push_back(0);
      threshold_.push_back(node.value);
      left_.push_back(self);
      right_.push_back(self);
    } else {
      const auto f = static_cast<std::size_t>(node.feature);
      feature_.push_back(
          static_cast<std::int32_t>(remap ? feature_map[f] : f));
      threshold_.push_back(node.threshold);
      left_.push_back(base + node.left);
      right_.push_back(base + node.right);
    }
  }
}

namespace {
constexpr std::size_t kRowBlock = 64;

// Walks rows [r0, r1) through one tree, a group of rows at a time so their
// dependent node loads overlap.  Each step is a compare + mask-select with
// no data-dependent branch: leaves self-loop instead of being guarded, and
// -(a <= b) is all-ones when the row goes left, zero when it goes right (a
// ternary here compiles to a data-dependent branch, which is what this
// layout exists to avoid).  The only loop branch is the all-lanes-parked
// exit, which stays predictable until the final iteration.  A step can
// only leave a node via its children, and no node is its own child except
// a leaf, so "no lane moved" is exactly "every lane is parked on its
// row's leaf".  (A lane-refill variant — retire a finished row, load the
// next — was measured slower here: its per-lane retire checks are
// unpredictable branches that fire once per row, and the mispredicts cost
// more than the divergence they reclaim.)
template <typename Retire>
void walk_rows(const double* data, std::size_t d, const std::int32_t* feat,
               const double* thresh, const std::int32_t* left,
               const std::int32_t* right, std::int32_t root, std::size_t r0,
               std::size_t r1, Retire&& retire) {
  // Eight lanes: the walk is latency-bound on each lane's dependent
  // node-load chain, and eight independent chains hide more of that
  // latency than four (measured faster on both shallow forest trees and
  // deep bagged trees, despite the larger max-depth-of-the-quad penalty).
  constexpr std::size_t kLanes = 8;
  std::size_t r = r0;
  for (; r + kLanes <= r1; r += kLanes) {
    const double* p[kLanes];
    std::int32_t node[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      p[l] = data + (r + l) * d;
      node[l] = root;
    }
    while (true) {
      std::int32_t moved = 0;
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::int32_t o = node[l];
        const std::int32_t m = -static_cast<std::int32_t>(p[l][feat[o]] <= thresh[o]);
        node[l] = (left[o] & m) | (right[o] & ~m);
        moved |= o ^ node[l];
      }
      if (moved == 0) break;
    }
    for (std::size_t l = 0; l < kLanes; ++l) retire(r + l, thresh[node[l]]);
  }
  for (; r < r1; ++r) {
    const double* p = data + r * d;
    std::int32_t node = root;
    while (true) {
      const std::int32_t prev = node;
      node = p[feat[node]] <= thresh[node] ? left[node] : right[node];
      if (node == prev) break;
    }
    retire(r, thresh[node]);
  }
}

}  // namespace

void FlatForest::predict_accumulate(const Matrix& x, double scale,
                                    std::span<double> out) const {
  assert(out.size() >= x.rows());
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* data = x.data().data();
  const std::int32_t* feat = feature_.data();
  const double* thresh = threshold_.data();
  const std::int32_t* left = left_.data();
  const std::int32_t* right = right_.data();
  // Row-block outer / tree inner: one block of query rows stays hot while
  // every tree scores it.  Per row, leaves accumulate in tree order —
  // identical arithmetic to the tree-outer reference loop (see walk_rows).
  for (std::size_t block = 0; block < n; block += kRowBlock) {
    const std::size_t block_end = std::min(n, block + kRowBlock);
    for (const std::int32_t root : roots_) {
      walk_rows(data, d, feat, thresh, left, right, root, block, block_end,
                [&](std::size_t r, double value) { out[r] += scale * value; });
    }
  }
}

void FlatForest::predict_into(const Matrix& x, std::span<double> out) const {
  assert(roots_.size() == 1);
  assert(out.size() >= x.rows());
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const double* data = x.data().data();
  const std::int32_t* feat = feature_.data();
  const double* thresh = threshold_.data();
  const std::int32_t* left = left_.data();
  const std::int32_t* right = right_.data();
  const std::int32_t root = roots_[0];
  // Assign, not accumulate: "0.0 + value" flips the sign bit of -0.0
  // leaves, and the single-tree reference (TreeModel::predict) assigns.
  walk_rows(data, d, feat, thresh, left, right, root, 0, n,
            [&](std::size_t r, double value) { out[r] = value; });
}

}  // namespace mlaas
