#include "ml/tree/tree_model.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace mlaas {

namespace {

constexpr std::size_t kHardDepthCap = 64;

struct NodeStats {
  double n = 0.0;       // sample count
  double sum = 0.0;     // sum of targets
  double sumsq = 0.0;   // sum of squared targets
  double hess = 0.0;    // sum of hessians (0 if unused)
};

double impurity(const NodeStats& s, SplitCriterion criterion) {
  if (s.n <= 0) return 0.0;
  const double mean = s.sum / s.n;
  switch (criterion) {
    case SplitCriterion::kGini: {
      const double p = std::clamp(mean, 0.0, 1.0);
      return 2.0 * p * (1.0 - p);
    }
    case SplitCriterion::kEntropy: {
      const double p = std::clamp(mean, 0.0, 1.0);
      if (p <= 0.0 || p >= 1.0) return 0.0;
      return -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
    }
    case SplitCriterion::kMse:
      return std::max(0.0, s.sumsq / s.n - mean * mean);
  }
  return 0.0;
}

struct PendingNode {
  int node_id;
  std::size_t start, end;  // range in the shared index buffer
  std::size_t depth;
  NodeStats stats;
};

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

}  // namespace

void TreeModel::fit(const Matrix& x, std::span<const double> targets,
                    std::span<const double> hessians, const TreeOptions& opt) {
  nodes_.clear();
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const bool use_hess = !hessians.empty();
  const std::size_t max_depth =
      opt.max_depth == 0 ? kHardDepthCap : std::min(opt.max_depth, kHardDepthCap);
  Rng rng(derive_seed(opt.seed, "tree"));

  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});

  auto stats_of = [&](std::size_t start, std::size_t end) {
    NodeStats s;
    for (std::size_t i = start; i < end; ++i) {
      const double t = targets[indices[i]];
      s.n += 1.0;
      s.sum += t;
      s.sumsq += t * t;
      if (use_hess) s.hess += hessians[indices[i]];
    }
    return s;
  };
  auto leaf_value = [&](const NodeStats& s) {
    if (use_hess) return s.sum / (s.hess + 1e-6);
    return s.n > 0 ? s.sum / s.n : 0.0;
  };

  auto make_node = [&](const NodeStats& s) {
    TreeNode node;
    node.value = leaf_value(s);
    node.n_samples = static_cast<std::uint32_t>(s.n);
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size() - 1);
  };

  // Evaluate the best split of a node over a sampled feature set.
  std::vector<std::pair<double, std::size_t>> sorted_buf;  // (value, index)
  auto find_best_split = [&](const PendingNode& p) {
    BestSplit best;
    const double parent_imp = impurity(p.stats, opt.criterion);
    const std::size_t n_node = p.end - p.start;

    std::size_t n_feat = opt.max_features == 0 ? d : std::min(opt.max_features, d);
    auto feats = rng.sample_without_replacement(d, n_feat);

    for (auto f : feats) {
      sorted_buf.clear();
      sorted_buf.reserve(n_node);
      for (std::size_t i = p.start; i < p.end; ++i) {
        sorted_buf.emplace_back(x(indices[i], f), indices[i]);
      }
      std::sort(sorted_buf.begin(), sorted_buf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (sorted_buf.front().first == sorted_buf.back().first) continue;  // constant

      auto eval_threshold = [&](double threshold, const NodeStats& left) {
        NodeStats right{p.stats.n - left.n, p.stats.sum - left.sum,
                        p.stats.sumsq - left.sumsq, p.stats.hess - left.hess};
        if (left.n < static_cast<double>(opt.min_samples_leaf) ||
            right.n < static_cast<double>(opt.min_samples_leaf)) {
          return;
        }
        const double gain = parent_imp -
                            (left.n / p.stats.n) * impurity(left, opt.criterion) -
                            (right.n / p.stats.n) * impurity(right, opt.criterion);
        if (gain > best.gain + 1e-12) {
          best = {static_cast<int>(f), threshold, gain};
        }
      };

      if (opt.random_splits > 0) {
        // Extremely-randomized mode: random thresholds in (min, max).
        const double lo = sorted_buf.front().first;
        const double hi = sorted_buf.back().first;
        for (int s = 0; s < opt.random_splits; ++s) {
          const double threshold = rng.uniform(lo, hi);
          NodeStats left;
          for (const auto& [v, idx] : sorted_buf) {
            if (v > threshold) break;
            const double t = targets[idx];
            left.n += 1.0;
            left.sum += t;
            left.sumsq += t * t;
            if (use_hess) left.hess += hessians[idx];
          }
          eval_threshold(threshold, left);
        }
      } else {
        // Full scan over boundaries between distinct values.
        NodeStats left;
        for (std::size_t i = 0; i + 1 < sorted_buf.size(); ++i) {
          const auto& [v, idx] = sorted_buf[i];
          const double t = targets[idx];
          left.n += 1.0;
          left.sum += t;
          left.sumsq += t * t;
          if (use_hess) left.hess += hessians[idx];
          const double next_v = sorted_buf[i + 1].first;
          if (v == next_v) continue;
          eval_threshold((v + next_v) / 2.0, left);
        }
      }
    }
    return best;
  };

  // Breadth-first build.
  std::vector<PendingNode> frontier;
  {
    const NodeStats root_stats = stats_of(0, n);
    const int root = make_node(root_stats);
    frontier.push_back({root, 0, n, 0, root_stats});
  }

  while (!frontier.empty()) {
    // Level-width budget (decision jungle): only the widest-impact nodes of
    // each level may split; the rest stay leaves.
    if (opt.max_width > 0 && frontier.size() > opt.max_width) {
      std::stable_sort(frontier.begin(), frontier.end(),
                       [&](const PendingNode& a, const PendingNode& b) {
                         return a.stats.n * impurity(a.stats, opt.criterion) >
                                b.stats.n * impurity(b.stats, opt.criterion);
                       });
      frontier.resize(opt.max_width);
    }
    std::vector<PendingNode> next;
    for (const auto& p : frontier) {
      const std::size_t n_node = p.end - p.start;
      const bool budget_ok = opt.max_nodes == 0 || nodes_.size() + 2 <= opt.max_nodes;
      if (p.depth >= max_depth || n_node < opt.min_samples_split || !budget_ok ||
          impurity(p.stats, opt.criterion) <= 1e-12) {
        continue;  // stays a leaf
      }
      const BestSplit split = find_best_split(p);
      if (split.feature < 0) continue;

      // Partition indices in place.
      auto mid_it = std::partition(
          indices.begin() + static_cast<std::ptrdiff_t>(p.start),
          indices.begin() + static_cast<std::ptrdiff_t>(p.end), [&](std::size_t idx) {
            return x(idx, static_cast<std::size_t>(split.feature)) <= split.threshold;
          });
      const std::size_t mid =
          static_cast<std::size_t>(mid_it - indices.begin());
      if (mid == p.start || mid == p.end) continue;  // degenerate partition

      const NodeStats left_stats = stats_of(p.start, mid);
      const NodeStats right_stats = stats_of(mid, p.end);
      const int left = make_node(left_stats);
      const int right = make_node(right_stats);
      nodes_[static_cast<std::size_t>(p.node_id)].feature = split.feature;
      nodes_[static_cast<std::size_t>(p.node_id)].threshold = split.threshold;
      nodes_[static_cast<std::size_t>(p.node_id)].left = left;
      nodes_[static_cast<std::size_t>(p.node_id)].right = right;
      next.push_back({left, p.start, mid, p.depth + 1, left_stats});
      next.push_back({right, mid, p.end, p.depth + 1, right_stats});
    }
    frontier = std::move(next);
  }
}

double TreeModel::predict_one(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = static_cast<std::size_t>(
        row[static_cast<std::size_t>(nodes_[node].feature)] <= nodes_[node].threshold
            ? nodes_[node].left
            : nodes_[node].right);
  }
  return nodes_[node].value;
}

std::vector<double> TreeModel::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

std::size_t TreeModel::leaf_count() const {
  std::size_t leaves = 0;
  for (const auto& n : nodes_) leaves += n.feature < 0 ? 1 : 0;
  return leaves;
}

std::size_t TreeModel::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::size_t> depth_of(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0) {
      depth_of[static_cast<std::size_t>(nodes_[i].left)] = depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(nodes_[i].right)] = depth_of[i] + 1;
      max_depth = std::max(max_depth, depth_of[i] + 1);
    }
  }
  return max_depth;
}


void TreeModel::save(std::ostream& out) const {
  model_io::write_int(out, static_cast<long long>(nodes_.size()));
  for (const auto& node : nodes_) {
    model_io::write_int(out, node.feature);
    model_io::write_double(out, node.threshold);
    model_io::write_int(out, node.left);
    model_io::write_int(out, node.right);
    model_io::write_double(out, node.value);
    model_io::write_int(out, node.n_samples);
  }
}

void TreeModel::load(std::istream& in) {
  nodes_.assign(static_cast<std::size_t>(model_io::read_int(in)), TreeNode{});
  for (auto& node : nodes_) {
    node.feature = static_cast<int>(model_io::read_int(in));
    node.threshold = model_io::read_double(in);
    node.left = static_cast<int>(model_io::read_int(in));
    node.right = static_cast<int>(model_io::read_int(in));
    node.value = model_io::read_double(in);
    node.n_samples = static_cast<std::uint32_t>(model_io::read_int(in));
  }
}

}  // namespace mlaas
