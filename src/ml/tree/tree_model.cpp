#include "ml/tree/tree_model.h"

#include "ml/serialize.h"
#include "ml/tree/trainer.h"

#include <algorithm>

namespace mlaas {

void TreeModel::fit(const Matrix& x, std::span<const double> targets,
                    std::span<const double> hessians, const TreeOptions& opt) {
  TreeWorkspace workspace;
  train_tree(*this, workspace, x, targets, hessians, opt);
}

double TreeModel::predict_one(std::span<const double> row) const {
  if (nodes_.empty()) return 0.0;
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    node = static_cast<std::size_t>(
        row[static_cast<std::size_t>(nodes_[node].feature)] <= nodes_[node].threshold
            ? nodes_[node].left
            : nodes_[node].right);
  }
  return nodes_[node].value;
}

std::vector<double> TreeModel::predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row(r));
  return out;
}

void TreeModel::predict_accumulate(const Matrix& x, double scale,
                                   std::span<double> out,
                                   std::span<const std::size_t> feature_map) const {
  constexpr std::size_t kBlock = 256;
  const std::size_t n = x.rows();
  if (nodes_.empty()) {
    // Preserve the exact arithmetic of accumulating a zero prediction.
    for (std::size_t r = 0; r < n; ++r) out[r] += scale * 0.0;
    return;
  }
  const TreeNode* nodes = nodes_.data();
  const bool remap = !feature_map.empty();
  for (std::size_t block = 0; block < n; block += kBlock) {
    const std::size_t block_end = std::min(n, block + kBlock);
    for (std::size_t r = block; r < block_end; ++r) {
      const auto row = x.row(r);
      const TreeNode* node = nodes;
      while (node->feature >= 0) {
        const auto f = static_cast<std::size_t>(node->feature);
        const double v = row[remap ? feature_map[f] : f];
        node = nodes + (v <= node->threshold ? node->left : node->right);
      }
      out[r] += scale * node->value;
    }
  }
}

std::size_t TreeModel::leaf_count() const {
  std::size_t leaves = 0;
  for (const auto& n : nodes_) leaves += n.feature < 0 ? 1 : 0;
  return leaves;
}

std::size_t TreeModel::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::size_t> depth_of(nodes_.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature >= 0) {
      depth_of[static_cast<std::size_t>(nodes_[i].left)] = depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(nodes_[i].right)] = depth_of[i] + 1;
      max_depth = std::max(max_depth, depth_of[i] + 1);
    }
  }
  return max_depth;
}


void TreeModel::save(std::ostream& out) const {
  model_io::write_int(out, static_cast<long long>(nodes_.size()));
  for (const auto& node : nodes_) {
    model_io::write_int(out, node.feature);
    model_io::write_double(out, node.threshold);
    model_io::write_int(out, node.left);
    model_io::write_int(out, node.right);
    model_io::write_double(out, node.value);
    model_io::write_int(out, node.n_samples);
  }
}

void TreeModel::load(std::istream& in) {
  nodes_.assign(static_cast<std::size_t>(model_io::read_int(in)), TreeNode{});
  for (auto& node : nodes_) {
    node.feature = static_cast<int>(model_io::read_int(in));
    node.threshold = model_io::read_double(in);
    node.left = static_cast<int>(model_io::read_int(in));
    node.right = static_cast<int>(model_io::read_int(in));
    node.value = model_io::read_double(in);
    node.n_samples = static_cast<std::uint32_t>(model_io::read_int(in));
  }
}

}  // namespace mlaas
