// Decision jungle (Shotton et al. 2013) — Microsoft's "Decision Jungle".
//
// A decision jungle is an ensemble of rooted decision DAGs whose per-level
// width is bounded, trading accuracy for a much smaller memory footprint.
// This implementation approximates each DAG with a width-budgeted tree: the
// breadth-first tree builder only splits the `max_width` highest-impurity
// nodes of each level (see TreeOptions::max_width), which reproduces the
// jungle's width-limited capacity without the node-merging optimization.
// The substitution is documented in DESIGN.md.
//
// Parameters (Table 1):
//   n_dags              # of DAGs                       (default 8)
//   max_depth           max depth of the DAGs           (default 16)
//   max_width           max width of the DAGs           (default 32)
//   optimization_steps  per-layer optimization budget; mapped to the number
//                       of random thresholds evaluated per feature
//   resampling          "bagging" | "replicate"
#pragma once

#include "ml/classifier.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class DecisionJungle final : public Classifier {
 public:
  explicit DecisionJungle(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "decision_jungle"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  void rebuild_flat();
  void reference_predict_score_into(const Matrix& x, std::vector<double>& out) const;

  ParamMap params_;
  std::uint64_t seed_;
  std::vector<TreeModel> dags_;
  FlatForest flat_;  // inference layout, rebuilt by fit()/load()
};

}  // namespace mlaas
