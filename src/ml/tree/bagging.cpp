#include "ml/tree/bagging.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "ml/tree/decision_tree.h"
#include "ml/tree/trainer.h"
#include "util/rng.h"

namespace mlaas {

BaggedTrees::BaggedTrees(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void BaggedTrees::fit(const Matrix& x, const std::vector<int>& y) {
  members_.clear();
  flat_.clear();
  if (check_single_class(y)) return;

  const auto n_estimators = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_estimators", 10), 1, 500));
  const double feature_fraction =
      std::clamp(params_.get_double("max_features", 1.0), 0.05, 1.0);
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  const auto n_member_features = static_cast<std::size_t>(
      std::max(1.0, std::round(feature_fraction * static_cast<double>(d))));

  ParamMap tree_params = params_;
  tree_params.set("max_features", std::string("all"));
  TreeOptions base_opt = tree_options_from_params(tree_params, d, seed_);

  std::vector<double> targets(n);
  for (std::size_t i = 0; i < n; ++i) targets[i] = y[i] == 1 ? 1.0 : 0.0;

  members_.resize(n_estimators);
  std::vector<std::size_t> boot_rows(n);
  std::vector<double> boot_targets(n);
  TreeWorkspace workspace;  // column cache + presorted orders shared by all members
  for (std::size_t t = 0; t < n_estimators; ++t) {
    Rng rng(derive_seed(seed_, "bag-" + std::to_string(t)));
    auto& member = members_[t];
    member.features = n_member_features == d
                          ? std::vector<std::size_t>{}
                          : rng.sample_without_replacement(d, n_member_features);
    std::sort(member.features.begin(), member.features.end());
    for (std::size_t i = 0; i < n; ++i) {
      boot_rows[i] = rng.index(n);
      boot_targets[i] = targets[boot_rows[i]];
    }
    TreeOptions opt = base_opt;
    opt.seed = derive_seed(seed_, "bag-tree-" + std::to_string(t));
    train_tree(member.tree, workspace, x, boot_targets, {}, opt, boot_rows,
               member.features);
  }
  rebuild_flat();
}

void BaggedTrees::rebuild_flat() {
  flat_.clear();
  // Each member's column subset is baked into its node feature indices, so
  // the flat walk reads the full matrix with no per-node indirection.
  for (const auto& member : members_) flat_.add_tree(member.tree, member.features);
}

std::vector<double> BaggedTrees::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void BaggedTrees::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    reference_predict_score_into(x, out);
    return;
  }
  out.assign(x.rows(), 0.0);
  flat_.predict_accumulate(x, 1.0, out);
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, members_.size()));
  for (double& v : out) v *= inv;
}

void BaggedTrees::reference_predict_score_into(const Matrix& x,
                                               std::vector<double>& out) const {
  out.assign(x.rows(), 0.0);
  for (const auto& member : members_) {
    member.tree.predict_accumulate(x, 1.0, out, member.features);
  }
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, members_.size()));
  for (double& v : out) v *= inv;
}


void BaggedTrees::save(std::ostream& out) const {
  save_base(out);
  model_io::write_int(out, static_cast<long long>(members_.size()));
  for (const auto& member : members_) {
    std::vector<int> features(member.features.begin(), member.features.end());
    model_io::write_ivec(out, features);
    member.tree.save(out);
  }
}

void BaggedTrees::load(std::istream& in) {
  load_base(in);
  members_.assign(static_cast<std::size_t>(model_io::read_int(in)), Member{});
  for (auto& member : members_) {
    const auto features = model_io::read_ivec(in);
    member.features.assign(features.begin(), features.end());
    member.tree.load(in);
  }
  rebuild_flat();
}

}  // namespace mlaas
