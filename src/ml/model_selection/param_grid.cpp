#include "ml/model_selection/param_grid.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/rng.h"

namespace mlaas {

ParamSpec ParamSpec::number(std::string name, double def, double lo, double hi) {
  ParamSpec s;
  s.name = std::move(name);
  s.kind = Kind::kDouble;
  s.default_double = def;
  s.min_value = lo;
  s.max_value = hi;
  return s;
}

ParamSpec ParamSpec::integer(std::string name, long long def, long long lo, long long hi) {
  ParamSpec s;
  s.name = std::move(name);
  s.kind = Kind::kInt;
  s.default_int = def;
  s.min_value = static_cast<double>(lo);
  s.max_value = static_cast<double>(hi);
  return s;
}

ParamSpec ParamSpec::categorical(std::string name, std::vector<std::string> options) {
  if (options.empty()) throw std::invalid_argument("ParamSpec: empty categorical options");
  ParamSpec s;
  s.name = std::move(name);
  s.kind = Kind::kCategorical;
  s.options = std::move(options);
  return s;
}

ParamSpec ParamSpec::boolean(std::string name, bool def) {
  ParamSpec s;
  s.name = std::move(name);
  s.kind = Kind::kBool;
  s.default_int = def ? 1 : 0;
  return s;
}

std::vector<ParamValue> ParamSpec::sweep_values() const {
  switch (kind) {
    case Kind::kCategorical: {
      std::vector<ParamValue> out;
      for (const auto& o : options) out.emplace_back(o);
      return out;
    }
    case Kind::kBool:
      return {ParamValue{false}, ParamValue{true}};
    case Kind::kDouble: {
      std::set<double> vals;
      for (double v : {default_double / 100.0, default_double, default_double * 100.0}) {
        vals.insert(std::clamp(v, min_value, max_value));
      }
      std::vector<ParamValue> out;
      for (double v : vals) out.emplace_back(v);
      return out;
    }
    case Kind::kInt: {
      std::set<long long> vals;
      const double lo = min_value, hi = max_value;
      for (double v : {static_cast<double>(default_int) / 100.0,
                       static_cast<double>(default_int),
                       static_cast<double>(default_int) * 100.0}) {
        vals.insert(static_cast<long long>(std::llround(std::clamp(v, lo, hi))));
      }
      std::vector<ParamValue> out;
      for (long long v : vals) out.emplace_back(v);
      return out;
    }
  }
  return {};
}

ParamValue ParamSpec::default_value() const {
  switch (kind) {
    case Kind::kCategorical: return options.front();
    case Kind::kBool: return default_int != 0;
    case Kind::kDouble: return default_double;
    case Kind::kInt: return default_int;
  }
  return 0.0;
}

ParamMap ClassifierGridSpec::default_config() const {
  ParamMap config = fixed;
  for (const auto& p : params) config.set(p.name, p.default_value());
  return config;
}

std::size_t grid_size(const ClassifierGridSpec& spec) {
  std::size_t total = 1;
  for (const auto& p : spec.params) total *= p.sweep_values().size();
  return total;
}

std::vector<ParamMap> expand_grid(const ClassifierGridSpec& spec, std::size_t max_configs,
                                  std::uint64_t seed) {
  std::vector<ParamMap> grid{spec.fixed};
  for (const auto& p : spec.params) {
    const auto values = p.sweep_values();
    std::vector<ParamMap> next;
    next.reserve(grid.size() * values.size());
    for (const auto& base : grid) {
      for (const auto& v : values) {
        ParamMap config = base;
        config.set(p.name, v);
        next.push_back(std::move(config));
      }
    }
    grid = std::move(next);
  }
  if (max_configs == 0 || grid.size() <= max_configs) return grid;

  // Deterministic subsample keeping the default configuration.
  const ParamMap def = spec.default_config();
  std::vector<ParamMap> out{def};
  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!(grid[i] == def)) pool.push_back(i);
  }
  Rng rng(derive_seed(seed, "grid-" + spec.classifier));
  const std::size_t keep = std::min(max_configs - 1, pool.size());
  auto chosen = rng.sample_without_replacement(pool.size(), keep);
  std::sort(chosen.begin(), chosen.end());
  for (auto c : chosen) out.push_back(grid[pool[c]]);
  return out;
}

}  // namespace mlaas
