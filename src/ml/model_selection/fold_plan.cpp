#include "ml/model_selection/fold_plan.h"

#include <algorithm>

#include "data/split.h"
#include "ml/classifier.h"
#include "util/rng.h"

namespace mlaas {

namespace {

/// Materialize folds from an assignment, ascending row order on both sides —
/// the same subset order the original cross_validate loop produced.
void materialize(FoldPlan& plan, const Dataset& dataset) {
  const std::size_t n = dataset.n_samples();
  plan.folds.resize(static_cast<std::size_t>(plan.k));
  plan.evaluated_folds = 0;
  std::vector<std::size_t> train_idx, test_idx;
  for (int fold = 0; fold < plan.k; ++fold) {
    train_idx.clear();
    test_idx.clear();
    for (std::size_t i = 0; i < n; ++i) {
      (plan.assignment[i] == fold ? test_idx : train_idx).push_back(i);
    }
    FoldPlan::Fold& f = plan.folds[static_cast<std::size_t>(fold)];
    f.degenerate = train_idx.empty() || test_idx.empty();
    if (f.degenerate) continue;
    f.train = dataset.subset(train_idx);
    f.test = dataset.subset(test_idx);
    ++plan.evaluated_folds;
  }
}

}  // namespace

std::shared_ptr<const FoldPlan> FoldPlan::compute(const Dataset& dataset, int k,
                                                  std::uint64_t seed) {
  auto plan = std::make_shared<FoldPlan>();
  plan->requested_k = k;
  const std::size_t n = dataset.n_samples();
  const std::size_t pos = count_positive(dataset.y());
  const std::size_t minority = std::min(pos, n - pos);
  plan->k =
      std::max(2, std::min<int>(k, static_cast<int>(std::max<std::size_t>(2, minority))));
  plan->assignment = kfold_assignment(dataset.y(), plan->k, derive_seed(seed, "cv"));
  materialize(*plan, dataset);
  return plan;
}

std::shared_ptr<const FoldPlan> FoldPlan::from_assignment(const Dataset& dataset,
                                                          std::vector<int> assignment,
                                                          int k) {
  auto plan = std::make_shared<FoldPlan>();
  plan->requested_k = k;
  plan->k = k;
  plan->assignment = std::move(assignment);
  materialize(*plan, dataset);
  return plan;
}

FoldPlanPtr FoldPlanCache::get(int k, std::uint64_t seed) {
  const std::pair<int, std::uint64_t> key{k, seed};
  {
    std::lock_guard lock(mu_);
    if (auto it = plans_.find(key); it != plans_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Compute outside the lock: plans for distinct (k, seed) build in
  // parallel, and a racing duplicate is just dropped below.
  FoldPlanPtr plan = FoldPlan::compute(dataset_, k, seed);
  std::lock_guard lock(mu_);
  auto [it, inserted] = plans_.emplace(key, std::move(plan));
  if (inserted) {
    ++misses_;
  } else {
    ++hits_;
  }
  return it->second;
}

std::size_t FoldPlanCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

std::size_t FoldPlanCache::misses() const {
  std::lock_guard lock(mu_);
  return misses_;
}

}  // namespace mlaas
