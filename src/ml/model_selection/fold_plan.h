// Shared fold materialization: the data-only half of cross-validation.
//
// cross_validate() used to re-derive the stratified fold assignment and
// re-copy the k train/test Dataset subsets for every configuration a tuner
// evaluated, even though both depend only on (dataset, k, seed).  A FoldPlan
// computes them once; grid_search and auto_select share one plan across all
// their configurations via shared_ptr, and FoldPlanCache memoizes plans for
// callers that probe the same dataset at several (k, seed) points.
//
// Exact equivalence: compute() applies the same minority-class clamp and the
// same derive_seed(seed, "cv") fold assignment as the original
// cross_validate() body, and materializes each fold's train/test subsets in
// the same ascending-row order, so evaluating a classifier over a plan is
// bit-identical to the original per-config re-partitioning path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "data/dataset.h"

namespace mlaas {

struct FoldPlan {
  struct Fold {
    Dataset train;
    Dataset test;
    /// One side empty (every sample fell in — or out of — this fold);
    /// evaluation skips it, exactly as the original per-fold loop did.
    bool degenerate = false;
  };

  int requested_k = 0;          // k as asked for by the caller
  int k = 0;                    // effective k after the minority-class clamp
  std::vector<int> assignment;  // sample -> fold, from kfold_assignment
  std::vector<Fold> folds;      // size k, materialized train/test subsets
  int evaluated_folds = 0;      // folds with both sides non-empty

  /// Clamp k against the minority class, assign stratified folds with
  /// derive_seed(seed, "cv"), and materialize every fold's subsets.
  static std::shared_ptr<const FoldPlan> compute(const Dataset& dataset, int k,
                                                 std::uint64_t seed);

  /// Build from an explicit sample->fold assignment, no clamp or reseeding
  /// (tests construct degenerate folds on demand with this).
  static std::shared_ptr<const FoldPlan> from_assignment(const Dataset& dataset,
                                                         std::vector<int> assignment,
                                                         int k);
};

using FoldPlanPtr = std::shared_ptr<const FoldPlan>;

/// Thread-safe per-dataset memo of FoldPlans keyed by (requested k, seed).
/// Borrows the dataset: it must outlive the cache.
class FoldPlanCache {
 public:
  explicit FoldPlanCache(const Dataset& dataset) : dataset_(dataset) {}

  /// Create-or-get the plan for (k, seed).
  FoldPlanPtr get(int k, std::uint64_t seed);

  std::size_t hits() const;
  std::size_t misses() const;

 private:
  const Dataset& dataset_;
  mutable std::mutex mu_;
  std::map<std::pair<int, std::uint64_t>, FoldPlanPtr> plans_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mlaas
