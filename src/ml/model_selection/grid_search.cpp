#include "ml/model_selection/grid_search.h"

#include <cmath>
#include <string>
#include <vector>

#include "ml/tree/trainer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mlaas {

namespace {

/// Score one config against the plan.  Depends only on (plan, spec, params,
/// seed) — never on evaluation order or sibling configs — which is what
/// makes parallel evaluation trivially bit-identical.
double score_config(const ClassifierGridSpec& spec, const ParamMap& params,
                    const FoldPlan& plan, std::uint64_t seed) {
  const CvResult cv =
      cross_validate(spec.classifier, params, plan, derive_seed(seed, params.to_string()));
  // A degenerate fold (e.g. one class absent -> undefined F) yields NaN;
  // NaN compares false against everything, which would let it neither win
  // nor lose and make the result depend on enumeration order.  Score it 0.
  const double score = cv.mean.f_score;
  return std::isnan(score) ? 0.0 : score;
}

}  // namespace

GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train,
                             const GridSearchOptions& options, std::uint64_t seed) {
  const auto grid = expand_grid(spec, options.max_configs, seed);
  GridSearchResult result;
  result.n_configs = grid.size();
  result.best_params = spec.default_config();
  if (grid.empty()) return result;

  // One fold plan for the whole search; with reuse off an identical plan is
  // recomputed per config (the pre-engine cost model, kept measurable).
  FoldPlanPtr shared_plan;
  if (options.reuse) shared_plan = FoldPlan::compute(train, options.cv_folds, seed);

  // Shared cross-config training-state cache (tree presorts, kNN norms).
  // The shared plan keeps every fold's train matrix alive and at a stable
  // address for the whole search, so configs on the same fold hit.
  TrainContext context;

  std::vector<double> scores(grid.size());
  const auto eval_one = [&](std::size_t i) {
    ScopedTrainContext scope(options.reuse ? &context : nullptr);
    const FoldPlanPtr plan = options.reuse
                                 ? shared_plan
                                 : FoldPlan::compute(train, options.cv_folds, seed);
    scores[i] = score_config(spec, grid[i], *plan, seed);
  };

  if (options.threads == 1) {
    for (std::size_t i = 0; i < grid.size(); ++i) eval_one(i);
  } else {
    ThreadPool pool(options.threads);
    pool.parallel_for_dynamic(grid.size(), eval_one);
  }

  // Reduce in canonical grid order: workers fill independent slots, so the
  // winner (and its tie-break) is identical for every thread count.
  double best = -1.0;
  std::string best_key;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const std::string key = grid[i].to_string();
    if (scores[i] > best || (scores[i] == best && key < best_key)) {
      best = scores[i];
      best_key = key;
      result.best_params = grid[i];
      result.best_cv_f_score = best;
    }
  }
  return result;
}

GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train, int cv_folds,
                             std::uint64_t seed, std::size_t max_configs) {
  GridSearchOptions options;
  options.cv_folds = cv_folds;
  options.max_configs = max_configs;
  return grid_search(spec, train, options, seed);
}

}  // namespace mlaas
