#include "ml/model_selection/grid_search.h"

#include <cmath>
#include <string>

#include "util/rng.h"

namespace mlaas {

GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train, int cv_folds,
                             std::uint64_t seed, std::size_t max_configs) {
  const auto grid = expand_grid(spec, max_configs, seed);
  GridSearchResult result;
  result.n_configs = grid.size();
  result.best_params = spec.default_config();
  double best = -1.0;
  std::string best_key;
  for (const auto& params : grid) {
    const CvResult cv = cross_validate(spec.classifier, params, train, cv_folds,
                                       derive_seed(seed, params.to_string()));
    // A degenerate fold (e.g. one class absent -> undefined F) yields NaN;
    // NaN compares false against everything, which would let it neither win
    // nor lose and make the result depend on enumeration order.  Score it 0.
    double score = cv.mean.f_score;
    if (std::isnan(score)) score = 0.0;
    const std::string key = params.to_string();
    if (score > best || (score == best && key < best_key)) {
      best = score;
      best_key = key;
      result.best_params = params;
      result.best_cv_f_score = best;
    }
  }
  return result;
}

}  // namespace mlaas
