#include "ml/model_selection/grid_search.h"

#include "util/rng.h"

namespace mlaas {

GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train, int cv_folds,
                             std::uint64_t seed, std::size_t max_configs) {
  const auto grid = expand_grid(spec, max_configs, seed);
  GridSearchResult result;
  result.n_configs = grid.size();
  result.best_params = spec.default_config();
  double best = -1.0;
  for (const auto& params : grid) {
    const CvResult cv = cross_validate(spec.classifier, params, train, cv_folds,
                                       derive_seed(seed, params.to_string()));
    if (cv.mean.f_score > best) {
      best = cv.mean.f_score;
      result.best_params = params;
      result.best_cv_f_score = best;
    }
  }
  return result;
}

}  // namespace mlaas
