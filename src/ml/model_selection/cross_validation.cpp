#include "ml/model_selection/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "data/split.h"
#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {

CvResult cross_validate(const ClassifierFactory& factory, const Dataset& dataset, int k,
                        std::uint64_t seed) {
  const std::size_t n = dataset.n_samples();
  const std::size_t pos = count_positive(dataset.y());
  const std::size_t minority = std::min(pos, n - pos);
  k = std::max(2, std::min<int>(k, static_cast<int>(std::max<std::size_t>(2, minority))));

  const auto folds = kfold_assignment(dataset.y(), k, derive_seed(seed, "cv"));
  CvResult result;
  result.folds = k;
  std::vector<double> f_scores;
  for (int fold = 0; fold < k; ++fold) {
    std::vector<std::size_t> train_idx, test_idx;
    for (std::size_t i = 0; i < n; ++i) {
      (folds[i] == fold ? test_idx : train_idx).push_back(i);
    }
    if (train_idx.empty() || test_idx.empty()) continue;
    const Dataset train = dataset.subset(train_idx);
    const Dataset test = dataset.subset(test_idx);
    auto clf = factory();
    clf->fit(train.x(), train.y());
    const Metrics m = compute_metrics(test.y(), clf->predict(test.x()));
    result.mean.accuracy += m.accuracy;
    result.mean.precision += m.precision;
    result.mean.recall += m.recall;
    result.mean.f_score += m.f_score;
    f_scores.push_back(m.f_score);
  }
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, f_scores.size()));
  result.mean.accuracy *= inv;
  result.mean.precision *= inv;
  result.mean.recall *= inv;
  result.mean.f_score *= inv;
  double var = 0.0;
  for (double f : f_scores) var += (f - result.mean.f_score) * (f - result.mean.f_score);
  result.f_score_std = f_scores.empty() ? 0.0 : std::sqrt(var * inv);
  return result;
}

CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const Dataset& dataset, int k, std::uint64_t seed) {
  return cross_validate(
      [&] { return make_classifier(classifier, params, derive_seed(seed, "cv-clf")); },
      dataset, k, seed);
}

}  // namespace mlaas
