#include "ml/model_selection/cross_validation.h"

#include <algorithm>
#include <cmath>

#include "ml/registry.h"
#include "util/rng.h"

namespace mlaas {

CvResult cross_validate(const ClassifierFactory& factory, const FoldPlan& plan) {
  CvResult result;
  result.folds = plan.k;
  std::vector<double> f_scores;
  for (const FoldPlan::Fold& fold : plan.folds) {
    if (fold.degenerate) continue;
    auto clf = factory();
    clf->fit(fold.train.x(), fold.train.y());
    const Metrics m = compute_metrics(fold.test.y(), clf->predict(fold.test.x()));
    result.mean.accuracy += m.accuracy;
    result.mean.precision += m.precision;
    result.mean.recall += m.recall;
    result.mean.f_score += m.f_score;
    f_scores.push_back(m.f_score);
  }
  result.evaluated_folds = static_cast<int>(f_scores.size());
  const double inv = 1.0 / static_cast<double>(std::max(1, result.evaluated_folds));
  result.mean.accuracy *= inv;
  result.mean.precision *= inv;
  result.mean.recall *= inv;
  result.mean.f_score *= inv;
  double var = 0.0;
  for (double f : f_scores) var += (f - result.mean.f_score) * (f - result.mean.f_score);
  result.f_score_std = f_scores.empty() ? 0.0 : std::sqrt(var * inv);
  return result;
}

CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const FoldPlan& plan, std::uint64_t seed) {
  return cross_validate(
      [&] { return make_classifier(classifier, params, derive_seed(seed, "cv-clf")); },
      plan);
}

CvResult cross_validate(const ClassifierFactory& factory, const Dataset& dataset, int k,
                        std::uint64_t seed) {
  return cross_validate(factory, *FoldPlan::compute(dataset, k, seed));
}

CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const Dataset& dataset, int k, std::uint64_t seed) {
  return cross_validate(
      [&] { return make_classifier(classifier, params, derive_seed(seed, "cv-clf")); },
      dataset, k, seed);
}

}  // namespace mlaas
