// Parameter-grid construction (§3.2).
//
// The paper's sweep rule: categorical parameters enumerate all options;
// numeric parameters take {default/100, default, default*100}, clamped to
// their valid range.  expand_grid produces the full cross product, with an
// optional deterministic subsample cap so platform grids stay within the
// single-machine budget (the default configuration is always kept).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ml/params.h"

namespace mlaas {

struct ParamSpec {
  enum class Kind { kDouble, kInt, kCategorical, kBool };

  std::string name;
  Kind kind = Kind::kDouble;
  double default_double = 0.0;
  long long default_int = 0;
  std::vector<std::string> options;  // categorical values
  double min_value = std::numeric_limits<double>::lowest();
  double max_value = std::numeric_limits<double>::max();

  static ParamSpec number(std::string name, double def, double lo, double hi);
  static ParamSpec integer(std::string name, long long def, long long lo, long long hi);
  static ParamSpec categorical(std::string name, std::vector<std::string> options);
  static ParamSpec boolean(std::string name, bool def);

  /// Values this parameter sweeps (paper's /100, x1, x100 rule for numerics).
  std::vector<ParamValue> sweep_values() const;
  ParamValue default_value() const;
};

/// A classifier plus its tunable parameters — one CLF row of Table 1.
struct ClassifierGridSpec {
  std::string classifier;
  /// Platform-specific fixed defaults (not swept), e.g. iteration budgets.
  ParamMap fixed;
  std::vector<ParamSpec> params;

  /// The platform's default configuration for this classifier.
  ParamMap default_config() const;
};

/// Cross product of sweeps; max_configs == 0 means unlimited.  When capped,
/// the default configuration is kept and the remainder is a deterministic
/// stratified subsample (seeded).
std::vector<ParamMap> expand_grid(const ClassifierGridSpec& spec, std::size_t max_configs,
                                  std::uint64_t seed);

/// Count of the uncapped cross product.
std::size_t grid_size(const ClassifierGridSpec& spec);

}  // namespace mlaas
