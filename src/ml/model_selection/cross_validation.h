// Stratified k-fold cross-validation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "data/dataset.h"
#include "ml/classifier.h"
#include "ml/metrics.h"
#include "ml/model_selection/fold_plan.h"

namespace mlaas {

/// Build-a-fresh-classifier callback (one per fold).
using ClassifierFactory = std::function<ClassifierPtr()>;

struct CvResult {
  Metrics mean;        // metric means across evaluated folds
  double f_score_std = 0.0;
  int folds = 0;            // effective k after the minority-class clamp
  int evaluated_folds = 0;  // folds actually scored (both sides non-empty)
};

/// k-fold CV of a classifier on a dataset; returns averaged test-fold
/// metrics.  Folds are stratified; k is reduced when the minority class is
/// too small.
CvResult cross_validate(const ClassifierFactory& factory, const Dataset& dataset, int k,
                        std::uint64_t seed);

/// Convenience: CV by registry name + params.
CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const Dataset& dataset, int k, std::uint64_t seed);

/// CV over a pre-materialized FoldPlan: no re-partitioning or subset copies.
/// Evaluating plan = FoldPlan::compute(dataset, k, seed) is bit-identical to
/// cross_validate(factory, dataset, k, seed).
CvResult cross_validate(const ClassifierFactory& factory, const FoldPlan& plan);

/// Registry convenience over a FoldPlan.  `seed` is the per-configuration
/// seed; the classifier is built with derive_seed(seed, "cv-clf"), matching
/// the dataset overload above.
CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const FoldPlan& plan, std::uint64_t seed);

}  // namespace mlaas
