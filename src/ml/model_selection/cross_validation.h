// Stratified k-fold cross-validation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "data/dataset.h"
#include "ml/classifier.h"
#include "ml/metrics.h"

namespace mlaas {

/// Build-a-fresh-classifier callback (one per fold).
using ClassifierFactory = std::function<ClassifierPtr()>;

struct CvResult {
  Metrics mean;        // metric means across folds
  double f_score_std = 0.0;
  int folds = 0;
};

/// k-fold CV of a classifier on a dataset; returns averaged test-fold
/// metrics.  Folds are stratified; k is reduced when the minority class is
/// too small.
CvResult cross_validate(const ClassifierFactory& factory, const Dataset& dataset, int k,
                        std::uint64_t seed);

/// Convenience: CV by registry name + params.
CvResult cross_validate(const std::string& classifier, const ParamMap& params,
                        const Dataset& dataset, int k, std::uint64_t seed);

}  // namespace mlaas
