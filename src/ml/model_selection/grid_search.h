// Grid search over a ClassifierGridSpec using cross-validation.
//
// The measurement harness enumerates configurations itself (the paper
// evaluates every configuration on the held-out test set); GridSearch is the
// library-user-facing tuner used by the examples.
#pragma once

#include "ml/model_selection/cross_validation.h"
#include "ml/model_selection/param_grid.h"

namespace mlaas {

struct GridSearchResult {
  ParamMap best_params;
  double best_cv_f_score = 0.0;
  std::size_t n_configs = 0;
};

/// Cross-validated search over the spec's grid.  Selection rule: a NaN mean
/// F-score (degenerate CV fold) counts as 0, and exact ties break toward the
/// lexicographically smaller canonical parameter string — both so the winner
/// is a deterministic function of the grid's contents, never of its
/// enumeration order.
GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train, int cv_folds,
                             std::uint64_t seed, std::size_t max_configs = 0);

}  // namespace mlaas
