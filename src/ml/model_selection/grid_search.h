// Grid search over a ClassifierGridSpec using cross-validation.
//
// The measurement harness enumerates configurations itself (the paper
// evaluates every configuration on the held-out test set); GridSearch is the
// library-user-facing tuner used by the examples.
//
// Every configuration is scored on ONE shared fold plan, seeded at the
// dataset level (FoldPlan::compute(train, cv_folds, seed)) — the same folds
// a direct cross_validate(..., train, cv_folds, seed) call would draw.
// Scoring every config on identical folds removes fold-assignment noise
// from the comparison (paired instead of independent CV estimates) and is
// what lets the fold materialization be computed once per search instead of
// once per config.  Per-config classifier seeds are unchanged:
// derive_seed(seed, params.to_string()).
#pragma once

#include "ml/model_selection/cross_validation.h"
#include "ml/model_selection/param_grid.h"

namespace mlaas {

struct GridSearchOptions {
  int cv_folds = 5;
  /// Grid subsample cap (0 = unlimited), as expand_grid.
  std::size_t max_configs = 0;
  /// Worker threads for config evaluation: 1 = serial in the calling
  /// thread, 0 = hardware concurrency.  Results are bit-identical for every
  /// thread count: per-config seeds are order-independent and scores are
  /// reduced in canonical grid order.
  std::size_t threads = 1;
  /// Share the fold plan and a TrainContext (tree presorts, kNN norms)
  /// across configs.  Off rebuilds identical state per config — results are
  /// bit-identical either way; the toggle exists for benchmarks and
  /// equivalence tests.
  bool reuse = true;
};

struct GridSearchResult {
  ParamMap best_params;
  double best_cv_f_score = 0.0;
  std::size_t n_configs = 0;
};

/// Cross-validated search over the spec's grid.  Selection rule: a NaN mean
/// F-score (degenerate CV fold) counts as 0, and exact ties break toward the
/// lexicographically smaller canonical parameter string — both so the winner
/// is a deterministic function of the grid's contents, never of its
/// enumeration order (or, now, of the evaluation thread count).
GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train,
                             const GridSearchOptions& options, std::uint64_t seed);

/// Back-compat convenience: serial search with fold/state reuse on.
GridSearchResult grid_search(const ClassifierGridSpec& spec, const Dataset& train, int cv_folds,
                             std::uint64_t seed, std::size_t max_configs = 0);

}  // namespace mlaas
