#include "ml/bayes/naive_bayes.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "linalg/vector_ops.h"

namespace mlaas {

GaussianNaiveBayes::GaussianNaiveBayes(const ParamMap& params, std::uint64_t) {
  uniform_prior_ = params.get_string("prior", "empirical") == "uniform";
  lambda_ = std::max(0.0, params.get_double("lambda", 1e-9));
}

void GaussianNaiveBayes::fit(const Matrix& x, const std::vector<int>& y) {
  if (check_single_class(y)) return;
  const std::size_t d = x.cols();
  std::size_t count[2] = {0, 0};
  for (int cls = 0; cls < 2; ++cls) {
    mean_[cls].assign(d, 0.0);
    var_[cls].assign(d, 0.0);
  }
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const int cls = y[r] == 1 ? 1 : 0;
    ++count[cls];
    for (std::size_t c = 0; c < d; ++c) mean_[cls][c] += x(r, c);
  }
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t c = 0; c < d; ++c) mean_[cls][c] /= static_cast<double>(count[cls]);
  }
  double max_var = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const int cls = y[r] == 1 ? 1 : 0;
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = x(r, c) - mean_[cls][c];
      var_[cls][c] += dv * dv;
    }
  }
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t c = 0; c < d; ++c) {
      var_[cls][c] /= static_cast<double>(count[cls]);
      max_var = std::max(max_var, var_[cls][c]);
    }
  }
  // Variance smoothing keeps zero-variance (constant/categorical) features
  // from producing infinite log-likelihoods.
  const double smooth = std::max(lambda_, 1e-9) * std::max(max_var, 1.0);
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t c = 0; c < d; ++c) var_[cls][c] += smooth;
  }
  if (uniform_prior_) {
    log_prior_[0] = log_prior_[1] = std::log(0.5);
  } else {
    const double n = static_cast<double>(x.rows());
    log_prior_[0] = std::log(static_cast<double>(count[0]) / n);
    log_prior_[1] = std::log(static_cast<double>(count[1]) / n);
  }
}

std::vector<double> GaussianNaiveBayes::predict_score(const Matrix& x) const {
  std::vector<double> out(x.rows(), single_class_score());
  if (single_class()) return out;
  const std::size_t d = x.cols();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double log_like[2];
    for (int cls = 0; cls < 2; ++cls) {
      double ll = log_prior_[cls];
      for (std::size_t c = 0; c < d; ++c) {
        const double dv = x(r, c) - mean_[cls][c];
        ll += -0.5 * std::log(2.0 * std::numbers::pi * var_[cls][c]) -
              dv * dv / (2.0 * var_[cls][c]);
      }
      log_like[cls] = ll;
    }
    out[r] = sigmoid(log_like[1] - log_like[0]);
  }
  return out;
}


void GaussianNaiveBayes::save(std::ostream& out) const {
  save_base(out);
  for (int cls = 0; cls < 2; ++cls) {
    model_io::write_vec(out, mean_[cls]);
    model_io::write_vec(out, var_[cls]);
    model_io::write_double(out, log_prior_[cls]);
  }
}

void GaussianNaiveBayes::load(std::istream& in) {
  load_base(in);
  for (int cls = 0; cls < 2; ++cls) {
    mean_[cls] = model_io::read_vec(in);
    var_[cls] = model_io::read_vec(in);
    log_prior_[cls] = model_io::read_double(in);
  }
}

}  // namespace mlaas
