// Gaussian naive Bayes.
//
// Parameters:
//   prior   "empirical" | "uniform"   (default "empirical")
//   lambda  additive variance smoothing, as a fraction of the largest
//           feature variance (PredictionIO exposes "lambda"; default 1e-9,
//           sklearn's var_smoothing)
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class GaussianNaiveBayes final : public Classifier {
 public:
  explicit GaussianNaiveBayes(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  std::string name() const override { return "naive_bayes"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  bool uniform_prior_;
  double lambda_;

  std::vector<double> mean_[2], var_[2];
  double log_prior_[2] = {0.0, 0.0};
};

}  // namespace mlaas
