#include "ml/linear/averaged_perceptron.h"

#include "ml/serialize.h"

#include <algorithm>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

AveragedPerceptron::AveragedPerceptron(const ParamMap& params, std::uint64_t seed)
    : seed_(seed) {
  learning_rate_ = params.get_double("learning_rate", 1.0);
  max_iter_ = std::clamp<long long>(params.get_int("max_iter", 10), 1, 500);
}

void AveragedPerceptron::fit(const Matrix& x, const std::vector<int>& y) {
  w_.assign(x.cols(), 0.0);
  b_ = 0.0;
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  const Matrix xs = scaler.transform(x);
  const auto ys = to_signed_labels(y);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  std::vector<double> w(d, 0.0), w_sum(d, 0.0);
  double b = 0.0, b_sum = 0.0;
  std::size_t updates = 0;
  Rng rng(derive_seed(seed_, "perceptron"));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (long long epoch = 0; epoch < max_iter_; ++epoch) {
    rng.shuffle(order);
    bool any_mistake = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = order[k];
      const auto row = xs.row(i);
      if (ys[i] * (dot(w, row) + b) <= 0.0) {
        axpy(w, learning_rate_ * ys[i], row);
        b += learning_rate_ * ys[i];
        any_mistake = true;
      }
      axpy(std::span<double>(w_sum), 1.0, w);
      b_sum += b;
      ++updates;
    }
    if (!any_mistake) break;  // converged on separable data
  }

  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, updates));
  const auto& mu = scaler.means();
  const auto& sd = scaler.stds();
  w_.resize(d);
  b_ = b_sum * inv;
  for (std::size_t c = 0; c < d; ++c) {
    const double wc = w_sum[c] * inv;
    w_[c] = wc / sd[c];
    b_ -= wc * mu[c] / sd[c];
  }
}

std::vector<double> AveragedPerceptron::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void AveragedPerceptron::predict_score_into(const Matrix& x,
                               std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    const auto z = x.multiply(w_);
    out.resize(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sigmoid(z[i] + b_);
    return;
  }
  out.resize(x.rows());
  matvec_into(x, w_, out);  // bit-identical to x.multiply(w_), no temporary
  for (double& v : out) v = sigmoid(v + b_);
}


void AveragedPerceptron::save(std::ostream& out) const {
  save_base(out);
  model_io::write_vec(out, w_);
  model_io::write_double(out, b_);
}

void AveragedPerceptron::load(std::istream& in) {
  load_base(in);
  w_ = model_io::read_vec(in);
  b_ = model_io::read_double(in);
}

}  // namespace mlaas
