#include "ml/linear/logistic_regression.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

namespace {
constexpr long long kMaxEpochs = 500;

double soft_threshold(double w, double t) {
  if (w > t) return w - t;
  if (w < -t) return w + t;
  return 0.0;
}
}  // namespace

LogisticRegression::LogisticRegression(const ParamMap& params, std::uint64_t seed)
    : seed_(seed) {
  penalty_ = params.get_string("penalty", "l2");
  const double c = params.get_double("C", 1.0);
  lambda_ = params.contains("reg_param") ? params.get_double("reg_param", 0.01)
                                         : 1.0 / std::max(1e-8, c);
  if (penalty_ == "none") lambda_ = 0.0;
  max_iter_ = std::clamp<long long>(params.get_int("max_iter", 100), 1, kMaxEpochs);
  fit_intercept_ = params.get_bool("fit_intercept", true);
  const std::string solver = params.get_string("solver", "sgd");
  full_batch_ = solver == "gd" || solver == "lbfgs" || solver == "liblinear";
  shuffle_ = params.get_string("shuffle_type", "auto") != "none";
  tolerance_ = params.get_double("tolerance", 1e-4);
}

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& y) {
  w_.assign(x.cols(), 0.0);
  b_ = 0.0;
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  const Matrix xs = scaler.transform(x);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  // Per-sample regularization scale: total penalty ~ lambda/2 |w|^2.
  const double reg = lambda_ / static_cast<double>(n);

  std::vector<double> w(d, 0.0);
  double b = 0.0;
  Rng rng(derive_seed(seed_, "lr"));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  // Cumulative-penalty L1 state (Tsuruoka, Tsujii & Ananiadou 2009): naive
  // per-sample soft-thresholding over-shrinks; instead track the total
  // penalty each weight *should* have received (u) and the amount it has
  // actually received (q), and clip against the difference.
  double l1_u = 0.0;
  std::vector<double> l1_q(penalty_ == "l1" && !full_batch_ ? d : 0, 0.0);
  auto apply_cumulative_l1 = [&](double eta_reg) {
    l1_u += eta_reg;
    for (std::size_t c = 0; c < d; ++c) {
      const double z = w[c];
      if (z > 0) {
        w[c] = std::max(0.0, z - (l1_u + l1_q[c]));
      } else if (z < 0) {
        w[c] = std::min(0.0, z + (l1_u - l1_q[c]));
      }
      l1_q[c] += w[c] - z;
    }
  };

  double prev_loss = std::numeric_limits<double>::infinity();
  const double eta0 = 0.5;
  std::size_t t = 0;
  for (long long epoch = 0; epoch < max_iter_; ++epoch) {
    double loss = 0.0;
    if (full_batch_) {
      std::vector<double> grad(d, 0.0);
      double grad_b = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = xs.row(i);
        const double z = dot(w, row) + b;
        const double p = sigmoid(z);
        const double g = p - (y[i] == 1 ? 1.0 : 0.0);
        axpy(grad, g / static_cast<double>(n), row);
        grad_b += g / static_cast<double>(n);
        loss += y[i] == 1 ? log1p_exp(-z) : log1p_exp(z);
      }
      const double eta = eta0 / (1.0 + static_cast<double>(epoch) / 20.0);
      for (std::size_t c = 0; c < d; ++c) {
        double wc = w[c] - eta * (grad[c] + (penalty_ == "l2" ? reg * w[c] : 0.0));
        if (penalty_ == "l1") wc = soft_threshold(wc, eta * reg);
        w[c] = wc;
      }
      if (fit_intercept_) b -= eta * grad_b;
    } else {
      if (shuffle_) rng.shuffle(order);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = order[k];
        const auto row = xs.row(i);
        const double z = dot(w, row) + b;
        const double p = sigmoid(z);
        const double g = p - (y[i] == 1 ? 1.0 : 0.0);
        const double eta = eta0 / (1.0 + eta0 * std::max(reg, 1e-4) * static_cast<double>(t++));
        if (penalty_ == "l2") {
          for (std::size_t c = 0; c < d; ++c) w[c] -= eta * (g * row[c] + reg * w[c]);
        } else {
          axpy(w, -eta * g, row);
          if (penalty_ == "l1") apply_cumulative_l1(eta * reg);
        }
        if (fit_intercept_) b -= eta * g;
        loss += y[i] == 1 ? log1p_exp(-z) : log1p_exp(z);
      }
    }
    loss /= static_cast<double>(n);
    if (std::abs(prev_loss - loss) < tolerance_ * std::max(1.0, std::abs(prev_loss))) break;
    prev_loss = loss;
  }

  // Fold standardization into the weights: w_raw = w/std, b_raw = b - Σ w*mu/std.
  const auto& mu = scaler.means();
  const auto& sd = scaler.stds();
  w_.resize(d);
  b_ = b;
  for (std::size_t c = 0; c < d; ++c) {
    w_[c] = w[c] / sd[c];
    b_ -= w[c] * mu[c] / sd[c];
  }
}

std::vector<double> LogisticRegression::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void LogisticRegression::predict_score_into(const Matrix& x,
                                            std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    const auto z = x.multiply(w_);
    out.resize(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sigmoid(z[i] + b_);
    return;
  }
  out.resize(x.rows());
  matvec_into(x, w_, out);  // bit-identical to x.multiply(w_), no temporary
  for (double& v : out) v = sigmoid(v + b_);
}


void LogisticRegression::save(std::ostream& out) const {
  save_base(out);
  model_io::write_vec(out, w_);
  model_io::write_double(out, b_);
}

void LogisticRegression::load(std::istream& in) {
  load_base(in);
  w_ = model_io::read_vec(in);
  b_ = model_io::read_double(in);
}

}  // namespace mlaas
