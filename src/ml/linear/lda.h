// (Fisher) Linear Discriminant Analysis.
//
// Parameters (local library row of Table 1):
//   solver     "lsqr" | "eigen"   (both solve the pooled-covariance system;
//              kept for grid parity with sklearn)
//   shrinkage  in [0,1]: blends the pooled covariance toward a scaled
//              identity (Ledoit-Wolf-style regularization; default 0 plus a
//              tiny ridge for numerical safety)
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class LinearDiscriminantAnalysis final : public Classifier {
 public:
  explicit LinearDiscriminantAnalysis(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "lda"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  double shrinkage_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
