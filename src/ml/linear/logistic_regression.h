// Logistic regression trained by (averaged) stochastic gradient descent.
//
// This single implementation backs every platform's LR offering; platforms
// differ only in defaults and which parameters they expose (Table 1):
//   penalty       "l2" | "l1" | "none"            (default "l2")
//   C             inverse regularization strength (default 1.0)
//   reg_param     lambda alternative to C (Amazon/PredictionIO style);
//                 when present it overrides C (lambda = reg_param)
//   max_iter      SGD epochs                       (default 100, capped 500)
//   fit_intercept                                  (default true)
//   solver        "sgd" | "gd" | "lbfgs" | "liblinear" | "saga"
//                 (gd/lbfgs/liblinear run full-batch; others run SGD)
//   tolerance     relative loss-improvement stop   (default 1e-4)
//   shuffle_type  "auto" | "none"  (Amazon's shuffleType)
//
// Features are standardized internally (training-set statistics) so SGD is
// scale-robust; the learned weights are folded back so predict works on raw
// inputs.
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "logistic_regression"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  const std::vector<double>& weights() const { return w_; }
  double intercept() const { return b_; }

 private:
  std::string penalty_;
  double lambda_;
  long long max_iter_;
  bool fit_intercept_;
  bool full_batch_;
  bool shuffle_;
  double tolerance_;
  std::uint64_t seed_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
