// Linear support vector machine trained with Pegasos-style SGD.
//
// Parameters (Table 1: Microsoft SVM exposes #iterations and lambda; the
// local library exposes penalty/C/loss):
//   C         inverse regularization  (default 1.0)
//   lambda    direct regularization; overrides C when present
//   loss      "hinge" | "squared_hinge"   (default "hinge")
//   max_iter  epochs                       (default 100, capped 500)
//
// predict_score maps the signed margin through a sigmoid so downstream code
// can treat it like a probability.
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class LinearSvm final : public Classifier {
 public:
  explicit LinearSvm(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "linear_svm"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  const std::vector<double>& weights() const { return w_; }
  double intercept() const { return b_; }

 private:
  double lambda_;
  bool squared_hinge_;
  long long max_iter_;
  std::uint64_t seed_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
