// Averaged perceptron (Freund & Schapire 1999) — Microsoft's "Averaged
// Perceptron" classifier (Table 1).
//
// Parameters: learning_rate (default 1.0), max_iter (default 10).
// The returned model is the average of all intermediate weight vectors,
// which gives large-margin-like behaviour on separable data.
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class AveragedPerceptron final : public Classifier {
 public:
  explicit AveragedPerceptron(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "averaged_perceptron"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  const std::vector<double>& weights() const { return w_; }

 private:
  double learning_rate_;
  long long max_iter_;
  std::uint64_t seed_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
