// Bayes Point Machine (Herbrich, Graepel & Campbell 2001) — Microsoft's
// "Bayes Point Machine" classifier (Table 1).
//
// The Bayes point is approximated, as in the original paper, by averaging
// the solutions of several perceptrons trained on random permutations of the
// data (each normalized to the unit sphere) — an ensemble-of-version-space
// samples approach.
//
// Parameters: training_iterations (default 30): epochs per committee member.
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class BayesPointMachine final : public Classifier {
 public:
  explicit BayesPointMachine(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "bayes_point_machine"; }
  bool is_linear() const override { return true; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  long long training_iterations_;
  int committee_size_;
  std::uint64_t seed_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
