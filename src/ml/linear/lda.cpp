#include "ml/linear/lda.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace mlaas {

LinearDiscriminantAnalysis::LinearDiscriminantAnalysis(const ParamMap& params, std::uint64_t) {
  shrinkage_ = std::clamp(params.get_double("shrinkage", 0.0), 0.0, 1.0);
}

void LinearDiscriminantAnalysis::fit(const Matrix& x, const std::vector<int>& y) {
  w_.assign(x.cols(), 0.0);
  b_ = 0.0;
  if (check_single_class(y)) return;

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  std::vector<double> mean0(d, 0.0), mean1(d, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t r = 0; r < n; ++r) {
    auto& m = y[r] == 1 ? mean1 : mean0;
    (y[r] == 1 ? n1 : n0) += 1;
    for (std::size_t c = 0; c < d; ++c) m[c] += x(r, c);
  }
  for (std::size_t c = 0; c < d; ++c) {
    mean0[c] /= static_cast<double>(n0);
    mean1[c] /= static_cast<double>(n1);
  }

  // Pooled within-class covariance.
  Matrix cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& m = y[r] == 1 ? mean1 : mean0;
    for (std::size_t i = 0; i < d; ++i) {
      const double di = x(r, i) - m[i];
      for (std::size_t j = i; j < d; ++j) cov(i, j) += di * (x(r, j) - m[j]);
    }
  }
  const double denom = static_cast<double>(n > 2 ? n - 2 : 1);
  double trace = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) cov(i, j) /= denom;
    trace += cov(i, i);
  }
  const double avg_var = trace > 0 ? trace / static_cast<double>(d) : 1.0;
  // Shrink toward avg_var * I, plus a small ridge for numerical safety.
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) *= (1.0 - shrinkage_);
      if (i == j) cov(i, i) += shrinkage_ * avg_var + 1e-6 * avg_var;
      cov(j, i) = cov(i, j);
    }
  }

  std::vector<double> diff(d);
  for (std::size_t c = 0; c < d; ++c) diff[c] = mean1[c] - mean0[c];
  w_ = solve_spd(std::move(cov), std::move(diff));

  // Threshold at the midpoint of projected class means shifted by log prior.
  const double m0 = dot(w_, mean0);
  const double m1 = dot(w_, mean1);
  const double prior = std::log(static_cast<double>(n1) / static_cast<double>(n0));
  b_ = -(m0 + m1) / 2.0 + prior;
}

std::vector<double> LinearDiscriminantAnalysis::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void LinearDiscriminantAnalysis::predict_score_into(const Matrix& x,
                               std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    const auto z = x.multiply(w_);
    out.resize(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sigmoid(z[i] + b_);
    return;
  }
  out.resize(x.rows());
  matvec_into(x, w_, out);  // bit-identical to x.multiply(w_), no temporary
  for (double& v : out) v = sigmoid(v + b_);
}


void LinearDiscriminantAnalysis::save(std::ostream& out) const {
  save_base(out);
  model_io::write_vec(out, w_);
  model_io::write_double(out, b_);
}

void LinearDiscriminantAnalysis::load(std::istream& in) {
  load_base(in);
  w_ = model_io::read_vec(in);
  b_ = model_io::read_double(in);
}

}  // namespace mlaas
