#include "ml/linear/linear_svm.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

LinearSvm::LinearSvm(const ParamMap& params, std::uint64_t seed) : seed_(seed) {
  const double c = params.get_double("C", 1.0);
  lambda_ = params.contains("lambda") ? params.get_double("lambda", 1e-3)
                                      : 1.0 / std::max(1e-8, c * 100.0);
  squared_hinge_ = params.get_string("loss", "hinge") == "squared_hinge";
  max_iter_ = std::clamp<long long>(params.get_int("max_iter", 100), 1, 500);
}

void LinearSvm::fit(const Matrix& x, const std::vector<int>& y) {
  w_.assign(x.cols(), 0.0);
  b_ = 0.0;
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  const Matrix xs = scaler.transform(x);
  const auto ys = to_signed_labels(y);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();
  const double lambda = std::max(lambda_, 1e-8);

  std::vector<double> w(d, 0.0);
  double b = 0.0;
  Rng rng(derive_seed(seed_, "svm"));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::size_t t = 1;
  for (long long epoch = 0; epoch < max_iter_; ++epoch) {
    rng.shuffle(order);
    for (std::size_t k = 0; k < n; ++k, ++t) {
      const std::size_t i = order[k];
      const auto row = xs.row(i);
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      const double margin = ys[i] * (dot(w, row) + b);
      scale_inplace(w, 1.0 - eta * lambda);
      if (margin < 1.0) {
        // Hinge subgradient; squared hinge scales it by the violation
        // (clamped so early large-eta steps cannot blow up).
        const double g =
            squared_hinge_ ? std::min(2.0 * (1.0 - margin), 4.0) : 1.0;
        axpy(w, eta * g * ys[i], row);
        b += eta * g * ys[i] * 0.1;  // lightly-regularized intercept
      }
    }
  }

  const auto& mu = scaler.means();
  const auto& sd = scaler.stds();
  w_.resize(d);
  b_ = b;
  for (std::size_t c = 0; c < d; ++c) {
    w_[c] = w[c] / sd[c];
    b_ -= w[c] * mu[c] / sd[c];
  }
}

std::vector<double> LinearSvm::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void LinearSvm::predict_score_into(const Matrix& x,
                               std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    const auto z = x.multiply(w_);
    out.resize(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sigmoid(z[i] + b_);
    return;
  }
  out.resize(x.rows());
  matvec_into(x, w_, out);  // bit-identical to x.multiply(w_), no temporary
  for (double& v : out) v = sigmoid(v + b_);
}


void LinearSvm::save(std::ostream& out) const {
  save_base(out);
  model_io::write_vec(out, w_);
  model_io::write_double(out, b_);
}

void LinearSvm::load(std::istream& in) {
  load_base(in);
  w_ = model_io::read_vec(in);
  b_ = model_io::read_double(in);
}

}  // namespace mlaas
