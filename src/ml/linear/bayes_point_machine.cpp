#include "ml/linear/bayes_point_machine.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

BayesPointMachine::BayesPointMachine(const ParamMap& params, std::uint64_t seed)
    : seed_(seed) {
  training_iterations_ = std::clamp<long long>(params.get_int("training_iterations", 30), 1, 500);
  committee_size_ = static_cast<int>(std::clamp<long long>(params.get_int("committee_size", 9), 1, 64));
}

void BayesPointMachine::fit(const Matrix& x, const std::vector<int>& y) {
  w_.assign(x.cols(), 0.0);
  b_ = 0.0;
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  const Matrix xs = scaler.transform(x);
  const auto ys = to_signed_labels(y);
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  std::vector<double> w_avg(d, 0.0);
  double b_avg = 0.0;
  for (int member = 0; member < committee_size_; ++member) {
    Rng rng(derive_seed(seed_, "bpm-" + std::to_string(member)));
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::vector<double> w(d, 0.0);
    double b = 0.0;
    for (long long epoch = 0; epoch < training_iterations_; ++epoch) {
      rng.shuffle(order);
      bool any_mistake = false;
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = order[k];
        const auto row = xs.row(i);
        if (ys[i] * (dot(w, row) + b) <= 0.0) {
          axpy(w, ys[i], row);
          b += ys[i];
          any_mistake = true;
        }
      }
      if (!any_mistake) break;
    }
    // Project each version-space sample to the unit sphere before averaging,
    // as in the BPM construction.
    const double norm = std::sqrt(dot(w, w) + b * b);
    if (norm > 0) {
      axpy(w_avg, 1.0 / norm, w);
      b_avg += b / norm;
    }
  }

  const auto& mu = scaler.means();
  const auto& sd = scaler.stds();
  w_.resize(d);
  b_ = b_avg;
  for (std::size_t c = 0; c < d; ++c) {
    w_[c] = w_avg[c] / sd[c];
    b_ -= w_avg[c] * mu[c] / sd[c];
  }
}

std::vector<double> BayesPointMachine::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void BayesPointMachine::predict_score_into(const Matrix& x,
                                           std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    const auto z = x.multiply(w_);
    out.resize(x.rows());
    // Scale margins before the sigmoid so the committee average (unit norm)
    // still produces confident scores.
    for (std::size_t i = 0; i < x.rows(); ++i) out[i] = sigmoid(4.0 * (z[i] + b_));
    return;
  }
  out.resize(x.rows());
  matvec_into(x, w_, out);  // bit-identical to x.multiply(w_), no temporary
  for (double& v : out) v = sigmoid(4.0 * (v + b_));
}


void BayesPointMachine::save(std::ostream& out) const {
  save_base(out);
  model_io::write_vec(out, w_);
  model_io::write_double(out, b_);
}

void BayesPointMachine::load(std::istream& in) {
  load_base(in);
  w_ = model_io::read_vec(in);
  b_ = model_io::read_double(in);
}

}  // namespace mlaas
