// Binary-classification metrics (§3.2).
//
// The paper reports per-dataset F-score (harmonic mean of precision and
// recall on the positive class), plus accuracy/precision/recall in Table 3.
// Zero-denominator cases follow sklearn's zero_division=0 convention.
#pragma once

#include <string>
#include <vector>

namespace mlaas {

struct ConfusionMatrix {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  std::size_t total() const { return tp + fp + tn + fn; }
};

ConfusionMatrix confusion_matrix(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred);

struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
};

Metrics compute_metrics(const std::vector<int>& y_true, const std::vector<int>& y_pred);

double accuracy_score(const std::vector<int>& y_true, const std::vector<int>& y_pred);
double precision_score(const std::vector<int>& y_true, const std::vector<int>& y_pred);
double recall_score(const std::vector<int>& y_true, const std::vector<int>& y_pred);
double f1_score(const std::vector<int>& y_true, const std::vector<int>& y_pred);

}  // namespace mlaas
