// Multi-layer perceptron (Rumelhart, Hinton & Williams 1988) — the local
// library's MLPClassifier.
//
// One or two hidden layers trained with mini-batch backprop (SGD with
// momentum, or Adam) on logistic loss.  Features are standardized
// internally for optimization stability.
//
// Parameters (local library row of Table 1):
//   activation   "relu" | "tanh" | "logistic"      (default "relu")
//   solver       "adam" | "sgd"                    (default "adam")
//   alpha        L2 penalty                        (default 1e-4)
//   hidden       hidden layer width                (default 12)
//   layers       1 or 2 hidden layers              (default 1)
//   max_iter     epochs                            (default 40, capped 400)
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class MultiLayerPerceptron final : public Classifier {
 public:
  explicit MultiLayerPerceptron(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "mlp"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  std::string activation_;
  bool adam_;
  double alpha_;
  std::size_t hidden_;
  int layers_;
  long long max_iter_;
  std::uint64_t seed_;

  // Fitted parameters (weights per layer, row-major [out][in]) and the
  // standardization folded into the first layer at predict time.
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
  std::vector<double> feat_mean_, feat_std_;
};

}  // namespace mlaas
