#include "ml/neural/mlp.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

namespace {

double activate(double z, const std::string& kind) {
  if (kind == "relu") return z > 0 ? z : 0.0;
  if (kind == "tanh") return std::tanh(z);
  return sigmoid(z);  // logistic
}

double activate_grad(double a, const std::string& kind) {
  // Gradients expressed in terms of the activation output a.
  if (kind == "relu") return a > 0 ? 1.0 : 0.0;
  if (kind == "tanh") return 1.0 - a * a;
  return a * (1.0 - a);
}

}  // namespace

MultiLayerPerceptron::MultiLayerPerceptron(const ParamMap& params, std::uint64_t seed)
    : seed_(seed) {
  activation_ = params.get_string("activation", "relu");
  adam_ = params.get_string("solver", "adam") != "sgd";
  alpha_ = std::max(0.0, params.get_double("alpha", 1e-4));
  hidden_ = static_cast<std::size_t>(std::clamp<long long>(params.get_int("hidden", 12), 2, 256));
  layers_ = static_cast<int>(std::clamp<long long>(params.get_int("layers", 1), 1, 2));
  max_iter_ = std::clamp<long long>(params.get_int("max_iter", 40), 1, 400);
}

void MultiLayerPerceptron::fit(const Matrix& x, const std::vector<int>& y) {
  weights_.clear();
  biases_.clear();
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  const Matrix xs = scaler.transform(x);
  feat_mean_ = scaler.means();
  feat_std_ = scaler.stds();
  const std::size_t n = xs.rows();
  const std::size_t d = xs.cols();

  // Layer sizes: d -> hidden [-> hidden] -> 1.
  std::vector<std::size_t> sizes{d};
  for (int l = 0; l < layers_; ++l) sizes.push_back(hidden_);
  sizes.push_back(1);
  const std::size_t n_layers = sizes.size() - 1;

  Rng rng(derive_seed(seed_, "mlp"));
  weights_.resize(n_layers);
  biases_.resize(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    weights_[l] = Matrix(sizes[l + 1], sizes[l]);
    biases_[l].assign(sizes[l + 1], 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(sizes[l] + sizes[l + 1]));
    for (double& w : weights_[l].data()) w = rng.normal(0.0, scale);
  }

  // Adam / momentum state.
  std::vector<Matrix> m_w(n_layers), v_w(n_layers);
  std::vector<std::vector<double>> m_b(n_layers), v_b(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    m_w[l] = Matrix(sizes[l + 1], sizes[l]);
    v_w[l] = Matrix(sizes[l + 1], sizes[l]);
    m_b[l].assign(sizes[l + 1], 0.0);
    v_b[l].assign(sizes[l + 1], 0.0);
  }
  const double lr = adam_ ? 0.01 : 0.05;
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  long long step = 0;

  std::vector<std::vector<double>> act(n_layers + 1);
  std::vector<std::vector<double>> delta(n_layers);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (long long epoch = 0; epoch < max_iter_; ++epoch) {
    rng.shuffle(order);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = order[k];
      // Forward.
      act[0].assign(xs.row(i).begin(), xs.row(i).end());
      for (std::size_t l = 0; l < n_layers; ++l) {
        act[l + 1] = weights_[l].multiply(act[l]);
        for (std::size_t j = 0; j < act[l + 1].size(); ++j) {
          const double z = act[l + 1][j] + biases_[l][j];
          act[l + 1][j] = l + 1 == n_layers ? sigmoid(z) : activate(z, activation_);
        }
      }
      // Backward.
      const double target = y[i] == 1 ? 1.0 : 0.0;
      delta[n_layers - 1] = {act[n_layers][0] - target};
      for (std::size_t l = n_layers - 1; l-- > 0;) {
        delta[l] = weights_[l + 1].transpose_multiply(delta[l + 1]);
        for (std::size_t j = 0; j < delta[l].size(); ++j) {
          delta[l][j] *= activate_grad(act[l + 1][j], activation_);
        }
      }
      // Update.  Adam bias-correction factors are hoisted per step — they
      // depend only on the step counter, not on the weight.
      ++step;
      const double bc1 = adam_ ? 1.0 / (1.0 - std::pow(beta1, static_cast<double>(step))) : 1.0;
      const double bc2 = adam_ ? 1.0 / (1.0 - std::pow(beta2, static_cast<double>(step))) : 1.0;
      const double sgd_lr = lr / (1.0 + static_cast<double>(epoch) / 10.0);
      for (std::size_t l = 0; l < n_layers; ++l) {
        for (std::size_t o = 0; o < weights_[l].rows(); ++o) {
          const double db = delta[l][o];
          for (std::size_t in = 0; in < weights_[l].cols(); ++in) {
            const double g = db * act[l][in] + alpha_ * weights_[l](o, in);
            if (adam_) {
              double& m = m_w[l](o, in);
              double& v = v_w[l](o, in);
              m = beta1 * m + (1 - beta1) * g;
              v = beta2 * v + (1 - beta2) * g * g;
              weights_[l](o, in) -= lr * (m * bc1) / (std::sqrt(v * bc2) + eps);
            } else {
              double& m = m_w[l](o, in);
              m = 0.9 * m + g;
              weights_[l](o, in) -= sgd_lr * m;
            }
          }
          if (adam_) {
            double& m = m_b[l][o];
            double& v = v_b[l][o];
            m = beta1 * m + (1 - beta1) * db;
            v = beta2 * v + (1 - beta2) * db * db;
            biases_[l][o] -= lr * (m * bc1) / (std::sqrt(v * bc2) + eps);
          } else {
            double& m = m_b[l][o];
            m = 0.9 * m + db;
            biases_[l][o] -= sgd_lr * m;
          }
        }
      }
    }
  }
}

std::vector<double> MultiLayerPerceptron::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void MultiLayerPerceptron::predict_score_into(const Matrix& x,
                                              std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  const std::size_t n_layers = weights_.size();
  if (active_predict_kernel() == PredictKernel::kReference) {
    out.resize(x.rows());
    std::vector<double> act;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      act.assign(x.row(r).begin(), x.row(r).end());
      for (std::size_t c = 0; c < act.size(); ++c) {
        act[c] = (act[c] - feat_mean_[c]) / feat_std_[c];
      }
      for (std::size_t l = 0; l < n_layers; ++l) {
        auto next = weights_[l].multiply(act);
        for (std::size_t j = 0; j < next.size(); ++j) {
          const double z = next[j] + biases_[l][j];
          next[j] = l + 1 == n_layers ? sigmoid(z) : activate(z, activation_);
        }
        act = std::move(next);
      }
      out[r] = act[0];
    }
    return;
  }
  out.resize(x.rows());
  // Resolve the activation once per call (the reference path string-compares
  // per neuron) and double-buffer the activations — same math, no per-layer
  // allocation.  dense_layer_into is bit-identical to multiply + bias.
  const int kind = activation_ == "relu" ? 0 : activation_ == "tanh" ? 1 : 2;
  thread_local std::vector<double> act;
  thread_local std::vector<double> next;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    act.resize(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      act[c] = (row[c] - feat_mean_[c]) / feat_std_[c];
    }
    for (std::size_t l = 0; l < n_layers; ++l) {
      next.resize(weights_[l].rows());
      dense_layer_into(weights_[l], act, biases_[l], next);
      if (l + 1 == n_layers) {
        for (double& z : next) z = sigmoid(z);
      } else if (kind == 0) {
        for (double& z : next) z = z > 0 ? z : 0.0;
      } else if (kind == 1) {
        for (double& z : next) z = std::tanh(z);
      } else {
        for (double& z : next) z = sigmoid(z);
      }
      std::swap(act, next);
    }
    out[r] = act[0];
  }
}


void MultiLayerPerceptron::save(std::ostream& out) const {
  save_base(out);
  model_io::write_string(out, activation_);
  model_io::write_int(out, static_cast<long long>(weights_.size()));
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    model_io::write_matrix(out, weights_[l]);
    model_io::write_vec(out, biases_[l]);
  }
  model_io::write_vec(out, feat_mean_);
  model_io::write_vec(out, feat_std_);
}

void MultiLayerPerceptron::load(std::istream& in) {
  load_base(in);
  activation_ = model_io::read_string(in);
  const auto n_layers = static_cast<std::size_t>(model_io::read_int(in));
  weights_.resize(n_layers);
  biases_.resize(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    weights_[l] = model_io::read_matrix(in);
    biases_[l] = model_io::read_vec(in);
  }
  feat_mean_ = model_io::read_vec(in);
  feat_std_ = model_io::read_vec(in);
}

}  // namespace mlaas
