// Classifier interface.
//
// All classifiers are binary (labels {0,1}), are constructed from a ParamMap
// plus a seed, and report a probability-like score for class 1.  A
// classifier declares whether its decision boundary is linear — the family
// label used throughout §6 of the paper (Table 5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "ml/params.h"

namespace mlaas {

/// Which inference kernel predict_score()/predict_score_into() dispatch to.
/// kFlat runs the batched kernels (flattened struct-of-arrays ensembles,
/// blocked matvec/distance tiles); kReference runs each classifier's
/// original per-row scoring loop, preserved verbatim so tests can assert
/// bit-identity and benchmarks can measure the speedup.  Mirrors
/// set_active_tree_builder() on the training side; not meant to be flipped
/// while predicts are in flight.
enum class PredictKernel { kFlat, kReference };

PredictKernel active_predict_kernel();
void set_active_predict_kernel(PredictKernel kernel);

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on X (n x d) with labels y in {0,1}.  Implementations must
  /// tolerate single-class training sets (predict the constant class).
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;

  /// P(class == 1)-like score in [0, 1] per row.  Must only be called after
  /// fit().
  virtual std::vector<double> predict_score(const Matrix& x) const = 0;

  /// Scores written into `out` (resized to x.rows()).  The serving-path
  /// variant of predict_score(): a caller that keeps `out` alive across
  /// calls predicts repeatedly without reallocating.  Scores are identical
  /// (bit for bit) to predict_score().  The default forwards to
  /// predict_score(); optimized classifiers override this with their real
  /// kernel and implement predict_score() on top of it.
  virtual void predict_score_into(const Matrix& x, std::vector<double>& out) const;

  /// Hard labels; default thresholds score at 0.5.
  virtual std::vector<int> predict(const Matrix& x) const;

  /// predict() with caller-owned score scratch: `labels` is resized and
  /// filled, `score_scratch` is reused across calls.  Labels are identical
  /// to predict().
  void predict_into(const Matrix& x, std::vector<double>& score_scratch,
                    std::vector<int>& labels) const;

  /// Registry name, e.g. "logistic_regression".
  virtual std::string name() const = 0;

  /// Linear decision boundary? (Table 5's linear/non-linear families.)
  virtual bool is_linear() const = 0;

  /// Serialize the fitted state (including predict-time hyper-parameters);
  /// restore with load() on a default-constructed instance.  See
  /// ml/serialize.h for the framing format and save_model()/load_model().
  virtual void save(std::ostream& out) const = 0;
  virtual void load(std::istream& in) = 0;

 protected:
  /// Shared single-class handling: returns true (and records the class) if
  /// y is constant; predict_score then returns that constant.
  bool check_single_class(const std::vector<int>& y);
  bool single_class() const { return single_class_; }
  double single_class_score() const { return single_class_label_ == 1 ? 1.0 : 0.0; }

  /// Shared predict_score_into() prologue: when the training set was
  /// single-class, fills `out` with the constant score and returns true.
  bool fill_single_class(std::size_t rows, std::vector<double>& out) const;

  /// Serialize/restore the shared single-class state; every concrete
  /// save()/load() implementation calls these first.
  void save_base(std::ostream& out) const;
  void load_base(std::istream& in);

 private:
  bool single_class_ = false;
  int single_class_label_ = 0;
};

using ClassifierPtr = std::unique_ptr<Classifier>;

/// Count of label-1 entries.
std::size_t count_positive(const std::vector<int>& y);

/// Convert {0,1} labels to {-1,+1} doubles (margin-based learners).
std::vector<double> to_signed_labels(const std::vector<int>& y);

}  // namespace mlaas
