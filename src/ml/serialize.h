// Model persistence.
//
// Fitted classifiers serialize to a line-oriented text format:
//
//   mlaas-model 1
//   <registry-name>
//   <class-specific state>
//
// save_model / load_model round-trip any registry classifier; the state
// includes every hyper-parameter the model needs at predict time, so a
// loaded model predicts identically to the saved one.
//
//   std::ofstream out("model.txt");
//   save_model(out, *classifier);
//   ...
//   std::ifstream in("model.txt");
//   ClassifierPtr restored = load_model(in);
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "ml/classifier.h"

namespace mlaas {

void save_model(std::ostream& out, const Classifier& classifier);

/// Reads a model written by save_model; throws std::runtime_error on a bad
/// magic header or truncated state.
ClassifierPtr load_model(std::istream& in);

/// Low-level token readers/writers shared by the per-classifier
/// implementations (text, whitespace-separated, full double precision).
namespace model_io {

void write_double(std::ostream& out, double v);
double read_double(std::istream& in);
void write_int(std::ostream& out, long long v);
long long read_int(std::istream& in);
void write_string(std::ostream& out, const std::string& s);  // no whitespace allowed
std::string read_string(std::istream& in);
void write_vec(std::ostream& out, std::span<const double> v);
std::vector<double> read_vec(std::istream& in);
void write_ivec(std::ostream& out, std::span<const int> v);
std::vector<int> read_ivec(std::istream& in);
void write_matrix(std::ostream& out, const Matrix& m);
Matrix read_matrix(std::istream& in);

/// Throws std::runtime_error when the stream has failed.
void check(std::istream& in, const char* context);

}  // namespace model_io

}  // namespace mlaas
