#include "ml/params.h"

#include <sstream>
#include <stdexcept>

namespace mlaas {

std::string to_string(const ParamValue& v) {
  return std::visit(
      [](const auto& x) -> std::string {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return x;
        } else if constexpr (std::is_same_v<T, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<T, double>) {
          std::ostringstream os;
          os << x;
          return os.str();
        } else {
          return std::to_string(x);
        }
      },
      v);
}

ParamMap::ParamMap(std::initializer_list<std::pair<const std::string, ParamValue>> init)
    : values_(init) {}

void ParamMap::set(const std::string& name, ParamValue value) {
  values_[name] = std::move(value);
}

bool ParamMap::contains(const std::string& name) const { return values_.count(name) > 0; }

double ParamMap::get_double(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const double* d = std::get_if<double>(&it->second)) return *d;
  if (const long long* i = std::get_if<long long>(&it->second)) return static_cast<double>(*i);
  throw std::invalid_argument("ParamMap: " + name + " is not numeric");
}

long long ParamMap::get_int(const std::string& name, long long def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const long long* i = std::get_if<long long>(&it->second)) return *i;
  if (const double* d = std::get_if<double>(&it->second)) return static_cast<long long>(*d);
  throw std::invalid_argument("ParamMap: " + name + " is not numeric");
}

std::string ParamMap::get_string(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const std::string* s = std::get_if<std::string>(&it->second)) return *s;
  throw std::invalid_argument("ParamMap: " + name + " is not a string");
}

bool ParamMap::get_bool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (const bool* b = std::get_if<bool>(&it->second)) return *b;
  throw std::invalid_argument("ParamMap: " + name + " is not a bool");
}

ParamMap parse_params(const std::string& text) {
  ParamMap out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("parse_params: expected k=v, got '" + entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (value == "true" || value == "false") {
      out.set(key, value == "true");
      continue;
    }
    try {
      std::size_t consumed = 0;
      const long long as_int = std::stoll(value, &consumed);
      if (consumed == value.size()) {
        out.set(key, as_int);
        continue;
      }
      const double as_double = std::stod(value, &consumed);
      if (consumed == value.size()) {
        out.set(key, as_double);
        continue;
      }
    } catch (const std::exception&) {
      // falls through to string
    }
    out.set(key, value);
  }
  return out;
}

std::string ParamMap::to_string() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ",";
    out += k + "=" + mlaas::to_string(v);
  }
  return out;
}

}  // namespace mlaas
