#include "ml/ranking_metrics.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "linalg/stats.h"

namespace mlaas {

double roc_auc_score(const std::vector<int>& y_true, const std::vector<double>& scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("roc_auc_score: size mismatch");
  }
  std::size_t n_pos = 0;
  for (int y : y_true) n_pos += y == 1 ? 1 : 0;
  const std::size_t n_neg = y_true.size() - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // AUC = (rank-sum of positives - n_pos(n_pos+1)/2) / (n_pos * n_neg).
  const auto ranks = fractional_ranks(scores);
  double rank_sum = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] == 1) rank_sum += ranks[i];
  }
  const double n_pos_d = static_cast<double>(n_pos);
  return (rank_sum - n_pos_d * (n_pos_d + 1.0) / 2.0) /
         (n_pos_d * static_cast<double>(n_neg));
}

double average_precision_score(const std::vector<int>& y_true,
                               const std::vector<double>& scores) {
  if (y_true.size() != scores.size()) {
    throw std::invalid_argument("average_precision_score: size mismatch");
  }
  std::size_t n_pos = 0;
  for (int y : y_true) n_pos += y == 1 ? 1 : 0;
  if (n_pos == 0) return 0.0;

  // Sort by descending score; sum precision at each recall step:
  // AP = sum_k (R_k - R_{k-1}) * P_k.
  std::vector<std::size_t> order(y_true.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  double ap = 0.0;
  std::size_t tp = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (y_true[order[k]] != 1) continue;
    ++tp;
    const double precision = static_cast<double>(tp) / static_cast<double>(k + 1);
    ap += precision / static_cast<double>(n_pos);
  }
  return ap;
}

}  // namespace mlaas
