// Classifier factory.
//
// All classifiers are constructible by registry name with a ParamMap and a
// seed; the platform layer builds its pipelines exclusively through this
// factory.  Short codes match the paper's Table 4 abbreviations.
#pragma once

#include <string>
#include <vector>

#include "ml/classifier.h"

namespace mlaas {

/// Construct a classifier by name.  Known names:
///   logistic_regression (LR), naive_bayes (NB), linear_svm (SVM),
///   lda (LDA), averaged_perceptron (AP), bayes_point_machine (BPM),
///   knn (KNN), decision_tree (DT), random_forest (RF), bagging (BAG),
///   boosted_trees (BST), decision_jungle (DJ), mlp (MLP), rbf_svm (RBF)
/// Throws std::invalid_argument for unknown names.
ClassifierPtr make_classifier(const std::string& name, const ParamMap& params = {},
                              std::uint64_t seed = 0);

/// All registry names.
std::vector<std::string> classifier_names();

/// Table 4 abbreviation for a registry name (e.g. "boosted_trees" -> "BST").
std::string classifier_abbrev(const std::string& name);

/// Table 5: is this registry name in the linear family?
bool classifier_is_linear(const std::string& name);

}  // namespace mlaas
