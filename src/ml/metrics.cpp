#include "ml/metrics.h"

#include <stdexcept>

namespace mlaas {

ConfusionMatrix confusion_matrix(const std::vector<int>& y_true,
                                 const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const bool t = y_true[i] == 1;
    const bool p = y_pred[i] == 1;
    if (t && p) ++cm.tp;
    else if (!t && p) ++cm.fp;
    else if (t && !p) ++cm.fn;
    else ++cm.tn;
  }
  return cm;
}

Metrics compute_metrics(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  const ConfusionMatrix cm = confusion_matrix(y_true, y_pred);
  Metrics m;
  const double total = static_cast<double>(cm.total());
  m.accuracy = total > 0 ? static_cast<double>(cm.tp + cm.tn) / total : 0.0;
  const double pd = static_cast<double>(cm.tp + cm.fp);
  const double rd = static_cast<double>(cm.tp + cm.fn);
  m.precision = pd > 0 ? static_cast<double>(cm.tp) / pd : 0.0;
  m.recall = rd > 0 ? static_cast<double>(cm.tp) / rd : 0.0;
  m.f_score = (m.precision + m.recall) > 0
                  ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
                  : 0.0;
  return m;
}

double accuracy_score(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return compute_metrics(y_true, y_pred).accuracy;
}
double precision_score(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return compute_metrics(y_true, y_pred).precision;
}
double recall_score(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return compute_metrics(y_true, y_pred).recall;
}
double f1_score(const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  return compute_metrics(y_true, y_pred).f_score;
}

}  // namespace mlaas
