// Hyper-parameter maps.
//
// Classifier and feature-selection hyper-parameters travel as string-keyed
// variant maps so the platform layer can expose grids generically (§3.2:
// categorical params enumerate all options; numeric params sweep
// {default/100, default, default*100}).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mlaas {

using ParamValue = std::variant<double, long long, std::string, bool>;

std::string to_string(const ParamValue& v);

class ParamMap {
 public:
  ParamMap() = default;
  ParamMap(std::initializer_list<std::pair<const std::string, ParamValue>> init);

  void set(const std::string& name, ParamValue value);
  bool contains(const std::string& name) const;

  /// Typed getters with defaults.  Numeric getters convert between
  /// double/long long; wrong-category access throws std::invalid_argument.
  double get_double(const std::string& name, double def) const;
  long long get_int(const std::string& name, long long def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Canonical "k=v,k=v" form (sorted keys) — stable cache/grouping key.
  std::string to_string() const;

  bool operator==(const ParamMap&) const = default;

 private:
  std::map<std::string, ParamValue> values_;
};

/// Parse "k=v,k=v" into a ParamMap with type inference: integers become
/// long long, other numbers double, true/false bool, everything else string.
/// Inverse of ParamMap::to_string() for round-trippable values.  Throws
/// std::invalid_argument on malformed input.
ParamMap parse_params(const std::string& text);

}  // namespace mlaas
