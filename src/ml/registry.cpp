#include "ml/registry.h"

#include <stdexcept>

#include "ml/bayes/naive_bayes.h"
#include "ml/kernel/rbf_svm.h"
#include "ml/linear/averaged_perceptron.h"
#include "ml/linear/bayes_point_machine.h"
#include "ml/linear/lda.h"
#include "ml/linear/linear_svm.h"
#include "ml/linear/logistic_regression.h"
#include "ml/neighbors/knn.h"
#include "ml/neural/mlp.h"
#include "ml/tree/bagging.h"
#include "ml/tree/boosted_trees.h"
#include "ml/tree/decision_jungle.h"
#include "ml/tree/decision_tree.h"
#include "ml/tree/random_forest.h"

namespace mlaas {

ClassifierPtr make_classifier(const std::string& name, const ParamMap& params,
                              std::uint64_t seed) {
  if (name == "logistic_regression") return std::make_unique<LogisticRegression>(params, seed);
  if (name == "naive_bayes") return std::make_unique<GaussianNaiveBayes>(params, seed);
  if (name == "linear_svm") return std::make_unique<LinearSvm>(params, seed);
  if (name == "lda") return std::make_unique<LinearDiscriminantAnalysis>(params, seed);
  if (name == "averaged_perceptron") return std::make_unique<AveragedPerceptron>(params, seed);
  if (name == "bayes_point_machine") return std::make_unique<BayesPointMachine>(params, seed);
  if (name == "knn") return std::make_unique<KNearestNeighbors>(params, seed);
  if (name == "decision_tree") return std::make_unique<DecisionTree>(params, seed);
  if (name == "random_forest") return std::make_unique<RandomForest>(params, seed);
  if (name == "bagging") return std::make_unique<BaggedTrees>(params, seed);
  if (name == "boosted_trees") return std::make_unique<BoostedDecisionTrees>(params, seed);
  if (name == "decision_jungle") return std::make_unique<DecisionJungle>(params, seed);
  if (name == "mlp") return std::make_unique<MultiLayerPerceptron>(params, seed);
  if (name == "rbf_svm") return std::make_unique<RbfSvm>(params, seed);
  throw std::invalid_argument("make_classifier: unknown classifier " + name);
}

std::vector<std::string> classifier_names() {
  return {"logistic_regression", "naive_bayes",  "linear_svm",       "lda",
          "averaged_perceptron", "bayes_point_machine", "knn",       "decision_tree",
          "random_forest",       "bagging",      "boosted_trees",    "decision_jungle",
          "mlp",                 "rbf_svm"};
}

std::string classifier_abbrev(const std::string& name) {
  if (name == "logistic_regression") return "LR";
  if (name == "naive_bayes") return "NB";
  if (name == "linear_svm") return "SVM";
  if (name == "lda") return "LDA";
  if (name == "averaged_perceptron") return "AP";
  if (name == "bayes_point_machine") return "BPM";
  if (name == "knn") return "KNN";
  if (name == "decision_tree") return "DT";
  if (name == "random_forest") return "RF";
  if (name == "bagging") return "BAG";
  if (name == "boosted_trees") return "BST";
  if (name == "decision_jungle") return "DJ";
  if (name == "mlp") return "MLP";
  if (name == "rbf_svm") return "RBF";
  return name;
}

bool classifier_is_linear(const std::string& name) {
  // Table 5's family assignment (NB counted as linear, as in the paper).
  return name == "logistic_regression" || name == "naive_bayes" || name == "linear_svm" ||
         name == "lda" || name == "averaged_perceptron" || name == "bayes_point_machine";
}

}  // namespace mlaas
