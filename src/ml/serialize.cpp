#include "ml/serialize.h"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "ml/registry.h"

namespace mlaas {

namespace model_io {

void write_double(std::ostream& out, double v) {
  const auto old = out.precision(std::numeric_limits<double>::max_digits10);
  out << v << '\n';
  out.precision(old);
}

double read_double(std::istream& in) {
  double v = 0.0;
  in >> v;
  check(in, "double");
  return v;
}

void write_int(std::ostream& out, long long v) { out << v << '\n'; }

long long read_int(std::istream& in) {
  long long v = 0;
  in >> v;
  check(in, "int");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  if (s.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument("model_io: strings must not contain whitespace: " + s);
  }
  out << s << '\n';
}

std::string read_string(std::istream& in) {
  std::string s;
  in >> s;
  check(in, "string");
  return s;
}

void write_vec(std::ostream& out, std::span<const double> v) {
  const auto old = out.precision(std::numeric_limits<double>::max_digits10);
  out << v.size();
  for (double x : v) out << ' ' << x;
  out << '\n';
  out.precision(old);
}

std::vector<double> read_vec(std::istream& in) {
  std::size_t n = 0;
  in >> n;
  check(in, "vec size");
  std::vector<double> v(n);
  for (auto& x : v) in >> x;
  check(in, "vec data");
  return v;
}

void write_ivec(std::ostream& out, std::span<const int> v) {
  out << v.size();
  for (int x : v) out << ' ' << x;
  out << '\n';
}

std::vector<int> read_ivec(std::istream& in) {
  std::size_t n = 0;
  in >> n;
  check(in, "ivec size");
  std::vector<int> v(n);
  for (auto& x : v) in >> x;
  check(in, "ivec data");
  return v;
}

void write_matrix(std::ostream& out, const Matrix& m) {
  out << m.rows() << ' ' << m.cols() << '\n';
  const auto old = out.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) out << (c ? " " : "") << row[c];
    out << '\n';
  }
  out.precision(old);
}

Matrix read_matrix(std::istream& in) {
  std::size_t rows = 0, cols = 0;
  in >> rows >> cols;
  check(in, "matrix shape");
  Matrix m(rows, cols);
  for (double& v : m.data()) in >> v;
  check(in, "matrix data");
  return m;
}

void check(std::istream& in, const char* context) {
  if (!in) throw std::runtime_error(std::string("load_model: truncated or malformed ") + context);
}

}  // namespace model_io

namespace {
constexpr const char* kMagic = "mlaas-model";
constexpr int kVersion = 1;
}  // namespace

void save_model(std::ostream& out, const Classifier& classifier) {
  out << kMagic << ' ' << kVersion << '\n';
  model_io::write_string(out, classifier.name());
  classifier.save(out);
  if (!out) throw std::runtime_error("save_model: stream write failed");
}

ClassifierPtr load_model(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (!in || magic != kMagic) throw std::runtime_error("load_model: bad magic header");
  if (version != kVersion) {
    throw std::runtime_error("load_model: unsupported version " + std::to_string(version));
  }
  const std::string name = model_io::read_string(in);
  ClassifierPtr classifier = make_classifier(name);
  classifier->load(in);
  return classifier;
}

}  // namespace mlaas
