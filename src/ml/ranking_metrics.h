// Score-based (threshold-free) metrics: ROC-AUC and average precision.
//
// §3.2 of the paper rules these out for the cross-platform comparison
// because PredictionIO and several BigML classifiers expose labels only;
// they are provided here for the platforms and classifiers that DO expose
// scores (see TrainedModel::exposes_scores), and for library users.
#pragma once

#include <vector>

namespace mlaas {

/// Area under the ROC curve via the rank-sum (Mann-Whitney U) formulation;
/// ties share fractional ranks.  Returns 0.5 when one class is absent.
double roc_auc_score(const std::vector<int>& y_true, const std::vector<double>& scores);

/// Average precision (area under the precision-recall curve, step-wise, as
/// sklearn computes it).  Returns 0.0 when there are no positives.
double average_precision_score(const std::vector<int>& y_true,
                               const std::vector<double>& scores);

}  // namespace mlaas
