#include "ml/feature/scalers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"

namespace mlaas {

void StandardScaler::fit(const Matrix& x, const std::vector<int>&) {
  mean_.resize(x.cols());
  std_.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.col(c);
    mean_[c] = mean(col);
    const double s = stddev(col);
    std_[c] = s > 0 ? s : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (x.cols() != mean_.size()) throw std::invalid_argument("StandardScaler: column mismatch");
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) = (out(r, c) - mean_[c]) / std_[c];
  }
  return out;
}

void MinMaxScaler::fit(const Matrix& x, const std::vector<int>&) {
  min_.resize(x.cols());
  range_.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.col(c);
    min_[c] = min_value(col);
    const double r = max_value(col) - min_[c];
    range_[c] = r > 0 ? r : 1.0;
  }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  if (x.cols() != min_.size()) throw std::invalid_argument("MinMaxScaler: column mismatch");
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) = (out(r, c) - min_[c]) / range_[c];
  }
  return out;
}

void MaxAbsScaler::fit(const Matrix& x, const std::vector<int>&) {
  scale_.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) m = std::max(m, std::abs(x(r, c)));
    scale_[c] = m > 0 ? m : 1.0;
  }
}

Matrix MaxAbsScaler::transform(const Matrix& x) const {
  if (x.cols() != scale_.size()) throw std::invalid_argument("MaxAbsScaler: column mismatch");
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) /= scale_[c];
  }
  return out;
}

RowNormalizer::RowNormalizer(int p) : p_(p) {
  if (p != 1 && p != 2) throw std::invalid_argument("RowNormalizer: p must be 1 or 2");
}

void RowNormalizer::fit(const Matrix&, const std::vector<int>&) {}

Matrix RowNormalizer::transform(const Matrix& x) const {
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    const double n = p_ == 1 ? norm1(row) : norm2(row);
    if (n > 0) scale_inplace(row, 1.0 / n);
  }
  return out;
}

void GaussianNorm::fit(const Matrix& x, const std::vector<int>&) {
  sorted_cols_.resize(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    sorted_cols_[c] = x.col(c);
    std::sort(sorted_cols_[c].begin(), sorted_cols_[c].end());
  }
}

Matrix GaussianNorm::transform(const Matrix& x) const {
  if (x.cols() != sorted_cols_.size()) throw std::invalid_argument("GaussianNorm: column mismatch");
  Matrix out = x;
  for (std::size_t c = 0; c < out.cols(); ++c) {
    const auto& sorted = sorted_cols_[c];
    const double n = static_cast<double>(sorted.size());
    for (std::size_t r = 0; r < out.rows(); ++r) {
      // Empirical CDF position via binary search, midpoint of [lower, upper]
      // bound so ties map to their average rank.
      const double v = out(r, c);
      const auto lo = std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
      const auto hi = std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
      double q = (static_cast<double>(lo) + static_cast<double>(hi)) / (2.0 * n);
      q = std::clamp(q, 1.0 / (n + 1.0), n / (n + 1.0));
      out(r, c) = inverse_normal_cdf(q);
    }
  }
  return out;
}

double inverse_normal_cdf(double p) {
  if (p <= 0.0 || p >= 1.0) throw std::invalid_argument("inverse_normal_cdf: p in (0,1)");
  // Peter Acklam's rational approximation (relative error < 1.15e-9).
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

TransformerPtr make_scaler(const std::string& name) {
  if (name == "standard_scaler") return std::make_unique<StandardScaler>();
  if (name == "minmax_scaler") return std::make_unique<MinMaxScaler>();
  if (name == "maxabs_scaler") return std::make_unique<MaxAbsScaler>();
  if (name == "l1_normalizer") return std::make_unique<RowNormalizer>(1);
  if (name == "l2_normalizer") return std::make_unique<RowNormalizer>(2);
  if (name == "gaussian_norm") return std::make_unique<GaussianNorm>();
  throw std::invalid_argument("make_scaler: unknown scaler " + name);
}

}  // namespace mlaas
