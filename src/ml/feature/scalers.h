// Data-transformation steps (the Preprocessing control of Figure 1).
//
// Implements the scaler/normalizer set exposed by the local library row of
// Table 1: StandardScaler, MinMaxScaler, MaxAbsScaler, L1Normalization,
// L2Normalization and GaussianNorm (rank-based mapping to a standard normal,
// the analogue of sklearn's QuantileTransformer(output="normal")).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace mlaas {

/// A fitted feature-space transformation.  fit() learns statistics on
/// training data; transform() applies them to any matrix with the same
/// column count.
class Transformer {
 public:
  virtual ~Transformer() = default;
  virtual void fit(const Matrix& x, const std::vector<int>& y) = 0;
  virtual Matrix transform(const Matrix& x) const = 0;
  virtual std::string name() const = 0;
};

using TransformerPtr = std::unique_ptr<Transformer>;

/// (x - mean) / std per column.
class StandardScaler final : public Transformer {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "standard_scaler"; }

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stds() const { return std_; }

 private:
  std::vector<double> mean_, std_;
};

/// (x - min) / (max - min) per column.
class MinMaxScaler final : public Transformer {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "minmax_scaler"; }

 private:
  std::vector<double> min_, range_;
};

/// x / max(|x|) per column.
class MaxAbsScaler final : public Transformer {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "maxabs_scaler"; }

 private:
  std::vector<double> scale_;
};

/// Row-wise Lp normalization (stateless).
class RowNormalizer final : public Transformer {
 public:
  explicit RowNormalizer(int p);  // p = 1 or 2
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return p_ == 1 ? "l1_normalizer" : "l2_normalizer"; }

 private:
  int p_;
};

/// Per-column rank -> standard-normal quantile mapping; new values are
/// mapped by interpolation against the training order statistics.
class GaussianNorm final : public Transformer {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "gaussian_norm"; }

 private:
  std::vector<std::vector<double>> sorted_cols_;
};

/// Inverse standard-normal CDF (Acklam's rational approximation).
double inverse_normal_cdf(double p);

/// Factory by registry name; throws std::invalid_argument on unknown names.
TransformerPtr make_scaler(const std::string& name);

}  // namespace mlaas
