// Filter-method feature selection (§2 "Feature selection").
//
// A statistical score, independent of the downstream classifier, ranks
// features by class-discriminatory power; SelectKBest keeps the top ones.
// Covers the 7 Microsoft filter statistics (Pearson, Mutual information,
// Kendall, Spearman, Chi-squared, Fisher, Count) plus sklearn's f_classif
// and mutual_info_classif.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ml/feature/scalers.h"

namespace mlaas {

/// Per-feature relevance score; larger = more relevant.
using FeatureScoreFn =
    std::function<double(std::span<const double> feature, std::span<const int> labels)>;

/// Look up a score function by name: "pearson", "spearman", "kendall",
/// "mutual_info", "chi2", "fisher", "count", "f_classif".
FeatureScoreFn feature_score_fn(const std::string& name);

/// Score every column of x.
std::vector<double> score_features(const Matrix& x, const std::vector<int>& y,
                                   const FeatureScoreFn& fn);

/// Keep the k highest-scoring features.  k == 0 means "half, at least 1".
class SelectKBest final : public Transformer {
 public:
  SelectKBest(std::string score_name, std::size_t k = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "select_k_best(" + score_name_ + ")"; }

  const std::vector<std::size_t>& selected() const { return selected_; }

 private:
  std::string score_name_;
  std::size_t k_;
  std::vector<std::size_t> selected_;
};

/// Fisher-LDA feature extraction (Microsoft's "Fisher LDA" FEAT option):
/// projects onto the Fisher discriminant direction, producing one feature.
class FisherLdaExtractor final : public Transformer {
 public:
  void fit(const Matrix& x, const std::vector<int>& y) override;
  Matrix transform(const Matrix& x) const override;
  std::string name() const override { return "fisher_lda"; }

 private:
  std::vector<double> direction_;
};

/// Build a FEAT pipeline step by registry name.  Accepts scaler names (see
/// make_scaler), "filter_<score>" (SelectKBest), "fisher_lda", and "none"
/// (returns nullptr).
TransformerPtr make_feature_step(const std::string& name);

}  // namespace mlaas
