#include "ml/feature/filters.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"

namespace mlaas {

FeatureScoreFn feature_score_fn(const std::string& name) {
  auto labels_as_doubles = [](std::span<const int> y) {
    std::vector<double> out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i];
    return out;
  };
  if (name == "pearson") {
    return [=](std::span<const double> f, std::span<const int> y) {
      return std::abs(pearson(f, labels_as_doubles(y)));
    };
  }
  if (name == "spearman") {
    return [=](std::span<const double> f, std::span<const int> y) {
      return std::abs(spearman(f, labels_as_doubles(y)));
    };
  }
  if (name == "kendall") {
    return [=](std::span<const double> f, std::span<const int> y) {
      return std::abs(kendall(f, labels_as_doubles(y)));
    };
  }
  if (name == "mutual_info") {
    return [](std::span<const double> f, std::span<const int> y) {
      return mutual_information(f, y);
    };
  }
  if (name == "chi2") {
    return [](std::span<const double> f, std::span<const int> y) {
      // chi2 assumes non-negative features; shift to min 0 first.
      std::vector<double> shifted(f.begin(), f.end());
      const double lo = min_value(shifted);
      if (lo < 0) {
        for (double& v : shifted) v -= lo;
      }
      return chi_squared(shifted, y);
    };
  }
  if (name == "fisher") {
    return [](std::span<const double> f, std::span<const int> y) {
      return fisher_score(f, y);
    };
  }
  if (name == "count") {
    // Count-based: features with more distinct non-zero mass rank higher
    // (a variance/coverage proxy, Microsoft's "Count" filter).
    return [](std::span<const double> f, std::span<const int>) { return variance(f); };
  }
  if (name == "f_classif") {
    return [](std::span<const double> f, std::span<const int> y) { return anova_f(f, y); };
  }
  throw std::invalid_argument("feature_score_fn: unknown score " + name);
}

std::vector<double> score_features(const Matrix& x, const std::vector<int>& y,
                                   const FeatureScoreFn& fn) {
  std::vector<double> scores(x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.col(c);
    const double s = fn(col, y);
    scores[c] = std::isfinite(s) ? s : 0.0;
  }
  return scores;
}

SelectKBest::SelectKBest(std::string score_name, std::size_t k)
    : score_name_(std::move(score_name)), k_(k) {
  feature_score_fn(score_name_);  // validate eagerly; throws on unknown names
}

void SelectKBest::fit(const Matrix& x, const std::vector<int>& y) {
  const auto scores = score_features(x, y, feature_score_fn(score_name_));
  std::size_t k = k_ == 0 ? std::max<std::size_t>(1, x.cols() / 2) : std::min(k_, x.cols());
  std::vector<std::size_t> order(x.cols());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  selected_.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(selected_.begin(), selected_.end());
}

Matrix SelectKBest::transform(const Matrix& x) const {
  if (selected_.empty()) throw std::logic_error("SelectKBest: transform before fit");
  return x.select_cols(selected_);
}

void FisherLdaExtractor::fit(const Matrix& x, const std::vector<int>& y) {
  const std::size_t d = x.cols();
  // Class means.
  std::vector<double> mean0(d, 0.0), mean1(d, 0.0);
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto& m = y[r] == 1 ? mean1 : mean0;
    (y[r] == 1 ? n1 : n0) += 1;
    for (std::size_t c = 0; c < d; ++c) m[c] += x(r, c);
  }
  if (n0 == 0 || n1 == 0) {
    direction_.assign(d, 0.0);
    if (d > 0) direction_[0] = 1.0;
    return;
  }
  for (std::size_t c = 0; c < d; ++c) {
    mean0[c] /= static_cast<double>(n0);
    mean1[c] /= static_cast<double>(n1);
  }
  // Within-class scatter with ridge regularization.
  Matrix sw(d, d);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto& m = y[r] == 1 ? mean1 : mean0;
    for (std::size_t i = 0; i < d; ++i) {
      const double di = x(r, i) - m[i];
      for (std::size_t j = i; j < d; ++j) {
        sw(i, j) += di * (x(r, j) - m[j]);
      }
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < d; ++i) trace += sw(i, i);
  const double ridge = 1e-3 * (trace > 0 ? trace / static_cast<double>(d) : 1.0);
  for (std::size_t i = 0; i < d; ++i) {
    sw(i, i) += ridge;
    for (std::size_t j = i + 1; j < d; ++j) sw(j, i) = sw(i, j);
  }
  std::vector<double> diff(d);
  for (std::size_t c = 0; c < d; ++c) diff[c] = mean1[c] - mean0[c];
  direction_ = solve_spd(std::move(sw), std::move(diff));
  const double n = norm2(direction_);
  if (n > 0) scale_inplace(direction_, 1.0 / n);
}

Matrix FisherLdaExtractor::transform(const Matrix& x) const {
  if (direction_.size() != x.cols()) {
    throw std::invalid_argument("FisherLdaExtractor: column mismatch");
  }
  Matrix out(x.rows(), 1);
  const auto projected = x.multiply(direction_);
  for (std::size_t r = 0; r < x.rows(); ++r) out(r, 0) = projected[r];
  return out;
}

TransformerPtr make_feature_step(const std::string& name) {
  if (name.empty() || name == "none") return nullptr;
  if (name.rfind("filter_", 0) == 0) {
    return std::make_unique<SelectKBest>(name.substr(7));
  }
  if (name == "fisher_lda") return std::make_unique<FisherLdaExtractor>();
  return make_scaler(name);
}

}  // namespace mlaas
