#include "ml/classifier.h"

#include <atomic>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace mlaas {

namespace {
std::atomic<PredictKernel> g_predict_kernel{PredictKernel::kFlat};
}  // namespace

PredictKernel active_predict_kernel() {
  return g_predict_kernel.load(std::memory_order_relaxed);
}

void set_active_predict_kernel(PredictKernel kernel) {
  g_predict_kernel.store(kernel, std::memory_order_relaxed);
}

void Classifier::save_base(std::ostream& out) const {
  out << (single_class_ ? 1 : 0) << ' ' << single_class_label_ << '\n';
}

void Classifier::load_base(std::istream& in) {
  int flag = 0;
  in >> flag >> single_class_label_;
  if (!in) throw std::runtime_error("load_model: truncated classifier base state");
  single_class_ = flag != 0;
}

void Classifier::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  out = predict_score(x);
}

std::vector<int> Classifier::predict(const Matrix& x) const {
  const auto scores = predict_score(x);
  std::vector<int> labels(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) labels[i] = scores[i] > 0.5 ? 1 : 0;
  return labels;
}

void Classifier::predict_into(const Matrix& x, std::vector<double>& score_scratch,
                              std::vector<int>& labels) const {
  predict_score_into(x, score_scratch);
  labels.resize(score_scratch.size());
  for (std::size_t i = 0; i < score_scratch.size(); ++i) {
    labels[i] = score_scratch[i] > 0.5 ? 1 : 0;
  }
}

bool Classifier::fill_single_class(std::size_t rows, std::vector<double>& out) const {
  if (!single_class_) return false;
  out.assign(rows, single_class_score());
  return true;
}

bool Classifier::check_single_class(const std::vector<int>& y) {
  const std::size_t pos = count_positive(y);
  single_class_ = y.empty() || pos == 0 || pos == y.size();
  if (single_class_) single_class_label_ = pos > 0 ? 1 : 0;
  return single_class_;
}

std::size_t count_positive(const std::vector<int>& y) {
  std::size_t pos = 0;
  for (int v : y) pos += v == 1 ? 1 : 0;
  return pos;
}

std::vector<double> to_signed_labels(const std::vector<int>& y) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] == 1 ? 1.0 : -1.0;
  return out;
}

}  // namespace mlaas
