// RBF-kernel SVM trained with kernelized Pegasos.
//
// Used by the GooglePrediction simulator's non-linear arm (§6.1 infers that
// Google switches to a non-linear kernel classifier on datasets like CIRCLE)
// and available to the local library for kernel experiments.
//
// Parameters:
//   C         inverse regularization          (default 1.0)
//   gamma     RBF width; 0 = 1/n_features     (default 0)
//   max_iter  epochs                          (default 20, capped 100)
//
// The full kernel matrix is materialized when the training set is small
// enough (n <= 4096); larger sets fall back to on-the-fly kernel rows.
#pragma once

#include "ml/classifier.h"

namespace mlaas {

class RbfSvm final : public Classifier {
 public:
  explicit RbfSvm(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "rbf_svm"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Rows kept after zero-alpha pruning (== support_x_.rows()).
  std::size_t support_count() const { return support_x_.rows(); }

 private:
  double c_;
  double gamma_param_;
  long long max_iter_;
  std::uint64_t seed_;

  double gamma_ = 1.0;
  Matrix support_x_;             // standardized training points
  std::vector<double> alpha_;    // signed dual coefficients
  std::vector<double> feat_mean_, feat_std_;
};

}  // namespace mlaas
