#include "ml/kernel/rbf_svm.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/feature/scalers.h"
#include "util/rng.h"

namespace mlaas {

RbfSvm::RbfSvm(const ParamMap& params, std::uint64_t seed) : seed_(seed) {
  c_ = std::max(1e-6, params.get_double("C", 1.0));
  gamma_param_ = std::max(0.0, params.get_double("gamma", 0.0));
  max_iter_ = std::clamp<long long>(params.get_int("max_iter", 20), 1, 100);
}

void RbfSvm::fit(const Matrix& x, const std::vector<int>& y) {
  alpha_.clear();
  if (check_single_class(y)) return;

  StandardScaler scaler;
  scaler.fit(x, y);
  support_x_ = scaler.transform(x);
  feat_mean_ = scaler.means();
  feat_std_ = scaler.stds();
  const std::size_t n = support_x_.rows();
  gamma_ = gamma_param_ > 0 ? gamma_param_ : 1.0 / static_cast<double>(x.cols());
  const double lambda = 1.0 / (c_ * static_cast<double>(n));
  const auto ys = to_signed_labels(y);

  // Kernel cache for small problems.
  const bool cache = n <= 4096;
  Matrix k;
  if (cache) {
    k = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      k(i, i) = 1.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double v = std::exp(-gamma_ * squared_distance(support_x_.row(i),
                                                             support_x_.row(j)));
        k(i, j) = v;
        k(j, i) = v;
      }
    }
  }
  // Kernelized Pegasos: alpha_[i] counts margin violations of point i; the
  // decision function at step t is (1/(lambda t)) sum_i alpha_i y_i K(x_i, .)
  std::vector<double> counts(n, 0.0);
  Rng rng(derive_seed(seed_, "rbfsvm"));
  std::size_t t = 1;
  for (long long epoch = 0; epoch < max_iter_; ++epoch) {
    for (std::size_t step = 0; step < n; ++step, ++t) {
      const std::size_t i = rng.index(n);
      double f = 0.0;
      if (cache) {
        // K is symmetric, so column i is row i: one contiguous span instead
        // of n strided element accesses.
        const auto krow = k.row(i);
        for (std::size_t j = 0; j < n; ++j) {
          if (counts[j] != 0.0) f += counts[j] * ys[j] * krow[j];
        }
      } else {
        for (std::size_t j = 0; j < n; ++j) {
          if (counts[j] != 0.0) {
            f += counts[j] * ys[j] *
                 std::exp(-gamma_ * squared_distance(support_x_.row(j),
                                                     support_x_.row(i)));
          }
        }
      }
      f /= lambda * static_cast<double>(t);
      if (ys[i] * f < 1.0) counts[i] += 1.0;
    }
  }
  alpha_.resize(n);
  const double scale = 1.0 / (lambda * static_cast<double>(t));
  for (std::size_t i = 0; i < n; ++i) alpha_[i] = counts[i] * ys[i] * scale;

  // Points that never violated the margin have alpha exactly 0 and cannot
  // contribute to the decision function; drop them so predict_score (and
  // the serialized model) only touch real support vectors.  The surviving
  // rows keep their relative order, so scores are bit-identical.
  std::vector<std::size_t> support;
  support.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha_[i] != 0.0) support.push_back(i);
  }
  if (support.size() < n) {
    Matrix pruned = support_x_.select_rows(support);
    std::vector<double> pruned_alpha(support.size());
    for (std::size_t i = 0; i < support.size(); ++i) pruned_alpha[i] = alpha_[support[i]];
    support_x_ = std::move(pruned);
    alpha_ = std::move(pruned_alpha);
  }
}

std::vector<double> RbfSvm::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void RbfSvm::predict_score_into(const Matrix& x, std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  if (active_predict_kernel() == PredictKernel::kReference) {
    out.resize(x.rows());
    std::vector<double> row(x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        row[c] = (x(r, c) - feat_mean_[c]) / feat_std_[c];
      }
      double f = 0.0;
      for (std::size_t i = 0; i < support_x_.rows(); ++i) {
        if (alpha_[i] != 0.0) {
          f += alpha_[i] * std::exp(-gamma_ * squared_distance(row, support_x_.row(i)));
        }
      }
      out[r] = sigmoid(f);
    }
    return;
  }
  out.resize(x.rows());
  // All query-to-support distances are computed as blocked tiles, two query
  // rows per pass over the support matrix (bit-identical to
  // squared_distance per pair); the remaining exp accumulation runs over
  // each distance vector in the same support order.
  const std::size_t m = support_x_.rows();
  thread_local std::vector<double> q0;
  thread_local std::vector<double> q1;
  thread_local std::vector<double> d2a;
  thread_local std::vector<double> d2b;
  q0.resize(x.cols());
  q1.resize(x.cols());
  d2a.resize(m);
  d2b.resize(m);
  const auto scale_row = [&](std::size_t r, std::vector<double>& q) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      q[c] = (row[c] - feat_mean_[c]) / feat_std_[c];
    }
  };
  const auto score = [&](std::span<const double> d2) {
    double f = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (alpha_[i] != 0.0) f += alpha_[i] * std::exp(-gamma_ * d2[i]);
    }
    return sigmoid(f);
  };
  std::size_t r = 0;
  for (; r + 2 <= x.rows(); r += 2) {
    scale_row(r, q0);
    scale_row(r + 1, q1);
    squared_distance_block2(q0, q1, support_x_, d2a, d2b);
    out[r] = score(d2a);
    out[r + 1] = score(d2b);
  }
  for (; r < x.rows(); ++r) {
    scale_row(r, q0);
    squared_distance_block(q0, support_x_, d2a);
    out[r] = score(d2a);
  }
}


void RbfSvm::save(std::ostream& out) const {
  save_base(out);
  model_io::write_double(out, gamma_);
  model_io::write_vec(out, alpha_);
  model_io::write_matrix(out, support_x_);
  model_io::write_vec(out, feat_mean_);
  model_io::write_vec(out, feat_std_);
}

void RbfSvm::load(std::istream& in) {
  load_base(in);
  gamma_ = model_io::read_double(in);
  alpha_ = model_io::read_vec(in);
  support_x_ = model_io::read_matrix(in);
  feat_mean_ = model_io::read_vec(in);
  feat_std_ = model_io::read_vec(in);
}

}  // namespace mlaas
