#include "ml/neighbors/knn.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"

namespace mlaas {

KNearestNeighbors::KNearestNeighbors(const ParamMap& params, std::uint64_t) {
  n_neighbors_ = std::max<long long>(1, params.get_int("n_neighbors", 5));
  distance_weighted_ = params.get_string("weights", "uniform") == "distance";
  p_ = std::max(1.0, params.get_double("p", 2.0));
}

namespace {

std::vector<double> row_squared_norms(const Matrix& x) {
  std::vector<double> norms(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    norms[i] = dot(row, row);
  }
  return norms;
}

}  // namespace

void KNearestNeighbors::fit(const Matrix& x, const std::vector<int>& y) {
  check_single_class(y);
  train_x_ = x;
  train_y_ = y;
  train_sq_norms_ = p_ == 2.0 ? row_squared_norms(x) : std::vector<double>{};
}

std::vector<double> KNearestNeighbors::predict_score(const Matrix& x) const {
  std::vector<double> out(x.rows(), single_class_score());
  if (single_class()) return out;
  const std::size_t n_train = train_x_.rows();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(n_neighbors_), n_train);
  const bool euclidean = p_ == 2.0 && train_sq_norms_.size() == n_train;

  std::vector<std::pair<double, std::size_t>> dist(n_train);
  for (std::size_t q = 0; q < x.rows(); ++q) {
    const auto query = x.row(q);
    if (euclidean) {
      const double query_sq = dot(query, query);
      for (std::size_t i = 0; i < n_train; ++i) {
        const double d2 =
            query_sq - 2.0 * dot(query, train_x_.row(i)) + train_sq_norms_[i];
        dist[i] = {std::sqrt(std::max(0.0, d2)), i};
      }
    } else {
      for (std::size_t i = 0; i < n_train; ++i) {
        dist[i] = {minkowski_distance(query, train_x_.row(i), p_), i};
      }
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k), dist.end());
    double pos = 0.0, total = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double w = distance_weighted_ ? 1.0 / (dist[j].first + 1e-9) : 1.0;
      total += w;
      if (train_y_[dist[j].second] == 1) pos += w;
    }
    out[q] = total > 0 ? pos / total : 0.5;
  }
  return out;
}


void KNearestNeighbors::save(std::ostream& out) const {
  save_base(out);
  model_io::write_int(out, n_neighbors_);
  model_io::write_int(out, distance_weighted_ ? 1 : 0);
  model_io::write_double(out, p_);
  model_io::write_matrix(out, train_x_);
  model_io::write_ivec(out, train_y_);
}

void KNearestNeighbors::load(std::istream& in) {
  load_base(in);
  n_neighbors_ = model_io::read_int(in);
  distance_weighted_ = model_io::read_int(in) != 0;
  p_ = model_io::read_double(in);
  train_x_ = model_io::read_matrix(in);
  train_y_ = model_io::read_ivec(in);
  train_sq_norms_ = p_ == 2.0 ? row_squared_norms(train_x_) : std::vector<double>{};
}

}  // namespace mlaas
