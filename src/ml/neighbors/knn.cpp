#include "ml/neighbors/knn.h"

#include "ml/serialize.h"

#include <algorithm>
#include <cmath>

#include "linalg/dense_kernels.h"
#include "linalg/vector_ops.h"
#include "ml/tree/trainer.h"

namespace mlaas {

KNearestNeighbors::KNearestNeighbors(const ParamMap& params, std::uint64_t) {
  n_neighbors_ = std::max<long long>(1, params.get_int("n_neighbors", 5));
  distance_weighted_ = params.get_string("weights", "uniform") == "distance";
  p_ = std::max(1.0, params.get_double("p", 2.0));
}

namespace {

std::vector<double> row_squared_norms(const Matrix& x) {
  std::vector<double> norms(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    norms[i] = dot(row, row);
  }
  return norms;
}

}  // namespace

void KNearestNeighbors::fit(const Matrix& x, const std::vector<int>& y) {
  check_single_class(y);
  train_x_ = x;
  train_y_ = y;
  if (p_ != 2.0) {
    train_sq_norms_.clear();
    return;
  }
  // An installed TrainContext caches the norms across configs fitting the
  // same matrix (same per-row dot, so the values are bit-identical).
  if (TrainContext* context = active_train_context()) {
    train_sq_norms_ = *context->row_squared_norms(x);
  } else {
    train_sq_norms_ = row_squared_norms(x);
  }
}

std::vector<double> KNearestNeighbors::predict_score(const Matrix& x) const {
  std::vector<double> out;
  predict_score_into(x, out);
  return out;
}

void KNearestNeighbors::predict_score_into(const Matrix& x,
                                           std::vector<double>& out) const {
  if (fill_single_class(x.rows(), out)) return;
  const std::size_t n_train = train_x_.rows();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(n_neighbors_), n_train);
  const bool euclidean = p_ == 2.0 && train_sq_norms_.size() == n_train;
  const bool reference = active_predict_kernel() == PredictKernel::kReference;
  out.resize(x.rows());

  std::vector<std::pair<double, std::size_t>> dist(n_train);
  std::vector<double> d2(n_train);
  if (euclidean && !reference) {
    // Flat kernel: query pairs share one pass over the train matrix (each
    // train row is loaded once and feeds both queries' dot chains), then
    // the per-query sqrt / selection / vote runs exactly as the reference
    // does.  The q² - 2q·x + |x|² expression matches the per-row loop, so
    // scores are bit-identical.
    std::vector<double> d2b(n_train);
    std::size_t q = 0;
    for (; q + 2 <= x.rows(); q += 2) {
      const auto query0 = x.row(q);
      const auto query1 = x.row(q + 1);
      squared_distance_from_norms_block2(query0, dot(query0, query0),
                                         query1, dot(query1, query1),
                                         train_x_, train_sq_norms_, d2, d2b);
      out[q] = score_from_squared_distances(d2, k, reference, dist);
      out[q + 1] = score_from_squared_distances(d2b, k, reference, dist);
    }
    for (; q < x.rows(); ++q) {
      const auto query = x.row(q);
      squared_distance_from_norms_block(query, dot(query, query), train_x_,
                                        train_sq_norms_, d2);
      out[q] = score_from_squared_distances(d2, k, reference, dist);
    }
    return;
  }

  for (std::size_t q = 0; q < x.rows(); ++q) {
    const auto query = x.row(q);
    if (euclidean) {
      const double query_sq = dot(query, query);
      for (std::size_t i = 0; i < n_train; ++i) {
        d2[i] = query_sq - 2.0 * dot(query, train_x_.row(i)) + train_sq_norms_[i];
      }
      out[q] = score_from_squared_distances(d2, k, reference, dist);
      continue;
    }
    for (std::size_t i = 0; i < n_train; ++i) {
      dist[i] = {minkowski_distance(query, train_x_.row(i), p_), i};
    }
    if (reference || k * 16 < n_train) {
      std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                        dist.end());
    } else {
      const auto kth = dist.begin() + static_cast<std::ptrdiff_t>(k);
      std::nth_element(dist.begin(), kth - 1, dist.end());
      std::sort(dist.begin(), kth);
    }
    out[q] = vote(dist, k);
  }
}

double KNearestNeighbors::score_from_squared_distances(
    std::span<const double> d2, std::size_t k, bool reference,
    std::vector<std::pair<double, std::size_t>>& dist) const {
  const std::size_t n_train = d2.size();
  if (!reference && k * 16 < n_train) {
    // Fused bounded-insertion selection with lazy sqrt: scan candidates
    // once, keeping the k best as a sorted prefix of `dist` — no full pair
    // array is ever materialized and no separate selection pass runs.
    //
    // Exactness vs the reference partial_sort over (sqrt, index) pairs:
    //   - s(v) = sqrt(max(0, v)) is monotone non-decreasing, so a
    //     candidate with d2 >= the current worst's d2 has s >= the worst's
    //     s; when the sqrt values are equal the candidate's strictly later
    //     index loses the tie-break.  Either way the reference rejects it
    //     too, so the cheap d2 gate is exact and sqrt runs only for the
    //     ~k·ln(n) candidates that beat the current worst.
    //   - Insertions compare full (sqrt, index) pairs — a total order —
    //     so the surviving sorted prefix is exactly the k smallest pairs
    //     in ascending order, identical to partial_sort's.
    auto* top = dist.data();
    thread_local std::vector<double> top_d2;
    top_d2.resize(k);
    const auto insert = [&](std::size_t m, const std::pair<double, std::size_t>& cand,
                            double v) {
      std::size_t j = m;
      while (j > 0 && cand < top[j - 1]) {
        top[j] = top[j - 1];
        top_d2[j] = top_d2[j - 1];
        --j;
      }
      top[j] = cand;
      top_d2[j] = v;
    };
    // Warm-up: the first k candidates always enter the list.
    for (std::size_t i = 0; i < k; ++i) {
      const double v = d2[i];
      insert(i, {std::sqrt(std::max(0.0, v)), i}, v);
    }
    // Hot loop: one load and one register compare per rejected candidate.
    double worst = top_d2[k - 1];
    for (std::size_t i = k; i < n_train; ++i) {
      const double v = d2[i];
      if (v >= worst) continue;
      const std::pair<double, std::size_t> cand{std::sqrt(std::max(0.0, v)), i};
      if (!(cand < top[k - 1])) continue;
      insert(k - 1, cand, v);
      worst = top_d2[k - 1];
    }
    return vote(dist, k);
  }
  for (std::size_t i = 0; i < n_train; ++i) {
    dist[i] = {std::sqrt(std::max(0.0, d2[i])), i};
  }
  if (reference || k * 16 < n_train) {
    // Reference selection: a total order means every exact k-smallest
    // algorithm yields the identical sorted neighbor list.
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                      dist.end());
  } else {
    // Large k: nth_element + sorting the front is O(n + k log k) and
    // moves each element at most a few times, vs the bounded structures'
    // O(n log k).
    const auto kth = dist.begin() + static_cast<std::ptrdiff_t>(k);
    std::nth_element(dist.begin(), kth - 1, dist.end());
    std::sort(dist.begin(), kth);
  }
  return vote(dist, k);
}

double KNearestNeighbors::vote(const std::vector<std::pair<double, std::size_t>>& dist,
                               std::size_t k) const {
  double pos = 0.0, total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double w = distance_weighted_ ? 1.0 / (dist[j].first + 1e-9) : 1.0;
    total += w;
    if (train_y_[dist[j].second] == 1) pos += w;
  }
  return total > 0 ? pos / total : 0.5;
}


void KNearestNeighbors::save(std::ostream& out) const {
  save_base(out);
  model_io::write_int(out, n_neighbors_);
  model_io::write_int(out, distance_weighted_ ? 1 : 0);
  model_io::write_double(out, p_);
  model_io::write_matrix(out, train_x_);
  model_io::write_ivec(out, train_y_);
}

void KNearestNeighbors::load(std::istream& in) {
  load_base(in);
  n_neighbors_ = model_io::read_int(in);
  distance_weighted_ = model_io::read_int(in) != 0;
  p_ = model_io::read_double(in);
  train_x_ = model_io::read_matrix(in);
  train_y_ = model_io::read_ivec(in);
  train_sq_norms_ = p_ == 2.0 ? row_squared_norms(train_x_) : std::vector<double>{};
}

}  // namespace mlaas
