// k-nearest-neighbors classifier (brute force).
//
// Parameters (local library row of Table 1):
//   n_neighbors  (default 5)
//   weights      "uniform" | "distance"
//   p            Minkowski exponent, 1 or 2 (default 2)
//
// Distances are computed on raw features, matching sklearn (the paper notes
// in §3.1 that categorical-to-integer mapping can hurt distance-based
// classifiers; that behaviour is preserved).
#pragma once

#include <span>
#include <utility>

#include "ml/classifier.h"

namespace mlaas {

class KNearestNeighbors final : public Classifier {
 public:
  explicit KNearestNeighbors(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<int>& y) override;
  std::vector<double> predict_score(const Matrix& x) const override;
  void predict_score_into(const Matrix& x, std::vector<double>& out) const override;
  std::string name() const override { return "knn"; }
  bool is_linear() const override { return false; }

  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

 private:
  long long n_neighbors_;
  bool distance_weighted_;
  double p_;

  Matrix train_x_;
  std::vector<int> train_y_;
  // p=2 fast path: ||x_i||^2 per train row, so Euclidean distances become
  // sqrt(||q||^2 - 2 q.x_i + ||x_i||^2) — one dot product per pair instead
  // of a subtract-square pass.  Recomputed on fit()/load(), not serialized.
  std::vector<double> train_sq_norms_;

  // Shared body of predict_score_into: sqrt + (distance, index) pairing,
  // neighbor selection and vote for one query whose squared distances are
  // already in d2.
  double score_from_squared_distances(std::span<const double> d2,
                                      std::size_t k, bool reference,
                                      std::vector<std::pair<double, std::size_t>>& dist) const;

  // (Weighted) vote over the k nearest entries of an already-selected,
  // sorted (distance, train index) prefix.
  double vote(const std::vector<std::pair<double, std::size_t>>& dist,
              std::size_t k) const;
};

}  // namespace mlaas
