// k-nearest-neighbors regression (brute force, mean or distance-weighted
// mean of neighbor targets).
//
// Parameters: n_neighbors (default 5), weights "uniform"|"distance",
// p Minkowski exponent (default 2).
#pragma once

#include "ml/regression/regressor.h"

namespace mlaas {

class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "knn_regressor"; }

 private:
  long long n_neighbors_;
  bool distance_weighted_;
  double p_;

  Matrix train_x_;
  std::vector<double> train_y_;
};

}  // namespace mlaas
