#include <stdexcept>

#include "ml/regression/knn_regressor.h"
#include "ml/regression/linear_regression.h"
#include "ml/regression/tree_regressors.h"

namespace mlaas {

RegressorPtr make_regressor(const std::string& name, const ParamMap& params,
                            std::uint64_t seed) {
  if (name == "linear_regression") return std::make_unique<LinearRegression>(params, seed);
  if (name == "ridge") {
    ParamMap p = params;
    if (!p.contains("alpha")) p.set("alpha", 1.0);
    return std::make_unique<LinearRegression>(p, seed);
  }
  if (name == "regression_tree") return std::make_unique<RegressionTree>(params, seed);
  if (name == "random_forest_regressor") {
    return std::make_unique<RandomForestRegressor>(params, seed);
  }
  if (name == "boosted_trees_regressor") {
    return std::make_unique<BoostedTreesRegressor>(params, seed);
  }
  if (name == "knn_regressor") return std::make_unique<KnnRegressor>(params, seed);
  throw std::invalid_argument("make_regressor: unknown regressor " + name);
}

std::vector<std::string> regressor_names() {
  return {"linear_regression",       "ridge",
          "regression_tree",         "random_forest_regressor",
          "boosted_trees_regressor", "knn_regressor"};
}

}  // namespace mlaas
