// Tree-based regressors, reusing the shared CART core (TreeModel, MSE
// criterion): a single regression tree, a bagged random forest, and
// gradient-boosted regression trees (squared loss).
//
// Parameters follow the classification counterparts:
//   regression_tree:          max_depth, min_samples_leaf, max_features
//   random_forest_regressor:  n_estimators (default 10), max_depth,
//                             max_features ("all"/"sqrt"/"log2")
//   boosted_trees_regressor:  n_estimators (default 40), learning_rate
//                             (default 0.1), max_leaves, min_instances_per_leaf
#pragma once

#include "ml/regression/regressor.h"
#include "ml/tree/flat_forest.h"
#include "ml/tree/tree_model.h"

namespace mlaas {

class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "regression_tree"; }

  const TreeModel& tree() const { return tree_; }

 private:
  ParamMap params_;
  std::uint64_t seed_;
  TreeModel tree_;
  FlatForest flat_;  // inference layout, rebuilt by fit()
};

class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "random_forest_regressor"; }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  ParamMap params_;
  std::uint64_t seed_;
  std::vector<TreeModel> trees_;
  FlatForest flat_;  // inference layout, rebuilt by fit()
};

class BoostedTreesRegressor final : public Regressor {
 public:
  explicit BoostedTreesRegressor(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "boosted_trees_regressor"; }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  ParamMap params_;
  std::uint64_t seed_;
  double learning_rate_ = 0.1;
  double base_prediction_ = 0.0;
  std::vector<TreeModel> trees_;
  FlatForest flat_;  // inference layout, rebuilt by fit()
};

}  // namespace mlaas
