// Ordinary-least-squares / ridge regression via the normal equations
// (Cholesky solve on X^T X + lambda I).
//
// Parameters:
//   alpha          ridge strength (default 0 = OLS; a tiny jitter keeps the
//                  normal equations solvable on collinear inputs)
//   fit_intercept  (default true)
#pragma once

#include "ml/regression/regressor.h"

namespace mlaas {

class LinearRegression final : public Regressor {
 public:
  explicit LinearRegression(const ParamMap& params = {}, std::uint64_t seed = 0);

  void fit(const Matrix& x, const std::vector<double>& y) override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return alpha_ > 0 ? "ridge" : "linear_regression"; }

  const std::vector<double>& coefficients() const { return w_; }
  double intercept() const { return b_; }

 private:
  double alpha_;
  bool fit_intercept_;

  std::vector<double> w_;
  double b_ = 0.0;
};

}  // namespace mlaas
