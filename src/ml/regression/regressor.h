// Regression interface.
//
// §3 of the paper notes that binary classification and REGRESSION are the
// two learning tasks every studied MLaaS platform supports; the study
// measures classification, and this module supplies the other task for
// library completeness: the same substrates (linear solvers, CART trees,
// ensembles, neighbors) behind a Regressor interface.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "ml/params.h"

namespace mlaas {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on X (n x d) with real-valued targets.
  virtual void fit(const Matrix& x, const std::vector<double>& y) = 0;
  /// Predicted targets per row; only valid after fit().
  virtual std::vector<double> predict(const Matrix& x) const = 0;
  /// Registry name, e.g. "ridge".
  virtual std::string name() const = 0;
};

using RegressorPtr = std::unique_ptr<Regressor>;

/// Construct a regressor by registry name:
///   linear_regression, ridge, regression_tree, random_forest_regressor,
///   boosted_trees_regressor, knn_regressor
/// Throws std::invalid_argument for unknown names.
RegressorPtr make_regressor(const std::string& name, const ParamMap& params = {},
                            std::uint64_t seed = 0);

std::vector<std::string> regressor_names();

}  // namespace mlaas
