#include "ml/regression/tree_regressors.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"
#include "ml/classifier.h"  // active_predict_kernel()
#include "ml/tree/decision_tree.h"
#include "ml/tree/trainer.h"
#include "util/rng.h"

namespace mlaas {

namespace {

TreeOptions regression_options(const ParamMap& params, std::size_t n_features,
                               std::uint64_t seed) {
  TreeOptions opt = tree_options_from_params(params, n_features, seed);
  opt.criterion = SplitCriterion::kMse;
  return opt;
}

void check_sizes(const Matrix& x, const std::vector<double>& y, const char* who) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument(std::string(who) + ": X/y size mismatch");
  }
}

}  // namespace

RegressionTree::RegressionTree(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void RegressionTree::fit(const Matrix& x, const std::vector<double>& y) {
  check_sizes(x, y, "RegressionTree");
  tree_ = TreeModel();
  tree_.fit(x, y, {}, regression_options(params_, x.cols(), seed_));
  flat_.clear();
  flat_.add_tree(tree_);
}

std::vector<double> RegressionTree::predict(const Matrix& x) const {
  if (active_predict_kernel() == PredictKernel::kReference || flat_.empty()) {
    return tree_.predict(x);
  }
  std::vector<double> out(x.rows());
  flat_.predict_into(x, out);
  return out;
}

RandomForestRegressor::RandomForestRegressor(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void RandomForestRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  check_sizes(x, y, "RandomForestRegressor");
  trees_.clear();
  const auto n_estimators = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_estimators", 10), 1, 500));
  ParamMap tree_params = params_;
  if (!params_.contains("max_features")) tree_params.set("max_features", std::string("sqrt"));
  TreeOptions opt = regression_options(tree_params, x.cols(), seed_);

  const std::size_t n = x.rows();
  trees_.resize(n_estimators);
  std::vector<std::size_t> boot_rows(n);
  std::vector<double> boot_targets(n);
  TreeWorkspace workspace;  // column cache + presorted orders shared by all trees
  for (std::size_t t = 0; t < n_estimators; ++t) {
    opt.seed = derive_seed(seed_, "rfr-" + std::to_string(t));
    Rng rng(derive_seed(opt.seed, "bootstrap"));
    for (std::size_t i = 0; i < n; ++i) {
      boot_rows[i] = rng.index(n);
      boot_targets[i] = y[boot_rows[i]];
    }
    train_tree(trees_[t], workspace, x, boot_targets, {}, opt, boot_rows);
  }
  flat_.clear();
  for (const auto& tree : trees_) flat_.add_tree(tree);
}

std::vector<double> RandomForestRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  if (active_predict_kernel() == PredictKernel::kReference || flat_.empty()) {
    for (const auto& tree : trees_) tree.predict_accumulate(x, 1.0, out);
  } else {
    flat_.predict_accumulate(x, 1.0, out);
  }
  const double inv = 1.0 / static_cast<double>(std::max<std::size_t>(1, trees_.size()));
  for (double& v : out) v *= inv;
  return out;
}

BoostedTreesRegressor::BoostedTreesRegressor(const ParamMap& params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

void BoostedTreesRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  check_sizes(x, y, "BoostedTreesRegressor");
  trees_.clear();
  const auto n_estimators = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("n_estimators", 40), 1, 500));
  learning_rate_ = std::clamp(params_.get_double("learning_rate", 0.1), 1e-4, 10.0);
  const auto max_leaves = static_cast<std::size_t>(
      std::clamp<long long>(params_.get_int("max_leaves", 20), 2, 4096));

  TreeOptions opt = regression_options(params_, x.cols(), seed_);
  opt.min_samples_leaf = static_cast<std::size_t>(
      std::max<long long>(1, params_.get_int("min_instances_per_leaf", 5)));
  opt.max_nodes = 2 * max_leaves - 1;
  if (opt.max_depth == 0) {
    opt.max_depth = static_cast<std::size_t>(
        std::max(2.0, std::ceil(std::log2(static_cast<double>(max_leaves)) + 1.0)));
  }

  base_prediction_ = y.empty() ? 0.0 : mean(y);
  std::vector<double> residual(y.size());
  std::vector<double> raw(y.size(), base_prediction_);
  TreeWorkspace workspace;  // every round trains on x: presorted once, restored per tree
  for (std::size_t round = 0; round < n_estimators; ++round) {
    for (std::size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - raw[i];
    TreeModel tree;
    opt.seed = derive_seed(seed_, "gbr-" + std::to_string(round));
    train_tree(tree, workspace, x, residual, {}, opt);
    if (tree.node_count() <= 1) break;
    tree.predict_accumulate(x, learning_rate_, raw);
    trees_.push_back(std::move(tree));
  }
  flat_.clear();
  for (const auto& tree : trees_) flat_.add_tree(tree);
}

std::vector<double> BoostedTreesRegressor::predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), base_prediction_);
  if (active_predict_kernel() == PredictKernel::kReference || flat_.empty()) {
    for (const auto& tree : trees_) tree.predict_accumulate(x, learning_rate_, out);
  } else {
    flat_.predict_accumulate(x, learning_rate_, out);
  }
  return out;
}

}  // namespace mlaas
