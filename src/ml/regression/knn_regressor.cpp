#include "ml/regression/knn_regressor.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/vector_ops.h"
#include "ml/classifier.h"  // active_predict_kernel()

namespace mlaas {

KnnRegressor::KnnRegressor(const ParamMap& params, std::uint64_t) {
  n_neighbors_ = std::max<long long>(1, params.get_int("n_neighbors", 5));
  distance_weighted_ = params.get_string("weights", "uniform") == "distance";
  p_ = std::max(1.0, params.get_double("p", 2.0));
}

void KnnRegressor::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("KnnRegressor: size mismatch");
  train_x_ = x;
  train_y_ = y;
}

std::vector<double> KnnRegressor::predict(const Matrix& x) const {
  const std::size_t n_train = train_x_.rows();
  if (n_train == 0) throw std::logic_error("KnnRegressor: predict before fit");
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(n_neighbors_), n_train);

  std::vector<double> out(x.rows(), 0.0);
  std::vector<std::pair<double, std::size_t>> dist(n_train);
  for (std::size_t q = 0; q < x.rows(); ++q) {
    const auto query = x.row(q);
    for (std::size_t i = 0; i < n_train; ++i) {
      dist[i] = {minkowski_distance(query, train_x_.row(i), p_), i};
    }
    if (active_predict_kernel() == PredictKernel::kReference || k * 16 < n_train) {
      // (distance, index) is a total order, so every exact k-smallest
      // algorithm selects the identical sorted neighbor list; the bounded
      // heap wins for small k (one compare per candidate, no moves).
      std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                        dist.end());
    } else {
      // Large k: nth_element + sorting the front, O(n + k log k).
      const auto kth = dist.begin() + static_cast<std::ptrdiff_t>(k);
      std::nth_element(dist.begin(), kth - 1, dist.end());
      std::sort(dist.begin(), kth);
    }
    double sum = 0.0, total_weight = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double w = distance_weighted_ ? 1.0 / (dist[j].first + 1e-9) : 1.0;
      sum += w * train_y_[dist[j].second];
      total_weight += w;
    }
    out[q] = total_weight > 0 ? sum / total_weight : 0.0;
  }
  return out;
}

}  // namespace mlaas
