#include "ml/regression/linear_regression.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"

namespace mlaas {

LinearRegression::LinearRegression(const ParamMap& params, std::uint64_t) {
  alpha_ = std::max(0.0, params.get_double("alpha", 0.0));
  fit_intercept_ = params.get_bool("fit_intercept", true);
}

void LinearRegression::fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("LinearRegression: size mismatch");
  const std::size_t d = x.cols();
  w_.assign(d, 0.0);
  b_ = 0.0;
  if (x.rows() == 0) return;

  // Center targets/features when fitting an intercept: keeps the normal
  // equations well-conditioned and gives the intercept in closed form.
  std::vector<double> x_mean(d, 0.0);
  double y_mean = 0.0;
  if (fit_intercept_) {
    for (std::size_t c = 0; c < d; ++c) x_mean[c] = mean(x.col(c));
    y_mean = mean(y);
  }

  Matrix gram(d, d);
  std::vector<double> xty(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = x(r, i) - x_mean[i];
      xty[i] += xi * (y[r] - y_mean);
      for (std::size_t j = i; j < d; ++j) {
        gram(i, j) += xi * (x(r, j) - x_mean[j]);
      }
    }
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < d; ++i) trace += gram(i, i);
  const double scale = trace > 0 ? trace / static_cast<double>(d) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    gram(i, i) += alpha_ + 1e-10 * scale;  // ridge + numerical jitter
    for (std::size_t j = i + 1; j < d; ++j) gram(j, i) = gram(i, j);
  }
  w_ = solve_spd(std::move(gram), std::move(xty));
  b_ = y_mean - dot(w_, x_mean);
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  auto out = x.multiply(w_);
  for (double& v : out) v += b_;
  return out;
}

}  // namespace mlaas
