#include "ml/regression/regression_metrics.h"

#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"

namespace mlaas {

namespace {
void check(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("regression metrics: empty or mismatched inputs");
  }
}
}  // namespace

double mean_squared_error(const std::vector<double>& y_true,
                          const std::vector<double>& y_pred) {
  check(y_true, y_pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    const double d = y_true[i] - y_pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(y_true.size());
}

double root_mean_squared_error(const std::vector<double>& y_true,
                               const std::vector<double>& y_pred) {
  return std::sqrt(mean_squared_error(y_true, y_pred));
}

double mean_absolute_error(const std::vector<double>& y_true,
                           const std::vector<double>& y_pred) {
  check(y_true, y_pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < y_true.size(); ++i) acc += std::abs(y_true[i] - y_pred[i]);
  return acc / static_cast<double>(y_true.size());
}

double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred) {
  check(y_true, y_pred);
  const double ss_res = mean_squared_error(y_true, y_pred) *
                        static_cast<double>(y_true.size());
  const double ss_tot = variance(y_true) * static_cast<double>(y_true.size());
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;  // constant targets
  return 1.0 - ss_res / ss_tot;
}

}  // namespace mlaas
