// Regression metrics: MSE, RMSE, MAE and R^2.
#pragma once

#include <vector>

namespace mlaas {

double mean_squared_error(const std::vector<double>& y_true,
                          const std::vector<double>& y_pred);
double root_mean_squared_error(const std::vector<double>& y_true,
                               const std::vector<double>& y_pred);
double mean_absolute_error(const std::vector<double>& y_true,
                           const std::vector<double>& y_pred);
/// Coefficient of determination; 1 = perfect, 0 = mean predictor, can be
/// negative for models worse than the mean.  Constant targets give 0 for a
/// perfect fit and -inf-free 0 otherwise (sklearn convention adjusted to
/// stay finite).
double r2_score(const std::vector<double>& y_true, const std::vector<double>& y_pred);

}  // namespace mlaas
