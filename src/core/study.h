// mlaas::Study — the public entry point of the library.
//
// A Study owns the corpus, the platform roster and the measurement table
// (computed once, cached on disk), and exposes each of the paper's
// experiments as a method.  Bench binaries and examples are thin wrappers
// over this class.
//
//   mlaas::StudyOptions opt;
//   mlaas::Study study(opt);
//   auto fig4 = study.optimized();            // Figure 4 / Table 3(b)
//   auto fig8 = study.subset_curves();        // Figure 8
//
// See DESIGN.md for the experiment-to-method index.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "eval/aggregate.h"
#include "eval/attribution.h"
#include "eval/boundary.h"
#include "eval/family.h"
#include "eval/family_predictor.h"
#include "eval/measurement.h"
#include "eval/naive_strategy.h"
#include "eval/subset_analysis.h"
#include "eval/variation.h"

namespace mlaas {

struct StudyOptions {
  std::uint64_t seed = 42;
  double scale = 1.0;        // grid/corpus scaling knob (DESIGN.md)
  bool quick = false;        // tiny corpus for smoke runs
  int threads = 0;           // 0 = hardware concurrency; negative rejected
  /// Campaign session scheduler: "dynamic" (longest-estimated-first over an
  /// atomic ticket) or "static" (one chunk per dataset).  Both produce
  /// byte-identical tables; static is kept for A/B benchmarks.
  std::string schedule = "dynamic";
  /// Empty disables the on-disk measurement cache.
  std::string cache_path_override;
  bool verbose = true;
  /// Campaign transport envelope (service simulation): probability of a
  /// transient request fault, named quota profile and per-request retry
  /// budget.  See eval/measurement.h's CampaignOptions.
  double fault_rate = 0.0;
  std::string quota_profile = "default";
  int retry_budget = 6;
  /// Chaos fault schedule injected into every platform session ("none",
  /// "outages", "bursts", "latency", "storm"); see make_fault_plan.
  std::string chaos_profile = "none";
  /// Per-platform circuit breakers in the campaign driver: after
  /// `breaker_threshold` consecutive cell failures the breaker opens and
  /// the remaining cells of the session are deferred (excluded from
  /// aggregation) unless a half-open probe after `breaker_cooldown`
  /// simulated seconds succeeds.
  bool breakers = false;
  int breaker_threshold = 3;
  double breaker_cooldown = 300.0;
  int breaker_probes = 2;
  /// Decorrelated jitter on retry backoff (off by default: keeps campaigns
  /// bit-reproducible across library versions).
  bool jitter = false;
  /// Resume a crashed campaign from its write-ahead journal (on by
  /// default; set false to force a fresh run).
  bool resume = true;
  /// Record a deterministic end-to-end trace of the campaign (service
  /// spans, retry waits, breaker transitions; Chrome trace_event JSON via
  /// CampaignResult::trace).  Off by default; does not change any measured
  /// row, report byte, or cache fingerprint.
  bool trace = false;

  CorpusOptions corpus_options() const;
  MeasurementOptions measurement_options() const;
  std::string cache_path() const;
};

class Study {
 public:
  explicit Study(StudyOptions options = {});

  const StudyOptions& options() const { return options_; }
  const std::vector<Dataset>& corpus();
  const std::vector<PlatformPtr>& platforms();
  std::vector<std::string> platform_order() const;  // complexity order

  /// Successful measurements (computed on first use; cached to disk).
  /// Cells that failed in the service campaign are excluded here — the way
  /// the paper excluded unreachable providers — and exposed separately.
  const MeasurementTable& measurements();
  /// Failure rows of the campaign (empty when fault_rate == 0 and no quota
  /// was exhausted).
  const MeasurementTable& measurement_failures();
  /// Per-platform service telemetry of the campaign (requests, retries,
  /// rate-limit stalls, simulated wall-clock).  Reloaded from the cache
  /// sidecar on cache hits; empty if the sidecar is missing.
  const CampaignReport& campaign_report();

  // ---- Experiments (paper table/figure index in DESIGN.md) ----
  std::vector<PlatformSummary> baseline();                      // Table 3(a)
  std::vector<PlatformSummary> optimized();                     // Fig 4 / Table 3(b)
  std::vector<ControlImprovement> control_improvements_fig5();  // Fig 5
  std::vector<std::pair<std::string, double>> table4(const std::string& platform,
                                                     bool optimized_params);
  std::vector<VariationSummary> variation_fig6();               // Fig 6
  std::vector<DimensionVariation> variation_fig7();             // Fig 7
  std::vector<SubsetCurve> subset_curves();                     // Fig 8

  Dataset circle_probe() const;                                 // Fig 9(a)
  Dataset linear_probe() const;                                 // Fig 9(b)
  BoundaryMap boundary(const std::string& platform, const Dataset& probe);  // Fig 10/13
  FamilyScores family_gap(const Dataset& probe);                // Fig 11 / Table 5
  FamilyPredictorReport family_predictors();                    // Fig 12 / §6.2
  std::vector<BlackBoxChoice> blackbox_choices(const std::string& platform);  // §6.2
  std::vector<NaiveResult> naive_strategy();                    // §6.3
  NaiveComparison naive_vs(const std::string& platform);        // Table 6 / Fig 14

 private:
  void ensure_measurements();

  StudyOptions options_;
  std::optional<std::vector<Dataset>> corpus_;
  std::vector<PlatformPtr> platforms_;
  std::optional<MeasurementTable> measurements_;
  std::optional<MeasurementTable> measurement_failures_;
  CampaignReport campaign_report_;
  std::optional<FamilyPredictorReport> family_report_;
  std::optional<std::vector<NaiveResult>> naive_;
};

}  // namespace mlaas
