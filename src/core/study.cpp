#include "core/study.h"

#include "data/generators.h"
#include "util/rng.h"

namespace mlaas {

CorpusOptions StudyOptions::corpus_options() const {
  CorpusOptions c;
  c.seed = seed;
  c.scale = scale;
  if (quick) {
    c.n_datasets = 24;
    c.max_samples = 300;
    c.max_features = 16;
  }
  return c;
}

MeasurementOptions StudyOptions::measurement_options() const {
  MeasurementOptions m;
  m.seed = seed;
  m.scale = quick ? 0.5 : scale;
  m.threads = threads;
  m.schedule = parse_schedule(schedule);
  m.verbose = verbose;
  m.trace = trace;
  m.campaign.fault_rate = fault_rate;
  m.campaign.quota_profile = quota_profile;
  m.campaign.retry_budget = retry_budget;
  m.campaign.chaos_profile = chaos_profile;
  m.campaign.breaker.enabled = breakers;
  m.campaign.breaker.failure_threshold = breaker_threshold;
  m.campaign.breaker.cooldown_seconds = breaker_cooldown;
  m.campaign.breaker.max_probes = breaker_probes;
  m.campaign.jitter = jitter;
  m.campaign.resume = resume;
  return m;
}

std::string StudyOptions::cache_path() const {
  if (!cache_path_override.empty()) return cache_path_override;
  return (quick ? "quick_" : "") + default_cache_path(seed, scale);
}

Study::Study(StudyOptions options) : options_(std::move(options)) {}

const std::vector<Dataset>& Study::corpus() {
  if (!corpus_) corpus_ = build_corpus(options_.corpus_options());
  return *corpus_;
}

const std::vector<PlatformPtr>& Study::platforms() {
  if (platforms_.empty()) platforms_ = make_all_platforms();
  return platforms_;
}

std::vector<std::string> Study::platform_order() const { return platform_names(); }

void Study::ensure_measurements() {
  if (measurements_) return;
  const MeasurementTable full =
      run_or_load(corpus(), platforms(), options_.measurement_options(),
                  options_.cache_path(), &campaign_report_);
  measurements_ = full.succeeded();
  measurement_failures_ = full.failures();
}

const MeasurementTable& Study::measurements() {
  ensure_measurements();
  return *measurements_;
}

const MeasurementTable& Study::measurement_failures() {
  ensure_measurements();
  return *measurement_failures_;
}

const CampaignReport& Study::campaign_report() {
  ensure_measurements();
  return campaign_report_;
}

std::vector<PlatformSummary> Study::baseline() { return baseline_summary(measurements()); }

std::vector<PlatformSummary> Study::optimized() { return optimized_summary(measurements()); }

std::vector<ControlImprovement> Study::control_improvements_fig5() {
  // Figure 5 excludes the fully automated platforms.
  return control_improvements(measurements(),
                              {"Amazon", "BigML", "PredictionIO", "Microsoft", "Local"});
}

std::vector<std::pair<std::string, double>> Study::table4(const std::string& platform,
                                                          bool optimized_params) {
  return classifier_win_shares(measurements(), platform, optimized_params);
}

std::vector<VariationSummary> Study::variation_fig6() {
  std::vector<VariationSummary> out;
  for (const auto& p : platform_order()) out.push_back(overall_variation(measurements(), p));
  return out;
}

std::vector<DimensionVariation> Study::variation_fig7() {
  return dimension_variations(measurements(),
                              {"Amazon", "BigML", "PredictionIO", "Microsoft", "Local"});
}

std::vector<SubsetCurve> Study::subset_curves() {
  std::vector<SubsetCurve> out;
  for (const auto& p : {"BigML", "PredictionIO", "Microsoft", "Local"}) {
    out.push_back(classifier_subset_curve(measurements(), p));
  }
  return out;
}

Dataset Study::circle_probe() const {
  return make_circle_probe(derive_seed(options_.seed, "circle"));
}

Dataset Study::linear_probe() const {
  return make_linear_probe(derive_seed(options_.seed, "linear"));
}

BoundaryMap Study::boundary(const std::string& platform, const Dataset& probe) {
  const PlatformPtr p = make_platform(platform);
  return probe_decision_boundary(*p, probe, derive_seed(options_.seed, "boundary-" + platform));
}

FamilyScores Study::family_gap(const Dataset& probe) {
  return family_gap_on_probe(probe, options_.measurement_options());
}

FamilyPredictorReport Study::family_predictors() {
  if (!family_report_) {
    family_report_ =
        train_family_predictors(measurements(), derive_seed(options_.seed, "family"));
  }
  return *family_report_;
}

std::vector<BlackBoxChoice> Study::blackbox_choices(const std::string& platform) {
  return predict_blackbox_choices(family_predictors(), measurements(), platform);
}

std::vector<NaiveResult> Study::naive_strategy() {
  if (!naive_) naive_ = run_naive_strategy(corpus(), options_.measurement_options());
  return *naive_;
}

NaiveComparison Study::naive_vs(const std::string& platform) {
  return compare_naive_vs_blackbox(naive_strategy(), blackbox_choices(platform),
                                   measurements(), platform);
}

}  // namespace mlaas
