// BigML simulator.
//
// Exposes classifier choice and parameter tuning (Figure 1).  Table 1:
// Logistic Regression (regularization, strength, eps), Decision Tree
// (node threshold, ordering, random candidates), Bagging (node threshold,
// number of models, ordering), Random Forests (node threshold, number of
// models, ordering).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class BigMlPlatform final : public Platform {
 public:
  std::string name() const override { return "BigML"; }
  int complexity_rank() const override { return 3; }
  ControlSurface controls() const override;
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
