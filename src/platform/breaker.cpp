#include "platform/breaker.h"

#include <algorithm>

namespace mlaas {

CircuitBreaker::Decision CircuitBreaker::admit(double now) const {
  if (!options_.enabled || !open_) return Decision::kProceed;
  if (probes_used_ >= options_.max_probes) return Decision::kDefer;
  return now >= opened_at_ + options_.cooldown_seconds ? Decision::kProbe
                                                       : Decision::kWait;
}

double CircuitBreaker::probe_wait_seconds(double now) const {
  return std::max(0.0, opened_at_ + options_.cooldown_seconds - now);
}

void CircuitBreaker::record_success(double now) {
  consecutive_failures_ = 0;
  if (open_) {
    open_ = false;
    probes_used_ = 0;
    notify("close", now);
  }
}

void CircuitBreaker::record_failure(double now) {
  if (!options_.enabled) return;
  if (open_) {
    // A failed half-open probe re-trips the breaker and restarts the
    // cooldown from the probe's failure time.
    ++probes_used_;
    opened_at_ = now;
    ++trips_;
    notify(probes_used_ >= options_.max_probes ? "latch" : "reopen", now);
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.failure_threshold) {
    open_ = true;
    opened_at_ = now;
    ++trips_;
    notify("open", now);
  }
}

}  // namespace mlaas
