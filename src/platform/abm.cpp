#include "platform/abm.h"

#include <stdexcept>

#include "platform/auto_select.h"
#include "util/rng.h"

namespace mlaas {

namespace {

class AbmModel final : public TrainedModel {
 public:
  explicit AbmModel(ClassifierPtr clf) : clf_(std::move(clf)) {}
  std::vector<int> predict(const Matrix& x) const override { return clf_->predict(x); }

 private:
  ClassifierPtr clf_;
};

}  // namespace

TrainedModelPtr AbmPlatform::train(const Dataset& train, const PipelineConfig& config,
                                   std::uint64_t seed) const {
  if (!config.feature_step.empty() || !config.classifier.empty() || !config.params.empty()) {
    throw std::invalid_argument("ABM: fully automated platform, no controls available");
  }
  AutoSelectOptions options;
  options.linear_bias = 0.05;  // strong linear preference (§6.2: 68.8% linear)
  options.folds = 2;           // cheapest possible internal race
  options.max_probe_samples = 300;
  const auto choice = auto_select_family(train, options, derive_seed(seed, "abm"));

  ClassifierPtr clf;
  if (choice.family == ClassifierFamily::kLinear) {
    // Modest iteration budget: ABM optimizes for turnaround, not accuracy.
    clf = make_classifier("logistic_regression", ParamMap{{"max_iter", 30LL}},
                          derive_seed(seed, "abm-lr"));
  } else {
    // Unpruned CART: the blocky non-linear boundary of Figure 10(c).
    clf = make_classifier("decision_tree", ParamMap{{"max_depth", 0LL}},
                          derive_seed(seed, "abm-dt"));
  }
  clf->fit(train.x(), train.y());
  return std::make_unique<AbmModel>(std::move(clf));
}

}  // namespace mlaas
