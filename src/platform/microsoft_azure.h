// Microsoft Azure ML Studio simulator — the most configurable platform
// (Figure 1: every pipeline step except program implementation).
//
// FEAT (Table 1): Fisher LDA extraction plus 7 filter statistics (Pearson,
// Mutual information, Kendall, Spearman, Chi-squared, Fisher, Count).
// CLF/PARA: the 7 classifiers the paper measured — Logistic Regression,
// SVM, Averaged Perceptron, Bayes Point Machine, Boosted Decision Tree,
// Random Forest, Decision Jungle — with Table 1's parameter lists.
//
// Azure's LR defaults regularize heavily (L1 = L2 = 1.0), which reproduces
// the paper's observation that Microsoft has the *weakest baseline* yet the
// *strongest optimized* performance (Table 3).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class MicrosoftAzurePlatform final : public Platform {
 public:
  std::string name() const override { return "Microsoft"; }
  int complexity_rank() const override { return 5; }
  ControlSurface controls() const override;
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
