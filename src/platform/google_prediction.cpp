#include "platform/google_prediction.h"

#include <stdexcept>

#include "platform/auto_select.h"
#include "util/rng.h"

namespace mlaas {

namespace {

class GoogleModel final : public TrainedModel {
 public:
  explicit GoogleModel(ClassifierPtr clf) : clf_(std::move(clf)) {}
  std::vector<int> predict(const Matrix& x) const override { return clf_->predict(x); }

 private:
  ClassifierPtr clf_;
};

}  // namespace

TrainedModelPtr GooglePredictionPlatform::train(const Dataset& train,
                                                const PipelineConfig& config,
                                                std::uint64_t seed) const {
  if (!config.feature_step.empty() || !config.classifier.empty() || !config.params.empty()) {
    throw std::invalid_argument("Google: fully automated platform, no controls available");
  }
  AutoSelectOptions options;
  options.linear_bias = 0.02;  // milder preference than ABM (§6.2: 60.9% linear)
  options.folds = 3;
  options.max_probe_samples = 400;
  const auto choice = auto_select_family(train, options, derive_seed(seed, "google"));

  ClassifierPtr clf;
  if (choice.family == ClassifierFamily::kLinear) {
    clf = make_classifier("logistic_regression", ParamMap{{"max_iter", 100LL}},
                          derive_seed(seed, "google-lr"));
  } else {
    // Kernel classifier: the smooth circular boundary of Figure 10(a).
    clf = make_classifier("rbf_svm", ParamMap{{"C", 1.0}, {"max_iter", 20LL}},
                          derive_seed(seed, "google-rbf"));
  }
  clf->fit(train.x(), train.y());
  return std::make_unique<GoogleModel>(std::move(clf));
}

}  // namespace mlaas
