// ABM (Automatic Business Modeler) simulator — fully automated "1-click"
// platform (Figure 1: no user-controllable steps).
//
// Hidden pipeline: the auto-selector races the linear vs non-linear family
// with a strong linear bias (the paper measured ABM choosing linear on 68.8%
// of datasets, more than Google); the linear arm is a lightly-trained
// logistic regression, the non-linear arm an unpruned decision tree (§6.1's
// rectangular decision boundary on CIRCLE).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class AbmPlatform final : public Platform {
 public:
  std::string name() const override { return "ABM"; }
  int complexity_rank() const override { return 1; }
  ControlSurface controls() const override { return {}; }
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
