#include "platform/predictionio.h"

namespace mlaas {

ControlSurface PredictionIoPlatform::controls() const {
  ControlSurface surface;
  surface.classifier_choice = true;
  surface.parameter_tuning = true;

  ClassifierGridSpec lr;
  lr.classifier = "logistic_regression";
  // Spark MLlib defaults: maxIter=100, regParam=0 (swept from a small
  // floor), fitIntercept=true.
  lr.fixed.set("solver", std::string("sgd"));
  lr.params = {
      ParamSpec::integer("max_iter", 100, 1, 200),
      ParamSpec::number("reg_param", 1e-4, 1e-6, 1.0),
      ParamSpec::boolean("fit_intercept", true),
  };
  surface.classifiers.push_back(std::move(lr));

  ClassifierGridSpec nb;
  nb.classifier = "naive_bayes";
  nb.params = {ParamSpec::number("lambda", 1e-3, 1e-9, 1.0)};
  surface.classifiers.push_back(std::move(nb));

  ClassifierGridSpec dt;
  dt.classifier = "decision_tree";
  // Spark default maxDepth=5; numClasses is fixed at 2 for binary tasks and
  // kept for Table 1 parity (it does not alter the model).
  dt.params = {
      ParamSpec::integer("num_classes", 2, 2, 2),
      ParamSpec::integer("max_depth", 5, 1, 30),
  };
  surface.classifiers.push_back(std::move(dt));
  return surface;
}

TrainedModelPtr PredictionIoPlatform::train(const Dataset& train, const PipelineConfig& config,
                                            std::uint64_t seed) const {
  // PredictionIO returns labels only — no prediction scores (§3.2).
  return train_pipeline(controls(), name(), train, config, seed, "logistic_regression",
                        /*expose_scores=*/false);
}

}  // namespace mlaas
