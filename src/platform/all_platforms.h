// Factory for the full platform roster of the study.
#pragma once

#include <vector>

#include "platform/platform.h"

namespace mlaas {

/// All 7 systems in complexity order (Figure 2's x-axis):
/// Google, ABM, Amazon, BigML, PredictionIO, Microsoft, Local.
std::vector<PlatformPtr> make_all_platforms();

/// Single platform by name; throws std::invalid_argument for unknown names.
PlatformPtr make_platform(const std::string& name);

/// Names in complexity order.
std::vector<std::string> platform_names();

}  // namespace mlaas
