#include "platform/service.h"

#include <algorithm>
#include <stdexcept>

namespace mlaas {

std::string to_string(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kRateLimited: return "rate-limited";
    case ServiceStatus::kTransientError: return "transient-error";
    case ServiceStatus::kQuotaExhausted: return "quota-exhausted";
    case ServiceStatus::kNotFound: return "not-found";
    case ServiceStatus::kBadRequest: return "bad-request";
  }
  return "?";
}

MlaasService::MlaasService(PlatformPtr platform, ServiceQuota quota, std::uint64_t seed)
    : platform_(std::move(platform)),
      quota_(quota),
      rng_(derive_seed(seed, "mlaas-service")) {
  if (!platform_) throw std::invalid_argument("MlaasService: null platform");
  platform_name_ = platform_->name();
}

void MlaasService::advance_clock(double seconds) {
  clock_seconds_ += std::max(0.0, seconds);
}

ServiceStatus MlaasService::admit(std::size_t work_samples) {
  ++stats_.requests;
  // Drop window entries that have aged out.
  const double window_start = clock_seconds_ - quota_.window_seconds;
  request_times_.erase(
      std::remove_if(request_times_.begin(), request_times_.end(),
                     [&](double t) { return t < window_start; }),
      request_times_.end());
  if (request_times_.size() >= quota_.requests_per_window) {
    ++stats_.rate_limited;
    return ServiceStatus::kRateLimited;
  }
  request_times_.push_back(clock_seconds_);
  // Latency accrues whether or not the request ultimately succeeds.
  advance_clock(quota_.base_latency_seconds +
                quota_.per_sample_latency_seconds * static_cast<double>(work_samples));
  if (quota_.fault_rate > 0.0 && rng_.chance(quota_.fault_rate)) {
    ++stats_.transient_errors;
    return ServiceStatus::kTransientError;
  }
  return ServiceStatus::kOk;
}

ServiceStatus MlaasService::upload(const Dataset& dataset, std::string* handle) {
  if (handle == nullptr) throw std::invalid_argument("upload: null handle out-param");
  const ServiceStatus admitted = admit(dataset.n_samples());
  if (admitted != ServiceStatus::kOk) return admitted;
  *handle = "ds-" + std::to_string(next_handle_++);
  datasets_.emplace(*handle, dataset);
  return ServiceStatus::kOk;
}

ServiceStatus MlaasService::train(const std::string& dataset_handle,
                                  const PipelineConfig& config, std::string* model_handle) {
  if (model_handle == nullptr) throw std::invalid_argument("train: null handle out-param");
  auto it = datasets_.find(dataset_handle);
  if (it == datasets_.end()) return ServiceStatus::kNotFound;
  if (quota_.max_training_jobs > 0 && stats_.trainings >= quota_.max_training_jobs) {
    return ServiceStatus::kQuotaExhausted;
  }
  const ServiceStatus admitted = admit(it->second.n_samples() * 10);  // training is slow
  if (admitted != ServiceStatus::kOk) return admitted;
  try {
    auto model = platform_->train(it->second, config,
                                  derive_seed(rng_.next(), "service-train"));
    ++stats_.trainings;
    *model_handle = "model-" + std::to_string(next_handle_++);
    models_.emplace(*model_handle, std::move(model));
    return ServiceStatus::kOk;
  } catch (const std::invalid_argument&) {
    return ServiceStatus::kBadRequest;
  }
}

ServiceStatus MlaasService::predict(const std::string& model_handle, const Matrix& x,
                                    std::vector<int>* labels) {
  if (labels == nullptr) throw std::invalid_argument("predict: null labels out-param");
  auto it = models_.find(model_handle);
  if (it == models_.end()) return ServiceStatus::kNotFound;
  const ServiceStatus admitted = admit(x.rows());
  if (admitted != ServiceStatus::kOk) return admitted;
  *labels = it->second->predict(x);
  return ServiceStatus::kOk;
}

RetryingClient::RetryingClient(MlaasService& service, int max_attempts,
                               double initial_backoff_seconds)
    : service_(service),
      max_attempts_(std::max(1, max_attempts)),
      initial_backoff_(initial_backoff_seconds) {}

ServiceStatus RetryingClient::with_retries(const std::function<ServiceStatus()>& call) {
  double backoff = initial_backoff_;
  ServiceStatus status = ServiceStatus::kOk;
  for (int attempt = 0; attempt < max_attempts_; ++attempt) {
    status = call();
    switch (status) {
      case ServiceStatus::kOk:
      case ServiceStatus::kQuotaExhausted:
      case ServiceStatus::kNotFound:
      case ServiceStatus::kBadRequest:
        return status;  // success or permanent failure: stop retrying
      case ServiceStatus::kRateLimited:
      case ServiceStatus::kTransientError:
        ++retries_;
        service_.advance_clock(backoff);
        backoff *= 2.0;
        break;
    }
  }
  return status;
}

std::optional<std::vector<int>> RetryingClient::train_and_predict(
    const Dataset& train, const PipelineConfig& config, const Matrix& query) {
  std::string dataset_handle;
  if (with_retries([&] { return service_.upload(train, &dataset_handle); }) !=
      ServiceStatus::kOk) {
    return std::nullopt;
  }
  std::string model_handle;
  if (with_retries([&] { return service_.train(dataset_handle, config, &model_handle); }) !=
      ServiceStatus::kOk) {
    return std::nullopt;
  }
  std::vector<int> labels;
  if (with_retries([&] { return service_.predict(model_handle, query, &labels); }) !=
      ServiceStatus::kOk) {
    return std::nullopt;
  }
  return labels;
}

}  // namespace mlaas
