#include "platform/service.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/clock.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace mlaas {

std::string to_string(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kRateLimited: return "rate-limited";
    case ServiceStatus::kTransientError: return "transient-error";
    case ServiceStatus::kQuotaExhausted: return "quota-exhausted";
    case ServiceStatus::kNotFound: return "not-found";
    case ServiceStatus::kBadRequest: return "bad-request";
    case ServiceStatus::kServerError: return "server-error";
    case ServiceStatus::kUnavailable: return "unavailable";
  }
  return "?";
}

bool is_retryable(ServiceStatus status) {
  return status == ServiceStatus::kRateLimited ||
         status == ServiceStatus::kTransientError ||
         status == ServiceStatus::kUnavailable;
}

bool FaultWindow::active_at(double t) const {
  if (period <= 0.0 || duration <= 0.0) return false;
  double pos = std::fmod(t - phase, period);
  if (pos < 0.0) pos += period;
  return pos < duration;
}

double FaultWindow::seconds_active(double t0, double t1) const {
  if (period <= 0.0 || duration <= 0.0 || t1 <= t0) return 0.0;
  // Occurrence k covers [phase + k*period, phase + k*period + duration).
  const auto k_first =
      static_cast<long long>(std::floor((t0 - phase - duration) / period));
  const auto k_last = static_cast<long long>(std::floor((t1 - phase) / period));
  double total = 0.0;
  for (long long k = k_first; k <= k_last; ++k) {
    const double start = phase + static_cast<double>(k) * period;
    const double overlap = std::min(t1, start + duration) - std::max(t0, start);
    if (overlap > 0.0) total += overlap;
  }
  return total;
}

double FaultWindow::seconds_until_inactive(double t) const {
  if (!active_at(t)) return 0.0;
  double pos = std::fmod(t - phase, period);
  if (pos < 0.0) pos += period;
  return duration - pos;
}

bool FaultPlan::in_outage(double t) const {
  for (const auto& w : outages) {
    if (w.active_at(t)) return true;
  }
  return false;
}

double FaultPlan::effective_fault_rate(double t, double base_rate) const {
  for (const auto& w : bursts) {
    if (w.active_at(t)) return std::max(base_rate, burst_fault_rate);
  }
  return base_rate;
}

double FaultPlan::latency_factor(double t) const {
  for (const auto& w : latency_spikes) {
    if (w.active_at(t)) return latency_multiplier;
  }
  return 1.0;
}

double FaultPlan::outage_seconds(double t0, double t1) const {
  // Windows of one plan are drawn with distinct periods/phases; treating a
  // rare overlap as double-counted keeps this O(outage windows).
  double total = 0.0;
  for (const auto& w : outages) total += w.seconds_active(t0, t1);
  return total;
}

namespace {

FaultWindow draw_window(Rng& rng, double period_lo, double period_hi,
                        double duration_lo, double duration_hi) {
  FaultWindow w;
  w.period = rng.uniform(period_lo, period_hi);
  w.duration = rng.uniform(duration_lo, duration_hi);
  w.phase = rng.uniform(0.0, w.period);
  return w;
}

}  // namespace

FaultPlan make_fault_plan(const std::string& chaos_profile, const std::string& platform,
                          std::uint64_t seed) {
  FaultPlan plan;
  if (chaos_profile == "none") return plan;
  const bool outages = chaos_profile == "outages" || chaos_profile == "storm";
  const bool bursts = chaos_profile == "bursts" || chaos_profile == "storm";
  const bool latency = chaos_profile == "latency" || chaos_profile == "storm";
  if (!outages && !bursts && !latency) {
    throw std::invalid_argument("make_fault_plan: unknown chaos profile '" +
                                chaos_profile + "'");
  }
  Rng rng(derive_seed(seed, "chaos-" + chaos_profile + "-" + platform));
  if (outages) {
    // A couple of recurring outages per platform: minutes-long windows every
    // half hour to hour and a half, the shape of real provider incidents.
    plan.outages.push_back(draw_window(rng, 1800.0, 5400.0, 120.0, 600.0));
    plan.outages.push_back(draw_window(rng, 7200.0, 21600.0, 300.0, 1200.0));
  }
  if (bursts) {
    plan.bursts.push_back(draw_window(rng, 600.0, 1800.0, 60.0, 300.0));
    plan.burst_fault_rate = rng.uniform(0.4, 0.8);
  }
  if (latency) {
    plan.latency_spikes.push_back(draw_window(rng, 900.0, 2700.0, 120.0, 480.0));
    plan.latency_multiplier = rng.uniform(3.0, 10.0);
  }
  return plan;
}

std::vector<std::string> chaos_profile_names() {
  return {"none", "outages", "bursts", "latency", "storm"};
}

ServiceQuota quota_profile(const std::string& profile, const std::string& platform) {
  ServiceQuota q;
  if (profile == "unlimited") {
    q.requests_per_window = 1u << 30;
    q.base_latency_seconds = 0.0;
    q.per_sample_latency_seconds = 0.0;
    return q;
  }
  if (profile == "strict") {
    // Stress the rate limiter: a handful of requests per minute, the kind
    // of limit §8 says excluded providers from the paper's study.
    q.requests_per_window = 5;
    q.window_seconds = 60.0;
    q.base_latency_seconds = 1.0;
    q.per_sample_latency_seconds = 1e-3;
    return q;
  }
  if (profile == "default" || profile == "free-tier") {
    // Plausible per-provider envelopes: big clouds are fast but strictly
    // limited; startups are slower; Local is the in-house baseline.
    if (platform == "Google") {
      q = {100, 60.0, 0, 0.0, 0.5, 5e-4};
    } else if (platform == "ABM") {
      q = {20, 60.0, 0, 0.0, 2.0, 2e-3};
    } else if (platform == "Amazon") {
      q = {100, 60.0, 0, 0.0, 1.0, 5e-4};
    } else if (platform == "BigML") {
      q = {60, 60.0, 0, 0.0, 1.0, 1e-3};
    } else if (platform == "PredictionIO") {
      q = {60, 60.0, 0, 0.0, 1.5, 1e-3};
    } else if (platform == "Microsoft") {
      q = {120, 60.0, 0, 0.0, 2.0, 1e-3};
    } else {  // Local and anything unknown: effectively unconstrained
      q = {100000, 60.0, 0, 0.0, 0.0, 1e-5};
    }
    if (profile == "free-tier") q.max_training_jobs = 10;
    return q;
  }
  throw std::invalid_argument("quota_profile: unknown profile '" + profile + "'");
}

std::vector<std::string> quota_profile_names() {
  return {"default", "strict", "free-tier", "unlimited"};
}

void ServiceStats::merge(const ServiceStats& other) { merge_stats(*this, other); }

MlaasService::MlaasService(PlatformPtr platform, ServiceQuota quota, std::uint64_t seed)
    : owned_platform_(std::move(platform)),
      platform_(owned_platform_.get()),
      quota_(quota),
      rng_(derive_seed(seed, "mlaas-service")) {
  if (platform_ == nullptr) throw std::invalid_argument("MlaasService: null platform");
  platform_name_ = platform_->name();
}

MlaasService::MlaasService(const Platform& platform, ServiceQuota quota, std::uint64_t seed)
    : platform_(&platform),
      platform_name_(platform.name()),
      quota_(quota),
      rng_(derive_seed(seed, "mlaas-service")) {}

void MlaasService::advance_clock(double seconds) {
  clock_seconds_ += std::max(0.0, seconds);
}

ServiceStatus MlaasService::admit(std::size_t work_samples) {
  ++stats_.requests;
  // Correlated outage: the gateway is down, so the request never reaches the
  // rate limiter.  Only the connection timeout accrues, and no Retry-After
  // hint is offered — real 503s do not say when the incident ends.
  if (quota_.fault_plan.in_outage(clock_seconds_)) {
    ++stats_.unavailable;
    advance_clock(quota_.base_latency_seconds);
    return ServiceStatus::kUnavailable;
  }
  // Drop window entries that have aged out.
  const double window_start = clock_seconds_ - quota_.window_seconds;
  request_times_.erase(
      std::remove_if(request_times_.begin(), request_times_.end(),
                     [&](double t) { return t < window_start; }),
      request_times_.end());
  if (request_times_.size() >= quota_.requests_per_window) {
    ++stats_.rate_limited;
    // Retry-After: when the oldest in-window request ages out.  Entries are
    // appended in clock order, so front() is the oldest.
    retry_after_seconds_ =
        std::max(0.0, request_times_.front() + quota_.window_seconds - clock_seconds_);
    return ServiceStatus::kRateLimited;
  }
  request_times_.push_back(clock_seconds_);
  // Latency accrues whether or not the request ultimately succeeds; a spike
  // window multiplies it.
  advance_clock((quota_.base_latency_seconds +
                 quota_.per_sample_latency_seconds * static_cast<double>(work_samples)) *
                quota_.fault_plan.latency_factor(clock_seconds_));
  const double fault_rate =
      quota_.fault_plan.effective_fault_rate(clock_seconds_, quota_.fault_rate);
  if (fault_rate > 0.0 && rng_.chance(fault_rate)) {
    ++stats_.transient_errors;
    return ServiceStatus::kTransientError;
  }
  return ServiceStatus::kOk;
}

ServiceStatus MlaasService::traced(const char* op, double start, std::size_t rows,
                                   ServiceStatus status) {
  if (trace_ != nullptr) {
    trace_->span("service", op, start, clock_seconds_ - start,
                 {{"platform", platform_name_},
                  {"status", to_string(status)},
                  {"rows", std::to_string(rows)}});
  }
  return status;
}

ServiceStatus MlaasService::upload(const Dataset& dataset, std::string* handle) {
  if (handle == nullptr) throw std::invalid_argument("upload: null handle out-param");
  const double start = clock_seconds_;
  const ServiceStatus admitted = admit(dataset.n_samples());
  if (admitted != ServiceStatus::kOk) {
    return traced("upload", start, dataset.n_samples(), admitted);
  }
  ++stats_.uploads;
  *handle = "ds-" + std::to_string(next_handle_++);
  datasets_.emplace(*handle, dataset);
  return traced("upload", start, dataset.n_samples(), ServiceStatus::kOk);
}

ServiceStatus MlaasService::train(const std::string& dataset_handle,
                                  const PipelineConfig& config, std::string* model_handle,
                                  std::optional<std::uint64_t> seed,
                                  double* train_cpu_seconds) {
  if (model_handle == nullptr) throw std::invalid_argument("train: null handle out-param");
  const double start = clock_seconds_;
  auto it = datasets_.find(dataset_handle);
  if (it == datasets_.end()) return traced("train", start, 0, ServiceStatus::kNotFound);
  const std::size_t rows = it->second.n_samples();
  if (quota_.max_training_jobs > 0 && stats_.trainings >= quota_.max_training_jobs) {
    return traced("train", start, rows, ServiceStatus::kQuotaExhausted);
  }
  const ServiceStatus admitted = admit(rows * 10);  // training is slow
  if (admitted != ServiceStatus::kOk) return traced("train", start, rows, admitted);
  const std::uint64_t train_seed =
      seed ? *seed : derive_seed(rng_.next(), "service-train");
  try {
    // Per-thread CPU time, not wall time: campaign workers share cores, and
    // the measured training cost must not depend on pool oversubscription.
    const double t0 = thread_cpu_seconds();
    auto model = platform_->train(it->second, config, train_seed);
    const double elapsed = thread_cpu_seconds() - t0;
    stats_.train_cpu_seconds += elapsed;
    if (train_cpu_seconds != nullptr) *train_cpu_seconds = elapsed;
    ++stats_.trainings;
    *model_handle = "model-" + std::to_string(next_handle_++);
    models_.emplace(*model_handle, std::move(model));
    return traced("train", start, rows, ServiceStatus::kOk);
  } catch (const std::invalid_argument&) {
    return traced("train", start, rows, ServiceStatus::kBadRequest);
  } catch (const std::exception& e) {
    // Anything else the platform throws is an internal error: report it as
    // HTTP-500 instead of letting it unwind through the campaign's thread
    // pool and kill the run.
    ++stats_.server_errors;
    last_error_ = e.what();
    return traced("train", start, rows, ServiceStatus::kServerError);
  }
}

ServiceStatus MlaasService::predict(const std::string& model_handle, const Matrix& x,
                                    std::vector<int>* labels, double* predict_cpu_seconds) {
  if (labels == nullptr) throw std::invalid_argument("predict: null labels out-param");
  const double start = clock_seconds_;
  auto it = models_.find(model_handle);
  if (it == models_.end()) return traced("predict", start, 0, ServiceStatus::kNotFound);
  const ServiceStatus admitted = admit(x.rows());
  if (admitted != ServiceStatus::kOk) return traced("predict", start, x.rows(), admitted);
  try {
    // Same real-CPU-time accounting as train: per-thread CPU seconds, so the
    // measured query cost is independent of thread-pool oversubscription.
    const double t0 = thread_cpu_seconds();
    *labels = it->second->predict(x);
    const double elapsed = thread_cpu_seconds() - t0;
    stats_.predict_cpu_seconds += elapsed;
    if (predict_cpu_seconds != nullptr) *predict_cpu_seconds = elapsed;
  } catch (const std::exception& e) {
    ++stats_.server_errors;
    last_error_ = e.what();
    return traced("predict", start, x.rows(), ServiceStatus::kServerError);
  }
  // Per-row accounting, matching admit()'s per-sample latency charge: one
  // 64-row call and 64 single-row calls record the same prediction work.
  stats_.predictions += x.rows();
  return traced("predict", start, x.rows(), ServiceStatus::kOk);
}

ServiceStatus MlaasService::delete_dataset(const std::string& handle) {
  if (datasets_.erase(handle) == 0) return ServiceStatus::kNotFound;
  ++stats_.datasets_deleted;
  return ServiceStatus::kOk;
}

ServiceStatus MlaasService::delete_model(const std::string& handle) {
  if (models_.erase(handle) == 0) return ServiceStatus::kNotFound;
  ++stats_.models_deleted;
  return ServiceStatus::kOk;
}

std::shared_ptr<const TrainedModel> MlaasService::model(const std::string& handle) const {
  const auto it = models_.find(handle);
  return it == models_.end() ? nullptr : it->second;
}

RetryingClient::RetryingClient(MlaasService& service, int max_attempts,
                               double initial_backoff_seconds)
    : RetryingClient(service, [&] {
        RetryPolicy p;
        p.max_attempts = max_attempts;
        p.initial_backoff_seconds = initial_backoff_seconds;
        return p;
      }()) {}

RetryingClient::RetryingClient(MlaasService& service, const RetryPolicy& policy)
    : service_(service),
      policy_(policy),
      jitter_rng_(derive_seed(policy.jitter_seed, "retry-jitter")) {
  policy_.max_attempts = std::max(1, policy_.max_attempts);
  policy_.max_backoff_seconds =
      std::max(policy_.initial_backoff_seconds, policy_.max_backoff_seconds);
}

ServiceStatus RetryingClient::with_retries(const std::function<ServiceStatus()>& call,
                                           double deadline) {
  double backoff = policy_.initial_backoff_seconds;
  double prev_sleep = policy_.initial_backoff_seconds;
  ServiceStatus status = ServiceStatus::kOk;
  deadline_limited_ = false;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    status = call();
    if (!is_retryable(status)) return status;  // success or permanent failure
    if (attempt + 1 == policy_.max_attempts) break;  // budget spent: no idle sleep
    double wait;
    if (status == ServiceStatus::kRateLimited) {
      // Honour the Retry-After hint so a long window does not eat the whole
      // retry budget one backoff at a time.  The hint may exceed the capped
      // backoff; waiting it out is still cheaper than burning attempts.
      //
      // The +1e-6 epsilon is load-bearing: admit() ages window entries out
      // with a strict `t < window_start` comparison, and the hint is computed
      // as exactly `front() + window - now`.  Sleeping exactly that long
      // lands the retry at the instant the oldest entry expires, where
      // `t == window_start` still counts against the window — the retry
      // would be rejected again and an attempt burned.  Nudging the wake-up
      // strictly past expiry admits the retry on its first attempt (locked
      // by the RetryAfterHintAtExactExpiry* regression tests).
      wait = std::max(backoff, service_.retry_after_seconds() + 1e-6);
    } else if (policy_.jitter) {
      // Decorrelated jitter: uniform in [initial, min(cap, 3 * prev sleep)].
      const double hi = std::min(policy_.max_backoff_seconds, 3.0 * prev_sleep);
      wait = jitter_rng_.uniform(policy_.initial_backoff_seconds,
                                 std::max(policy_.initial_backoff_seconds, hi));
      prev_sleep = wait;
    } else {
      wait = backoff;
      backoff = std::min(backoff * 2.0, policy_.max_backoff_seconds);
    }
    if (service_.now() + wait > deadline) {
      // The sleep would overrun the caller's deadline budget: stop retrying
      // and report the last retryable status now, rather than resolving the
      // request after its deadline has already passed.
      deadline_limited_ = true;
      ++deadline_refusals_;
      if (trace_ != nullptr) {
        trace_->instant("retry", "deadline-refused", service_.now(),
                        {{"status", to_string(status)},
                         {"wait", format_metric_value(wait)}});
      }
      break;
    }
    ++retries_;
    backoff_seconds_ += wait;
    if (trace_ != nullptr) {
      trace_->span("retry",
                   status == ServiceStatus::kRateLimited ? "retry-after-wait"
                                                         : "backoff-wait",
                   service_.now(), wait,
                   {{"attempt", std::to_string(attempt + 1)},
                    {"status", to_string(status)}});
    }
    service_.advance_clock(wait);
  }
  return status;
}

ServiceStatus RetryingClient::upload(const Dataset& dataset, std::string* handle,
                                     double deadline) {
  return with_retries([&] { return service_.upload(dataset, handle); }, deadline);
}

ServiceStatus RetryingClient::train(const std::string& dataset_handle,
                                    const PipelineConfig& config, std::string* model_handle,
                                    std::optional<std::uint64_t> seed,
                                    double* train_cpu_seconds, double deadline) {
  return with_retries(
      [&] { return service_.train(dataset_handle, config, model_handle, seed,
                                  train_cpu_seconds); },
      deadline);
}

ServiceStatus RetryingClient::predict(const std::string& model_handle, const Matrix& x,
                                      std::vector<int>* labels, double* predict_cpu_seconds,
                                      double deadline) {
  return with_retries(
      [&] { return service_.predict(model_handle, x, labels, predict_cpu_seconds); },
      deadline);
}

std::optional<std::vector<int>> RetryingClient::train_and_predict(
    const Dataset& train, const PipelineConfig& config, const Matrix& query) {
  // Both intermediate handles are scope-guarded: a mid-sequence failure (or
  // an exception out of predict) used to leak the uploaded dataset — and the
  // trained model — into the service's maps for the service's lifetime.
  std::string dataset_handle;
  std::string model_handle;
  struct HandleGuard {
    MlaasService& service;
    const std::string& dataset;
    const std::string& model;
    ~HandleGuard() {
      if (!dataset.empty()) service.delete_dataset(dataset);
      if (!model.empty()) service.delete_model(model);
    }
  } guard{service_, dataset_handle, model_handle};

  if (upload(train, &dataset_handle) != ServiceStatus::kOk) return std::nullopt;
  if (this->train(dataset_handle, config, &model_handle) != ServiceStatus::kOk) {
    return std::nullopt;
  }
  std::vector<int> labels;
  if (predict(model_handle, query, &labels) != ServiceStatus::kOk) return std::nullopt;
  return labels;
}

}  // namespace mlaas
