#include "platform/microsoft_azure.h"

namespace mlaas {

ControlSurface MicrosoftAzurePlatform::controls() const {
  ControlSurface surface;
  surface.feature_selection = true;
  surface.classifier_choice = true;
  surface.parameter_tuning = true;
  surface.feature_steps = {
      "fisher_lda",      "filter_pearson", "filter_mutual_info", "filter_kendall",
      "filter_spearman", "filter_chi2",    "filter_fisher",      "filter_count",
  };

  // Logistic Regression: optimization tolerance, L1 weight, L2 weight,
  // L-BFGS memory size (mapped to the iteration budget).  The heavy default
  // regularization (weight 1.0) is Azure's documented default.
  ClassifierGridSpec lr;
  lr.classifier = "logistic_regression";
  lr.fixed.set("penalty", std::string("l2"));
  lr.fixed.set("solver", std::string("gd"));
  lr.params = {
      ParamSpec::number("tolerance", 1e-7, 1e-9, 1e-3),
      ParamSpec::number("reg_param", 1.0, 1e-4, 50.0),
      ParamSpec::integer("max_iter", 30, 5, 200),
  };
  surface.classifiers.push_back(std::move(lr));

  ClassifierGridSpec svm;
  svm.classifier = "linear_svm";
  svm.params = {
      ParamSpec::integer("max_iter", 1, 1, 100),
      ParamSpec::number("lambda", 1e-3, 1e-6, 1.0),
  };
  surface.classifiers.push_back(std::move(svm));

  ClassifierGridSpec ap;
  ap.classifier = "averaged_perceptron";
  ap.params = {
      ParamSpec::number("learning_rate", 1.0, 1e-3, 10.0),
      ParamSpec::integer("max_iter", 10, 1, 200),
  };
  surface.classifiers.push_back(std::move(ap));

  ClassifierGridSpec bpm;
  bpm.classifier = "bayes_point_machine";
  bpm.params = {ParamSpec::integer("training_iterations", 30, 1, 150)};
  surface.classifiers.push_back(std::move(bpm));

  ClassifierGridSpec bst;
  bst.classifier = "boosted_trees";
  bst.params = {
      ParamSpec::integer("max_leaves", 20, 2, 128),
      ParamSpec::integer("min_instances_per_leaf", 10, 1, 50),
      ParamSpec::number("learning_rate", 0.2, 0.05, 1.0),
      ParamSpec::integer("n_estimators", 40, 10, 80),
  };
  surface.classifiers.push_back(std::move(bst));

  ClassifierGridSpec rf;
  rf.classifier = "random_forest";
  rf.params = {
      ParamSpec::categorical("resampling", {"bagging", "replicate"}),
      ParamSpec::integer("n_estimators", 8, 1, 48),
      ParamSpec::integer("max_depth", 16, 1, 64),
      ParamSpec::integer("random_splits", 0, 0, 64),
      ParamSpec::integer("min_samples_leaf", 1, 1, 20),
  };
  surface.classifiers.push_back(std::move(rf));

  ClassifierGridSpec dj;
  dj.classifier = "decision_jungle";
  dj.params = {
      ParamSpec::categorical("resampling", {"bagging", "replicate"}),
      ParamSpec::integer("n_dags", 8, 1, 48),
      ParamSpec::integer("max_depth", 16, 1, 64),
      ParamSpec::integer("max_width", 32, 2, 256),
      ParamSpec::integer("optimization_steps", 16, 1, 64),
  };
  surface.classifiers.push_back(std::move(dj));
  return surface;
}

TrainedModelPtr MicrosoftAzurePlatform::train(const Dataset& train,
                                              const PipelineConfig& config,
                                              std::uint64_t seed) const {
  return train_pipeline(controls(), name(), train, config, seed, "logistic_regression",
                        /*expose_scores=*/true);
}

}  // namespace mlaas
