#include "platform/platform.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace mlaas {

std::string PipelineConfig::key() const {
  const std::string feat = feature_step.empty() ? "none" : feature_step;
  const std::string clf = classifier.empty() ? "auto" : classifier;
  return feat + "|" + clf + "|" + params.to_string();
}

const ClassifierGridSpec* ControlSurface::find(const std::string& classifier) const {
  for (const auto& spec : classifiers) {
    if (spec.classifier == classifier) return &spec;
  }
  return nullptr;
}

std::vector<double> TrainedModel::predict_score(const Matrix&) const {
  throw std::logic_error("TrainedModel: this platform does not expose prediction scores");
}

PipelineConfig Platform::baseline_config() const {
  PipelineConfig config;
  const ControlSurface surface = controls();
  if (!surface.classifier_choice) return config;  // fully automated platform
  const ClassifierGridSpec* lr = surface.find("logistic_regression");
  if (lr == nullptr) lr = &surface.classifiers.front();
  config.classifier = lr->classifier;
  config.params = lr->default_config();
  return config;
}

PipelineModel::PipelineModel(TransformerPtr feature_step, ClassifierPtr classifier,
                             bool expose_scores)
    : feature_step_(std::move(feature_step)),
      classifier_(std::move(classifier)),
      expose_scores_(expose_scores) {
  if (!classifier_) throw std::invalid_argument("PipelineModel: null classifier");
}

void PipelineModel::fit(const Dataset& train) {
  if (feature_step_) feature_step_->fit(train.x(), train.y());
  classifier_->fit(apply_feature_step(train.x()), train.y());
}

const Matrix& PipelineModel::apply_feature_step(const Matrix& x) const {
  if (!feature_step_) return x;  // no copy on the no-FEAT fast path
  feat_scratch_ = feature_step_->transform(x);
  return feat_scratch_;
}

std::vector<int> PipelineModel::predict(const Matrix& x) const {
  std::vector<int> labels;
  classifier_->predict_into(apply_feature_step(x), score_scratch_, labels);
  return labels;
}

std::vector<double> PipelineModel::predict_score(const Matrix& x) const {
  if (!expose_scores_) return TrainedModel::predict_score(x);
  return classifier_->predict_score(apply_feature_step(x));
}

TrainedModelPtr train_pipeline(const ControlSurface& surface, const std::string& platform_name,
                               const Dataset& train, const PipelineConfig& config,
                               std::uint64_t seed, const std::string& default_classifier,
                               bool expose_scores) {
  // Validate FEAT.
  TransformerPtr feat;
  if (!config.feature_step.empty() && config.feature_step != "none") {
    if (!surface.feature_selection) {
      throw std::invalid_argument(platform_name + ": feature selection is not supported");
    }
    if (std::find(surface.feature_steps.begin(), surface.feature_steps.end(),
                  config.feature_step) == surface.feature_steps.end()) {
      throw std::invalid_argument(platform_name + ": unknown feature step " +
                                  config.feature_step);
    }
    feat = make_feature_step(config.feature_step);
  }
  // Validate CLF.
  std::string clf_name = config.classifier.empty() ? default_classifier : config.classifier;
  if (!config.classifier.empty() && !surface.classifier_choice &&
      config.classifier != default_classifier) {
    throw std::invalid_argument(platform_name + ": classifier choice is not supported");
  }
  const ClassifierGridSpec* spec = surface.find(clf_name);
  if (spec == nullptr) {
    throw std::invalid_argument(platform_name + ": unknown classifier " + clf_name);
  }
  // Validate PARA: fill platform defaults, overlay user values.
  if (!config.params.empty() && !surface.parameter_tuning) {
    throw std::invalid_argument(platform_name + ": parameter tuning is not supported");
  }
  ParamMap params = spec->default_config();
  for (const auto& [k, v] : config.params) params.set(k, v);

  auto model = std::make_unique<PipelineModel>(
      std::move(feat),
      make_classifier(clf_name, params, derive_seed(seed, platform_name + clf_name)),
      expose_scores);
  model->fit(train);
  return model;
}

}  // namespace mlaas
