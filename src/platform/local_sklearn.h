// Local scikit-learn stand-in — the "full control" endpoint of the
// complexity spectrum (§3.2's `local` reference point).
//
// FEAT (Table 1): FClassif, MutualInfoClassif, GaussianNorm, MinMaxScaler,
// MaxAbsScaler, L1Normalization, L2Normalization, StandardScaler.
// CLF: the 10 classifiers of Table 1's scikit-learn row with their
// 2-3-parameter grids.
#pragma once

#include "platform/platform.h"

namespace mlaas {

class LocalSklearnPlatform final : public Platform {
 public:
  std::string name() const override { return "Local"; }
  int complexity_rank() const override { return 6; }
  ControlSurface controls() const override;
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
