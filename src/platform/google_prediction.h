// Google Prediction API simulator — fully automated black-box platform
// (Figure 1: no user-controllable steps).
//
// Hidden pipeline: an auto-selector with a mild linear bias (§6.2 measured
// Google choosing linear on 60.9% of datasets); the linear arm is a
// well-trained logistic regression, the non-linear arm an RBF-kernel SVM —
// §6.1 infers from the circular CIRCLE boundary that Google uses a
// kernel-based non-linear classifier (Figure 10(a)).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class GooglePredictionPlatform final : public Platform {
 public:
  std::string name() const override { return "Google"; }
  int complexity_rank() const override { return 0; }
  ControlSurface controls() const override { return {}; }
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
