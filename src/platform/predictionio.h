// PredictionIO simulator.
//
// Exposes classifier choice and parameter tuning (Figure 1).  The measured
// subset of Table 1: Logistic Regression (maxIter, regParam, fitIntercept),
// Naive Bayes (lambda), Decision Tree (numClasses, maxDepth).  Defaults
// follow Spark MLlib (PredictionIO's engine).  Trained models do not expose
// prediction scores (§3.2).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class PredictionIoPlatform final : public Platform {
 public:
  std::string name() const override { return "PredictionIO"; }
  int complexity_rank() const override { return 4; }
  ControlSurface controls() const override;
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
