#include "platform/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "data/generators.h"
#include "platform/all_platforms.h"
#include "util/io.h"
#include "util/rng.h"

namespace mlaas {

// ---------------------------------------------------------------------------
// LatencyHistogram

const std::vector<double>& LatencyHistogram::bucket_bounds() {
  // Log-spaced, sqrt(2) ratio, 1 ms .. ~23000 s: 49 bounds + overflow slot.
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    double bound = 1e-3;
    for (int i = 0; i < 49; ++i) {
      b.push_back(bound);
      bound *= std::sqrt(2.0);
    }
    return b;
  }();
  return bounds;
}

LatencyHistogram::LatencyHistogram() : buckets_(bucket_bounds().size() + 1, 0) {}

void LatencyHistogram::record(double seconds) {
  seconds = std::max(0.0, seconds);
  const auto& bounds = bucket_bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), seconds);
  buckets_[static_cast<std::size_t>(it - bounds.begin())] += 1;
  ++count_;
  total_ += seconds;
  max_ = std::max(max_, seconds);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ += other.total_;
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t target = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(count_))));
  const auto& bounds = bucket_bounds();
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      if (i >= bounds.size()) return max_;  // overflow bucket
      // Geometric midpoint of the bucket (bounds are sqrt(2)-spaced, so the
      // lower edge is bounds[i]/sqrt(2) — also valid for the first bucket).
      return bounds[i] / std::pow(2.0, 0.25);
    }
  }
  return max_;
}

std::string LatencyHistogram::encode() const {
  const auto& bounds = bucket_bounds();
  std::ostringstream out;
  out.precision(4);
  bool first = true;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (!first) out << ';';
    first = false;
    if (i < bounds.size()) {
      out << bounds[i] * 1000.0;
    } else {
      out << "inf";
    }
    out << '=' << buckets_[i];
  }
  return first ? "-" : out.str();
}

// ---------------------------------------------------------------------------
// Stats / report

std::string to_string(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kPending: return "pending";
    case QueryOutcome::kOk: return "ok";
    case QueryOutcome::kFailover: return "failover";
    case QueryOutcome::kLastKnownGood: return "last_known_good";
    case QueryOutcome::kDeadlineMissed: return "deadline_missed";
    case QueryOutcome::kDegraded: return "degraded";
    case QueryOutcome::kFailed: return "failed";
  }
  return "unknown";
}

void TenantServingStats::merge(const TenantServingStats& other) {
  merge_stats(*this, other);
  latency.merge(other.latency);
}

double ServingStats::mean_batch_rows() const {
  return batches == 0 ? 0.0
                      : static_cast<double>(batched_rows) / static_cast<double>(batches);
}

double ServingStats::batch_occupancy(std::size_t max_batch_rows) const {
  return max_batch_rows == 0 ? 0.0
                             : mean_batch_rows() / static_cast<double>(max_batch_rows);
}

double ServingStats::throughput_rows_per_sec() const {
  return simulated_seconds <= 0.0 ? 0.0
                                  : static_cast<double>(batched_rows) / simulated_seconds;
}

double ServingStats::goodput() const {
  return requests == 0 ? 0.0 : static_cast<double>(ok) / static_cast<double>(requests);
}

namespace {

constexpr const char* kServingHeader =
    "tenant\trequests\trows\tok\tfailed\trejected\tmean_ms\tp50_ms\tp95_ms\tp99_ms\tmax_ms";

void write_latency_columns(std::ostream& out, const LatencyHistogram& h) {
  out << h.mean_seconds() * 1000.0 << '\t' << h.quantile(0.50) * 1000.0 << '\t'
      << h.quantile(0.95) * 1000.0 << '\t' << h.quantile(0.99) * 1000.0 << '\t'
      << h.max_seconds() * 1000.0;
}

void write_tenant_row(std::ostream& out, const TenantServingStats& t) {
  out << t.tenant << '\t' << t.requests << '\t' << t.rows << '\t' << t.ok << '\t'
      << t.failed << '\t' << t.rejected << '\t';
  write_latency_columns(out, t.latency);
  out << '\n';
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void write_latency_json(std::ostream& out, const LatencyHistogram& h) {
  out << "{\"mean\": " << h.mean_seconds() * 1000.0
      << ", \"p50\": " << h.quantile(0.50) * 1000.0
      << ", \"p95\": " << h.quantile(0.95) * 1000.0
      << ", \"p99\": " << h.quantile(0.99) * 1000.0
      << ", \"max\": " << h.max_seconds() * 1000.0 << "}";
}

}  // namespace

void ServingReport::write_tsv(std::ostream& out) const {
  out.precision(10);
  out << kServingHeader << '\n';
  for (const auto& t : tenants) write_tenant_row(out, t);
  TenantServingStats total;
  total.tenant = "TOTAL";
  total.requests = totals.requests;
  total.rows = totals.rows;
  total.ok = totals.ok;
  total.failed = totals.failed;
  total.rejected = totals.rejected;
  total.latency = totals.latency;
  write_tenant_row(out, total);
  // Router counters ride along as a marked trailer (same scheme as the
  // campaign report's "# scheduler" line) so the tenant table keeps its
  // fixed column shape.
  out << "# serving\tbatches=" << totals.batches
      << "\tmean_batch_rows=" << totals.mean_batch_rows()
      << "\toccupancy=" << totals.batch_occupancy(max_batch_rows)
      << "\tthroughput_rows_per_sec=" << totals.throughput_rows_per_sec()
      << "\tsimulated_sec=" << totals.simulated_seconds
      << "\tflushed_full=" << totals.flushed_full
      << "\tflushed_linger=" << totals.flushed_linger
      << "\tflushed_forced=" << totals.flushed_forced
      << "\tcache_hits=" << totals.cache_hits
      << "\tcache_misses=" << totals.cache_misses
      << "\tcache_evictions=" << totals.cache_evictions
      << "\ttrainings=" << totals.trainings << "\tretries=" << totals.retries
      << "\trate_limited=" << totals.rate_limited
      << "\tbackoff_sec=" << totals.backoff_seconds << '\n';
  // SLO telemetry only exists once a resilience knob was turned; the gate
  // keeps chaos-off reports byte-identical to the pre-resilience format.
  if (resilience) {
    out << "# resilience\tgoodput=" << totals.goodput()
        << "\tdeadline_missed=" << totals.deadline_missed
        << "\tfailovers=" << totals.failovers
        << "\tdegraded_answers=" << totals.degraded_answers
        << "\tdegraded_rejected=" << totals.degraded_rejected
        << "\tbreaker_gated=" << totals.breaker_gated
        << "\tbreaker_trips=" << totals.breaker_trips
        << "\trefused_sleeps=" << totals.refused_sleeps
        << "\tflushed_deadline=" << totals.flushed_deadline << '\n';
  }
  out << "# histogram\t" << totals.latency.encode() << '\n';
  // Same gating discipline as "# resilience": the trailer only exists when
  // tracing ran, so untraced reports keep their historical bytes.
  if (!trace_summary.empty()) out << "# trace\t" << trace_summary << '\n';
}

MetricsRegistry ServingReport::metrics() const {
  MetricsRegistry registry;
  register_stats(registry, "serving.", totals);
  for (const auto& t : tenants) {
    register_stats(registry, "tenant." + t.tenant + ".", t);
  }
  return registry;
}

void ServingReport::save_tsv(const std::string& path) const {
  std::ofstream out = open_sidecar(path, "ServingReport");
  write_tsv(out);
  finish_sidecar(out, path, "ServingReport");
}

void ServingReport::save_json(const std::string& path) const {
  std::ofstream out = open_sidecar(path, "ServingReport");
  out.precision(10);
  out << "{\n  \"totals\": {\n"
      << "    \"requests\": " << totals.requests << ", \"rows\": " << totals.rows
      << ", \"ok\": " << totals.ok << ", \"failed\": " << totals.failed
      << ", \"rejected\": " << totals.rejected << ",\n"
      << "    \"batches\": " << totals.batches
      << ", \"mean_batch_rows\": " << totals.mean_batch_rows()
      << ", \"batch_occupancy\": " << totals.batch_occupancy(max_batch_rows)
      << ", \"max_batch_rows\": " << max_batch_rows << ",\n"
      << "    \"flushed_full\": " << totals.flushed_full
      << ", \"flushed_linger\": " << totals.flushed_linger
      << ", \"flushed_forced\": " << totals.flushed_forced << ",\n"
      << "    \"cache_hits\": " << totals.cache_hits
      << ", \"cache_misses\": " << totals.cache_misses
      << ", \"cache_evictions\": " << totals.cache_evictions
      << ", \"trainings\": " << totals.trainings << ",\n"
      << "    \"retries\": " << totals.retries
      << ", \"rate_limited\": " << totals.rate_limited
      << ", \"backoff_seconds\": " << totals.backoff_seconds << ",\n"
      << "    \"simulated_seconds\": " << totals.simulated_seconds
      << ", \"throughput_rows_per_sec\": " << totals.throughput_rows_per_sec() << ",\n"
      << "    \"latency_ms\": ";
  write_latency_json(out, totals.latency);
  out << "\n  },\n";
  if (resilience) {
    out << "  \"resilience\": {\"goodput\": " << totals.goodput()
        << ", \"deadline_missed\": " << totals.deadline_missed
        << ", \"failovers\": " << totals.failovers
        << ", \"degraded_answers\": " << totals.degraded_answers
        << ", \"degraded_rejected\": " << totals.degraded_rejected
        << ", \"breaker_gated\": " << totals.breaker_gated
        << ", \"breaker_trips\": " << totals.breaker_trips
        << ", \"refused_sleeps\": " << totals.refused_sleeps
        << ", \"flushed_deadline\": " << totals.flushed_deadline << "},\n";
  }
  if (!trace_summary.empty()) {
    out << "  \"trace\": \"" << json_escape(trace_summary) << "\",\n";
  }
  out << "  \"histogram\": \"" << json_escape(totals.latency.encode())
      << "\",\n  \"tenants\": [\n";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto& t = tenants[i];
    out << "    {\"tenant\": \"" << json_escape(t.tenant)
        << "\", \"requests\": " << t.requests << ", \"rows\": " << t.rows
        << ", \"ok\": " << t.ok << ", \"failed\": " << t.failed
        << ", \"rejected\": " << t.rejected << ", \"latency_ms\": ";
    write_latency_json(out, t.latency);
    out << "}" << (i + 1 < tenants.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  finish_sidecar(out, path, "ServingReport");
}

void validate_serving_options(const ServingOptions& o) {
  // `!(x >= 0)` instead of `x < 0` so NaN fails validation too.
  if (o.max_batch_rows < 1) {
    throw std::invalid_argument("serving: --batch must be >= 1");
  }
  if (!(o.linger_seconds >= 0.0) || !std::isfinite(o.linger_seconds)) {
    throw std::invalid_argument("serving: --linger must be a finite value >= 0");
  }
  if (o.model_cache_capacity < 1) {
    throw std::invalid_argument("serving: --cache-capacity must be >= 1");
  }
  if (!(o.deadline_seconds >= 0.0) || !std::isfinite(o.deadline_seconds)) {
    throw std::invalid_argument("serving: --deadline-ms must be a finite value >= 0");
  }
  if (!(o.fault_rate >= 0.0 && o.fault_rate <= 1.0)) {
    throw std::invalid_argument("serving: --fault-rate must be in [0,1]");
  }
  if (o.retry.max_attempts < 1) {
    throw std::invalid_argument("serving: retry attempts must be >= 1");
  }
  if (o.breaker.enabled) {
    if (o.breaker.failure_threshold < 1) {
      throw std::invalid_argument("serving: --breaker-threshold must be >= 1");
    }
    if (!(o.breaker.cooldown_seconds >= 0.0)) {
      throw std::invalid_argument("serving: --breaker-cooldown must be >= 0");
    }
    if (o.breaker.max_probes < 0) {
      throw std::invalid_argument("serving: --breaker-probes must be >= 0");
    }
  }
}

// ---------------------------------------------------------------------------
// QueryRouter

QueryRouter::QueryRouter(const std::vector<PlatformPtr>& platforms,
                         const std::string& quota_profile, std::uint64_t seed,
                         ServingOptions options)
    : options_(options) {
  if (platforms.empty()) throw std::invalid_argument("QueryRouter: empty roster");
  options_.max_batch_rows = std::max<std::size_t>(1, options_.max_batch_rows);
  options_.model_cache_capacity = std::max<std::size_t>(1, options_.model_cache_capacity);
  platforms_.reserve(platforms.size());
  for (const auto& p : platforms) {
    PlatformState ps;
    ps.platform = p.get();
    ServiceQuota quota = ::mlaas::quota_profile(quota_profile, p->name());
    // Chaos threading: extra scalar faults stack on the profile's own rate,
    // and the correlated-failure schedule is seeded per platform so reruns
    // of the same router seed see the same storms.  With the defaults (rate
    // 0, profile "none") the quota is bit-identical to the profile's.
    quota.fault_rate = std::max(quota.fault_rate, options_.fault_rate);
    quota.fault_plan = make_fault_plan(options_.chaos_profile, p->name(),
                                       derive_seed(seed, "serving-chaos-" + p->name()));
    ps.service = std::make_unique<MlaasService>(
        *p, quota, derive_seed(seed, "serving-" + p->name()));
    RetryPolicy policy = options_.retry;
    policy.jitter_seed = derive_seed(seed, "serving-retry-" + p->name());
    ps.client = std::make_unique<RetryingClient>(*ps.service, policy);
    ps.breaker = CircuitBreaker(options_.breaker);
    platform_index_.emplace(p->name(), platforms_.size());
    platforms_.push_back(std::move(ps));
  }
  if (!options_.fallback_platform.empty()) {
    const auto it = platform_index_.find(options_.fallback_platform);
    if (it == platform_index_.end()) {
      throw std::invalid_argument("QueryRouter: fallback platform '" +
                                  options_.fallback_platform + "' not in roster");
    }
    fallback_index_ = it->second;
  }
  resilience_ = options_.fault_rate > 0.0 || options_.chaos_profile != "none" ||
                options_.deadline_seconds > 0.0 || fallback_index_.has_value() ||
                options_.serve_last_known_good || options_.breaker.enabled;
  if (options_.trace) {
    // Canonical track order: router first, then one per platform in roster
    // order.  Everything below runs on the single gateway clock, so the
    // resulting trace bytes are a pure function of (roster, seed, options).
    trace_ = std::make_unique<Trace>();
    router_track_ = &trace_->track("router");
    for (std::size_t i = 0; i < platforms_.size(); ++i) {
      PlatformState& ps = platforms_[i];
      const std::string name = ps.platform->name();
      TraceTrack* track = &trace_->track("service:" + name);
      ps.service->set_trace(track);
      ps.client->set_trace(track);
      ps.breaker.set_listener([track, name](const char* transition, double at) {
        track->instant("breaker", transition, at, {{"platform", name}});
      });
    }
  }
}

template <typename Fn>
ServiceStatus QueryRouter::timed_call(PlatformState& ps, Fn&& call) {
  // One gateway timeline: bring the platform's simulated clock up to the
  // router's, run the (possibly retried) call, then fold the service's
  // elapsed time back into the router clock.
  if (now_ > ps.service->now()) ps.service->advance_clock(now_ - ps.service->now());
  const ServiceStatus status = call();
  now_ = std::max(now_, ps.service->now());
  return status;
}

TenantServingStats& QueryRouter::tenant_stats(const std::string& tenant) {
  const auto [it, inserted] = tenant_index_.emplace(tenant, tenants_.size());
  if (inserted) {
    tenants_.emplace_back();
    tenants_.back().tenant = tenant;
  }
  return tenants_[it->second];
}

std::optional<QueryRouter::SessionId> QueryRouter::open_session(
    const std::string& tenant, const std::string& platform, const Dataset& train,
    const PipelineConfig& config, std::uint64_t train_seed) {
  const auto pit = platform_index_.find(platform);
  if (pit == platform_index_.end()) {
    throw std::invalid_argument("QueryRouter: unknown platform '" + platform + "'");
  }
  Session session;
  session.tenant = tenant;
  session.platform = pit->second;
  session.model_key = platform + "|" + train.meta().id + "|" + config.key() + "|" +
                      std::to_string(train_seed);
  if (fallback_index_) {
    // Same (dataset, config, seed) on the fallback platform: a distinct
    // cache key, trained deterministically on first failover.
    session.fallback_key = options_.fallback_platform + "|" + train.meta().id + "|" +
                           config.key() + "|" + std::to_string(train_seed);
  }
  session.train = train;
  session.config = config;
  session.train_seed = train_seed;
  session.open = true;
  tenant_stats(tenant);  // reserve the tenant's report row in open order
  sessions_.push_back(std::move(session));
  const SessionId id = sessions_.size() - 1;
  const Session& s = sessions_[id];
  if (acquire_model(id, s.platform, s.model_key, kNoDeadline).empty()) {
    sessions_[id].open = false;
    return std::nullopt;
  }
  return id;
}

void QueryRouter::close_session(SessionId session) {
  // The cached model stays resident (another session may share the key);
  // LRU pressure or router destruction reclaims it.
  sessions_.at(session).open = false;
}

std::string QueryRouter::acquire_model(std::size_t session, std::size_t platform,
                                       const std::string& model_key, double deadline) {
  Session& s = sessions_[session];
  if (const auto it = cache_index_.find(model_key); it != cache_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
    ++stats_.cache_hits;
    return it->second->handle;
  }
  ++stats_.cache_misses;
  PlatformState& ps = platforms_[platform];
  std::string dataset_handle;
  ServiceStatus status = timed_call(
      ps, [&] { return ps.client->upload(s.train, &dataset_handle, deadline); });
  if (status != ServiceStatus::kOk) {
    last_error_ = "upload:" + to_string(status);
    return {};
  }
  std::string model_handle;
  status = timed_call(ps, [&] {
    return ps.client->train(dataset_handle, s.config, &model_handle, s.train_seed,
                            nullptr, deadline);
  });
  // The uploaded copy is only needed for the train call; release it on every
  // path so cache churn cannot accumulate dataset copies in the service.
  ps.service->delete_dataset(dataset_handle);
  if (status != ServiceStatus::kOk) {
    last_error_ = "train:" + to_string(status);
    return {};
  }
  ++stats_.trainings;
  if (options_.serve_last_known_good) {
    // Retain a reference for the bottom serving rung.  The shared_ptr keeps
    // the model alive through cache eviction and delete_model, and looking
    // it up later has no admission/clock/RNG effect.
    last_known_good_[model_key] = ps.service->model(model_handle);
  }
  lru_.push_front({model_key, platform, model_handle});
  cache_index_[model_key] = lru_.begin();
  evict_to_capacity(options_.model_cache_capacity);
  return model_handle;
}

void QueryRouter::evict_to_capacity(std::size_t capacity) {
  while (lru_.size() > capacity) {
    const CachedModel& victim = lru_.back();
    platforms_[victim.platform].service->delete_model(victim.handle);
    cache_index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

std::optional<QueryRouter::Ticket> QueryRouter::submit(SessionId session,
                                                       const Matrix& x,
                                                       double deadline_seconds) {
  Session& s = sessions_.at(session);
  if (!s.open) throw std::logic_error("QueryRouter::submit: session is closed");
  TenantServingStats& ts = tenant_stats(s.tenant);
  PlatformState& ps = platforms_[s.platform];
  if (options_.max_pending_rows > 0 &&
      ps.pending_rows + x.rows() > options_.max_pending_rows) {
    ++ts.rejected;
    ++stats_.rejected;
    return std::nullopt;
  }

  // Negative budget = the router default; 0 = explicitly unbounded.
  const double budget =
      deadline_seconds < 0.0 ? options_.deadline_seconds : deadline_seconds;
  const double abs_deadline = budget > 0.0 ? now_ + budget : kNoDeadline;
  if (abs_deadline != kNoDeadline) resilience_ = true;

  ++ts.requests;
  ts.rows += x.rows();
  ++stats_.requests;
  stats_.rows += x.rows();

  const Ticket ticket = results_.size();
  results_.emplace_back();
  results_.back().submit_seconds = now_;
  results_.back().deadline = abs_deadline;

  if (x.rows() == 0) {  // degenerate but legal: complete instantly
    QueryResult& r = results_.back();
    r.done = r.ok = true;
    r.outcome = QueryOutcome::kOk;
    r.complete_seconds = now_;
    ++ts.ok;
    ++stats_.ok;
    ts.latency.record(0.0);
    stats_.latency.record(0.0);
    return ticket;
  }

  auto it = batches_.find(s.model_key);
  // A request never splits across predict calls: flush first when appending
  // would overflow the batch (or when the feature width changed).
  if (it != batches_.end() &&
      (it->second.cols != x.cols() ||
       it->second.rows + x.rows() > options_.max_batch_rows)) {
    flush(s.model_key, FlushCause::kFull);
    it = batches_.end();
  }
  if (it == batches_.end()) {
    Batch batch;
    batch.model_key = s.model_key;
    batch.platform = s.platform;
    batch.session = session;
    batch.seq = batch_seq_++;
    batch.deadline = now_ + options_.linger_seconds;
    batch.cols = x.cols();
    it = batches_.emplace(s.model_key, std::move(batch)).first;
  }
  Batch& batch = it->second;
  batch.data.insert(batch.data.end(), x.data().begin(), x.data().end());
  batch.rows += x.rows();
  batch.requests.push_back({ticket, x.rows(), s.tenant, abs_deadline});
  batch.budget_deadline = std::min(batch.budget_deadline, abs_deadline);
  ps.pending_rows += x.rows();
  if (batch.rows >= options_.max_batch_rows) flush(s.model_key, FlushCause::kFull);
  return ticket;
}

void QueryRouter::flush(const std::string& model_key, FlushCause cause) {
  const auto it = batches_.find(model_key);
  if (it == batches_.end()) return;
  Batch batch = std::move(it->second);
  batches_.erase(it);
  platforms_[batch.platform].pending_rows -= batch.rows;

  ++stats_.batches;
  stats_.batched_rows += batch.rows;
  const char* cause_name = "";
  switch (cause) {
    case FlushCause::kFull: ++stats_.flushed_full; cause_name = "full"; break;
    case FlushCause::kLinger: ++stats_.flushed_linger; cause_name = "linger"; break;
    case FlushCause::kDeadline: ++stats_.flushed_deadline; cause_name = "deadline"; break;
    case FlushCause::kForced: ++stats_.flushed_forced; cause_name = "forced"; break;
  }
  const double flush_start = now_;

  const Session& s = sessions_[batch.session];
  const double budget = batch.budget_deadline;
  Matrix x(batch.rows, batch.cols);
  std::copy(batch.data.begin(), batch.data.end(), x.data().begin());

  // Degradation ladder.  Rung 1: the session's own platform — health-gated
  // by its breaker, retries and training bounded by the batch's tightest
  // member budget.
  std::vector<int> labels;
  bool have_labels = false;
  QueryOutcome how = QueryOutcome::kFailed;
  std::string error;
  {
    PlatformState& ps = platforms_[batch.platform];
    const auto decision = ps.breaker.admit(now_);
    if (decision == CircuitBreaker::Decision::kWait ||
        decision == CircuitBreaker::Decision::kDefer) {
      // Open breaker: waiting out the cooldown would burn the budget, so
      // skip the platform entirely and take the next rung.
      ++stats_.breaker_gated;
      error = "breaker:open";
      if (router_track_ != nullptr) {
        router_track_->instant("ladder", "rung:breaker-gated", now_,
                               {{"model", s.model_key}});
      }
    } else if (now_ > budget) {
      error = "deadline:exhausted";  // forced/overflow flush past the budget
      if (router_track_ != nullptr) {
        router_track_->instant("ladder", "rung:budget-exhausted", now_,
                               {{"model", s.model_key}});
      }
    } else {
      const std::string handle =
          acquire_model(batch.session, batch.platform, s.model_key, budget);
      if (handle.empty()) {
        error = last_error_;
        ps.breaker.record_failure(now_);
      } else {
        const ServiceStatus status = timed_call(
            ps, [&] { return ps.client->predict(handle, x, &labels, nullptr, budget); });
        if (status == ServiceStatus::kOk) {
          have_labels = true;
          how = QueryOutcome::kOk;
          ps.breaker.record_success(now_);
        } else {
          error = "predict:" + to_string(status);
          ps.breaker.record_failure(now_);
        }
      }
      if (!have_labels && router_track_ != nullptr) {
        router_track_->instant("ladder", "rung:primary-failed", now_,
                               {{"model", s.model_key}, {"error", error}});
      }
    }
  }

  // Rung 2: failover — re-train (deterministically, from the session seed)
  // and predict on the fallback platform, under its own breaker and chaos
  // plan, still within the budget.
  if (!have_labels && fallback_index_ && *fallback_index_ != batch.platform) {
    PlatformState& fb = platforms_[*fallback_index_];
    const auto decision = fb.breaker.admit(now_);
    if (decision == CircuitBreaker::Decision::kWait ||
        decision == CircuitBreaker::Decision::kDefer) {
      ++stats_.breaker_gated;
      if (router_track_ != nullptr) {
        router_track_->instant("ladder", "rung:failover-gated", now_,
                               {{"model", s.fallback_key}});
      }
    } else if (now_ <= budget) {
      const std::string handle =
          acquire_model(batch.session, *fallback_index_, s.fallback_key, budget);
      if (handle.empty()) {
        fb.breaker.record_failure(now_);
      } else {
        const ServiceStatus status = timed_call(
            fb, [&] { return fb.client->predict(handle, x, &labels, nullptr, budget); });
        if (status == ServiceStatus::kOk) {
          have_labels = true;
          how = QueryOutcome::kFailover;
          fb.breaker.record_success(now_);
        } else {
          fb.breaker.record_failure(now_);
        }
      }
      if (router_track_ != nullptr) {
        router_track_->instant("ladder",
                               have_labels ? "rung:failover" : "rung:failover-failed",
                               now_, {{"model", s.fallback_key}});
      }
    }
  }

  // Rung 3: last-known-good — serve from the retained model, locally.  No
  // admission, clock or RNG effect, so it cannot fail and costs no budget;
  // the answer is just not billed against the platform.
  if (!have_labels && options_.serve_last_known_good) {
    auto lkg = last_known_good_.find(s.model_key);
    if (lkg == last_known_good_.end() && !s.fallback_key.empty()) {
      lkg = last_known_good_.find(s.fallback_key);
    }
    if (lkg != last_known_good_.end()) {
      labels = lkg->second->predict(x);
      have_labels = true;
      how = QueryOutcome::kLastKnownGood;
      if (router_track_ != nullptr) {
        router_track_->instant("ladder", "rung:last-known-good", now_,
                               {{"model", lkg->first}});
      }
    }
  }

  // Rung 4: degraded reject — but only when a ladder was configured at all;
  // otherwise this is the classic failure path with its original error text.
  const bool ladder = fallback_index_.has_value() || options_.serve_last_known_good;
  if (!have_labels) {
    how = ladder ? QueryOutcome::kDegraded : QueryOutcome::kFailed;
    if (ladder && router_track_ != nullptr) {
      router_track_->instant("ladder", "rung:degraded", now_,
                             {{"model", s.model_key}, {"error", error}});
    }
  }

  std::size_t offset = 0;
  for (const PendingRequest& req : batch.requests) {
    QueryResult& r = results_[req.ticket];
    r.done = true;
    r.complete_seconds = now_;
    TenantServingStats& ts = tenant_stats(req.tenant);
    if (have_labels) {
      r.ok = true;
      r.labels.assign(labels.begin() + static_cast<std::ptrdiff_t>(offset),
                      labels.begin() + static_cast<std::ptrdiff_t>(offset + req.rows));
    } else {
      r.ok = false;
      r.error = how == QueryOutcome::kDegraded ? "degraded:" + error : error;
    }
    // A request that resolved after its own deadline is a deadline miss no
    // matter which rung answered it; in-budget resolutions keep the rung's
    // outcome and feed the goodput partition.
    const bool late = now_ > req.deadline;
    r.outcome = late ? QueryOutcome::kDeadlineMissed : how;
    if (late) {
      ++stats_.deadline_missed;
    } else if (have_labels) {
      ++ts.ok;
      ++stats_.ok;
      if (how == QueryOutcome::kFailover) ++stats_.failovers;
      if (how == QueryOutcome::kLastKnownGood) ++stats_.degraded_answers;
    } else if (how == QueryOutcome::kDegraded) {
      ++stats_.degraded_rejected;
    } else {
      ++ts.failed;
      ++stats_.failed;
    }
    offset += req.rows;
    const double latency = r.complete_seconds - r.submit_seconds;
    ts.latency.record(latency);
    stats_.latency.record(latency);
  }

  if (router_track_ != nullptr) {
    router_track_->span("serving", "flush", flush_start, now_ - flush_start,
                        {{"model", batch.model_key},
                         {"cause", cause_name},
                         {"rows", std::to_string(batch.rows)},
                         {"outcome", to_string(how)}});
  }
}

double QueryRouter::due_at(const Batch& batch) {
  // A batch falls due at its linger deadline — or earlier, when the
  // tightest member budget would otherwise be burned waiting for stragglers.
  return std::min(batch.deadline, batch.budget_deadline);
}

void QueryRouter::advance_to(double t) {
  // Flush every batch that falls due, earliest (due time, seq) first — the
  // deterministic replay of what a timer wheel would do.
  while (true) {
    const Batch* due = nullptr;
    double due_time = 0.0;
    for (const auto& [key, batch] : batches_) {
      const double at = due_at(batch);
      if (at > t) continue;
      if (due == nullptr || at < due_time || (at == due_time && batch.seq < due->seq)) {
        due = &batch;
        due_time = at;
      }
    }
    if (due == nullptr) break;
    now_ = std::max(now_, due_time);
    // Budget strictly before linger = this flush exists to save a deadline.
    flush(due->model_key, due->budget_deadline < due->deadline ? FlushCause::kDeadline
                                                               : FlushCause::kLinger);
  }
  now_ = std::max(now_, t);
}

const QueryResult& QueryRouter::wait(Ticket ticket) {
  const QueryResult& r = results_.at(ticket);
  if (r.done) return r;
  // Find the batch holding the ticket and let the clock run to its due
  // time; nothing else happens while a closed-loop caller blocks, so that
  // is exactly when the batch flushes.
  for (const auto& [key, batch] : batches_) {
    for (const PendingRequest& req : batch.requests) {
      if (req.ticket == ticket) {
        advance_to(std::max(now_, due_at(batch)));
        return results_.at(ticket);
      }
    }
  }
  return r;  // unreachable for tickets issued by submit()
}

void QueryRouter::drain() {
  while (!batches_.empty()) {
    const Batch* next = nullptr;
    double next_at = 0.0;
    for (const auto& [key, batch] : batches_) {
      const double at = due_at(batch);
      if (next == nullptr || at < next_at || (at == next_at && batch.seq < next->seq)) {
        next = &batch;
        next_at = at;
      }
    }
    now_ = std::max(now_, next_at);
    flush(next->model_key, FlushCause::kForced);
  }
}

ServingStats QueryRouter::stats() const {
  ServingStats s = stats_;
  s.simulated_seconds = now_;
  for (const auto& ps : platforms_) {
    s.retries += ps.client->total_retries();
    s.backoff_seconds += ps.client->total_backoff_seconds();
    s.rate_limited += ps.service->stats().rate_limited;
    s.refused_sleeps += ps.client->deadline_refusals();
    s.breaker_trips += ps.breaker.trips();
  }
  return s;
}

ServingReport QueryRouter::report() const {
  ServingReport report;
  report.totals = stats();
  report.tenants = tenants_;
  report.max_batch_rows = options_.max_batch_rows;
  report.resilience = resilience_;
  if (trace_ != nullptr) report.trace_summary = trace_->summary();
  return report;
}

const ServiceStats& QueryRouter::platform_stats(const std::string& platform) const {
  const auto it = platform_index_.find(platform);
  if (it == platform_index_.end()) {
    throw std::invalid_argument("QueryRouter: unknown platform '" + platform + "'");
  }
  return platforms_[it->second].service->stats();
}

// ---------------------------------------------------------------------------
// Workload generator

std::vector<ServingTenantSpec> make_serving_tenants(
    std::size_t n_tenants, const std::vector<std::string>& platforms,
    std::uint64_t seed) {
  if (platforms.empty()) {
    throw std::invalid_argument("make_serving_tenants: empty platform list");
  }
  std::vector<ServingTenantSpec> tenants;
  tenants.reserve(n_tenants);
  for (std::size_t i = 0; i < n_tenants; ++i) {
    ServingTenantSpec t;
    t.tenant = "tenant-" + std::to_string(i);
    t.platform = platforms[i % platforms.size()];
    // Zipf-skewed shares: tenant 0 dominates, the tail trickles — the shape
    // of real multi-tenant traffic.
    t.weight = 1.0 / static_cast<double>(i + 1);
    t.train = make_blobs(160, 6, 1.0, 4.0,
                         derive_seed(seed, "serving-data-" + std::to_string(i)));
    t.train.meta().id = "serving-" + std::to_string(i);
    t.train_seed = derive_seed(seed, "serving-train-" + std::to_string(i));
    tenants.push_back(std::move(t));
  }
  return tenants;
}

ServingWorkloadResult run_serving_workload(const std::vector<ServingTenantSpec>& tenants,
                                           const ServingWorkloadOptions& options) {
  if (tenants.empty()) {
    throw std::invalid_argument("run_serving_workload: no tenants");
  }
  // Roster: one platform instance per distinct platform name, router on top.
  std::vector<PlatformPtr> roster;
  std::map<std::string, bool> seen;
  for (const auto& t : tenants) {
    if (!seen[t.platform]) {
      roster.push_back(make_platform(t.platform));
      seen[t.platform] = true;
    }
  }
  QueryRouter router(roster, options.quota_profile, options.seed, options.serving);

  std::vector<std::optional<QueryRouter::SessionId>> session(tenants.size());
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    session[i] = router.open_session(tenants[i].tenant, tenants[i].platform,
                                     tenants[i].train, tenants[i].config,
                                     tenants[i].train_seed);
  }

  Rng rng(derive_seed(options.seed, "serving-workload"));
  double total_weight = 0.0;
  for (const auto& t : tenants) total_weight += t.weight;
  const auto pick_tenant = [&]() -> std::size_t {
    double u = rng.uniform() * total_weight;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      u -= tenants[i].weight;
      if (u <= 0.0) return i;
    }
    return tenants.size() - 1;
  };
  const auto make_query = [&](const ServingTenantSpec& t) {
    const Matrix& source = t.train.x();
    const std::size_t rows = 1 + rng.index(std::max<std::size_t>(1, t.max_rows_per_request));
    const std::size_t start = rng.index(source.rows());
    Matrix q(rows, source.cols());
    for (std::size_t r = 0; r < rows; ++r) {
      const auto src = source.row((start + r) % source.rows());
      std::copy(src.begin(), src.end(), q.row(r).begin());
    }
    return q;
  };

  const auto wall_start = std::chrono::steady_clock::now();
  if (!options.closed_loop) {
    // Open loop: seeded Poisson arrivals at `arrival_rate`, tenant drawn by
    // weight per arrival; the router clock runs between arrivals so linger
    // deadlines fire the way they would under a live timer.
    const double rate = std::max(1e-9, options.arrival_rate);
    double t = 0.0;
    for (std::size_t k = 0; k < options.requests; ++k) {
      t += -std::log(1.0 - rng.uniform()) / rate;
      router.advance_to(t);
      const std::size_t i = pick_tenant();
      if (session[i]) router.submit(*session[i], make_query(tenants[i]));
    }
    router.drain();
  } else {
    // Closed loop: `clients` callers, each bound to a weighted tenant draw,
    // all submit then all wait — requests from concurrent clients share
    // micro-batches, which is the whole point of the batcher.
    const std::size_t clients = std::max<std::size_t>(1, options.clients);
    std::vector<std::size_t> client_tenant(clients);
    for (auto& ct : client_tenant) ct = pick_tenant();
    std::vector<std::optional<QueryRouter::Ticket>> inflight(clients);
    std::size_t issued = 0;
    while (issued < options.requests) {
      for (std::size_t c = 0; c < clients && issued < options.requests; ++c, ++issued) {
        const std::size_t i = client_tenant[c];
        inflight[c] = session[i] ? router.submit(*session[i], make_query(tenants[i]))
                                 : std::nullopt;
      }
      for (std::size_t c = 0; c < clients; ++c) {
        if (inflight[c]) router.wait(*inflight[c]);
        inflight[c] = std::nullopt;
      }
    }
    router.drain();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  ServingWorkloadResult result;
  result.report = router.report();
  result.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  if (router.trace() != nullptr) {
    result.trace = std::make_shared<Trace>(*router.trace());
  }
  return result;
}

}  // namespace mlaas
