// Shared circuit breaker for the campaign driver and the serving router.
//
// Lifted out of eval/measurement.h (where it guarded campaign cells) so the
// query-serving path can run one breaker per (platform, router) and
// health-gate dispatch: an open breaker steers batches down the degradation
// ladder instead of hammering a platform that is failing hard.  The campaign
// keeps its original semantics — it *sleeps out* the cooldown before a
// half-open probe — while the serving path must never sleep on a request's
// deadline budget, which is why admit() distinguishes an open breaker whose
// cooldown is still running (kWait) from one that is ready to probe (kProbe).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace mlaas {

/// Per-session / per-platform circuit breaker options.  After
/// `failure_threshold` consecutive failures the breaker opens; once the
/// cooldown has passed the next call is admitted as a half-open probe.  A
/// successful probe closes the breaker; after `max_probes` failed probes it
/// latches open and every remaining call is deferred — reproducing the
/// paper's forced exclusion of rate-limited providers as an emergent
/// behaviour (§8).
struct BreakerOptions {
  bool enabled = false;
  int failure_threshold = 3;      // consecutive failures before opening
  double cooldown_seconds = 300;  // simulated cooldown before a half-open probe
  int max_probes = 2;             // failed probes before latching open
};

class CircuitBreaker {
 public:
  enum class Decision {
    kProceed,  // closed: dispatch normally
    kWait,     // open, cooldown still running: sleep it out (campaign) or
               // fail over without waiting (serving)
    kProbe,    // open, cooldown expired: dispatch as the half-open probe
    kDefer,    // latched open: skip without issuing any requests
  };

  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  /// Time-aware admission: `now` decides whether an open breaker's cooldown
  /// has expired (kProbe) or is still running (kWait).
  Decision admit(double now) const;
  /// Simulated seconds until the cooldown expires (0 when closed or expired).
  double probe_wait_seconds(double now) const;
  /// `now` only feeds the transition listener's timestamp; pass the
  /// simulated clock when one is installed.
  void record_success(double now = 0.0);
  void record_failure(double now);

  /// Observes state transitions: called with "open" (threshold reached),
  /// "reopen" (failed half-open probe), "latch" (probe budget exhausted) or
  /// "close" (successful probe) plus the simulated transition time.
  using TransitionListener = std::function<void(const char* transition, double now)>;
  void set_listener(TransitionListener listener) { listener_ = std::move(listener); }

  bool open() const { return open_; }
  std::size_t trips() const { return trips_; }

 private:
  void notify(const char* transition, double now) {
    if (listener_) listener_(transition, now);
  }

  BreakerOptions options_;
  TransitionListener listener_;
  bool open_ = false;
  double opened_at_ = 0.0;
  int consecutive_failures_ = 0;
  int probes_used_ = 0;
  std::size_t trips_ = 0;
};

}  // namespace mlaas
