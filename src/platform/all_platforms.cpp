#include "platform/all_platforms.h"

#include <algorithm>
#include <stdexcept>

#include "platform/abm.h"
#include "platform/amazon_ml.h"
#include "platform/bigml.h"
#include "platform/google_prediction.h"
#include "platform/local_sklearn.h"
#include "platform/microsoft_azure.h"
#include "platform/predictionio.h"

namespace mlaas {

std::vector<PlatformPtr> make_all_platforms() {
  std::vector<PlatformPtr> platforms;
  platforms.push_back(std::make_unique<GooglePredictionPlatform>());
  platforms.push_back(std::make_unique<AbmPlatform>());
  platforms.push_back(std::make_unique<AmazonMlPlatform>());
  platforms.push_back(std::make_unique<BigMlPlatform>());
  platforms.push_back(std::make_unique<PredictionIoPlatform>());
  platforms.push_back(std::make_unique<MicrosoftAzurePlatform>());
  platforms.push_back(std::make_unique<LocalSklearnPlatform>());
  std::sort(platforms.begin(), platforms.end(), [](const auto& a, const auto& b) {
    return a->complexity_rank() < b->complexity_rank();
  });
  return platforms;
}

PlatformPtr make_platform(const std::string& name) {
  if (name == "Google") return std::make_unique<GooglePredictionPlatform>();
  if (name == "ABM") return std::make_unique<AbmPlatform>();
  if (name == "Amazon") return std::make_unique<AmazonMlPlatform>();
  if (name == "BigML") return std::make_unique<BigMlPlatform>();
  if (name == "PredictionIO") return std::make_unique<PredictionIoPlatform>();
  if (name == "Microsoft") return std::make_unique<MicrosoftAzurePlatform>();
  if (name == "Local") return std::make_unique<LocalSklearnPlatform>();
  throw std::invalid_argument("make_platform: unknown platform " + name);
}

std::vector<std::string> platform_names() {
  return {"Google", "ABM", "Amazon", "BigML", "PredictionIO", "Microsoft", "Local"};
}

}  // namespace mlaas
