#include "platform/bigml.h"

namespace mlaas {

ControlSurface BigMlPlatform::controls() const {
  ControlSurface surface;
  surface.classifier_choice = true;
  surface.parameter_tuning = true;

  ClassifierGridSpec lr;
  lr.classifier = "logistic_regression";
  // BigML LR: regularization (L1/L2), strength (C), eps (stop tolerance).
  lr.params = {
      ParamSpec::categorical("penalty", {"l2", "l1"}),
      ParamSpec::number("C", 1.0, 0.1, 1e4),
      ParamSpec::number("tolerance", 1e-4, 1e-8, 1e-1),
  };
  surface.classifiers.push_back(std::move(lr));

  const auto tree_knobs = [] {
    return std::vector<ParamSpec>{
        ParamSpec::integer("node_threshold", 512, 3, 2047),
        ParamSpec::categorical("ordering", {"standard", "random"}),
    };
  };

  ClassifierGridSpec dt;
  dt.classifier = "decision_tree";
  dt.params = tree_knobs();
  dt.params.push_back(ParamSpec::boolean("random_candidates", false));
  surface.classifiers.push_back(std::move(dt));

  ClassifierGridSpec bag;
  bag.classifier = "bagging";
  bag.params = tree_knobs();
  bag.params.insert(bag.params.begin() + 1, ParamSpec::integer("n_estimators", 10, 1, 32));
  surface.classifiers.push_back(std::move(bag));

  ClassifierGridSpec rf;
  rf.classifier = "random_forest";
  rf.params = tree_knobs();
  rf.params.insert(rf.params.begin() + 1, ParamSpec::integer("n_estimators", 10, 1, 32));
  surface.classifiers.push_back(std::move(rf));
  return surface;
}

TrainedModelPtr BigMlPlatform::train(const Dataset& train, const PipelineConfig& config,
                                     std::uint64_t seed) const {
  // BigML's non-LR models return labels without scores (§3.2); expose
  // scores only for logistic regression.
  const bool scores = config.classifier.empty() || config.classifier == "logistic_regression";
  return train_pipeline(controls(), name(), train, config, seed, "logistic_regression",
                        scores);
}

}  // namespace mlaas
