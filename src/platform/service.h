// Simulated MLaaS web service.
//
// The paper's measurements ran against live cloud endpoints over ~5 months,
// dealing with upload/train/query round-trips, rate limits and transient
// failures (§8 notes that strict rate limits excluded some providers
// entirely).  MlaasService wraps a Platform behind exactly that kind of
// API: handle-based upload/train/predict calls, a token-bucket rate limit,
// a training-job quota, seeded transient faults, and a simulated wall clock
// advanced by per-request latency — so the operational behaviour of a
// measurement campaign can be studied deterministically, without a network.
//
// RetryingClient layers exponential backoff on top, the way the paper's
// scripts had to.  Since this PR it is also the transport of the real
// measurement campaign (eval/measurement.h's run_campaign), not a side
// demo: every (dataset, platform, config) cell goes through upload/train/
// predict with retries.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "util/rng.h"

namespace mlaas {

class TraceTrack;

/// One recurring window on the simulated clock: active whenever the time
/// since `phase` lands inside [0, duration) modulo `period`.  Chaos fault
/// schedules are built from these so outages repeat deterministically for
/// however long a session runs.
struct FaultWindow {
  double period = 0.0;    // seconds between window starts (> duration)
  double phase = 0.0;     // offset of the first window start
  double duration = 0.0;  // seconds each window stays active

  bool active_at(double t) const;
  /// Simulated seconds this window is active within [t0, t1).
  double seconds_active(double t0, double t1) const;
  /// Seconds from `t` until the current window ends (0 when inactive).
  double seconds_until_inactive(double t) const;
};

/// A seeded, deterministic fault schedule for one platform: correlated
/// outages (every request fails), fault bursts (elevated transient-error
/// probability) and latency spikes — the failure modes a ~5-month campaign
/// against live endpoints actually sees, as opposed to i.i.d. Bernoulli
/// noise.  An empty plan leaves service behaviour bit-identical to the
/// scalar fault_rate model.
struct FaultPlan {
  std::vector<FaultWindow> outages;
  std::vector<FaultWindow> bursts;
  std::vector<FaultWindow> latency_spikes;
  /// Transient-fault probability while inside a burst window.
  double burst_fault_rate = 0.0;
  /// Latency multiplier while inside a latency-spike window.
  double latency_multiplier = 1.0;

  bool empty() const {
    return outages.empty() && bursts.empty() && latency_spikes.empty();
  }
  bool in_outage(double t) const;
  /// max(base_rate, burst rate) when inside a burst window, else base_rate.
  double effective_fault_rate(double t, double base_rate) const;
  double latency_factor(double t) const;
  /// Total outage seconds overlapping the simulated interval [t0, t1).
  double outage_seconds(double t0, double t1) const;
};

/// Build the seeded fault schedule for `--chaos-profile` on one platform.
/// Profiles: "none" (empty plan), "outages", "bursts", "latency", "storm"
/// (all three).  Deterministic in (profile, platform, seed); throws
/// std::invalid_argument for unknown names.
FaultPlan make_fault_plan(const std::string& chaos_profile, const std::string& platform,
                          std::uint64_t seed);
std::vector<std::string> chaos_profile_names();

/// Operational envelope of a simulated service.
struct ServiceQuota {
  /// Token-bucket rate limit: this many requests per rolling window.
  std::size_t requests_per_window = 60;
  double window_seconds = 60.0;
  /// Total training jobs allowed (0 = unlimited) — free-tier style quota.
  std::size_t max_training_jobs = 0;
  /// Probability any request fails transiently (HTTP-503 style).
  double fault_rate = 0.0;
  /// Simulated latency model: fixed + per-sample cost.
  double base_latency_seconds = 0.2;
  double per_sample_latency_seconds = 1e-4;
  /// Correlated-failure schedule (default: empty, scalar faults only).
  FaultPlan fault_plan;
};

/// Named operational envelopes for the campaign's --quota-profile knob.
/// "default" mirrors plausible per-provider limits (big clouds fast but
/// strictly limited, startups slower); "strict" stresses the rate limiter;
/// "free-tier" adds a small per-session training quota; "unlimited" turns
/// the envelope off.  Throws std::invalid_argument for unknown names.
ServiceQuota quota_profile(const std::string& profile, const std::string& platform);
std::vector<std::string> quota_profile_names();

enum class ServiceStatus {
  kOk,
  kRateLimited,      // retry after the window drains
  kTransientError,   // retry immediately (with backoff)
  kQuotaExhausted,   // permanent for this service instance
  kNotFound,         // unknown dataset/model handle
  kBadRequest,       // config rejected by the platform
  kServerError,      // platform raised an unexpected error (HTTP-500 style)
  kUnavailable,      // correlated outage window: retryable, but no Retry-After
};

std::string to_string(ServiceStatus status);

/// Whether a status can succeed on retry (rate limit / transient fault).
bool is_retryable(ServiceStatus status);

/// Counters for one service instance; merge()able so the campaign can
/// aggregate per-platform telemetry across sessions.
///
/// Units: `requests`, `uploads`, `trainings`, `rate_limited`,
/// `transient_errors`, `server_errors` and `unavailable` count API calls
/// (one train job = one training, however many samples it touched).
/// `predictions` is the exception and counts ROWS scored, not predict
/// calls — the same per-sample unit the admission path charges latency in —
/// so a batched predict of 64 rows adds 64, exactly like 64 single-row
/// calls.  `datasets_deleted` / `models_deleted` count handles released via
/// delete_dataset / delete_model.
struct ServiceStats {
  std::size_t requests = 0;
  std::size_t uploads = 0;
  std::size_t trainings = 0;
  std::size_t predictions = 0;  // rows scored (per-row, not per-call)
  std::size_t datasets_deleted = 0;
  std::size_t models_deleted = 0;
  std::size_t rate_limited = 0;
  std::size_t transient_errors = 0;
  std::size_t server_errors = 0;
  std::size_t unavailable = 0;  // requests rejected by an outage window
  /// Real (not simulated) per-thread CPU time spent inside Platform::train.
  /// CPU time, not wall time, so the measured training cost does not depend
  /// on how oversubscribed the campaign's thread pool is.
  double train_cpu_seconds = 0.0;
  /// Real per-thread CPU time spent inside TrainedModel::predict, the
  /// prediction-side counterpart of train_cpu_seconds (same clock, same
  /// oversubscription argument).
  double predict_cpu_seconds = 0.0;

  /// Scalar counters in declaration order, for util/metrics.h's generic
  /// merge_stats / register_stats (replaces the old hand-rolled merge body).
  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("requests", self.requests);
    visit("uploads", self.uploads);
    visit("trainings", self.trainings);
    visit("predictions", self.predictions);
    visit("datasets_deleted", self.datasets_deleted);
    visit("models_deleted", self.models_deleted);
    visit("rate_limited", self.rate_limited);
    visit("transient_errors", self.transient_errors);
    visit("server_errors", self.server_errors);
    visit("unavailable", self.unavailable);
    visit("train_cpu_seconds", self.train_cpu_seconds);
    visit("predict_cpu_seconds", self.predict_cpu_seconds);
  }

  void merge(const ServiceStats& other);
};

class MlaasService {
 public:
  /// Owning constructor (the service is the platform's only user).
  MlaasService(PlatformPtr platform, ServiceQuota quota, std::uint64_t seed);
  /// Non-owning constructor: `platform` must outlive the service.  Used by
  /// the measurement campaign, which opens one session per (dataset,
  /// platform) cell over a shared platform roster.
  MlaasService(const Platform& platform, ServiceQuota quota, std::uint64_t seed);

  const std::string& platform_name() const { return platform_name_; }
  /// Simulated wall-clock (seconds since service creation).
  double now() const { return clock_seconds_; }
  /// Let a client "sleep": advances the simulated clock (used for backoff
  /// and for waiting out rate-limit windows).
  void advance_clock(double seconds);

  /// Upload a training set; on kOk fills `handle`.
  ServiceStatus upload(const Dataset& dataset, std::string* handle);
  /// Train a model on an uploaded dataset; on kOk fills `model_handle`.
  /// `seed` overrides the service's internal seed derivation so campaigns
  /// can reproduce the direct-call runner exactly; `train_cpu_seconds`
  /// (optional) receives the per-thread CPU time spent in Platform::train.
  ServiceStatus train(const std::string& dataset_handle, const PipelineConfig& config,
                      std::string* model_handle,
                      std::optional<std::uint64_t> seed = std::nullopt,
                      double* train_cpu_seconds = nullptr);
  /// Query a trained model; on kOk fills `labels`.  Admission charges
  /// latency per row and ServiceStats::predictions counts rows, so one
  /// batched call and N single-row calls account the same work.
  /// `predict_cpu_seconds` (optional) receives the per-thread CPU time
  /// spent in TrainedModel::predict.
  ServiceStatus predict(const std::string& model_handle, const Matrix& x,
                        std::vector<int>* labels,
                        double* predict_cpu_seconds = nullptr);

  /// Release an uploaded dataset / trained model.  Returns kNotFound for an
  /// unknown handle, kOk otherwise.  Deletes are local bookkeeping: they do
  /// not pass through request admission (no clock, rate-limit or fault-RNG
  /// effect), so adding them to an existing call sequence leaves every other
  /// response — and therefore cached campaign tables — byte-identical.
  ServiceStatus delete_dataset(const std::string& handle);
  ServiceStatus delete_model(const std::string& handle);

  /// The trained model behind a handle (nullptr when unknown).  Like the
  /// deletes this is local bookkeeping — no admission, clock or fault-RNG
  /// effect — so a gateway can retain a last-known-good model for graceful
  /// degradation without perturbing any other response.  The returned model
  /// outlives delete_model / service destruction (shared ownership).
  std::shared_ptr<const TrainedModel> model(const std::string& handle) const;

  /// Live handle counts (leak checks; a long campaign must hold these at
  /// O(1), not O(cells)).
  std::size_t dataset_count() const { return datasets_.size(); }
  std::size_t model_count() const { return models_.size(); }

  /// After a kRateLimited response: simulated seconds until the window has
  /// drained enough to admit another request (a Retry-After header).
  double retry_after_seconds() const { return retry_after_seconds_; }
  /// After a kServerError response: the platform's error message.
  const std::string& last_error() const { return last_error_; }

  const ServiceStats& stats() const { return stats_; }

  /// Attach a trace track: upload/train/predict each emit one "service"
  /// span per call, timestamped off the simulated clock.  The track must
  /// outlive the service while attached; nullptr detaches.
  void set_trace(TraceTrack* track) { trace_ = track; }

 private:
  /// Common request admission: clock, rate limit, fault injection.
  ServiceStatus admit(std::size_t work_samples);
  /// Emit the span for one completed call and pass the status through.
  ServiceStatus traced(const char* op, double start, std::size_t rows,
                       ServiceStatus status);

  PlatformPtr owned_platform_;       // null when non-owning
  const Platform* platform_;
  std::string platform_name_;
  ServiceQuota quota_;
  Rng rng_;
  double clock_seconds_ = 0.0;
  double retry_after_seconds_ = 0.0;
  std::string last_error_;
  std::vector<double> request_times_;  // within the current window
  ServiceStats stats_;
  TraceTrack* trace_ = nullptr;

  std::map<std::string, Dataset> datasets_;
  // shared_ptr (not TrainedModelPtr) so model() can hand out retained
  // references that survive delete_model; train() still moves unique models
  // in, so nothing else changes.
  std::map<std::string, std::shared_ptr<TrainedModel>> models_;
  std::size_t next_handle_ = 0;
};

/// Backoff/retry policy of a RetryingClient.  The exponential component is
/// capped at max_backoff_seconds; decorrelated jitter (sleep drawn uniformly
/// from [initial, min(cap, 3 * previous sleep)]) is off by default so seeded
/// campaigns stay deterministic unless explicitly opted in.
struct RetryPolicy {
  int max_attempts = 6;
  double initial_backoff_seconds = 1.0;
  double max_backoff_seconds = 120.0;
  bool jitter = false;
  std::uint64_t jitter_seed = 0;
};

/// Absent deadline for RetryingClient calls: retries are bounded only by the
/// attempt budget, exactly the pre-deadline behaviour.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Exponential-backoff wrapper: retries rate-limited and transient failures
/// by advancing the service clock (sleeping, in simulation).  Rate-limited
/// requests honour the service's Retry-After hint, so windows always drain
/// within the retry budget instead of the budget expiring mid-window.
/// Outage rejections (kUnavailable) carry no hint and fall back to plain
/// backoff, so a long outage exhausts the budget the way a real one does.
/// No sleep is charged after the final attempt: once the budget is spent the
/// failure is returned immediately.
///
/// Deadline awareness: every call takes an optional absolute deadline on the
/// service clock.  A sleep (backoff or Retry-After stall) that would overrun
/// the deadline is refused — the call returns the last retryable status
/// immediately instead of sleeping past the budget, and the refusal is
/// visible via deadline_limited()/deadline_refusals().  With kNoDeadline the
/// schedule is bit-identical to the pre-deadline client.
class RetryingClient {
 public:
  explicit RetryingClient(MlaasService& service, int max_attempts = 6,
                          double initial_backoff_seconds = 1.0);
  RetryingClient(MlaasService& service, const RetryPolicy& policy);

  /// Step-wise calls with retries, used by the measurement campaign and the
  /// serving router (which passes per-request deadline budgets).
  ServiceStatus upload(const Dataset& dataset, std::string* handle,
                       double deadline = kNoDeadline);
  ServiceStatus train(const std::string& dataset_handle, const PipelineConfig& config,
                      std::string* model_handle,
                      std::optional<std::uint64_t> seed = std::nullopt,
                      double* train_cpu_seconds = nullptr,
                      double deadline = kNoDeadline);
  ServiceStatus predict(const std::string& model_handle, const Matrix& x,
                        std::vector<int>* labels,
                        double* predict_cpu_seconds = nullptr,
                        double deadline = kNoDeadline);

  /// Convenience end-to-end call: upload + train + predict with retries.
  /// Returns labels, or nullopt if any step exhausted its retries or hit a
  /// permanent error.  The intermediate dataset/model handles are released
  /// on every exit path — success, mid-sequence failure or exception — so
  /// repeated calls hold the service's handle maps at steady state.
  std::optional<std::vector<int>> train_and_predict(const Dataset& train,
                                                    const PipelineConfig& config,
                                                    const Matrix& query);

  std::size_t total_retries() const { return retries_; }
  /// Total simulated seconds spent sleeping (backoff + rate-limit stalls).
  double total_backoff_seconds() const { return backoff_seconds_; }
  /// Whether the most recent call stopped retrying because a sleep would
  /// have overrun its deadline.
  bool deadline_limited() const { return deadline_limited_; }
  /// Sleeps refused across the client's lifetime (deadline overruns avoided).
  std::size_t deadline_refusals() const { return deadline_refusals_; }

  /// Attach a trace track: every retry sleep becomes a "retry" span
  /// (backoff vs Retry-After) and every deadline refusal an instant event.
  void set_trace(TraceTrack* track) { trace_ = track; }

 private:
  ServiceStatus with_retries(const std::function<ServiceStatus()>& call,
                             double deadline);

  MlaasService& service_;
  RetryPolicy policy_;
  Rng jitter_rng_;
  TraceTrack* trace_ = nullptr;
  std::size_t retries_ = 0;
  double backoff_seconds_ = 0.0;
  bool deadline_limited_ = false;
  std::size_t deadline_refusals_ = 0;
};

}  // namespace mlaas
