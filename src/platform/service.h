// Simulated MLaaS web service.
//
// The paper's measurements ran against live cloud endpoints over ~5 months,
// dealing with upload/train/query round-trips, rate limits and transient
// failures (§8 notes that strict rate limits excluded some providers
// entirely).  MlaasService wraps a Platform behind exactly that kind of
// API: handle-based upload/train/predict calls, a token-bucket rate limit,
// a training-job quota, seeded transient faults, and a simulated wall clock
// advanced by per-request latency — so the operational behaviour of a
// measurement campaign can be studied deterministically, without a network.
//
// RetryingClient layers exponential backoff on top, the way the paper's
// scripts had to.  Since this PR it is also the transport of the real
// measurement campaign (eval/measurement.h's run_campaign), not a side
// demo: every (dataset, platform, config) cell goes through upload/train/
// predict with retries.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "util/rng.h"

namespace mlaas {

/// Operational envelope of a simulated service.
struct ServiceQuota {
  /// Token-bucket rate limit: this many requests per rolling window.
  std::size_t requests_per_window = 60;
  double window_seconds = 60.0;
  /// Total training jobs allowed (0 = unlimited) — free-tier style quota.
  std::size_t max_training_jobs = 0;
  /// Probability any request fails transiently (HTTP-503 style).
  double fault_rate = 0.0;
  /// Simulated latency model: fixed + per-sample cost.
  double base_latency_seconds = 0.2;
  double per_sample_latency_seconds = 1e-4;
};

/// Named operational envelopes for the campaign's --quota-profile knob.
/// "default" mirrors plausible per-provider limits (big clouds fast but
/// strictly limited, startups slower); "strict" stresses the rate limiter;
/// "free-tier" adds a small per-session training quota; "unlimited" turns
/// the envelope off.  Throws std::invalid_argument for unknown names.
ServiceQuota quota_profile(const std::string& profile, const std::string& platform);
std::vector<std::string> quota_profile_names();

enum class ServiceStatus {
  kOk,
  kRateLimited,      // retry after the window drains
  kTransientError,   // retry immediately (with backoff)
  kQuotaExhausted,   // permanent for this service instance
  kNotFound,         // unknown dataset/model handle
  kBadRequest,       // config rejected by the platform
  kServerError,      // platform raised an unexpected error (HTTP-500 style)
};

std::string to_string(ServiceStatus status);

/// Whether a status can succeed on retry (rate limit / transient fault).
bool is_retryable(ServiceStatus status);

/// Request-level counters for one service instance; merge()able so the
/// campaign can aggregate per-platform telemetry across sessions.
struct ServiceStats {
  std::size_t requests = 0;
  std::size_t uploads = 0;
  std::size_t trainings = 0;
  std::size_t predictions = 0;
  std::size_t rate_limited = 0;
  std::size_t transient_errors = 0;
  std::size_t server_errors = 0;
  /// Real (not simulated) wall-clock spent inside Platform::train.
  double train_wall_seconds = 0.0;

  void merge(const ServiceStats& other);
};

class MlaasService {
 public:
  /// Owning constructor (the service is the platform's only user).
  MlaasService(PlatformPtr platform, ServiceQuota quota, std::uint64_t seed);
  /// Non-owning constructor: `platform` must outlive the service.  Used by
  /// the measurement campaign, which opens one session per (dataset,
  /// platform) cell over a shared platform roster.
  MlaasService(const Platform& platform, ServiceQuota quota, std::uint64_t seed);

  const std::string& platform_name() const { return platform_name_; }
  /// Simulated wall-clock (seconds since service creation).
  double now() const { return clock_seconds_; }
  /// Let a client "sleep": advances the simulated clock (used for backoff
  /// and for waiting out rate-limit windows).
  void advance_clock(double seconds);

  /// Upload a training set; on kOk fills `handle`.
  ServiceStatus upload(const Dataset& dataset, std::string* handle);
  /// Train a model on an uploaded dataset; on kOk fills `model_handle`.
  /// `seed` overrides the service's internal seed derivation so campaigns
  /// can reproduce the direct-call runner exactly; `train_wall_seconds`
  /// (optional) receives the real time spent in Platform::train.
  ServiceStatus train(const std::string& dataset_handle, const PipelineConfig& config,
                      std::string* model_handle,
                      std::optional<std::uint64_t> seed = std::nullopt,
                      double* train_wall_seconds = nullptr);
  /// Query a trained model; on kOk fills `labels`.
  ServiceStatus predict(const std::string& model_handle, const Matrix& x,
                        std::vector<int>* labels);

  /// After a kRateLimited response: simulated seconds until the window has
  /// drained enough to admit another request (a Retry-After header).
  double retry_after_seconds() const { return retry_after_seconds_; }
  /// After a kServerError response: the platform's error message.
  const std::string& last_error() const { return last_error_; }

  const ServiceStats& stats() const { return stats_; }

 private:
  /// Common request admission: clock, rate limit, fault injection.
  ServiceStatus admit(std::size_t work_samples);

  PlatformPtr owned_platform_;       // null when non-owning
  const Platform* platform_;
  std::string platform_name_;
  ServiceQuota quota_;
  Rng rng_;
  double clock_seconds_ = 0.0;
  double retry_after_seconds_ = 0.0;
  std::string last_error_;
  std::vector<double> request_times_;  // within the current window
  ServiceStats stats_;

  std::map<std::string, Dataset> datasets_;
  std::map<std::string, TrainedModelPtr> models_;
  std::size_t next_handle_ = 0;
};

/// Exponential-backoff wrapper: retries rate-limited and transient failures
/// by advancing the service clock (sleeping, in simulation).  Rate-limited
/// requests honour the service's Retry-After hint, so windows always drain
/// within the retry budget instead of the budget expiring mid-window.
class RetryingClient {
 public:
  explicit RetryingClient(MlaasService& service, int max_attempts = 6,
                          double initial_backoff_seconds = 1.0);

  /// Step-wise calls with retries, used by the measurement campaign.
  ServiceStatus upload(const Dataset& dataset, std::string* handle);
  ServiceStatus train(const std::string& dataset_handle, const PipelineConfig& config,
                      std::string* model_handle,
                      std::optional<std::uint64_t> seed = std::nullopt,
                      double* train_wall_seconds = nullptr);
  ServiceStatus predict(const std::string& model_handle, const Matrix& x,
                        std::vector<int>* labels);

  /// Convenience end-to-end call: upload + train + predict with retries.
  /// Returns labels, or nullopt if any step exhausted its retries or hit a
  /// permanent error.
  std::optional<std::vector<int>> train_and_predict(const Dataset& train,
                                                    const PipelineConfig& config,
                                                    const Matrix& query);

  std::size_t total_retries() const { return retries_; }
  /// Total simulated seconds spent sleeping (backoff + rate-limit stalls).
  double total_backoff_seconds() const { return backoff_seconds_; }

 private:
  ServiceStatus with_retries(const std::function<ServiceStatus()>& call);

  MlaasService& service_;
  int max_attempts_;
  double initial_backoff_;
  std::size_t retries_ = 0;
  double backoff_seconds_ = 0.0;
};

}  // namespace mlaas
