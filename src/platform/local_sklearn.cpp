#include "platform/local_sklearn.h"

namespace mlaas {

ControlSurface LocalSklearnPlatform::controls() const {
  ControlSurface surface;
  surface.feature_selection = true;
  surface.classifier_choice = true;
  surface.parameter_tuning = true;
  surface.feature_steps = {
      "filter_f_classif", "filter_mutual_info", "gaussian_norm", "minmax_scaler",
      "maxabs_scaler",    "l1_normalizer",      "l2_normalizer", "standard_scaler",
  };

  ClassifierGridSpec lr;
  lr.classifier = "logistic_regression";
  lr.params = {
      ParamSpec::categorical("penalty", {"l2", "l1"}),
      ParamSpec::number("C", 1.0, 0.1, 1e4),
      ParamSpec::categorical("solver", {"sgd", "gd"}),
  };
  surface.classifiers.push_back(std::move(lr));

  ClassifierGridSpec nb;
  nb.classifier = "naive_bayes";
  nb.params = {ParamSpec::categorical("prior", {"empirical", "uniform"})};
  surface.classifiers.push_back(std::move(nb));

  ClassifierGridSpec svm;
  svm.classifier = "linear_svm";
  svm.params = {
      ParamSpec::number("C", 1.0, 0.1, 1e4),
      ParamSpec::categorical("loss", {"hinge", "squared_hinge"}),
      ParamSpec::integer("max_iter", 100, 1, 200),
  };
  surface.classifiers.push_back(std::move(svm));

  ClassifierGridSpec lda;
  lda.classifier = "lda";
  lda.params = {
      ParamSpec::categorical("solver", {"lsqr", "eigen"}),
      ParamSpec::number("shrinkage", 0.1, 0.0, 1.0),
  };
  surface.classifiers.push_back(std::move(lda));

  ClassifierGridSpec knn;
  knn.classifier = "knn";
  knn.params = {
      ParamSpec::integer("n_neighbors", 5, 1, 25),
      ParamSpec::categorical("weights", {"uniform", "distance"}),
      ParamSpec::integer("p", 2, 1, 2),
  };
  surface.classifiers.push_back(std::move(knn));

  ClassifierGridSpec dt;
  dt.classifier = "decision_tree";
  dt.params = {
      ParamSpec::categorical("criterion", {"gini", "entropy"}),
      ParamSpec::categorical("max_features", {"all", "sqrt", "log2"}),
  };
  surface.classifiers.push_back(std::move(dt));

  ClassifierGridSpec bst;
  bst.classifier = "boosted_trees";
  bst.params = {
      ParamSpec::integer("n_estimators", 40, 10, 80),
      ParamSpec::number("learning_rate", 0.2, 0.05, 1.0),
      ParamSpec::categorical("max_features", {"all", "sqrt"}),
  };
  surface.classifiers.push_back(std::move(bst));

  ClassifierGridSpec bag;
  bag.classifier = "bagging";
  bag.params = {
      ParamSpec::integer("n_estimators", 10, 1, 32),
      ParamSpec::number("max_features", 1.0, 0.25, 1.0),
  };
  surface.classifiers.push_back(std::move(bag));

  ClassifierGridSpec rf;
  rf.classifier = "random_forest";
  rf.params = {
      ParamSpec::integer("n_estimators", 10, 1, 32),
      ParamSpec::categorical("max_features", {"sqrt", "log2", "all"}),
  };
  surface.classifiers.push_back(std::move(rf));

  ClassifierGridSpec mlp;
  mlp.classifier = "mlp";
  mlp.params = {
      ParamSpec::categorical("activation", {"relu", "tanh", "logistic"}),
      ParamSpec::categorical("solver", {"adam", "sgd"}),
      ParamSpec::number("alpha", 1e-4, 1e-6, 1e-1),
  };
  surface.classifiers.push_back(std::move(mlp));
  return surface;
}

TrainedModelPtr LocalSklearnPlatform::train(const Dataset& train, const PipelineConfig& config,
                                            std::uint64_t seed) const {
  return train_pipeline(controls(), name(), train, config, seed, "logistic_regression",
                        /*expose_scores=*/true);
}

}  // namespace mlaas
