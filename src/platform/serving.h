// Batched multi-tenant query serving over the simulated MLaaS services.
//
// The paper's §6 inference experiments probe opaque platforms one query
// matrix at a time; the ROADMAP's north star is a system that serves heavy
// traffic from many concurrent users.  QueryRouter is the layer between the
// two: it multiplexes many client sessions over the existing MlaasService
// simulators, micro-batching predict requests per trained model (configurable
// max batch size and linger), keeping trained-model handles in an LRU cache
// with explicit delete_dataset/delete_model eviction, shedding load with a
// per-platform pending-row cap on top of the services' token-bucket quotas,
// and recording latency/throughput/batch-occupancy telemetry.
//
// Determinism: the router drives one global simulated clock; every service
// call, batch flush and retry is ordered by (deadline, creation sequence),
// and models are trained through MlaasService::train with an explicit seed.
// Labels that come back through the serving path are therefore byte-identical
// to direct Platform::train(seed)->predict(rows) for the same seed — for any
// batch size, linger, cache capacity or tenant interleaving — which is what
// lets the §6 experiments and the measurement campaign run through it.
//
// Fault tolerance (DESIGN.md "Degradation ladder"): every request may carry a
// deadline budget — batches flush early when the tightest budget falls due,
// retries refuse sleeps that would overrun it, and late resolutions count as
// deadline_missed instead of hanging.  Per-platform circuit breakers
// health-gate dispatch, and a failed (or gated, or budget-exhausted) batch
// walks a deterministic ladder: fallback platform → retained last-known-good
// model → degraded reject.  Every knob defaults off, in which case labels and
// reports are byte-identical to the pre-resilience router; with chaos on,
// reruns of the same seed are byte-identical to each other.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "platform/breaker.h"
#include "platform/service.h"
#include "util/trace.h"

namespace mlaas {

/// Fixed-bucket latency histogram (log-spaced, sqrt(2) ratio from 1 ms).
/// Quantiles are read from the cumulative counts and resolved to the
/// geometric midpoint of the matching bucket, so p50/p95/p99 are exact to
/// within one half-bucket (~19%) — plenty for telemetry, and O(1) memory no
/// matter how many requests a benchmark records.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(double seconds);
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  double total_seconds() const { return total_; }
  double max_seconds() const { return max_; }
  double mean_seconds() const { return count_ == 0 ? 0.0 : total_ / double(count_); }
  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;

  /// Bucket upper bounds in seconds (shared by every histogram instance).
  static const std::vector<double>& bucket_bounds();
  const std::vector<std::size_t>& buckets() const { return buckets_; }
  /// Compact "le_ms=count;..." encoding of the non-empty buckets (the format
  /// documented in DESIGN.md "Query serving").
  std::string encode() const;

 private:
  std::vector<std::size_t> buckets_;  // bucket_bounds().size() + 1 (overflow)
  std::size_t count_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
};

/// Router behaviour knobs.
struct ServingOptions {
  /// Flush a model's pending batch once it holds this many rows.
  std::size_t max_batch_rows = 64;
  /// Flush a partial batch this many simulated seconds after its first row
  /// arrived (the micro-batching linger).
  double linger_seconds = 0.05;
  /// Router-wide LRU capacity over trained-model handles; the evicted
  /// model's handle is released with delete_model, and a later request for
  /// it re-trains deterministically from the session's seed.
  std::size_t model_cache_capacity = 8;
  /// Admission control: reject a submit when the target platform already has
  /// this many rows pending (0 = unbounded).  This is load shedding in front
  /// of the service's own token-bucket quota, which stays authoritative for
  /// rate limiting (the router honours its Retry-After hints).
  std::size_t max_pending_rows = 0;
  /// Retry policy for upload/train/predict calls issued by the router.
  RetryPolicy retry;

  // -- Fault tolerance.  Every knob below defaults off; while they stay off
  // the router's labels, stats and reports are byte-identical to the
  // pre-resilience code.

  /// Extra i.i.d. transient-fault probability injected into every platform
  /// service, combined with the quota profile's own rate via max().
  double fault_rate = 0.0;
  /// Correlated-failure schedule per platform: "none", "outages", "bursts",
  /// "latency" or "storm" (see make_fault_plan).  Seeded per platform from
  /// the router seed, so reruns see the same storms.
  std::string chaos_profile = "none";
  /// Default per-request deadline budget in simulated seconds (0 = none;
  /// submit() can override per request).  A batch flushes early when its
  /// tightest member budget falls due, retries refuse any sleep that would
  /// overrun it, and a request that still resolves late counts as
  /// deadline_missed — it never hangs.
  double deadline_seconds = 0.0;
  /// Degradation ladder rung 2: when the primary platform fails, is breaker
  /// -gated or runs out of budget, re-route the batch here (must be in the
  /// roster; empty = no failover).  The fallback model is trained from the
  /// same session train_seed, so failover labels are deterministic.
  std::string fallback_platform;
  /// Degradation ladder rung 3: retain the last successfully trained model
  /// per model key and serve labels from it locally — no service admission,
  /// no clock or fault-RNG effect — when both primary and fallback are
  /// unavailable.
  bool serve_last_known_good = false;
  /// Health gate: one circuit breaker per (platform, router).  While a
  /// breaker is open the router skips that platform and takes the next
  /// ladder rung instead of sleeping out the cooldown on a request budget.
  BreakerOptions breaker;

  /// Deterministic end-to-end tracing: one track for the router (batch
  /// flushes with FlushCause and ladder-rung annotations) plus one per
  /// platform (service call spans, retry waits, breaker transitions), all
  /// timestamped off the simulated gateway clock.  Off by default; while off
  /// every report/label byte is identical to the untraced router.
  bool trace = false;
};

/// Where on the serve path / degradation ladder a request was resolved.
enum class QueryOutcome {
  kPending,         // not resolved yet
  kOk,              // primary platform answered within budget
  kFailover,        // fallback platform answered within budget
  kLastKnownGood,   // served from the retained last-known-good model
  kDeadlineMissed,  // resolved after its deadline (labels may still be set)
  kDegraded,        // ladder exhausted within budget: degraded reject
  kFailed,          // permanent failure with no ladder rung configured
};

std::string to_string(QueryOutcome outcome);

/// Outcome of one submitted predict request.
struct QueryResult {
  bool done = false;   // batch flushed (or request rejected/failed)
  bool ok = false;     // labels are valid (even when the deadline was missed)
  QueryOutcome outcome = QueryOutcome::kPending;
  std::string error;   // service status string when !ok
  std::vector<int> labels;
  double submit_seconds = 0.0;    // router clock at submit
  double complete_seconds = 0.0;  // router clock when the batch flushed
  double deadline = kNoDeadline;  // absolute router-clock deadline
};

/// Per-tenant serving telemetry.
struct TenantServingStats {
  std::string tenant;
  std::size_t requests = 0;
  std::size_t rows = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;    // batch exhausted retries / permanent error
  std::size_t rejected = 0;  // admission control turned the submit away
  LatencyHistogram latency;

  /// Scalar counters in declaration order, for util/metrics.h's generic
  /// merge_stats / register_stats (the histogram merges separately).
  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("requests", self.requests);
    visit("rows", self.rows);
    visit("ok", self.ok);
    visit("failed", self.failed);
    visit("rejected", self.rejected);
  }

  void merge(const TenantServingStats& other);
};

/// Router-wide serving telemetry.
struct ServingStats {
  std::size_t requests = 0;
  std::size_t rows = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t rejected = 0;
  std::size_t batches = 0;          // predict batches flushed
  std::size_t batched_rows = 0;     // rows across flushed batches
  std::size_t flushed_full = 0;     // flush cause: batch reached max rows
  std::size_t flushed_linger = 0;   // flush cause: linger deadline
  std::size_t flushed_forced = 0;   // flush cause: drain()/wait()
  std::size_t flushed_deadline = 0; // flush cause: tightest budget fell due
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;     // each miss uploads + trains
  std::size_t cache_evictions = 0;  // delete_model calls from LRU pressure
  std::size_t trainings = 0;        // models trained by the router
  std::size_t retries = 0;          // service-level retries (all calls)
  std::size_t rate_limited = 0;     // kRateLimited responses absorbed
  double backoff_seconds = 0.0;     // simulated sleep inside retries
  double simulated_seconds = 0.0;   // router clock when the report was cut
  LatencyHistogram latency;

  // SLO telemetry.  Resolved requests partition as
  //   requests = ok + failed + rejected + deadline_missed + degraded_rejected
  // where `ok` counts every request answered with labels within budget
  // (primary, failover and last-known-good alike; the latter two are also
  // tallied in their own sub-counters below).
  std::size_t deadline_missed = 0;   // resolved after the request's deadline
  std::size_t failovers = 0;         // answered by the fallback platform
  std::size_t degraded_answers = 0;  // answered from last-known-good
  std::size_t degraded_rejected = 0; // ladder exhausted: degraded reject
  std::size_t breaker_gated = 0;     // dispatches skipped on an open breaker
  std::size_t breaker_trips = 0;     // breaker open transitions, all platforms
  std::size_t refused_sleeps = 0;    // retry sleeps refused by deadline budgets

  /// Scalar counters in declaration order, for util/metrics.h registration.
  template <typename Self, typename Visitor>
  static void visit_fields(Self& self, Visitor&& visit) {
    visit("requests", self.requests);
    visit("rows", self.rows);
    visit("ok", self.ok);
    visit("failed", self.failed);
    visit("rejected", self.rejected);
    visit("batches", self.batches);
    visit("batched_rows", self.batched_rows);
    visit("flushed_full", self.flushed_full);
    visit("flushed_linger", self.flushed_linger);
    visit("flushed_forced", self.flushed_forced);
    visit("flushed_deadline", self.flushed_deadline);
    visit("cache_hits", self.cache_hits);
    visit("cache_misses", self.cache_misses);
    visit("cache_evictions", self.cache_evictions);
    visit("trainings", self.trainings);
    visit("retries", self.retries);
    visit("rate_limited", self.rate_limited);
    visit("backoff_seconds", self.backoff_seconds);
    visit("simulated_seconds", self.simulated_seconds);
    visit("deadline_missed", self.deadline_missed);
    visit("failovers", self.failovers);
    visit("degraded_answers", self.degraded_answers);
    visit("degraded_rejected", self.degraded_rejected);
    visit("breaker_gated", self.breaker_gated);
    visit("breaker_trips", self.breaker_trips);
    visit("refused_sleeps", self.refused_sleeps);
  }

  /// Mean rows per flushed batch.
  double mean_batch_rows() const;
  /// mean_batch_rows / max_batch_rows in [0, 1].
  double batch_occupancy(std::size_t max_batch_rows) const;
  /// Completed rows per simulated second.
  double throughput_rows_per_sec() const;
  /// Fraction of submitted requests answered with labels within budget.
  double goodput() const;
};

/// Telemetry report: totals plus one row per tenant, written through the
/// same TSV/JSON sidecar style as the campaign report.
struct ServingReport {
  ServingStats totals;
  std::vector<TenantServingStats> tenants;  // session-open order
  std::size_t max_batch_rows = 0;
  /// True when any resilience knob was on (or a per-request deadline was
  /// used).  Gates the "# resilience" TSV trailer and the JSON "resilience"
  /// block, so chaos-off reports stay byte-identical to the pre-resilience
  /// format.
  bool resilience = false;
  /// Trace::summary() of the run's trace; empty when tracing was off.
  /// Gates the "# trace" TSV trailer and the JSON "trace" field the same
  /// way `resilience` gates its block.
  std::string trace_summary;

  void write_tsv(std::ostream& out) const;
  void save_tsv(const std::string& path) const;
  void save_json(const std::string& path) const;

  /// Totals and per-tenant counters re-registered into one registry
  /// (stable order: totals in field order, then tenants in open order).
  MetricsRegistry metrics() const;
};

/// Validate the user-facing serving knobs the CLI front ends collect;
/// throws std::invalid_argument naming the offending flag.  Called at parse
/// time so nonsense like `--batch 0` or `--linger -5` is a usage error, not
/// a silently clamped (or undefined) run.
void validate_serving_options(const ServingOptions& options);

class QueryRouter {
 public:
  using SessionId = std::size_t;
  using Ticket = std::size_t;

  /// `platforms` must outlive the router (the campaign-roster convention).
  /// One MlaasService per platform is created from `quota_profile`, seeded
  /// by (seed, platform).
  QueryRouter(const std::vector<PlatformPtr>& platforms,
              const std::string& quota_profile, std::uint64_t seed,
              ServingOptions options);

  /// Simulated seconds since the router was created (one clock across all
  /// platform services: the router is a single gateway timeline).
  double now() const { return now_; }

  /// Bind a tenant to (platform, training set, config, train seed) and
  /// ensure its model is trained and cached (training happens here, and
  /// again after an LRU eviction, always from `train_seed` — which is what
  /// makes re-train-on-miss deterministic).  Throws std::invalid_argument
  /// for an unknown platform; returns nullopt when training fails
  /// permanently (the reason is in last_error()).
  std::optional<SessionId> open_session(const std::string& tenant,
                                        const std::string& platform,
                                        const Dataset& train, const PipelineConfig& config,
                                        std::uint64_t train_seed);
  void close_session(SessionId session);

  /// Queue `x` for the session's model.  The request rides the model's
  /// current micro-batch: it flushes when the batch reaches max_batch_rows,
  /// when the linger deadline passes during advance_to(), when the tightest
  /// member budget falls due, or on wait()/drain().  Returns nullopt (and
  /// counts a rejection) when the platform's pending-row cap would be
  /// exceeded.  `deadline_seconds` is this request's budget in simulated
  /// seconds from now: negative (the default) uses
  /// ServingOptions::deadline_seconds, 0 means explicitly unbounded.
  std::optional<Ticket> submit(SessionId session, const Matrix& x,
                               double deadline_seconds = -1.0);

  /// Advance the simulated clock to `t`, flushing every batch whose linger
  /// deadline falls due, in deterministic (deadline, sequence) order.
  void advance_to(double t);

  /// Block (in simulated time) until the ticket's batch has flushed: the
  /// clock advances to the batch's linger deadline, which flushes it.
  const QueryResult& wait(Ticket ticket);
  const QueryResult& result(Ticket ticket) const { return results_.at(ticket); }

  /// Flush everything still pending (end of run).
  void drain();

  /// Telemetry snapshot (totals + per-tenant rows, histogram included).
  ServingReport report() const;
  /// Router-wide counters, folding in the per-platform retry/rate-limit
  /// totals and the current simulated clock.
  ServingStats stats() const;
  /// Request counters of one platform's underlying service.
  const ServiceStats& platform_stats(const std::string& platform) const;
  std::size_t cached_models() const { return lru_.size(); }
  const std::string& last_error() const { return last_error_; }
  /// The run's trace (nullptr unless ServingOptions::trace was set).
  const Trace* trace() const { return trace_.get(); }

 private:
  struct PlatformState {
    const Platform* platform = nullptr;
    std::unique_ptr<MlaasService> service;
    std::unique_ptr<RetryingClient> client;
    std::size_t pending_rows = 0;
    CircuitBreaker breaker{BreakerOptions{}};
  };

  struct Session {
    std::string tenant;
    std::size_t platform = 0;
    std::string model_key;
    std::string fallback_key;  // model key on the fallback platform (ladder)
    Dataset train;             // kept for re-train after LRU eviction
    PipelineConfig config;
    std::uint64_t train_seed = 0;
    bool open = false;
  };

  struct PendingRequest {
    Ticket ticket = 0;
    std::size_t rows = 0;
    std::string tenant;
    double deadline = kNoDeadline;  // absolute router-clock deadline
  };

  struct Batch {
    std::string model_key;
    std::size_t platform = 0;
    std::size_t session = 0;      // any session of this model (for re-train)
    std::uint64_t seq = 0;        // creation order, breaks deadline ties
    double deadline = 0.0;        // first-row time + linger
    double budget_deadline = kNoDeadline;  // tightest member deadline
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<double> data;     // row-major concatenation
    std::vector<PendingRequest> requests;
  };

  struct CachedModel {
    std::string key;
    std::size_t platform = 0;
    std::string handle;
  };

  enum class FlushCause { kFull, kLinger, kDeadline, kForced };

  PlatformState& state_for(std::size_t platform) { return platforms_[platform]; }
  /// When a batch falls due: its linger deadline or its tightest member
  /// budget, whichever comes first.
  static double due_at(const Batch& batch);
  /// Sync a platform service's clock up to the router clock, run `call`,
  /// then fold the service's elapsed time back into the router clock.
  template <typename Fn>
  ServiceStatus timed_call(PlatformState& ps, Fn&& call);

  /// Handle for `model_key` on `platform`, training from `session`'s spec on
  /// a cache miss (within `deadline`); empty on failure (status recorded in
  /// last_error_).  Used for both the primary and the fallback rung — the
  /// two differ only in (platform, key).
  std::string acquire_model(std::size_t session, std::size_t platform,
                            const std::string& model_key, double deadline);
  void evict_to_capacity(std::size_t capacity);
  void flush(const std::string& model_key, FlushCause cause);
  TenantServingStats& tenant_stats(const std::string& tenant);

  std::vector<PlatformState> platforms_;
  std::map<std::string, std::size_t> platform_index_;
  ServingOptions options_;
  std::optional<std::size_t> fallback_index_;  // resolved fallback_platform
  bool resilience_ = false;  // any resilience knob on / deadline ever used
  double now_ = 0.0;

  std::vector<Session> sessions_;
  std::vector<QueryResult> results_;
  std::map<std::string, Batch> batches_;  // model_key -> open batch
  std::uint64_t batch_seq_ = 0;

  std::list<CachedModel> lru_;  // front = most recently used
  std::map<std::string, std::list<CachedModel>::iterator> cache_index_;
  // Last-known-good ladder rung: trained models retained per model key
  // (shared ownership: they survive delete_model and cache eviction).
  std::map<std::string, std::shared_ptr<const TrainedModel>> last_known_good_;

  ServingStats stats_;
  std::vector<TenantServingStats> tenants_;  // session-open order
  std::map<std::string, std::size_t> tenant_index_;
  std::string last_error_;

  // Tracing (null when off).  The router is single-threaded over one
  // simulated clock, so it owns the Trace directly: track 0 is the router
  // (flush spans + ladder rungs), then one track per platform in roster
  // order (service spans, retry waits, breaker transitions).
  std::unique_ptr<Trace> trace_;
  TraceTrack* router_track_ = nullptr;
};

// ---------------------------------------------------------------------------
// Workload generator (bench_ext_serving and `mlaas_cli serve-bench`).

/// One tenant of a serving workload: traffic share, platform binding and the
/// training set + config + seed its model is built from.
struct ServingTenantSpec {
  std::string tenant;
  std::string platform;
  double weight = 1.0;                 // relative traffic share
  Dataset train;
  PipelineConfig config;               // empty = platform default pipeline
  std::uint64_t train_seed = 0;
  std::size_t max_rows_per_request = 8;
};

/// Seeded default mix: `n_tenants` tenants with Zipf-skewed weights (tenant
/// i carries weight 1/(i+1)) round-robined over `platforms`, each with its
/// own small synthetic training set.
std::vector<ServingTenantSpec> make_serving_tenants(
    std::size_t n_tenants, const std::vector<std::string>& platforms,
    std::uint64_t seed);

struct ServingWorkloadOptions {
  std::uint64_t seed = 42;
  /// Total predict requests issued (open-loop arrivals, or spread over the
  /// closed-loop clients).
  std::size_t requests = 2000;
  /// Open-loop: mean arrivals per simulated second (exponential gaps).
  double arrival_rate = 50.0;
  /// Closed-loop instead of open-loop: `clients` callers that each wait for
  /// their previous request before sending the next.
  bool closed_loop = false;
  std::size_t clients = 8;
  std::string quota_profile = "default";
  ServingOptions serving;
};

struct ServingWorkloadResult {
  ServingReport report;
  double wall_seconds = 0.0;  // real time spent driving the router
  /// Copy of the router's trace (null unless options.serving.trace).
  std::shared_ptr<const Trace> trace;
};

/// Drive a QueryRouter with a seeded multi-tenant workload.  Deterministic in
/// (tenants, options): same seed, same report — wall_seconds excepted.
ServingWorkloadResult run_serving_workload(const std::vector<ServingTenantSpec>& tenants,
                                           const ServingWorkloadOptions& options);

}  // namespace mlaas
