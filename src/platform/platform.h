// MLaaS platform abstraction (§2, Figure 1).
//
// A Platform is an opaque train/predict service: the evaluation harness may
// only (a) inspect the advertised control surface, (b) upload a training
// set with a pipeline configuration drawn from that surface, and (c) query
// the trained model for predictions.  Black-box platforms (ABM, Google)
// advertise no controls; their internal classifier choice is invisible,
// exactly as in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/feature/filters.h"
#include "ml/model_selection/param_grid.h"
#include "ml/registry.h"

namespace mlaas {

/// One point in the user-visible configuration space: a FEAT step, a CLF
/// choice and its PARA values (§3.2's three control dimensions).
struct PipelineConfig {
  std::string feature_step;  // "" / "none" = no feature selection
  std::string classifier;    // "" = platform default (or automated choice)
  ParamMap params;

  /// Stable identity string "feat|clf|params".
  std::string key() const;
};

/// The knobs a platform exposes (Figure 1's per-platform checkmarks).
struct ControlSurface {
  bool feature_selection = false;
  bool classifier_choice = false;
  bool parameter_tuning = false;
  std::vector<std::string> feature_steps;         // FEAT options
  std::vector<ClassifierGridSpec> classifiers;    // CLF rows with PARA grids

  const ClassifierGridSpec* find(const std::string& classifier) const;
};

/// A model trained by a platform.  Some platforms do not expose prediction
/// scores (§3.2: PredictionIO and several BigML classifiers return labels
/// only), hence the separate capability flag.
class TrainedModel {
 public:
  virtual ~TrainedModel() = default;
  virtual std::vector<int> predict(const Matrix& x) const = 0;
  virtual bool exposes_scores() const { return false; }
  /// Only valid when exposes_scores(); default throws.
  virtual std::vector<double> predict_score(const Matrix& x) const;
};

using TrainedModelPtr = std::unique_ptr<TrainedModel>;

class Platform {
 public:
  virtual ~Platform() = default;

  virtual std::string name() const = 0;
  /// Position on the complexity axis of Figures 2/4/6 (0 = least control).
  virtual int complexity_rank() const = 0;
  virtual ControlSurface controls() const = 0;

  /// Train on `train` with `config`; throws std::invalid_argument when the
  /// config uses controls the platform does not expose.
  virtual TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                                std::uint64_t seed) const = 0;

  /// The zero-control configuration used for the paper's `baseline`
  /// reference point (§3.2: Logistic Regression with platform defaults, no
  /// feature selection; black-box platforms return an empty config).
  virtual PipelineConfig baseline_config() const;
};

using PlatformPtr = std::unique_ptr<Platform>;

/// Standard FEAT->CLF pipeline model shared by all white-box platform
/// implementations.
class PipelineModel final : public TrainedModel {
 public:
  PipelineModel(TransformerPtr feature_step, ClassifierPtr classifier, bool expose_scores);

  /// Fit both stages.
  void fit(const Dataset& train);

  std::vector<int> predict(const Matrix& x) const override;
  bool exposes_scores() const override { return expose_scores_; }
  std::vector<double> predict_score(const Matrix& x) const override;

  const Classifier& classifier() const { return *classifier_; }

 private:
  /// Returns x itself when there is no feature step (no copy), otherwise the
  /// transform result cached in feat_scratch_.
  const Matrix& apply_feature_step(const Matrix& x) const;

  TransformerPtr feature_step_;  // may be null
  ClassifierPtr classifier_;
  bool expose_scores_;
  // Predict-path scratch, reused across calls.  A model serves queries from
  // one thread at a time (router worker / campaign session), so plain
  // mutable members suffice.
  mutable Matrix feat_scratch_;
  mutable std::vector<double> score_scratch_;
};

/// Helper used by white-box platforms: validate `config` against `surface`,
/// construct the pipeline, and fit it.
TrainedModelPtr train_pipeline(const ControlSurface& surface, const std::string& platform_name,
                               const Dataset& train, const PipelineConfig& config,
                               std::uint64_t seed, const std::string& default_classifier,
                               bool expose_scores);

}  // namespace mlaas
