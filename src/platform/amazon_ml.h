// Amazon Machine Learning simulator.
//
// Amazon exposes only parameter tuning (Figure 1): the classifier is fixed
// — the documentation claims SGD logistic regression — and Table 1 lists
// three tunable parameters: maxIter, regParam, shuffleType.
//
// Hidden pipeline quirk reproduced from §6.2/Figure 13: Amazon's default
// "recipe" quantile-bins numeric features and one-hot encodes the bins
// before the linear model, which makes the effective decision boundary
// non-linear (the paper observed a non-linear boundary on CIRCLE and
// predicted non-linear behaviour on 10/64 datasets despite the LR claim).
#pragma once

#include "platform/platform.h"

namespace mlaas {

class AmazonMlPlatform final : public Platform {
 public:
  std::string name() const override { return "Amazon"; }
  int complexity_rank() const override { return 2; }
  ControlSurface controls() const override;
  TrainedModelPtr train(const Dataset& train, const PipelineConfig& config,
                        std::uint64_t seed) const override;
};

}  // namespace mlaas
