#include "platform/auto_select.h"

#include <algorithm>

#include "ml/model_selection/cross_validation.h"
#include "util/rng.h"

namespace mlaas {

std::string to_string(ClassifierFamily family) {
  return family == ClassifierFamily::kLinear ? "linear" : "non-linear";
}

AutoSelectResult auto_select_family(const Dataset& train, const AutoSelectOptions& options,
                                    std::uint64_t seed) {
  // Subsample for the probe race.
  const Dataset* probe = &train;
  Dataset subsampled;
  if (train.n_samples() > options.max_probe_samples) {
    Rng rng(derive_seed(seed, "autoselect-subsample"));
    auto idx = rng.sample_without_replacement(train.n_samples(), options.max_probe_samples);
    std::sort(idx.begin(), idx.end());
    subsampled = train.subset(idx);
    probe = &subsampled;
  }

  // Both probes race on ONE shared fold plan: the assignment and fold
  // subsets are derived once (they depend only on the probe data), and
  // scoring the families on identical folds makes the race a paired
  // comparison instead of two independently-folded estimates.  Classifier
  // seeds keep their historical per-probe derivation.
  const FoldPlanPtr plan =
      FoldPlan::compute(*probe, options.folds, derive_seed(seed, "probe"));
  ParamMap lr_params{{"max_iter", 50LL}};
  ParamMap dt_params{{"max_depth", 10LL}, {"min_samples_leaf", 2LL}};
  const CvResult linear = cross_validate("logistic_regression", lr_params, *plan,
                                         derive_seed(seed, "probe-linear"));
  const CvResult nonlinear = cross_validate("decision_tree", dt_params, *plan,
                                            derive_seed(seed, "probe-nonlinear"));

  AutoSelectResult result;
  result.linear_cv_f = linear.mean.f_score;
  result.nonlinear_cv_f = nonlinear.mean.f_score;
  result.family = nonlinear.mean.f_score > linear.mean.f_score + options.linear_bias
                      ? ClassifierFamily::kNonLinear
                      : ClassifierFamily::kLinear;
  return result;
}

}  // namespace mlaas
