#include "platform/amazon_ml.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"
#include "util/rng.h"

namespace mlaas {

namespace {

/// Amazon's default recipe: quantile-bin each numeric feature and one-hot
/// encode the bin id.  The downstream linear model then learns a weight per
/// bin, i.e. a piecewise-constant (non-linear) response per feature.
class QuantileBinner {
 public:
  void fit(const Matrix& x, int n_bins) {
    edges_.assign(x.cols(), {});
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const auto col = x.col(c);
      auto& edges = edges_[c];
      for (int b = 1; b < n_bins; ++b) {
        edges.push_back(quantile(col, static_cast<double>(b) / n_bins));
      }
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }

  Matrix transform(const Matrix& x) const {
    std::size_t total_bins = 0;
    for (const auto& edges : edges_) total_bins += edges.size() + 1;
    Matrix out(x.rows(), total_bins);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::size_t offset = 0;
      for (std::size_t c = 0; c < x.cols(); ++c) {
        const auto& edges = edges_[c];
        const std::size_t bin = static_cast<std::size_t>(
            std::upper_bound(edges.begin(), edges.end(), x(r, c)) - edges.begin());
        out(r, offset + bin) = 1.0;
        offset += edges.size() + 1;
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<double>> edges_;
};

class AmazonModel final : public TrainedModel {
 public:
  AmazonModel(QuantileBinner binner, ClassifierPtr clf)
      : binner_(std::move(binner)), clf_(std::move(clf)) {}

  std::vector<int> predict(const Matrix& x) const override {
    return clf_->predict(binner_.transform(x));
  }
  bool exposes_scores() const override { return true; }
  std::vector<double> predict_score(const Matrix& x) const override {
    return clf_->predict_score(binner_.transform(x));
  }

 private:
  QuantileBinner binner_;
  ClassifierPtr clf_;
};

constexpr int kDefaultBins = 8;

}  // namespace

ControlSurface AmazonMlPlatform::controls() const {
  ControlSurface surface;
  surface.parameter_tuning = true;  // the only exposed control (Figure 1)
  ClassifierGridSpec lr;
  lr.classifier = "logistic_regression";
  // Table 1: maxIter, regParam, shuffleType (SGD passes / L2 lambda / order).
  lr.params = {
      ParamSpec::integer("max_iter", 10, 1, 200),
      ParamSpec::number("reg_param", 1e-6, 1e-8, 1.0),
      ParamSpec::categorical("shuffle_type", {"auto", "none"}),
  };
  surface.classifiers.push_back(std::move(lr));
  return surface;
}

TrainedModelPtr AmazonMlPlatform::train(const Dataset& train, const PipelineConfig& config,
                                        std::uint64_t seed) const {
  if (!config.feature_step.empty()) {
    throw std::invalid_argument("Amazon: feature selection is not supported");
  }
  if (!config.classifier.empty() && config.classifier != "logistic_regression") {
    throw std::invalid_argument("Amazon: classifier is fixed to logistic regression");
  }
  const ControlSurface surface = controls();
  ParamMap params = surface.classifiers.front().default_config();
  for (const auto& [k, v] : config.params) params.set(k, v);

  QuantileBinner binner;
  binner.fit(train.x(), kDefaultBins);
  const Matrix binned = binner.transform(train.x());

  auto clf = make_classifier("logistic_regression", params, derive_seed(seed, "amazon"));
  clf->fit(binned, train.y());
  return std::make_unique<AmazonModel>(std::move(binner), std::move(clf));
}

}  // namespace mlaas
