// Internal classifier auto-selection used by black-box platforms (§6).
//
// Google and ABM automate the whole pipeline; the paper's §6.1 shows both
// switch between a linear and a non-linear classifier depending on the
// dataset.  This module is the *hidden* mechanism of our simulators: a quick
// stratified cross-validation race between a linear probe (logistic
// regression) and a non-linear probe (decision tree), with a configurable
// bias toward the linear family (cheap to serve, strong prior for tabular
// data).  Because the test runs on a subsample with few folds, the choice is
// imperfect — reproducing the paper's finding that black-box platforms
// occasionally pick the wrong family (§6.3).
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace mlaas {

enum class ClassifierFamily { kLinear, kNonLinear };

std::string to_string(ClassifierFamily family);

struct AutoSelectOptions {
  /// Non-linear must beat linear by this CV margin to be chosen.
  double linear_bias = 0.02;
  int folds = 3;
  /// Subsample cap for the internal race (keeps serving cheap, adds noise).
  std::size_t max_probe_samples = 400;
};

struct AutoSelectResult {
  ClassifierFamily family = ClassifierFamily::kLinear;
  double linear_cv_f = 0.0;
  double nonlinear_cv_f = 0.0;
};

AutoSelectResult auto_select_family(const Dataset& train, const AutoSelectOptions& options,
                                    std::uint64_t seed);

}  // namespace mlaas
