// Local preprocessing applied before "uploading" to platforms (§3.1):
// median imputation of missing values.  Categorical mapping happens at CSV
// load / generation time.
#pragma once

#include "data/dataset.h"

namespace mlaas {

/// Replace NaN cells with the per-feature median of non-missing values
/// (paper §3.1).  A fully-missing column becomes all zeros.
void impute_median(Dataset& dataset);

/// Count NaN cells.
std::size_t count_missing(const Dataset& dataset);

}  // namespace mlaas
