#include "data/complexity.h"

#include <algorithm>
#include <limits>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace mlaas {

namespace {

/// Standardized copy of x (z-scores), so distances are scale-free.
Matrix standardized(const Matrix& x) {
  Matrix out = x;
  for (std::size_t c = 0; c < out.cols(); ++c) {
    const auto col = out.col(c);
    const double m = mean(col);
    const double s = stddev(col);
    const double inv = s > 0 ? 1.0 / s : 0.0;
    for (std::size_t r = 0; r < out.rows(); ++r) out(r, c) = (out(r, c) - m) * inv;
  }
  return out;
}

}  // namespace

ComplexityMeasures compute_complexity(const Dataset& dataset, std::uint64_t seed,
                                      std::size_t max_samples) {
  ComplexityMeasures measures;
  const Dataset* working = &dataset;
  Dataset subsampled;
  if (dataset.n_samples() > max_samples) {
    Rng rng(derive_seed(seed, "complexity-subsample"));
    auto idx = rng.sample_without_replacement(dataset.n_samples(), max_samples);
    std::sort(idx.begin(), idx.end());
    subsampled = dataset.subset(idx);
    working = &subsampled;
  }
  const Matrix& x = working->x();
  const std::vector<int>& y = working->y();
  const std::size_t n = x.rows();
  if (n < 4) return measures;

  // F1: max per-feature Fisher discriminant ratio.
  for (std::size_t c = 0; c < x.cols(); ++c) {
    measures.fisher_ratio_f1 =
        std::max(measures.fisher_ratio_f1, fisher_score(x.col(c), y));
  }

  // N1: nearest-neighbor label disagreement on standardized features.
  const Matrix xs = standardized(x);
  std::size_t disagreements = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = squared_distance(xs.row(i), xs.row(j));
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    disagreements += y[i] != y[best_j] ? 1 : 0;
  }
  measures.boundary_n1 = static_cast<double>(disagreements) / static_cast<double>(n);

  // L2: training error of a Fisher linear discriminant — the cheapest honest
  // "best linear separator" estimate (no iterative tuning involved).
  {
    std::vector<double> mean0(x.cols(), 0.0), mean1(x.cols(), 0.0);
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t r = 0; r < n; ++r) {
      auto& m = y[r] == 1 ? mean1 : mean0;
      (y[r] == 1 ? n1 : n0) += 1;
      for (std::size_t c = 0; c < x.cols(); ++c) m[c] += xs(r, c);
    }
    if (n0 == 0 || n1 == 0) return measures;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      mean0[c] /= static_cast<double>(n0);
      mean1[c] /= static_cast<double>(n1);
    }
    // Project on the mean-difference direction (diagonal-covariance Fisher).
    std::vector<double> w(x.cols());
    for (std::size_t c = 0; c < x.cols(); ++c) w[c] = mean1[c] - mean0[c];
    const double norm = norm2(w);
    if (norm == 0.0) {
      measures.linear_error_l2 = 0.5;
      return measures;
    }
    scale_inplace(w, 1.0 / norm);
    // Optimal threshold along the projection by scanning class-boundary
    // candidates.
    std::vector<std::pair<double, int>> projected(n);
    for (std::size_t r = 0; r < n; ++r) projected[r] = {dot(xs.row(r), w), y[r]};
    std::sort(projected.begin(), projected.end());
    // Sweep thresholds: errors = (#pos below cut) + (#neg above cut).
    std::size_t pos_below = 0, neg_below = 0;
    std::size_t best_errors = std::min(n0, n1);  // degenerate all-one-side cuts
    for (std::size_t r = 0; r + 1 < n; ++r) {
      (projected[r].second == 1 ? pos_below : neg_below) += 1;
      const std::size_t errors = pos_below + (n0 - neg_below);
      best_errors = std::min(best_errors, std::min(errors, n - errors));
    }
    measures.linear_error_l2 =
        static_cast<double>(best_errors) / static_cast<double>(n);
  }
  return measures;
}

}  // namespace mlaas
