#include "data/dataset.h"

#include <cmath>
#include <stdexcept>

namespace mlaas {

std::string to_string(Domain d) {
  switch (d) {
    case Domain::kLifeScience: return "Life Science";
    case Domain::kComputerGames: return "Computer & Games";
    case Domain::kSynthetic: return "Synthetic";
    case Domain::kSocialScience: return "Social Science";
    case Domain::kPhysicalScience: return "Physical Science";
    case Domain::kFinancial: return "Financial & Business";
    case Domain::kOther: return "Other";
  }
  return "Unknown";
}

Dataset::Dataset(Matrix x, std::vector<int> y)
    : Dataset(std::move(x), std::move(y), {}) {}

Dataset::Dataset(Matrix x, std::vector<int> y, std::vector<ColumnType> column_types)
    : x_(std::move(x)), y_(std::move(y)), types_(std::move(column_types)) {
  if (types_.empty()) types_.assign(x_.cols(), ColumnType::kNumeric);
  names_.reserve(x_.cols());
  for (std::size_t c = 0; c < x_.cols(); ++c) names_.push_back("f" + std::to_string(c));
  check();
}

void Dataset::set_feature_names(std::vector<std::string> names) {
  if (names.size() != n_features()) {
    throw std::invalid_argument("Dataset: feature name count mismatch");
  }
  names_ = std::move(names);
}

bool Dataset::has_missing() const {
  for (double v : x_.data()) {
    if (std::isnan(v)) return true;
  }
  return false;
}

double Dataset::positive_fraction() const {
  if (y_.empty()) return 0.0;
  std::size_t pos = 0;
  for (int v : y_) pos += v == 1 ? 1 : 0;
  return static_cast<double>(pos) / static_cast<double>(y_.size());
}

Dataset Dataset::subset(std::span<const std::size_t> idx) const {
  std::vector<int> y(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) y[i] = y_[idx[i]];
  Dataset out(x_.select_rows(idx), std::move(y), types_);
  out.names_ = names_;
  out.meta_ = meta_;
  return out;
}

void Dataset::check() const {
  if (x_.rows() != y_.size()) throw std::invalid_argument("Dataset: X/y size mismatch");
  if (types_.size() != x_.cols()) throw std::invalid_argument("Dataset: schema size mismatch");
  for (int v : y_) {
    if (v != 0 && v != 1) throw std::invalid_argument("Dataset: labels must be binary 0/1");
  }
}

}  // namespace mlaas
