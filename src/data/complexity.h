// Dataset complexity measures (Ho & Basu-style descriptors).
//
// §6 of the paper infers that black-box platforms choose classifiers from
// dataset characteristics, and §7 surveys work relating classifier
// performance to data-complexity measures [44, 46, 48, 78].  This module
// implements the standard descriptors used by that literature:
//   F1 — maximum Fisher discriminant ratio across features (class
//        separability along single axes; higher = easier);
//   N1 — fraction of points whose nearest neighbor has the other label
//        (boundary density; higher = harder / more non-linear);
//   L2 — error rate of the best linear separator (direct linearity measure;
//        the quantity the black boxes' hidden tests effectively estimate).
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace mlaas {

struct ComplexityMeasures {
  double fisher_ratio_f1 = 0.0;  // max over features; higher = easier
  double boundary_n1 = 0.0;      // in [0,1]; higher = denser class boundary
  double linear_error_l2 = 0.0;  // in [0,1]; higher = less linearly separable
};

/// Computes all measures.  For large datasets N1/L2 run on a seeded
/// subsample of `max_samples` points to stay O(max_samples^2).
ComplexityMeasures compute_complexity(const Dataset& dataset, std::uint64_t seed,
                                      std::size_t max_samples = 600);

}  // namespace mlaas
