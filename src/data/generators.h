// Synthetic dataset generators.
//
// These fill two roles in the reproduction:
//  1. The paper's 16 "synthetic" corpus datasets came from scikit-learn's
//     generators; make_classification / make_circles / make_moons /
//     make_blobs / make_gaussian_quantiles are faithful re-implementations.
//  2. The paper's 103 real-world datasets (UCI + applied-ML) are unavailable;
//     corpus.cpp composes these generators to synthesize stand-ins matching
//     the corpus marginals of Figure 3 (see DESIGN.md).
//
// CIRCLE (§6.1) is make_circles; LINEAR (§6.1) is make_classification with
// two informative features.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace mlaas {

struct MakeClassificationOptions {
  std::size_t n_samples = 100;
  std::size_t n_features = 20;
  std::size_t n_informative = 2;
  std::size_t n_redundant = 2;   // linear combinations of informative features
  std::size_t n_clusters_per_class = 1;
  double class_sep = 1.0;        // separation of cluster centroids
  double flip_y = 0.01;          // label-noise fraction
  double weight_class1 = 0.5;    // class balance
  bool shuffle_features = true;
};

/// sklearn.datasets.make_classification analogue: clusters of points on the
/// vertices of a hypercube, plus redundant and noise features.  A linear
/// generating process (one cluster per class) yields (near-)linearly
/// separable data.
Dataset make_classification(const MakeClassificationOptions& options, std::uint64_t seed);

/// Concentric circles (sklearn make_circles).  factor = inner/outer radius.
Dataset make_circles(std::size_t n_samples, double noise, double factor, std::uint64_t seed);

/// Two interleaving half-moons.
Dataset make_moons(std::size_t n_samples, double noise, std::uint64_t seed);

/// Isotropic Gaussian blobs, one per class, centers drawn in [-center_box,
/// center_box]^d.
Dataset make_blobs(std::size_t n_samples, std::size_t n_features, double cluster_std,
                   double center_box, std::uint64_t seed);

/// Classes separated by concentric multivariate-normal quantile shells
/// (sklearn make_gaussian_quantiles, 2 classes).
Dataset make_gaussian_quantiles(std::size_t n_samples, std::size_t n_features,
                                std::uint64_t seed);

/// XOR pattern in 2 dimensions with Gaussian noise.
Dataset make_xor(std::size_t n_samples, double noise, std::uint64_t seed);

/// Two interleaved Archimedean spirals.
Dataset make_spirals(std::size_t n_samples, double noise, std::uint64_t seed);

/// High-dimensional sparse linear problem: y = sign(w.x + b) with only
/// n_informative non-zero weights and label noise.
Dataset make_sparse_linear(std::size_t n_samples, std::size_t n_features,
                           std::size_t n_informative, double flip_y, std::uint64_t seed);

/// The two probe datasets of §6.1.
Dataset make_circle_probe(std::uint64_t seed, std::size_t n_samples = 800);
Dataset make_linear_probe(std::uint64_t seed, std::size_t n_samples = 800);

}  // namespace mlaas
