#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace mlaas {

namespace {

Dataset finalize(Matrix x, std::vector<int> y, bool linear, std::string name) {
  Dataset ds(std::move(x), std::move(y));
  ds.meta().name = std::move(name);
  ds.meta().domain = Domain::kSynthetic;
  ds.meta().linear_ground_truth = linear;
  ds.meta().nominal_samples = ds.n_samples();
  ds.meta().nominal_features = ds.n_features();
  return ds;
}

}  // namespace

Dataset make_classification(const MakeClassificationOptions& opt, std::uint64_t seed) {
  if (opt.n_informative == 0) throw std::invalid_argument("make_classification: need informative features");
  if (opt.n_informative + opt.n_redundant > opt.n_features) {
    throw std::invalid_argument("make_classification: informative+redundant > features");
  }
  Rng rng(seed);
  const std::size_t n = opt.n_samples;
  const std::size_t d = opt.n_features;
  const std::size_t di = opt.n_informative;
  const std::size_t dr = opt.n_redundant;

  // Cluster centroids on hypercube vertices scaled by class_sep.
  const std::size_t n_clusters = 2 * std::max<std::size_t>(1, opt.n_clusters_per_class);
  std::vector<std::vector<double>> centroids(n_clusters, std::vector<double>(di));
  for (auto& c : centroids) {
    for (auto& v : c) v = (rng.chance(0.5) ? 1.0 : -1.0) * opt.class_sep;
  }

  // Random linear map informative -> redundant.
  Matrix redundant_map(di, dr);
  for (std::size_t i = 0; i < di; ++i) {
    for (std::size_t j = 0; j < dr; ++j) redundant_map(i, j) = rng.normal();
  }

  Matrix x(n, d);
  std::vector<int> y(n);
  const std::size_t n_pos = static_cast<std::size_t>(
      std::llround(opt.weight_class1 * static_cast<double>(n)));
  for (std::size_t r = 0; r < n; ++r) {
    const int label = r < n_pos ? 1 : 0;
    const std::size_t cluster =
        static_cast<std::size_t>(label) * opt.n_clusters_per_class +
        rng.index(std::max<std::size_t>(1, opt.n_clusters_per_class));
    std::vector<double> info(di);
    for (std::size_t i = 0; i < di; ++i) info[i] = centroids[cluster][i] + rng.normal();
    for (std::size_t i = 0; i < di; ++i) x(r, i) = info[i];
    for (std::size_t j = 0; j < dr; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < di; ++i) acc += info[i] * redundant_map(i, j);
      x(r, di + j) = acc / std::sqrt(static_cast<double>(di));
    }
    for (std::size_t j = di + dr; j < d; ++j) x(r, j) = rng.normal();  // noise features
    y[r] = rng.chance(opt.flip_y) ? 1 - label : label;
  }

  if (opt.shuffle_features && d > 1) {
    std::vector<std::size_t> perm(d);
    for (std::size_t i = 0; i < d; ++i) perm[i] = i;
    rng.shuffle(perm);
    x = x.select_cols(perm);
  }
  // Shuffle rows so class blocks are interleaved.
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  rng.shuffle(rows);
  Matrix xs = x.select_rows(rows);
  std::vector<int> ys(n);
  for (std::size_t i = 0; i < n; ++i) ys[i] = y[rows[i]];

  const bool linear = opt.n_clusters_per_class <= 1;
  return finalize(std::move(xs), std::move(ys), linear, "make_classification");
}

Dataset make_circles(std::size_t n_samples, double noise, double factor, std::uint64_t seed) {
  if (factor <= 0.0 || factor >= 1.0) throw std::invalid_argument("make_circles: factor in (0,1)");
  Rng rng(seed);
  Matrix x(n_samples, 2);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const bool inner = i % 2 == 0;
    const double radius = inner ? factor : 1.0;
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    x(i, 0) = radius * std::cos(theta) + rng.normal(0.0, noise);
    x(i, 1) = radius * std::sin(theta) + rng.normal(0.0, noise);
    y[i] = inner ? 1 : 0;
  }
  return finalize(std::move(x), std::move(y), false, "make_circles");
}

Dataset make_moons(std::size_t n_samples, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n_samples, 2);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const bool upper = i % 2 == 0;
    const double t = rng.uniform(0.0, std::numbers::pi);
    if (upper) {
      x(i, 0) = std::cos(t);
      x(i, 1) = std::sin(t);
    } else {
      x(i, 0) = 1.0 - std::cos(t);
      x(i, 1) = 0.5 - std::sin(t);
    }
    x(i, 0) += rng.normal(0.0, noise);
    x(i, 1) += rng.normal(0.0, noise);
    y[i] = upper ? 0 : 1;
  }
  return finalize(std::move(x), std::move(y), false, "make_moons");
}

Dataset make_blobs(std::size_t n_samples, std::size_t n_features, double cluster_std,
                   double center_box, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers(2, std::vector<double>(n_features));
  for (auto& c : centers) {
    for (auto& v : c) v = rng.uniform(-center_box, center_box);
  }
  Matrix x(n_samples, n_features);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < n_features; ++j) {
      x(i, j) = centers[static_cast<std::size_t>(label)][j] + rng.normal(0.0, cluster_std);
    }
    y[i] = label;
  }
  return finalize(std::move(x), std::move(y), true, "make_blobs");
}

Dataset make_gaussian_quantiles(std::size_t n_samples, std::size_t n_features,
                                std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n_samples, n_features);
  std::vector<double> radius(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    double r2 = 0.0;
    for (std::size_t j = 0; j < n_features; ++j) {
      x(i, j) = rng.normal();
      r2 += x(i, j) * x(i, j);
    }
    radius[i] = r2;
  }
  // Median split on squared radius -> inner shell = class 0, outer = class 1.
  std::vector<double> sorted = radius;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n_samples / 2),
                   sorted.end());
  const double cut = sorted[n_samples / 2];
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) y[i] = radius[i] >= cut ? 1 : 0;
  return finalize(std::move(x), std::move(y), false, "make_gaussian_quantiles");
}

Dataset make_xor(std::size_t n_samples, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n_samples, 2);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const double a = rng.chance(0.5) ? 1.0 : -1.0;
    const double b = rng.chance(0.5) ? 1.0 : -1.0;
    x(i, 0) = a + rng.normal(0.0, noise);
    x(i, 1) = b + rng.normal(0.0, noise);
    y[i] = (a > 0) != (b > 0) ? 1 : 0;
  }
  return finalize(std::move(x), std::move(y), false, "make_xor");
}

Dataset make_spirals(std::size_t n_samples, double noise, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(n_samples, 2);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(i % 2);
    const double t = rng.uniform(0.25, 3.0) * std::numbers::pi;
    const double sign = label == 0 ? 1.0 : -1.0;
    x(i, 0) = sign * t * std::cos(t) / 8.0 + rng.normal(0.0, noise);
    x(i, 1) = sign * t * std::sin(t) / 8.0 + rng.normal(0.0, noise);
    y[i] = label;
  }
  return finalize(std::move(x), std::move(y), false, "make_spirals");
}

Dataset make_sparse_linear(std::size_t n_samples, std::size_t n_features,
                           std::size_t n_informative, double flip_y, std::uint64_t seed) {
  if (n_informative == 0 || n_informative > n_features) {
    throw std::invalid_argument("make_sparse_linear: bad n_informative");
  }
  Rng rng(seed);
  std::vector<double> w(n_features, 0.0);
  auto idx = rng.sample_without_replacement(n_features, n_informative);
  for (auto j : idx) w[j] = rng.normal(0.0, 2.0);
  const double bias = rng.normal(0.0, 0.5);
  Matrix x(n_samples, n_features);
  std::vector<int> y(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    double z = bias;
    for (std::size_t j = 0; j < n_features; ++j) {
      x(i, j) = rng.normal();
      z += w[j] * x(i, j);
    }
    int label = z > 0 ? 1 : 0;
    if (rng.chance(flip_y)) label = 1 - label;
    y[i] = label;
  }
  return finalize(std::move(x), std::move(y), true, "make_sparse_linear");
}

Dataset make_circle_probe(std::uint64_t seed, std::size_t n_samples) {
  Dataset ds = make_circles(n_samples, 0.08, 0.5, seed);
  ds.meta().id = "probe-circle";
  ds.meta().name = "CIRCLE";
  return ds;
}

Dataset make_linear_probe(std::uint64_t seed, std::size_t n_samples) {
  MakeClassificationOptions opt;
  opt.n_samples = n_samples;
  opt.n_features = 2;
  opt.n_informative = 2;
  opt.n_redundant = 0;
  opt.class_sep = 1.6;
  opt.flip_y = 0.04;  // noisy, as in §6.1 (non-linear models overfit it)
  opt.shuffle_features = false;
  Dataset ds = make_classification(opt, seed);
  ds.meta().id = "probe-linear";
  ds.meta().name = "LINEAR";
  return ds;
}

}  // namespace mlaas
