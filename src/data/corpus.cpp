#include "data/corpus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "data/generators.h"
#include "data/preprocess.h"
#include "linalg/stats.h"
#include "util/rng.h"

namespace mlaas {

namespace {

constexpr std::size_t kMinSamples = 15;      // smallest dataset in the paper
constexpr std::size_t kMaxSamples = 245057;  // largest dataset in the paper
constexpr std::size_t kMaxFeatures = 4702;   // highest dimensionality

std::size_t log_uniform(Rng& rng, std::size_t lo, std::size_t hi) {
  const double v = std::exp(rng.uniform(std::log(static_cast<double>(lo)),
                                        std::log(static_cast<double>(hi))));
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::llround(v)), lo, hi);
}

/// Quantile-bin a fraction of columns into integer category codes {1..N},
/// mimicking the categorical features of the paper's corpus (§3.1 maps
/// categories to {1..N}).
void categorize_columns(Dataset& ds, double fraction, Rng& rng) {
  Matrix& x = ds.x();
  const std::size_t d = ds.n_features();
  if (d == 0) return;
  const std::size_t n_cat = static_cast<std::size_t>(fraction * static_cast<double>(d));
  if (n_cat == 0) return;
  auto cols = rng.sample_without_replacement(d, n_cat);
  for (auto c : cols) {
    const int n_levels = static_cast<int>(rng.integer(2, 12));
    auto col = x.col(c);
    const auto ranks = fractional_ranks(col);
    const double n = static_cast<double>(col.size());
    for (std::size_t r = 0; r < col.size(); ++r) {
      int level = static_cast<int>((ranks[r] - 1.0) / n * n_levels);
      level = std::clamp(level, 0, n_levels - 1);
      x(r, c) = static_cast<double>(level + 1);  // {1..N}
    }
  }
}

/// Blank out a fraction of cells (set NaN); corpus imputation restores them.
void inject_missing(Dataset& ds, double fraction, Rng& rng) {
  if (fraction <= 0.0) return;
  Matrix& x = ds.x();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      if (rng.chance(fraction)) x(r, c) = std::numeric_limits<double>::quiet_NaN();
    }
  }
}

/// Rebalance classes by dropping positives until the target fraction.
Dataset imbalance(Dataset ds, double positive_fraction, Rng& rng) {
  if (positive_fraction >= 0.5) return ds;
  std::vector<std::size_t> pos, neg;
  for (std::size_t i = 0; i < ds.n_samples(); ++i) {
    (ds.y()[i] == 1 ? pos : neg).push_back(i);
  }
  const double target_pos =
      positive_fraction / (1.0 - positive_fraction) * static_cast<double>(neg.size());
  const std::size_t keep_pos =
      std::min(pos.size(), std::max<std::size_t>(2, static_cast<std::size_t>(target_pos)));
  rng.shuffle(pos);
  pos.resize(keep_pos);
  std::vector<std::size_t> keep = neg;
  keep.insert(keep.end(), pos.begin(), pos.end());
  std::sort(keep.begin(), keep.end());
  return ds.subset(keep);
}

struct DomainProfile {
  const char* prefix;
  double nonlinear_prob;   // fraction of datasets with non-linear processes
  double categorical_frac; // fraction of columns to categorize
  double missing_prob;     // probability the dataset has missing values
  double imbalance_prob;   // probability of class imbalance
};

DomainProfile profile_for(Domain d) {
  switch (d) {
    // Clinical/biological tables: many categorical attributes, missing
    // values common, often imbalanced (disease prevalence).
    case Domain::kLifeScience: return {"lifesci", 0.55, 0.35, 0.45, 0.50};
    // Game/telemetry data: large, mostly numeric, non-linear structure.
    case Domain::kComputerGames: return {"games", 0.70, 0.15, 0.15, 0.35};
    case Domain::kSynthetic: return {"synth", 0.60, 0.00, 0.00, 0.10};
    // Survey data: heavily categorical.
    case Domain::kSocialScience: return {"social", 0.40, 0.60, 0.35, 0.40};
    case Domain::kPhysicalScience: return {"physics", 0.60, 0.05, 0.10, 0.25};
    case Domain::kFinancial: return {"finance", 0.45, 0.30, 0.25, 0.60};
    case Domain::kOther: return {"other", 0.50, 0.25, 0.25, 0.35};
  }
  return {"unknown", 0.5, 0.2, 0.2, 0.3};
}

/// Named synthetic datasets standing in for the paper's 16 sklearn-generated
/// sets (plus one extra to reach the 17 of Fig 3a).
Dataset make_named_synthetic(std::size_t index, std::size_t n, std::size_t d, std::uint64_t seed) {
  switch (index % 8) {
    case 0: return make_circles(n, 0.08, 0.5, seed);
    case 1: return make_moons(n, 0.15, seed);
    case 2: return make_blobs(n, std::max<std::size_t>(2, d), 1.5, 6.0, seed);
    case 3: return make_gaussian_quantiles(n, std::max<std::size_t>(2, d), seed);
    case 4: return make_xor(n, 0.35, seed);
    case 5: return make_spirals(n, 0.05, seed);
    case 6:
      return make_sparse_linear(n, std::max<std::size_t>(2, d),
                                std::max<std::size_t>(1, d / 4), 0.05, seed);
    default: {
      MakeClassificationOptions opt;
      opt.n_samples = n;
      opt.n_features = std::max<std::size_t>(2, d);
      opt.n_informative = std::max<std::size_t>(1, opt.n_features / 3);
      opt.n_redundant = opt.n_features >= 3 ? opt.n_features / 4 : 0;
      opt.class_sep = 1.2;
      opt.flip_y = 0.03;
      return make_classification(opt, seed);
    }
  }
}

Dataset make_domain_dataset(Domain domain, const DomainProfile& profile, std::size_t n,
                            std::size_t d, Rng& rng, std::uint64_t seed) {
  const bool nonlinear = rng.chance(profile.nonlinear_prob);
  if (!nonlinear) {
    if (rng.chance(0.5) && d >= 4) {
      return make_sparse_linear(n, d, std::max<std::size_t>(1, d / 3),
                                rng.uniform(0.0, 0.08), seed);
    }
    MakeClassificationOptions opt;
    opt.n_samples = n;
    opt.n_features = std::max<std::size_t>(1, d);
    opt.n_informative = std::max<std::size_t>(1, opt.n_features / 2);
    opt.n_redundant = opt.n_features > 2 ? opt.n_features / 5 : 0;
    opt.n_clusters_per_class = 1;
    opt.class_sep = rng.uniform(0.8, 2.0);
    opt.flip_y = rng.uniform(0.0, 0.1);
    return make_classification(opt, seed);
  }
  // Non-linear generating processes, weighted toward the multi-cluster
  // hypercube problem (most "real" tabular non-linearity looks like this).
  switch (rng.index(4)) {
    case 0:
      if (domain == Domain::kComputerGames || d < 2) break;
      return make_gaussian_quantiles(n, std::max<std::size_t>(2, d), seed);
    case 1:
      if (d > 6) break;  // low-dimensional geometric patterns only
      return make_moons(n, rng.uniform(0.1, 0.3), seed);
    default: break;
  }
  MakeClassificationOptions opt;
  opt.n_samples = n;
  opt.n_features = std::max<std::size_t>(2, d);
  opt.n_informative = std::max<std::size_t>(2, opt.n_features / 2);
  opt.n_redundant = opt.n_features > 4 ? opt.n_features / 5 : 0;
  opt.n_clusters_per_class = 1 + rng.index(3);  // 2-3 clusters -> non-linear
  if (opt.n_clusters_per_class == 1) opt.n_clusters_per_class = 2;
  opt.class_sep = rng.uniform(0.8, 1.8);
  opt.flip_y = rng.uniform(0.0, 0.1);
  return make_classification(opt, seed);
}

}  // namespace

std::vector<std::pair<Domain, std::size_t>> corpus_domain_plan(std::size_t n_datasets) {
  // Figure 3(a) breakdown for 119 datasets, scaled proportionally otherwise.
  const std::vector<std::pair<Domain, std::size_t>> base = {
      {Domain::kLifeScience, 44},   {Domain::kComputerGames, 18},
      {Domain::kSynthetic, 17},     {Domain::kSocialScience, 10},
      {Domain::kPhysicalScience, 10}, {Domain::kFinancial, 7},
      {Domain::kOther, 13},
  };
  if (n_datasets == 119) return base;
  std::vector<std::pair<Domain, std::size_t>> plan;
  std::size_t assigned = 0;
  for (const auto& [domain, count] : base) {
    const auto scaled = std::max<std::size_t>(1, count * n_datasets / 119);
    plan.emplace_back(domain, scaled);
    assigned += scaled;
  }
  // Adjust the largest bucket to hit the exact total.
  if (assigned != n_datasets) {
    const auto diff = static_cast<std::ptrdiff_t>(n_datasets) -
                      static_cast<std::ptrdiff_t>(assigned);
    plan.front().second = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(plan.front().second) + diff);
  }
  return plan;
}

std::vector<Dataset> build_corpus(const CorpusOptions& options) {
  if (options.n_datasets == 0) throw std::invalid_argument("build_corpus: n_datasets == 0");
  const auto cap_samples = static_cast<std::size_t>(
      std::max(32.0, options.scale * static_cast<double>(options.max_samples)));
  const auto cap_features = static_cast<std::size_t>(
      std::max(2.0, options.scale * static_cast<double>(options.max_features)));

  std::vector<Dataset> corpus;
  corpus.reserve(options.n_datasets);
  std::size_t global_index = 0;
  for (const auto& [domain, count] : corpus_domain_plan(options.n_datasets)) {
    const DomainProfile profile = profile_for(domain);
    for (std::size_t k = 0; k < count; ++k, ++global_index) {
      const std::uint64_t ds_seed = derive_seed(options.seed, "corpus-" +
                                                std::to_string(global_index));
      Rng rng(derive_seed(ds_seed, "plan"));

      const std::size_t nominal_n = log_uniform(rng, kMinSamples, kMaxSamples);
      const std::size_t nominal_d = log_uniform(rng, 1, kMaxFeatures);
      const std::size_t n = std::max<std::size_t>(kMinSamples,
                                                  std::min(nominal_n, cap_samples));
      const std::size_t d = std::max<std::size_t>(1, std::min(nominal_d, cap_features));

      Dataset ds = domain == Domain::kSynthetic
                       ? make_named_synthetic(k, n, d, derive_seed(ds_seed, "gen"))
                       : make_domain_dataset(domain, profile, n, d, rng,
                                             derive_seed(ds_seed, "gen"));

      if (domain != Domain::kSynthetic) {
        categorize_columns(ds, rng.chance(0.7) ? profile.categorical_frac : 0.0, rng);
        if (rng.chance(profile.missing_prob)) {
          inject_missing(ds, rng.uniform(0.005, 0.05), rng);
        }
      }
      if (ds.n_samples() >= 40 && rng.chance(profile.imbalance_prob)) {
        ds = imbalance(std::move(ds), rng.uniform(0.08, 0.35), rng);
      }
      if (options.impute && ds.has_missing()) impute_median(ds);

      ds.meta().id = std::string(profile.prefix) + "-" +
                     (k < 10 ? "00" : k < 100 ? "0" : "") + std::to_string(k);
      if (ds.meta().name.empty()) ds.meta().name = ds.meta().id;
      ds.meta().name = ds.meta().id + ":" + ds.meta().name;
      ds.meta().domain = domain;
      ds.meta().nominal_samples = nominal_n;
      ds.meta().nominal_features = nominal_d;
      corpus.push_back(std::move(ds));
    }
  }
  return corpus;
}

}  // namespace mlaas
