#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace mlaas {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// RFC-4180 cell splitting.  A cell whose first non-blank character is '"'
/// is quoted: delimiters inside it do not split, '""' is a literal quote,
/// and its content is returned verbatim — quoted cells are how a value
/// keeps leading/trailing spaces or an embedded delimiter.  Unquoted cells
/// are trimmed here, byte-identical to the historical parser.  Embedded
/// line breaks inside quotes are not supported (the reader is
/// line-oriented); CRLF endings are stripped by the caller's line trim.
std::vector<std::string> split_line(const std::string& line, char delim) {
  std::vector<std::string> cells;
  if (line.empty()) return cells;
  const std::size_t n = line.size();
  std::size_t i = 0;
  while (true) {
    std::size_t start = i;
    while (start < n && (line[start] == ' ' || line[start] == '\t')) ++start;
    if (start < n && line[start] == '"') {
      std::string cell;
      std::size_t j = start + 1;
      while (j < n) {
        if (line[j] == '"') {
          if (j + 1 < n && line[j + 1] == '"') {
            cell += '"';
            j += 2;
          } else {
            ++j;  // closing quote
            break;
          }
        } else {
          cell += line[j++];
        }
      }
      cells.push_back(std::move(cell));
      while (j < n && line[j] != delim) ++j;  // drop anything after the close
      if (j >= n) return cells;
      i = j + 1;
    } else {
      const std::size_t d = line.find(delim, i);
      if (d == std::string::npos) {
        cells.push_back(trim(line.substr(i)));
        return cells;
      }
      cells.push_back(trim(line.substr(i, d - i)));
      i = d + 1;
    }
    if (i == n) {  // trailing delimiter: final empty cell
      cells.emplace_back();
      return cells;
    }
  }
}

bool is_missing(const std::string& s) { return s.empty() || s == "?" || s == "NA" || s == "nan"; }

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

Dataset load_csv(std::istream& in, const CsvOptions& options) {
  std::vector<std::vector<std::string>> raw;
  std::vector<std::string> header;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    auto cells = split_line(line, options.delimiter);
    if (first && options.has_header) {
      header = std::move(cells);
      first = false;
      continue;
    }
    first = false;
    raw.push_back(std::move(cells));
  }
  if (raw.empty()) throw std::invalid_argument("load_csv: no data rows");

  const std::size_t n_cols = raw.front().size();
  for (const auto& row : raw) {
    if (row.size() != n_cols) throw std::invalid_argument("load_csv: ragged rows");
  }
  const std::size_t label_col =
      options.label_column < 0 ? n_cols - 1 : static_cast<std::size_t>(options.label_column);
  if (label_col >= n_cols) throw std::invalid_argument("load_csv: label column out of range");

  // Decide per-column types: numeric if every non-missing cell parses.
  std::vector<bool> numeric(n_cols, true);
  for (const auto& row : raw) {
    for (std::size_t c = 0; c < n_cols; ++c) {
      double unused;
      if (!is_missing(row[c]) && !parse_double(row[c], unused)) numeric[c] = false;
    }
  }

  const std::size_t n_features = n_cols - 1;
  Matrix x(raw.size(), n_features);
  std::vector<ColumnType> types;
  std::vector<std::string> names;
  // Per-column category dictionaries ({C1..CN} -> {1..N}, §3.1).
  std::vector<std::map<std::string, double>> dict(n_cols);

  std::vector<int> y(raw.size());
  std::map<std::string, int> label_dict;

  for (std::size_t c = 0, f = 0; c < n_cols; ++c) {
    if (c == label_col) continue;
    types.push_back(numeric[c] ? ColumnType::kNumeric : ColumnType::kCategorical);
    names.push_back(c < header.size() && !header[c].empty() ? header[c]
                                                            : "f" + std::to_string(f));
    ++f;
  }

  for (std::size_t r = 0; r < raw.size(); ++r) {
    std::size_t f = 0;
    for (std::size_t c = 0; c < n_cols; ++c) {
      const std::string& cell = raw[r][c];
      if (c == label_col) {
        if (is_missing(cell)) throw std::invalid_argument("load_csv: missing label");
        int lbl;
        double num;
        if (!options.positive_label.empty()) {
          lbl = cell == options.positive_label ? 1 : 0;
        } else if (parse_double(cell, num) && (num == 0.0 || num == 1.0)) {
          lbl = static_cast<int>(num);
        } else {
          auto [it, inserted] = label_dict.emplace(cell, static_cast<int>(label_dict.size()));
          (void)inserted;
          lbl = it->second;
        }
        if (lbl != 0 && lbl != 1) {
          throw std::invalid_argument("load_csv: more than two label values");
        }
        y[r] = lbl;
        continue;
      }
      double v;
      if (is_missing(cell)) {
        v = std::numeric_limits<double>::quiet_NaN();
      } else if (numeric[c]) {
        parse_double(cell, v);
      } else {
        auto [it, inserted] = dict[c].emplace(cell, static_cast<double>(dict[c].size() + 1));
        (void)inserted;
        v = it->second;
      }
      x(r, f) = v;
      ++f;
    }
  }

  Dataset ds(std::move(x), std::move(y), std::move(types));
  ds.set_feature_names(std::move(names));
  return ds;
}

Dataset load_csv_file(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_csv_file: cannot open " + path);
  return load_csv(in, options);
}

void save_csv(const Dataset& dataset, std::ostream& out) {
  for (const auto& name : dataset.feature_names()) out << name << ",";
  out << "label\n";
  out.precision(12);
  for (std::size_t r = 0; r < dataset.n_samples(); ++r) {
    for (std::size_t c = 0; c < dataset.n_features(); ++c) {
      const double v = dataset.x()(r, c);
      if (std::isnan(v)) {
        out << "?";
      } else {
        out << v;
      }
      out << ",";
    }
    out << dataset.y()[r] << "\n";
  }
}

void save_csv_file(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_csv_file: cannot open " + path);
  save_csv(dataset, out);
}

}  // namespace mlaas
