// The 119-dataset corpus (§3.1).
//
// The paper's corpus (94 UCI + 16 sklearn synthetic + 9 applied-ML datasets)
// is reproduced as a deterministic synthetic corpus whose marginal statistics
// match Figure 3:
//   - domain breakdown: 44 life science, 18 computer & games, 17 synthetic,
//     10 social science, 10 physical science, 7 financial & business,
//     13 other;
//   - sample counts log-uniform in [15, 245057] (Fig 3b);
//   - feature counts log-uniform in [1, 4702] (Fig 3c);
//   - a mix of linear/non-linear generating processes, class imbalance,
//     categorical features and missing values (imputed with per-feature
//     medians before use, as in §3.1).
//
// Nominal sizes are recorded in DatasetMeta; actual generated sizes are
// capped (CorpusOptions) to keep single-machine runtime bounded.  See
// DESIGN.md "Runtime scaling".
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace mlaas {

struct CorpusOptions {
  std::uint64_t seed = 42;
  /// Hard caps on generated size; nominal sizes (for Fig 3) are uncapped.
  std::size_t max_samples = 900;
  std::size_t max_features = 40;
  /// Multiplies the caps; scale=1 is the default single-core budget.
  double scale = 1.0;
  /// Number of datasets; the paper uses 119.
  std::size_t n_datasets = 119;
  /// Replace missing values with medians after generation (§3.1).
  bool impute = true;
};

/// Build the full corpus.  Deterministic in options.seed.
std::vector<Dataset> build_corpus(const CorpusOptions& options = {});

/// Domain counts matching Figure 3(a) for a 119-dataset corpus.
std::vector<std::pair<Domain, std::size_t>> corpus_domain_plan(std::size_t n_datasets);

}  // namespace mlaas
